/**
 * @file
 * Figure 7: pipeline front-end stall cycles (dispatch blocked on ROB /
 * physical registers / LSQ / logging hardware), normalized to
 * PMEM+nolog.
 *
 * Paper anchors: ATOM has 16% more stalls than the ideal case and 12%
 * more than Proteus; Proteus is within 4% of the ideal.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 7: front-end stall cycles normalized to "
              << "PMEM+nolog\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto matrix = bench::runMatrix(
        opts,
        {LogScheme::PMEMNoLog, LogScheme::ATOM, LogScheme::Proteus},
        allPaperWorkloads());

    bench::printNormalized(
        matrix, LogScheme::PMEMNoLog,
        [](const RunResult &r) {
            return static_cast<double>(r.frontendStallCycles);
        },
        "Front-end stalls / PMEM+nolog (paper Figure 7)");

    double atom_sum = 0, proteus_sum = 0;
    for (std::size_t i = 0; i < matrix.workloads.size(); ++i) {
        const double base = static_cast<double>(
            matrix.at(LogScheme::PMEMNoLog, i).frontendStallCycles);
        if (base <= 0)
            continue;
        atom_sum +=
            matrix.at(LogScheme::ATOM, i).frontendStallCycles / base;
        proteus_sum +=
            matrix.at(LogScheme::Proteus, i).frontendStallCycles /
            base;
    }
    const double n = static_cast<double>(matrix.workloads.size());
    std::cout << "\nderived:\n"
              << "  ATOM stalls vs ideal:    +"
              << TablePrinter::fmt(100.0 * (atom_sum / n - 1.0), 1)
              << "%  (paper: +16%)\n"
              << "  Proteus stalls vs ideal: +"
              << TablePrinter::fmt(100.0 * (proteus_sum / n - 1.0), 1)
              << "%  (paper: +4%)\n";

    // CPI stack: where commit slots went, as % of total core cycles,
    // aggregated over the Table 2 workloads. Every cycle lands in
    // exactly one bucket, so each row sums to 100%.
    std::cout << "\nCPI stack (% of core cycles; one bucket per "
              << "commit-slot cycle)\n";
    TablePrinter cpi_table({"scheme", "base", "rob", "iq/lsq", "branch",
                            "persist", "wpq", "lock"});
    cpi_table.printHeader(std::cout);
    for (const auto &[scheme, results] : matrix.results) {
        CpiStack total;
        for (const RunResult &r : results)
            total += r.cpi;
        const double cycles = static_cast<double>(total.total());
        if (cycles <= 0)
            continue;
        auto pct = [&](std::uint64_t v) {
            return TablePrinter::fmt(100.0 * v / cycles, 1);
        };
        cpi_table.printRow(std::cout,
                           {toString(scheme), pct(total.base),
                            pct(total.robFull), pct(total.iqLsqFull),
                            pct(total.branchRedirect),
                            pct(total.persistStall),
                            pct(total.wpqBackpressure),
                            pct(total.lockWait)});
    }
    return 0;
}
