/**
 * @file
 * Table 3: speedups for large transactions — the linked-list
 * microbenchmark updates 1024..8192 elements per node in a single
 * durable transaction.
 *
 * Paper anchors: Proteus 1.20-1.24 vs ideal 1.23-1.27 over PMEM; the
 * LogQ/LLT/LPQ sustain transactions with 20-156x more log entries.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Table 3: speedups for large transactions "
              << "(linked-list microbenchmark)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    TablePrinter table({"tx size", "Proteus", "ideal",
                        "LLT miss", "dropped"});
    table.printHeader(std::cout);

    for (unsigned elements : {1024u, 2048u, 4096u, 8192u}) {
        LinkedListOptions ll;
        ll.elementsPerNode = elements;

        std::cerr << "  elements=" << elements << " PMEM...\n";
        const double base = static_cast<double>(
            runExperiment(opts.makeConfig(), LogScheme::PMEM,
                          WorkloadKind::LinkedList, opts, ll)
                .cycles);
        std::cerr << "  elements=" << elements << " Proteus...\n";
        const RunResult proteus =
            runExperiment(opts.makeConfig(), LogScheme::Proteus,
                          WorkloadKind::LinkedList, opts, ll);
        std::cerr << "  elements=" << elements << " nolog...\n";
        const RunResult ideal =
            runExperiment(opts.makeConfig(), LogScheme::PMEMNoLog,
                          WorkloadKind::LinkedList, opts, ll);

        table.printRow(
            std::cout,
            {std::to_string(elements),
             TablePrinter::fmt(base / proteus.cycles),
             TablePrinter::fmt(base / ideal.cycles),
             TablePrinter::fmt(100.0 * proteus.lltMissRate, 1) + "%",
             std::to_string(proteus.logWritesDropped)});
    }
    return 0;
}
