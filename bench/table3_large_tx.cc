/**
 * @file
 * Table 3: speedups for large transactions — the linked-list
 * microbenchmark updates 1024..8192 elements per node in a single
 * durable transaction.
 *
 * Paper anchors: Proteus 1.20-1.24 vs ideal 1.23-1.27 over PMEM; the
 * LogQ/LLT/LPQ sustain transactions with 20-156x more log entries.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Table 3: speedups for large transactions "
              << "(linked-list microbenchmark)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    TablePrinter table({"tx size", "Proteus", "ideal",
                        "LLT miss", "dropped"});
    table.printHeader(std::cout);

    const std::vector<unsigned> sizes{1024u, 2048u, 4096u, 8192u};
    const std::vector<LogScheme> schemes{
        LogScheme::PMEM, LogScheme::Proteus, LogScheme::PMEMNoLog};

    std::vector<SimJob> jobs;
    for (unsigned elements : sizes) {
        WorkloadExtras extras;
        extras.ll.elementsPerNode = elements;
        for (LogScheme s : schemes) {
            jobs.push_back(SimJob{opts.makeConfig(), s,
                                  WorkloadKind::LinkedList, extras,
                                  "elements=" +
                                      std::to_string(elements) + " " +
                                      toString(s)});
        }
    }
    const auto results = bench::runBatch(opts, jobs);

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const double base = static_cast<double>(
            results[i * schemes.size()].result.cycles);
        const RunResult &proteus = results[i * schemes.size() + 1].result;
        const RunResult &ideal = results[i * schemes.size() + 2].result;

        table.printRow(
            std::cout,
            {std::to_string(sizes[i]),
             TablePrinter::fmt(base / proteus.cycles),
             TablePrinter::fmt(base / ideal.cycles),
             TablePrinter::fmt(100.0 * proteus.lltMissRate, 1) + "%",
             std::to_string(proteus.logWritesDropped)});
    }
    return 0;
}
