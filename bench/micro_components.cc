/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: how
 * fast is the simulator itself (host-side), per component.
 */

#include <benchmark/benchmark.h>

#include "dram/nvm_timing.hh"
#include "cache/cache_array.hh"
#include "harness/system.hh"
#include "heap/memory_image.hh"
#include "logging/llt.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace proteus;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i)
            q.schedule(now + 1 + (i % 7), [&fired]() { ++fired; });
        q.runUntil(now + 8);
        now += 8;
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_MemoryImageWrite64(benchmark::State &state)
{
    MemoryImage img;
    Random rng(1);
    for (auto _ : state)
        img.write64(rng.nextBelow(1 << 26) * 8, 42);
}
BENCHMARK(BM_MemoryImageWrite64);

void
BM_MemoryImageRead64(benchmark::State &state)
{
    MemoryImage img;
    for (Addr a = 0; a < (1 << 22); a += 8)
        img.write64(a, a);
    Random rng(2);
    std::uint64_t sum = 0;
    for (auto _ : state)
        sum += img.read64(rng.nextBelow(1 << 19) * 8);
    benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_MemoryImageRead64);

void
BM_CacheArrayProbeInsert(benchmark::State &state)
{
    stats::StatRegistry reg;
    CacheConfig cfg{32 * 1024, 8, 4, 16, 16};
    CacheArray array(cfg, reg, "bm.cache");
    Random rng(3);
    for (auto _ : state) {
        const Addr block = rng.nextBelow(4096) * 64;
        if (!array.probe(block))
            array.insert(block, false);
        else
            array.touch(block);
    }
}
BENCHMARK(BM_CacheArrayProbeInsert);

void
BM_LltLookup(benchmark::State &state)
{
    stats::StatRegistry reg;
    LogLookupTable llt(64, 8, reg, "bm.llt");
    Random rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            llt.lookupInsert(rng.nextBelow(256) * 32));
}
BENCHMARK(BM_LltLookup);

void
BM_NvmTimingIssue(benchmark::State &state)
{
    stats::StatRegistry reg;
    MemTimingConfig cfg;
    NvmTiming dram(cfg, reg, "bm.dram");
    Random rng(5);
    Tick now = 0;
    for (auto _ : state) {
        const Addr addr = rng.nextBelow(1 << 20) * 64;
        while (!dram.bankReady(addr, now))
            now += 4;
        benchmark::DoNotOptimize(
            dram.issue(addr, rng.nextBool(0.4), now));
        ++now;
    }
}
BENCHMARK(BM_NvmTimingIssue);

/**
 * Host cycles/sec of the whole timed simulation (functional setup
 * excluded): build a FullSystem once per iteration, then time only the
 * run() loop. Report simulated cycles as items so the tool prints
 * sim-cycles per host-second.
 */
void
BM_FullSystemTimedRun(benchmark::State &state)
{
    WorkloadParams params;
    params.threads = 2;
    params.scale = 500;
    params.initScale = 100;
    params.seed = 3;

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = baselineConfig();
        cfg.logging.scheme = LogScheme::Proteus;
        FullSystem system(cfg, WorkloadKind::BTree, params);
        state.ResumeTiming();

        const RunResult r = system.run(500'000'000ull);
        cycles += r.cycles;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
    benchmark::DoNotOptimize(cycles);
}
BENCHMARK(BM_FullSystemTimedRun)->Unit(benchmark::kMillisecond);

void
BM_Xoshiro(benchmark::State &state)
{
    Random rng(6);
    std::uint64_t sum = 0;
    for (auto _ : state)
        sum += rng.next();
    benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_Xoshiro);

} // namespace

BENCHMARK_MAIN();
