/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries: run a
 * matrix of (scheme x workload), cache baselines, and print rows in
 * the paper's layout.
 */

#ifndef PROTEUS_BENCH_BENCH_UTIL_HH
#define PROTEUS_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiments.hh"
#include "harness/parallel_runner.hh"

namespace proteus {
namespace bench {

/** One scheme's speedups across the Table 2 workloads. */
struct SpeedupRow
{
    LogScheme scheme;
    std::vector<double> speedups;   ///< per workload, then geomean
};

/** Results of a full (scheme x workload) sweep. */
struct Matrix
{
    std::vector<WorkloadKind> workloads;
    std::map<LogScheme, std::vector<RunResult>> results;
    std::map<LogScheme, std::vector<double>> wallMs;

    const RunResult &
    at(LogScheme s, std::size_t w) const
    {
        return results.at(s)[w];
    }
};

/** Progress label for one (scheme, workload) job. */
inline std::string
jobLabel(LogScheme s, WorkloadKind w)
{
    return std::string(toString(s)) + " / " + toString(w);
}

/** Run a batch of jobs on opts.jobs worker threads with serialized
 *  progress reporting; results come back in submission order. Also
 *  honors --json by writing one result row per job. */
inline std::vector<SimJobResult>
runBatch(const BenchOptions &opts, const std::vector<SimJob> &jobs)
{
    ParallelRunner runner(opts.jobs);
    ProgressReporter progress(std::cerr);
    const auto results = runner.run(jobs, opts, &progress);

    if (!opts.jsonPath.empty()) {
        std::vector<JsonResultRow> rows;
        rows.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            rows.push_back(JsonResultRow{toString(jobs[i].scheme),
                                         toString(jobs[i].kind),
                                         results[i].result,
                                         results[i].wallMs});
        writeJsonResults(opts.jsonPath, rows);
    }
    if (!opts.txStats.empty()) {
        // One combined flight-recorder file, rows in submission order
        // (the runner suppressed per-job writes), so the bytes are
        // identical at any --jobs level.
        std::vector<obs::TxStatsRow> rows;
        rows.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            rows.push_back(makeTxStatsRow(opts, jobs[i].scheme,
                                          jobs[i].kind,
                                          results[i].result));
        obs::writeTxStatsFile(opts.txStats, rows);
    }
    return results;
}

/**
 * Run every (scheme, workload) pair with shared options, opts.jobs
 * pairs concurrently. Each pair is an independent FullSystem, so the
 * matrix is identical to a sequential sweep at any job count.
 */
inline Matrix
runMatrix(const BenchOptions &opts, const std::vector<LogScheme> &schemes,
          const std::vector<WorkloadKind> &workloads)
{
    std::vector<SimJob> jobs;
    jobs.reserve(schemes.size() * workloads.size());
    for (LogScheme s : schemes) {
        for (WorkloadKind w : workloads)
            jobs.push_back(SimJob{opts.makeConfig(), s, w, {},
                                  jobLabel(s, w)});
    }
    const auto outcomes = runBatch(opts, jobs);

    Matrix m;
    m.workloads = workloads;
    std::size_t i = 0;
    for (LogScheme s : schemes) {
        for (std::size_t k = 0; k < workloads.size(); ++k, ++i) {
            m.results[s].push_back(outcomes[i].result);
            m.wallMs[s].push_back(outcomes[i].wallMs);
        }
    }
    return m;
}

/** Print a speedup table: rows = schemes, columns = workloads+geomean,
 *  baseline = @p baseline cycles per workload. */
inline void
printSpeedups(const Matrix &m, LogScheme baseline,
              const std::string &title)
{
    std::vector<std::string> cols{"scheme"};
    for (WorkloadKind w : m.workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");

    std::cout << "\n" << title << "\n";
    TablePrinter table(cols);
    table.printHeader(std::cout);
    for (const auto &[scheme, results] : m.results) {
        std::vector<std::string> cells{toString(scheme)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double base =
                static_cast<double>(m.at(baseline, i).cycles);
            const double s = base / results[i].cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
}

/** Print a per-workload metric normalized to @p baseline's metric. */
template <typename Fn>
inline void
printNormalized(const Matrix &m, LogScheme baseline, Fn metric,
                const std::string &title)
{
    std::vector<std::string> cols{"scheme"};
    for (WorkloadKind w : m.workloads)
        cols.push_back(toString(w));
    cols.push_back("mean");

    std::cout << "\n" << title << "\n";
    TablePrinter table(cols);
    table.printHeader(std::cout);
    for (const auto &[scheme, results] : m.results) {
        std::vector<std::string> cells{toString(scheme)};
        double sum = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double base = metric(m.at(baseline, i));
            const double v =
                base > 0 ? metric(results[i]) / base : 0.0;
            sum += v;
            cells.push_back(TablePrinter::fmt(v));
        }
        cells.push_back(TablePrinter::fmt(
            sum / static_cast<double>(results.size())));
        table.printRow(std::cout, cells);
    }
}

} // namespace bench
} // namespace proteus

#endif // PROTEUS_BENCH_BENCH_UTIL_HH
