/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries: run a
 * matrix of (scheme x workload), cache baselines, and print rows in
 * the paper's layout.
 */

#ifndef PROTEUS_BENCH_BENCH_UTIL_HH
#define PROTEUS_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiments.hh"

namespace proteus {
namespace bench {

/** One scheme's speedups across the Table 2 workloads. */
struct SpeedupRow
{
    LogScheme scheme;
    std::vector<double> speedups;   ///< per workload, then geomean
};

/** Results of a full (scheme x workload) sweep. */
struct Matrix
{
    std::vector<WorkloadKind> workloads;
    std::map<LogScheme, std::vector<RunResult>> results;

    const RunResult &
    at(LogScheme s, std::size_t w) const
    {
        return results.at(s)[w];
    }
};

/** Run every (scheme, workload) pair with shared options. */
inline Matrix
runMatrix(const BenchOptions &opts, const std::vector<LogScheme> &schemes,
          const std::vector<WorkloadKind> &workloads)
{
    Matrix m;
    m.workloads = workloads;
    for (LogScheme s : schemes) {
        for (WorkloadKind w : workloads) {
            std::cerr << "  running " << toString(s) << " / "
                      << toString(w) << "...\n";
            m.results[s].push_back(
                runExperiment(opts.makeConfig(), s, w, opts));
        }
    }
    return m;
}

/** Print a speedup table: rows = schemes, columns = workloads+geomean,
 *  baseline = @p baseline cycles per workload. */
inline void
printSpeedups(const Matrix &m, LogScheme baseline,
              const std::string &title)
{
    std::vector<std::string> cols{"scheme"};
    for (WorkloadKind w : m.workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");

    std::cout << "\n" << title << "\n";
    TablePrinter table(cols);
    table.printHeader(std::cout);
    for (const auto &[scheme, results] : m.results) {
        std::vector<std::string> cells{toString(scheme)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double base =
                static_cast<double>(m.at(baseline, i).cycles);
            const double s = base / results[i].cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
}

/** Print a per-workload metric normalized to @p baseline's metric. */
template <typename Fn>
inline void
printNormalized(const Matrix &m, LogScheme baseline, Fn metric,
                const std::string &title)
{
    std::vector<std::string> cols{"scheme"};
    for (WorkloadKind w : m.workloads)
        cols.push_back(toString(w));
    cols.push_back("mean");

    std::cout << "\n" << title << "\n";
    TablePrinter table(cols);
    table.printHeader(std::cout);
    for (const auto &[scheme, results] : m.results) {
        std::vector<std::string> cells{toString(scheme)};
        double sum = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double base = metric(m.at(baseline, i));
            const double v =
                base > 0 ? metric(results[i]) / base : 0.0;
            sum += v;
            cells.push_back(TablePrinter::fmt(v));
        }
        cells.push_back(TablePrinter::fmt(
            sum / static_cast<double>(results.size())));
        table.printRow(std::cout, cells);
    }
}

} // namespace bench
} // namespace proteus

#endif // PROTEUS_BENCH_BENCH_UTIL_HH
