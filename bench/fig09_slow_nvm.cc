/**
 * @file
 * Figure 9: speedup on slow NVMM (write latency 300 ns, read 50 ns),
 * baseline PMEM software logging.
 *
 * Paper anchors: geomeans 1.33 (ATOM), 1.49 (Proteus), 1.53 (ideal);
 * Proteus's advantage grows with write latency.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    // Section 7.1: write tRCD of 240 memory cycles (300 ns at 800 MHz).
    opts.overrides.push_back("mem.nvmWriteTRCD=240");
    std::cout << "Figure 9: speedup on slow NVMM (300 ns writes)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto matrix = bench::runMatrix(
        opts,
        {LogScheme::PMEM, LogScheme::ATOM, LogScheme::Proteus,
         LogScheme::PMEMNoLog},
        allPaperWorkloads());

    bench::printSpeedups(matrix, LogScheme::PMEM,
                         "Speedup over PMEM on slow NVM "
                         "(paper Figure 9)");
    return 0;
}
