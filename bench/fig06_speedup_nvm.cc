/**
 * @file
 * Figure 6: speedup on NVMM for every logging scheme, with software
 * logging (PMEM, ADR, no pcommit) as the baseline.
 *
 * Paper anchors: PMEM+pcommit 0.79, ATOM 1.33, Proteus 1.46,
 * PMEM+nolog 1.51 (geomean); Proteus within 3.3% of the ideal;
 * BT nolog up to 2.98x.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 6: speedup on NVMM (baseline: PMEM software "
              << "logging, ADR)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto matrix = bench::runMatrix(
        opts,
        {LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::ATOM,
         LogScheme::Proteus, LogScheme::ProteusNoLWR,
         LogScheme::PMEMNoLog},
        allPaperWorkloads());

    bench::printSpeedups(matrix, LogScheme::PMEM,
                         "Speedup over PMEM (paper Figure 6)");

    // Section 6 headline derived metrics.
    std::vector<double> proteus, ideal, atom;
    for (std::size_t i = 0; i < matrix.workloads.size(); ++i) {
        const double base =
            static_cast<double>(matrix.at(LogScheme::PMEM, i).cycles);
        proteus.push_back(base /
                          matrix.at(LogScheme::Proteus, i).cycles);
        ideal.push_back(base /
                        matrix.at(LogScheme::PMEMNoLog, i).cycles);
        atom.push_back(base / matrix.at(LogScheme::ATOM, i).cycles);
    }
    const double gp = geomean(proteus);
    const double gi = geomean(ideal);
    const double ga = geomean(atom);
    std::cout << "\nderived (Section 6):\n"
              << "  Proteus vs ideal gap:  "
              << TablePrinter::fmt(100.0 * (1.0 - gp / gi), 1)
              << "%  (paper: 3.3%)\n"
              << "  Proteus vs ATOM:       "
              << TablePrinter::fmt(100.0 * (gp / ga - 1.0), 1)
              << "%  (paper: ~10%)\n";
    return 0;
}
