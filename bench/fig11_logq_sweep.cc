/**
 * @file
 * Figure 11: Proteus speedup over PMEM while varying the LogQ size
 * from 1 to 64 entries.
 *
 * Paper anchors: speedup grows with LogQ size with diminishing
 * returns; 8 entries reach 1.44x, 64 entries ~1.47x; the paper picks
 * 16 because the 8->16 step matters more on DRAM (run with --dram to
 * reproduce that sensitivity, Section 7.2).
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 11: speedup vs LogQ size (baseline PMEM"
              << (opts.dram ? ", DRAM timing" : "") << ")\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto workloads = allPaperWorkloads();
    const std::vector<unsigned> logqs{1u, 2u, 4u, 8u, 16u, 32u, 64u};

    // One batch: per-workload PMEM baselines, then the whole sweep.
    std::vector<SimJob> jobs;
    for (WorkloadKind w : workloads) {
        jobs.push_back(SimJob{opts.makeConfig(), LogScheme::PMEM, w, {},
                              std::string("baseline PMEM / ") +
                                  toString(w)});
    }
    for (unsigned logq : logqs) {
        for (WorkloadKind w : workloads) {
            SystemConfig cfg = opts.makeConfig();
            cfg.logging.logQEntries = logq;
            jobs.push_back(SimJob{cfg, LogScheme::Proteus, w, {},
                                  "LogQ=" + std::to_string(logq) +
                                      " / " + toString(w)});
        }
    }
    const auto results = bench::runBatch(opts, jobs);

    std::vector<std::string> cols{"LogQ"};
    for (WorkloadKind w : workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");
    TablePrinter table(cols);
    std::cout << "\nProteus speedup over PMEM (paper Figure 11)\n";
    table.printHeader(std::cout);

    for (std::size_t q = 0; q < logqs.size(); ++q) {
        std::vector<std::string> cells{std::to_string(logqs[q])};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double base = static_cast<double>(
                results[i].result.cycles);
            const RunResult &r =
                results[(q + 1) * workloads.size() + i].result;
            const double s = base / r.cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
    return 0;
}
