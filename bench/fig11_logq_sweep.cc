/**
 * @file
 * Figure 11: Proteus speedup over PMEM while varying the LogQ size
 * from 1 to 64 entries.
 *
 * Paper anchors: speedup grows with LogQ size with diminishing
 * returns; 8 entries reach 1.44x, 64 entries ~1.47x; the paper picks
 * 16 because the 8->16 step matters more on DRAM (run with --dram to
 * reproduce that sensitivity, Section 7.2).
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 11: speedup vs LogQ size (baseline PMEM"
              << (opts.dram ? ", DRAM timing" : "") << ")\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto workloads = allPaperWorkloads();

    // Per-workload PMEM baselines, shared across the sweep.
    std::vector<double> base;
    for (WorkloadKind w : workloads) {
        std::cerr << "  baseline PMEM / " << toString(w) << "...\n";
        base.push_back(static_cast<double>(
            runExperiment(opts.makeConfig(), LogScheme::PMEM, w, opts)
                .cycles));
    }

    std::vector<std::string> cols{"LogQ"};
    for (WorkloadKind w : workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");
    TablePrinter table(cols);
    std::cout << "\nProteus speedup over PMEM (paper Figure 11)\n";
    table.printHeader(std::cout);

    for (unsigned logq : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        std::vector<std::string> cells{std::to_string(logq)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::cerr << "  LogQ=" << logq << " / "
                      << toString(workloads[i]) << "...\n";
            SystemConfig cfg = opts.makeConfig();
            cfg.logging.logQEntries = logq;
            const RunResult r = runExperiment(
                cfg, LogScheme::Proteus, workloads[i], opts);
            const double s = base[i] / r.cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
    return 0;
}
