/**
 * @file
 * Figure 8: the number of NVMM writes, normalized to PMEM with no
 * logging.
 *
 * Paper anchors: ATOM averages 3.4x (QE > 4x, AT worst at 6x);
 * Proteus stays within 6% of the no-logging write count thanks to
 * log write removal.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 8: NVM writes normalized to PMEM+nolog\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto matrix = bench::runMatrix(
        opts,
        {LogScheme::PMEMNoLog, LogScheme::PMEM, LogScheme::ATOM,
         LogScheme::Proteus, LogScheme::ProteusNoLWR},
        allPaperWorkloads());

    bench::printNormalized(
        matrix, LogScheme::PMEMNoLog,
        [](const RunResult &r) {
            return static_cast<double>(r.nvmWrites);
        },
        "NVM writes / PMEM+nolog (paper Figure 8)");

    std::cout << "\nProteus log writes dropped at the LPQ "
              << "(log write removal):\n";
    for (std::size_t i = 0; i < matrix.workloads.size(); ++i) {
        std::cout << "  " << toString(matrix.workloads[i]) << ": "
                  << matrix.at(LogScheme::Proteus, i).logWritesDropped
                  << " dropped\n";
    }
    return 0;
}
