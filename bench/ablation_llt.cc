/**
 * @file
 * Ablation: LLT size (Section 4.2). Sweeps the Log Lookup Table and
 * reports the miss rate and log traffic per size; a larger LLT absorbs
 * more repeated-granule logging.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Ablation: LLT size sweep (8-way)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    TablePrinter table({"LLT", "QE miss", "RT miss", "QE cyc x",
                        "RT cyc x"});
    table.printHeader(std::cout);

    double qe_base = 0, rt_base = 0;
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
        SystemConfig cfg = opts.makeConfig();
        cfg.logging.lltEntries = entries;
        cfg.logging.lltWays = std::min(entries, 8u);
        std::cerr << "  LLT=" << entries << "...\n";
        const RunResult qe = runExperiment(
            cfg, LogScheme::Proteus, WorkloadKind::Queue, opts);
        const RunResult rt = runExperiment(
            cfg, LogScheme::Proteus, WorkloadKind::RbTree, opts);
        if (qe_base == 0) {
            qe_base = static_cast<double>(qe.cycles);
            rt_base = static_cast<double>(rt.cycles);
        }
        table.printRow(
            std::cout,
            {std::to_string(entries),
             TablePrinter::fmt(100.0 * qe.lltMissRate, 1) + "%",
             TablePrinter::fmt(100.0 * rt.lltMissRate, 1) + "%",
             TablePrinter::fmt(qe.cycles / qe_base),
             TablePrinter::fmt(rt.cycles / rt_base)});
    }
    return 0;
}
