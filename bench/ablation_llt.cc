/**
 * @file
 * Ablation: LLT size (Section 4.2). Sweeps the Log Lookup Table and
 * reports the miss rate and log traffic per size; a larger LLT absorbs
 * more repeated-granule logging.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Ablation: LLT size sweep (8-way)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    const std::vector<unsigned> sizes{8u, 16u, 32u, 64u, 128u, 256u};
    std::vector<SimJob> jobs;
    for (unsigned entries : sizes) {
        SystemConfig cfg = opts.makeConfig();
        cfg.logging.lltEntries = entries;
        cfg.logging.lltWays = std::min(entries, 8u);
        jobs.push_back(SimJob{cfg, LogScheme::Proteus,
                              WorkloadKind::Queue, {},
                              "LLT=" + std::to_string(entries) + " QE"});
        jobs.push_back(SimJob{cfg, LogScheme::Proteus,
                              WorkloadKind::RbTree, {},
                              "LLT=" + std::to_string(entries) + " RT"});
    }
    const auto results = bench::runBatch(opts, jobs);

    TablePrinter table({"LLT", "QE miss", "RT miss", "QE cyc x",
                        "RT cyc x"});
    table.printHeader(std::cout);

    const double qe_base = static_cast<double>(results[0].result.cycles);
    const double rt_base = static_cast<double>(results[1].result.cycles);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const RunResult &qe = results[2 * i].result;
        const RunResult &rt = results[2 * i + 1].result;
        table.printRow(
            std::cout,
            {std::to_string(sizes[i]),
             TablePrinter::fmt(100.0 * qe.lltMissRate, 1) + "%",
             TablePrinter::fmt(100.0 * rt.lltMissRate, 1) + "%",
             TablePrinter::fmt(qe.cycles / qe_base),
             TablePrinter::fmt(rt.cycles / rt_base)});
    }
    return 0;
}
