/**
 * @file
 * Fault-injection sweep: throughput degradation and corruption
 * detection across a fault-rate x scheme x workload matrix, with a
 * crash-testing campaign composed on top of every faulty cell.
 *
 * Three fault tiers (plus the fault-free baseline) run every logging
 * scheme over two workloads. For each cell the sweep reports the
 * slowdown versus the fault-free run (ECC retries occupy real queue
 * cycles) and the media/ECC counters, then replays the same fault
 * configuration under crash injection: detected-unrecoverable losses
 * are acceptable, but the undetected-corruption count across the whole
 * matrix must be zero — the ECC detect strength used here (detect=8)
 * is chosen so no injected fault can escape detection.
 *
 * Emits BENCH_faults.json (default; --out FILE) for CI tracking.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "crashtest/crash_tester.hh"
#include "faults/fault_config.hh"
#include "sim/json_util.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

/** One named fault intensity; spec "" is the fault-free baseline. */
struct FaultTier
{
    const char *name;
    const char *spec;
};

constexpr FaultTier tiers[] = {
    {"off", ""},
    {"low", "torn=0.001,readflip=0.001,detect=8,correct=1"},
    {"mid", "torn=0.01,readflip=0.01,detect=8,correct=1"},
    {"high",
     "torn=0.05,readflip=0.05,endurance=400,stuck=2,detect=8,correct=1"},
};

/** Crash-campaign outcome of one (scheme, workload) cell. */
struct CrashCell
{
    std::uint64_t crashPoints = 0;
    std::uint64_t silentCorruption = 0;     ///< must stay 0
    std::uint64_t detectedUnrecoverable = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    // Strip sweep-only flags, leaving argv for BenchOptions::parse.
    std::string outPath = "BENCH_faults.json";
    std::vector<char *> passThrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            passThrough.push_back(argv[i]);
        }
    }
    BenchOptions opts =
        BenchOptions::parse(static_cast<int>(passThrough.size()),
                            passThrough.data());

    const std::vector<LogScheme> schemes{
        LogScheme::PMEM,      LogScheme::PMEMPCommit,
        LogScheme::PMEMNoLog, LogScheme::ATOM,
        LogScheme::Proteus,   LogScheme::ProteusNoLWR};
    const std::vector<WorkloadKind> workloads{WorkloadKind::Queue,
                                              WorkloadKind::HashMap};

    std::cout << "Fault-injection sweep: " << std::size(tiers)
              << " tiers x " << schemes.size() << " schemes x "
              << workloads.size() << " workloads\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << " fault-seed=" << opts.faults.seed << "\n";

    // Timing runs: one batch over the full matrix; each job carries its
    // tier's fault config (the batch is bit-identical at any --jobs).
    std::vector<SimJob> jobs;
    for (const FaultTier &tier : tiers) {
        for (LogScheme s : schemes) {
            for (WorkloadKind w : workloads) {
                SystemConfig cfg = opts.makeConfig();
                if (*tier.spec) {
                    cfg.faults = faults::parseFaultSpec(tier.spec,
                                                        opts.faults);
                }
                jobs.push_back(SimJob{cfg, s, w, {},
                                      std::string(tier.name) + " / " +
                                          bench::jobLabel(s, w)});
            }
        }
    }
    const auto outcomes = bench::runBatch(opts, jobs);

    // Crash campaigns: every faulty tier, all schemes x workloads,
    // byte-exact oracle checking (threads=1 by requirement).
    std::map<std::string, std::map<std::pair<std::string, std::string>,
                                   CrashCell>>
        crashCells;
    std::uint64_t undetected = 0;
    for (const FaultTier &tier : tiers) {
        if (!*tier.spec)
            continue;
        CrashTestOptions ct;
        ct.schemes = schemes;
        ct.workloads = workloads;
        ct.threads = 1;
        ct.scale = opts.scale;
        ct.seed = opts.seed;
        ct.mode = CrashMode::Stride;
        ct.autoPoints = 5;
        ct.jobs = opts.jobs;
        ct.cycleSkip = opts.cycleSkip;
        ct.useTraceCache = opts.traceCache;
        ct.faults = faults::parseFaultSpec(tier.spec, opts.faults);
        std::ostringstream progress;
        const CrashTestSummary summary = runCrashTests(ct, progress);
        for (const CrashPairResult &pair : summary.pairs) {
            CrashCell cell;
            cell.crashPoints = pair.points.size();
            cell.silentCorruption = pair.violations;
            cell.detectedUnrecoverable = pair.detectedUnrecoverable;
            crashCells[tier.name][{toString(pair.scheme),
                                   toString(pair.workload)}] = cell;
        }
        undetected += summary.violations;
        std::cout << "crashtest tier " << tier.name << ": "
                  << summary.crashPoints << " points, "
                  << summary.violations << " silent, "
                  << summary.detectedUnrecoverable
                  << " detected-unrecoverable\n";
        if (!summary.ok)
            std::cout << progress.str();
    }

    // Sum silent (ECC-missed) faults from the timing runs too: the
    // sweep's detect strength must make them impossible.
    for (const auto &outcome : outcomes) {
        if (outcome.result.faultStats.enabled)
            undetected += outcome.result.faultStats.silentFaults;
    }

    // Baseline cycles per (scheme, workload) for the slowdown column.
    std::map<std::pair<std::string, std::string>, double> baseCycles;
    std::size_t job = 0;
    for (const FaultTier &tier : tiers) {
        if (*tier.spec) {
            job += schemes.size() * workloads.size();
            continue;
        }
        for (LogScheme s : schemes) {
            for (WorkloadKind w : workloads) {
                baseCycles[{toString(s), toString(w)}] =
                    static_cast<double>(outcomes[job].result.cycles);
                ++job;
            }
        }
    }

    std::ofstream os(outPath);
    if (!os)
        fatal("cannot open --out file: ", outPath);
    os << "{\"benchmark\": \"fault_sweep\", \"scale\": " << opts.scale
       << ", \"threads\": " << opts.threads
       << ", \"seed\": " << opts.seed
       << ", \"faultSeed\": " << opts.faults.seed
       << ", \"undetectedCorruption\": " << undetected
       << ", \"rows\": [\n";

    TablePrinter table({"tier / scheme", "workload", "slowdown",
                        "detected", "retries", "silent", "crash-ok"});
    table.printHeader(std::cout);

    job = 0;
    bool firstRow = true;
    for (const FaultTier &tier : tiers) {
        for (LogScheme s : schemes) {
            for (WorkloadKind w : workloads) {
                const RunResult &r = outcomes[job].result;
                const double base =
                    baseCycles[{toString(s), toString(w)}];
                const double slowdown =
                    base > 0 ? static_cast<double>(r.cycles) / base
                             : 0.0;
                CrashCell cell;
                if (*tier.spec) {
                    cell = crashCells[tier.name][{toString(s),
                                                  toString(w)}];
                }

                if (!firstRow)
                    os << ",\n";
                firstRow = false;
                os << "  {\"tier\": " << json::quoted(tier.name)
                   << ", \"scheme\": " << json::quoted(toString(s))
                   << ", \"workload\": " << json::quoted(toString(w))
                   << ", \"faults\": " << json::quoted(tier.spec)
                   << ", \"cycles\": " << r.cycles
                   << ", \"slowdown\": " << std::fixed
                   << std::setprecision(4) << slowdown
                   << std::defaultfloat
                   << ", \"tornWrites\": " << r.faultStats.tornWrites
                   << ", \"wornWrites\": " << r.faultStats.wornWrites
                   << ", \"eccCorrected\": " << r.faultStats.eccCorrected
                   << ", \"eccDetected\": " << r.faultStats.eccDetected
                   << ", \"silentFaults\": " << r.faultStats.silentFaults
                   << ", \"readRetries\": " << r.faultStats.readRetries
                   << ", \"retriesExhausted\": "
                   << r.faultStats.retriesExhausted
                   << ", \"poisonedLines\": "
                   << r.faultStats.poisonedLines
                   << ", \"crashPoints\": " << cell.crashPoints
                   << ", \"silentCorruption\": " << cell.silentCorruption
                   << ", \"detectedUnrecoverable\": "
                   << cell.detectedUnrecoverable << "}";

                table.printRow(
                    std::cout,
                    {std::string(tier.name) + " / " + toString(s),
                     toString(w), TablePrinter::fmt(slowdown, 3),
                     std::to_string(r.faultStats.eccDetected),
                     std::to_string(r.faultStats.readRetries),
                     std::to_string(r.faultStats.silentFaults),
                     *tier.spec
                         ? std::to_string(cell.crashPoints -
                                          cell.silentCorruption) +
                               "/" + std::to_string(cell.crashPoints)
                         : "-"});
                ++job;
            }
        }
    }
    os << "\n]}\n";
    if (!os.flush())
        fatal("failed writing --out file: ", outPath);

    std::cout << "\nundetected corruption: " << undetected
              << " (must be 0) -> " << outPath << "\n";
    return undetected == 0 ? 0 : 1;
}
