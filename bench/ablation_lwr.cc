/**
 * @file
 * Ablation: log write removal (Section 4.3). Compares Proteus with and
 * without LWR on performance, NVM writes, and the disposition of every
 * log entry (dropped at the LPQ vs spilled to NVM).
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Ablation: log write removal on/off\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    const auto workloads = allPaperWorkloads();
    std::vector<SimJob> jobs;
    for (WorkloadKind w : workloads) {
        jobs.push_back(SimJob{opts.makeConfig(), LogScheme::Proteus, w,
                              {}, bench::jobLabel(LogScheme::Proteus, w)});
        jobs.push_back(SimJob{opts.makeConfig(), LogScheme::ProteusNoLWR,
                              w,
                              {},
                              bench::jobLabel(LogScheme::ProteusNoLWR,
                                              w)});
    }
    const auto results = bench::runBatch(opts, jobs);

    TablePrinter table({"benchmark", "speedup", "writes x", "dropped"});
    std::cout << "Proteus relative to Proteus+NoLWR\n";
    table.printHeader(std::cout);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunResult &lwr = results[2 * i].result;
        const RunResult &nolwr = results[2 * i + 1].result;
        table.printRow(
            std::cout,
            {toString(workloads[i]),
             TablePrinter::fmt(static_cast<double>(nolwr.cycles) /
                               lwr.cycles),
             TablePrinter::fmt(static_cast<double>(lwr.nvmWrites) /
                               nolwr.nvmWrites),
             std::to_string(lwr.logWritesDropped)});
    }
    std::cout << "\n(The paper reports LWR's performance gain as "
              << "insignificant but its endurance gain as the point: "
              << "most log writes never reach NVM.)\n";
    return 0;
}
