/**
 * @file
 * Ablation: log write removal (Section 4.3). Compares Proteus with and
 * without LWR on performance, NVM writes, and the disposition of every
 * log entry (dropped at the LPQ vs spilled to NVM).
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Ablation: log write removal on/off\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    TablePrinter table({"benchmark", "speedup", "writes x", "dropped"});
    std::cout << "Proteus relative to Proteus+NoLWR\n";
    table.printHeader(std::cout);
    for (WorkloadKind w : allPaperWorkloads()) {
        std::cerr << "  running " << toString(w) << "...\n";
        const RunResult lwr = runExperiment(
            opts.makeConfig(), LogScheme::Proteus, w, opts);
        const RunResult nolwr = runExperiment(
            opts.makeConfig(), LogScheme::ProteusNoLWR, w, opts);
        table.printRow(
            std::cout,
            {toString(w),
             TablePrinter::fmt(static_cast<double>(nolwr.cycles) /
                               lwr.cycles),
             TablePrinter::fmt(static_cast<double>(lwr.nvmWrites) /
                               nolwr.nvmWrites),
             std::to_string(lwr.logWritesDropped)});
    }
    std::cout << "\n(The paper reports LWR's performance gain as "
              << "insignificant but its endurance gain as the point: "
              << "most log writes never reach NVM.)\n";
    return 0;
}
