/**
 * @file
 * Table 4: LLT miss rate per benchmark with the 64-entry, 8-way LLT.
 *
 * Paper anchors: AT 37.2, BT 36.1, HM 39.2, RT 51.6, SS 24.5,
 * QE 22.5 (percent). Higher miss rate = more log entries per
 * transaction; the LLT absorbs half to three quarters of logging
 * traffic.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Table 4: LLT miss rate (64 entries, 8-way)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    const std::map<std::string, double> paper = {
        {"AT", 37.2}, {"BT", 36.1}, {"HM", 39.2},
        {"RT", 51.6}, {"SS", 24.5}, {"QE", 22.5}};

    const auto workloads = allPaperWorkloads();
    std::vector<SimJob> jobs;
    for (WorkloadKind w : workloads) {
        jobs.push_back(SimJob{opts.makeConfig(), LogScheme::Proteus, w,
                              {}, toString(w)});
    }
    const auto results = bench::runBatch(opts, jobs);

    TablePrinter table({"benchmark", "miss rate", "paper"});
    table.printHeader(std::cout);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunResult &r = results[i].result;
        table.printRow(
            std::cout,
            {toString(workloads[i]),
             TablePrinter::fmt(100.0 * r.lltMissRate, 1) + "%",
             TablePrinter::fmt(paper.at(toString(workloads[i])), 1) +
                 "%"});
    }
    return 0;
}
