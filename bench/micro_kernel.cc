/**
 * @file
 * Kernel micro-benchmark: wall-clock cost of Simulator::run() over
 * idle-heavy vs. busy-heavy synthetic activity traces, with
 * quiescence-driven cycle skipping on and off.
 *
 * Each scenario drives a handful of synthetic devices that alternate
 * between a busy span (ticked work) and an idle span (waiting on a
 * self-scheduled event), the same shape as cores stalled on persist
 * ordering while the memory controller waits on a completion event.
 * Results land in BENCH_kernel.json (one row per scenario x mode) so
 * the kernel's perf trajectory is tracked across PRs. The benchmark
 * also cross-checks that per-cycle accounting and device work are
 * bit-identical between the two modes and fails loudly if not.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"

using namespace proteus;

namespace {

/**
 * A device following a fixed busy/idle activity trace: tick busySpan
 * cycles of work, then sleep idleSpan cycles on a self-scheduled wake
 * event, repeat. observedCycles counts every cycle the device lived
 * through (ticked or skipped) and must equal sim.now() at the end in
 * both modes — the micro-scale version of the invisibility invariant.
 */
class SyntheticDevice : public Ticked
{
  public:
    SyntheticDevice(Simulator &sim, const std::string &name,
                    Tick busySpan, Tick idleSpan, Tick startDelay)
        : _sim(sim), _name(name), _busySpan(busySpan),
          _idleSpan(idleSpan)
    {
        if (startDelay == 0)
            _busyLeft = _busySpan;
        else
            _sim.schedule(startDelay, [this]() { _busyLeft = _busySpan; });
    }

    void
    tick(Tick) override
    {
        ++observedCycles;
        if (_busyLeft == 0)
            return;
        ++work;
        if (--_busyLeft == 0)
            _sim.schedule(_idleSpan, [this]() { _busyLeft = _busySpan; });
    }

    Tick
    nextWake(Tick now) override
    {
        // Busy: can't skip. Idle: progress requires the wake event, and
        // the kernel never skips past a scheduled event, so report
        // "never" rather than predicting the event tick ourselves.
        return _busyLeft > 0 ? now : maxTick;
    }

    void
    accountSkipped(Tick from, Tick to) override
    {
        observedCycles += to - from;
    }

    const std::string &componentName() const override { return _name; }

    std::uint64_t observedCycles = 0;
    std::uint64_t work = 0;

  private:
    Simulator &_sim;
    std::string _name;
    Tick _busySpan;
    Tick _idleSpan;
    Tick _busyLeft = 0;
};

struct Scenario
{
    std::string name;
    Tick busySpan;
    Tick idleSpan;
};

struct Row
{
    std::string scenario;
    bool cycleSkip;
    double wallMs;
    std::uint64_t simCycles;
    std::uint64_t kernelSteps;
    std::uint64_t skippedCycles;
    std::uint64_t work;
};

Row
runScenario(const Scenario &sc, bool cycleSkip, Tick cycles,
            unsigned devices)
{
    Simulator sim;
    sim.setCycleSkip(cycleSkip);
    std::vector<std::unique_ptr<SyntheticDevice>> devs;
    for (unsigned i = 0; i < devices; ++i) {
        // Stagger starts so devices are not lockstep-aligned; global
        // idle then requires genuinely overlapping idle spans.
        devs.push_back(std::make_unique<SyntheticDevice>(
            sim, sc.name + ".dev" + std::to_string(i), sc.busySpan,
            sc.idleSpan, i * (sc.busySpan + 1)));
        sim.addTicked(devs.back().get());
    }

    const auto start = std::chrono::steady_clock::now();
    sim.run(cycles);
    const auto stop = std::chrono::steady_clock::now();

    Row row;
    row.scenario = sc.name;
    row.cycleSkip = cycleSkip;
    row.wallMs = std::chrono::duration<double, std::milli>(stop - start)
                     .count();
    row.simCycles = sim.now();
    row.kernelSteps = sim.kernelSteps();
    row.skippedCycles = sim.skippedCycles();
    row.work = 0;
    for (const auto &d : devs) {
        row.work += d->work;
        if (d->observedCycles != sim.now()) {
            std::cerr << "FAIL: " << d->componentName() << " observed "
                      << d->observedCycles << " cycles, kernel ran to "
                      << sim.now() << "\n";
            std::exit(1);
        }
    }
    return row;
}

void
writeJson(const std::string &path, const std::vector<Row> &rows)
{
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "  {\"scenario\": \"" << r.scenario << "\", "
            << "\"cycleSkip\": " << (r.cycleSkip ? "true" : "false")
            << ", \"wallMs\": " << std::fixed << std::setprecision(3)
            << r.wallMs << ", \"simCycles\": " << r.simCycles
            << ", \"kernelSteps\": " << r.kernelSteps
            << ", \"skippedCycles\": " << r.skippedCycles << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Tick cycles = 20'000'000;
    unsigned devices = 4;
    std::string jsonPath = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--cycles") {
            cycles = std::stoull(value());
        } else if (arg == "--devices") {
            devices = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--json") {
            jsonPath = value();
        } else {
            std::cerr << "usage: micro_kernel [--cycles N] [--devices N]"
                      << " [--json FILE]\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    // Idle-heavy mirrors a persist-ordering stall (short bursts between
    // long event-bound waits); busy-heavy keeps devices ticking almost
    // every cycle so skipping can only add overhead.
    const std::vector<Scenario> scenarios{
        {"idle_heavy", /*busySpan=*/4, /*idleSpan=*/1000},
        {"busy_heavy", /*busySpan=*/1000, /*idleSpan=*/4},
    };

    std::vector<Row> rows;
    std::cout << "kernel micro-benchmark: " << cycles << " cycles, "
              << devices << " devices\n\n"
              << std::left << std::setw(12) << "scenario" << std::setw(10)
              << "skip" << std::setw(12) << "wall ms" << std::setw(14)
              << "kernelSteps" << std::setw(15) << "skippedCycles"
              << "speedup\n";
    for (const Scenario &sc : scenarios) {
        const Row off = runScenario(sc, false, cycles, devices);
        const Row on = runScenario(sc, true, cycles, devices);
        if (on.work != off.work || on.simCycles != off.simCycles) {
            std::cerr << "FAIL: " << sc.name
                      << " diverged between modes (work " << on.work
                      << " vs " << off.work << ")\n";
            return 1;
        }
        for (const Row &r : {off, on}) {
            std::cout << std::left << std::setw(12) << r.scenario
                      << std::setw(10) << (r.cycleSkip ? "on" : "off")
                      << std::setw(12) << std::fixed
                      << std::setprecision(1) << r.wallMs << std::setw(14)
                      << r.kernelSteps << std::setw(15) << r.skippedCycles
                      << std::setprecision(2)
                      << (r.cycleSkip ? off.wallMs / r.wallMs : 1.0)
                      << "x\n";
            rows.push_back(r);
        }
    }
    writeJson(jsonPath, rows);
    std::cout << "\nwrote " << jsonPath << "\n";
    return 0;
}
