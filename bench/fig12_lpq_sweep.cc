/**
 * @file
 * Figure 12: Proteus speedup over PMEM while varying the LPQ size
 * (with the LogQ fixed at the chosen 16 entries).
 *
 * Paper anchor: performance is flat once the LPQ is large enough for
 * the transaction footprint and drops rapidly below that; the paper
 * selects 256 entries.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 12: speedup vs LPQ size (LogQ=16, baseline "
              << "PMEM)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto workloads = allPaperWorkloads();
    const std::vector<unsigned> lpqs{8u, 16u, 32u, 64u, 128u, 256u,
                                     512u};

    // One batch: per-workload PMEM baselines, then the whole sweep.
    std::vector<SimJob> jobs;
    for (WorkloadKind w : workloads) {
        jobs.push_back(SimJob{opts.makeConfig(), LogScheme::PMEM, w, {},
                              std::string("baseline PMEM / ") +
                                  toString(w)});
    }
    for (unsigned lpq : lpqs) {
        for (WorkloadKind w : workloads) {
            SystemConfig cfg = opts.makeConfig();
            cfg.logging.logQEntries = 16;
            cfg.memCtrl.lpqEntries = lpq;
            jobs.push_back(SimJob{cfg, LogScheme::Proteus, w, {},
                                  "LPQ=" + std::to_string(lpq) + " / " +
                                      toString(w)});
        }
    }
    const auto results = bench::runBatch(opts, jobs);

    std::vector<std::string> cols{"LPQ"};
    for (WorkloadKind w : workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");
    TablePrinter table(cols);
    std::cout << "\nProteus speedup over PMEM (paper Figure 12)\n";
    table.printHeader(std::cout);

    for (std::size_t q = 0; q < lpqs.size(); ++q) {
        std::vector<std::string> cells{std::to_string(lpqs[q])};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double base = static_cast<double>(
                results[i].result.cycles);
            const RunResult &r =
                results[(q + 1) * workloads.size() + i].result;
            const double s = base / r.cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
    return 0;
}
