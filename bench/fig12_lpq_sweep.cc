/**
 * @file
 * Figure 12: Proteus speedup over PMEM while varying the LPQ size
 * (with the LogQ fixed at the chosen 16 entries).
 *
 * Paper anchor: performance is flat once the LPQ is large enough for
 * the transaction footprint and drops rapidly below that; the paper
 * selects 256 entries.
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cout << "Figure 12: speedup vs LPQ size (LogQ=16, baseline "
              << "PMEM)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto workloads = allPaperWorkloads();
    std::vector<double> base;
    for (WorkloadKind w : workloads) {
        std::cerr << "  baseline PMEM / " << toString(w) << "...\n";
        base.push_back(static_cast<double>(
            runExperiment(opts.makeConfig(), LogScheme::PMEM, w, opts)
                .cycles));
    }

    std::vector<std::string> cols{"LPQ"};
    for (WorkloadKind w : workloads)
        cols.push_back(toString(w));
    cols.push_back("geomean");
    TablePrinter table(cols);
    std::cout << "\nProteus speedup over PMEM (paper Figure 12)\n";
    table.printHeader(std::cout);

    for (unsigned lpq : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
        std::vector<std::string> cells{std::to_string(lpq)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::cerr << "  LPQ=" << lpq << " / "
                      << toString(workloads[i]) << "...\n";
            SystemConfig cfg = opts.makeConfig();
            cfg.logging.logQEntries = 16;
            cfg.memCtrl.lpqEntries = lpq;
            const RunResult r = runExperiment(
                cfg, LogScheme::Proteus, workloads[i], opts);
            const double s = base[i] / r.cycles;
            speedups.push_back(s);
            cells.push_back(TablePrinter::fmt(s));
        }
        cells.push_back(TablePrinter::fmt(geomean(speedups)));
        table.printRow(std::cout, cells);
    }
    return 0;
}
