/**
 * @file
 * Figure 10: speedup on DRAM timing (battery-backed NVDIMM study),
 * baseline PMEM software logging.
 *
 * Paper anchors: geomeans 1.31 (ATOM), 1.47 (Proteus), 1.52 (ideal).
 */

#include "bench_util.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    opts.dram = true;
    std::cout << "Figure 10: speedup on DRAM (NVDIMM, Section 7.2)\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n";

    const auto matrix = bench::runMatrix(
        opts,
        {LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::ATOM,
         LogScheme::Proteus, LogScheme::PMEMNoLog},
        allPaperWorkloads());

    bench::printSpeedups(matrix, LogScheme::PMEM,
                         "Speedup over PMEM on DRAM "
                         "(paper Figure 10)");
    return 0;
}
