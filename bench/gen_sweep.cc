/**
 * @file
 * Generated-workload sweep: skew (Zipfian theta) x transaction size
 * (keys per transaction) x every logging scheme, over one GenSpec
 * base. This is the missing axis of the paper's evaluation — Table 2
 * fixes both the contention profile and the transaction footprint per
 * workload; here each one is a knob.
 *
 *   gen_sweep [--thetas 0,0.5,0.9,0.99] [--tx-keys 1,4,16]
 *             [--wl-spec k=v,...] [--jobs N] [--json FILE]
 *             [--tx-stats FILE] ...
 *
 * Emits BENCH_gen.json (one row per scheme x combo, the workload field
 * carrying the combo) unless --json names another file. Results are
 * bit-identical at any --jobs level.
 */

#include <sstream>

#include "bench_util.hh"
#include "sim/logging.hh"
#include "wlgen/spec.hh"

using namespace proteus;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Sweep axes; pulled out of argv before BenchOptions::parse. */
struct SweepAxes
{
    std::vector<std::string> thetas{"0", "0.5", "0.9", "0.99"};
    std::vector<std::string> txKeys{"1", "4", "16"};
};

SweepAxes
extractAxes(std::vector<char *> &args)
{
    SweepAxes axes;
    for (std::size_t i = 1; i < args.size();) {
        const std::string arg = args[i];
        if ((arg == "--thetas" || arg == "--tx-keys") &&
            i + 1 < args.size()) {
            auto &dst = arg == "--thetas" ? axes.thetas : axes.txKeys;
            dst = splitList(args[i + 1]);
            if (dst.empty())
                fatal(arg, " needs a non-empty comma list");
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i + 2));
        } else {
            ++i;
        }
    }
    return axes;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    const SweepAxes axes = extractAxes(args);
    BenchOptions opts = BenchOptions::parse(
        static_cast<int>(args.size()), args.data());
    if (opts.jsonPath.empty())
        opts.jsonPath = "BENCH_gen.json";

    const wlgen::GenSpec base = opts.genSpec();
    const std::vector<LogScheme> schemes{
        LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
        LogScheme::ATOM, LogScheme::Proteus, LogScheme::ProteusNoLWR};

    // One combo per (theta, keys-per-tx); each parses on top of the
    // base spec so --wl-spec still controls mix/value size/key space.
    struct Combo
    {
        std::string name;       ///< e.g. "gen(t0.9,k4)"
        wlgen::GenSpec spec;
    };
    std::vector<Combo> combos;
    for (const std::string &theta : axes.thetas) {
        for (const std::string &keys : axes.txKeys) {
            const std::string delta =
                "dist=zipf,theta=" + theta + ",keys=" + keys;
            combos.push_back(
                Combo{"gen(t" + theta + ",k" + keys + ")",
                      wlgen::GenSpec::parse(delta, base)});
        }
    }

    std::cout << "generated-workload sweep: " << axes.thetas.size()
              << " thetas x " << axes.txKeys.size() << " tx sizes x "
              << schemes.size() << " schemes\n"
              << "base spec: " << base.canonical() << "\n"
              << "scale=" << opts.scale << " threads=" << opts.threads
              << "\n\n";

    std::vector<SimJob> jobs;
    jobs.reserve(combos.size() * schemes.size());
    for (const Combo &c : combos) {
        WorkloadExtras extras;
        extras.gen = c.spec;
        for (LogScheme s : schemes)
            jobs.push_back(SimJob{opts.makeConfig(), s,
                                  WorkloadKind::Generated, extras,
                                  c.name + " " + toString(s)});
    }

    // Run directly (not bench::runBatch): the JSON and tx-stats rows
    // must carry the combo name, not the bare "GEN" workload label.
    ParallelRunner runner(opts.jobs);
    ProgressReporter progress(std::cerr);
    const auto results = runner.run(jobs, opts, &progress);

    std::vector<JsonResultRow> rows;
    std::vector<obs::TxStatsRow> tx_rows;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Combo &c = combos[i / schemes.size()];
        rows.push_back(JsonResultRow{toString(jobs[i].scheme), c.name,
                                     results[i].result,
                                     results[i].wallMs});
        if (!opts.txStats.empty()) {
            obs::TxStatsRow row = makeTxStatsRow(
                opts, jobs[i].scheme, jobs[i].kind, results[i].result);
            row.workload = c.name;
            tx_rows.push_back(row);
        }
    }
    writeJsonResults(opts.jsonPath, rows);
    if (!opts.txStats.empty())
        obs::writeTxStatsFile(opts.txStats, tx_rows);

    std::vector<std::string> cols{"combo"};
    for (LogScheme s : schemes)
        cols.push_back(toString(s));
    TablePrinter cycles(cols);
    std::cout << "cycles per (combo, scheme)\n";
    cycles.printHeader(std::cout);
    bool all_finished = true;
    for (std::size_t c = 0; c < combos.size(); ++c) {
        std::vector<std::string> cells{combos[c].name};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SimJobResult &r = results[c * schemes.size() + s];
            cells.push_back(std::to_string(r.result.cycles));
            all_finished = all_finished && r.result.finished;
        }
        cycles.printRow(std::cout, cells);
    }

    TablePrinter speedup(cols);
    std::cout << "\nspeedup over PMEM\n";
    speedup.printHeader(std::cout);
    for (std::size_t c = 0; c < combos.size(); ++c) {
        const double pmem = static_cast<double>(
            results[c * schemes.size()].result.cycles);
        std::vector<std::string> cells{combos[c].name};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SimJobResult &r = results[c * schemes.size() + s];
            cells.push_back(TablePrinter::fmt(
                pmem / static_cast<double>(r.result.cycles)));
        }
        speedup.printRow(std::cout, cells);
    }
    std::cout << "\nwrote " << opts.jsonPath << "\n";
    return all_finished ? 0 : 1;
}
