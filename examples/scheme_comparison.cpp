/**
 * @file
 * Compare every logging scheme on one workload: cycles, speedup over
 * software logging, NVM writes, and front-end stalls — a one-workload
 * miniature of the paper's evaluation section.
 *
 * Usage: scheme_comparison [--scale N] [--threads N] [workload]
 */

#include <iostream>

#include "harness/experiments.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    // An optional trailing positional argument picks the workload.
    WorkloadKind kind = WorkloadKind::RbTree;
    if (argc > 1 && argv[argc - 1][0] != '-') {
        kind = parseWorkload(argv[argc - 1]);
        --argc;
    }
    BenchOptions opts = BenchOptions::parse(argc, argv);

    std::cout << "Comparing logging schemes on " << toString(kind)
              << " (scale=" << opts.scale
              << ", threads=" << opts.threads << ")\n\n";

    TablePrinter table({"scheme", "cycles", "speedup", "NVM writes",
                        "fe stalls", "txs"});
    table.printHeader(std::cout);

    double base = 0;
    for (LogScheme scheme :
         {LogScheme::PMEM, LogScheme::PMEMPCommit, LogScheme::ATOM,
          LogScheme::ProteusNoLWR, LogScheme::Proteus,
          LogScheme::PMEMNoLog}) {
        const RunResult r =
            runExperiment(opts.makeConfig(), scheme, kind, opts);
        if (scheme == LogScheme::PMEM)
            base = static_cast<double>(r.cycles);
        table.printRow(std::cout,
                       {toString(scheme), std::to_string(r.cycles),
                        TablePrinter::fmt(base / r.cycles),
                        std::to_string(r.nvmWrites),
                        std::to_string(r.frontendStallCycles),
                        std::to_string(r.committedTxs)});
    }
    std::cout << "\nExpected ordering (paper Figure 6): PMEM+nolog >= "
              << "Proteus > ATOM/PMEM > PMEM+pcommit.\n";
    return 0;
}
