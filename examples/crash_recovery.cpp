/**
 * @file
 * Crash-recovery demo: run the hashmap workload under Proteus, pull
 * the plug partway through, and recover the NVM image with the undo
 * log. Shows that the recovered state is exactly the committed prefix
 * of transactions.
 *
 * Usage: crash_recovery [--scale N] [--seed N]
 */

#include <iostream>

#include "harness/experiments.hh"
#include "harness/system.hh"
#include "recovery/recovery.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = LogScheme::Proteus;

    WorkloadParams params;
    params.threads = 1;     // single thread: exact prefix comparison
    params.scale = opts.scale;
    params.seed = opts.seed;

    // First, learn how long the full run takes.
    std::cout << "Measuring the full run...\n";
    FullSystem full(cfg, WorkloadKind::HashMap, params);
    const RunResult complete = full.run();
    std::cout << "  " << complete.committedTxs << " transactions in "
              << complete.cycles << " cycles\n";

    // Now crash at 40% of it.
    const Tick crash_at = complete.cycles * 2 / 5;
    std::cout << "Re-running and crashing at cycle " << crash_at
              << "...\n";
    FullSystem sys(cfg, WorkloadKind::HashMap, params);
    sys.runFor(crash_at);

    // The crash image: NVM + whatever the battery drains (ADR).
    MemoryImage image = sys.crashImage();
    const std::uint64_t committed = sys.core(0).committedTxs().size();
    std::cout << "  committed transactions at crash: " << committed
              << "\n";

    // Recovery: parse the per-thread log area, undo the in-flight tx.
    TraceBuilder &tb = sys.workload().builder(0);
    const RecoveryResult rec = Recovery::recoverProteus(
        image, tb.logAreaStart(), tb.logAreaEnd());
    std::cout << "  recovery: "
              << (rec.didUndo ? "rolled back one in-flight transaction"
                              : "no transaction was in flight")
              << " (" << rec.entriesApplied << " undo entries applied, "
              << rec.entriesScanned << " scanned)\n";

    // Validate: structural invariants + exact committed-prefix replay.
    const std::string err = sys.workload().checkInvariants(image);
    std::cout << "  invariants: " << (err.empty() ? "OK" : err) << "\n";

    PersistentHeap replay_heap;
    auto replay = makeWorkload(WorkloadKind::HashMap, replay_heap,
                               LogScheme::Proteus, params);
    replay->setup();
    replay->replayOps(committed);
    const bool exact =
        sys.workload().serialize(image) ==
        replay->serialize(replay_heap.volatileImage());
    std::cout << "  recovered state == committed prefix: "
              << (exact ? "YES" : "NO") << "\n";
    return err.empty() && exact ? 0 : 1;
}
