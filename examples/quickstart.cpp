/**
 * @file
 * Quickstart: build one simulated machine, run the queue workload
 * under Proteus, and print headline statistics.
 *
 * Usage: quickstart [--scale N] [--threads N] [--set key=value] ...
 */

#include <iostream>

#include "harness/experiments.hh"
#include "harness/system.hh"
#include "sim/logging.hh"

using namespace proteus;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = LogScheme::Proteus;

    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.seed = opts.seed;

    std::cout << "Building a " << params.threads
              << "-core system running the QE workload under "
              << toString(cfg.logging.scheme) << "...\n";

    FullSystem system(cfg, WorkloadKind::Queue, params);
    const RunResult r = system.run();

    std::cout << "finished:            "
              << (r.finished ? "yes" : "NO (cycle limit)") << "\n"
              << "cycles:              " << r.cycles << "\n"
              << "micro-ops retired:   " << r.retiredOps << "\n"
              << "transactions:        " << r.committedTxs << "\n"
              << "NVM writes:          " << r.nvmWrites << "\n"
              << "NVM reads:           " << r.nvmReads << "\n"
              << "log writes dropped:  " << r.logWritesDropped << "\n"
              << "LLT miss rate:       "
              << TablePrinter::fmt(100.0 * r.lltMissRate, 1) << "%\n";

    // The functional model lets us verify the data structures really
    // were maintained: check the queues in the final volatile image.
    const std::string err = system.workload().checkInvariants(
        system.heap().volatileImage());
    std::cout << "invariants:          "
              << (err.empty() ? "OK" : err) << "\n";
    return err.empty() && r.finished ? 0 : 1;
}
