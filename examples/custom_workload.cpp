/**
 * @file
 * Building a custom persistent workload against the public API: a
 * durable bank-transfer ledger written directly with the TraceBuilder,
 * then executed on the timing simulator under Proteus, crashed, and
 * recovered.
 *
 * This is the template to copy when adding your own workload without
 * subclassing proteus::Workload.
 */

#include <iostream>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/lock_manager.hh"
#include "recovery/recovery.hh"
#include "sim/random.hh"
#include "trace/trace_builder.hh"

using namespace proteus;

namespace {

constexpr unsigned numAccounts = 64;
constexpr std::uint64_t initialBalance = 1000;

/** A durable transfer: debit one account, credit another. */
void
transfer(TraceBuilder &tb, Addr accounts, unsigned from, unsigned to,
         std::uint64_t amount)
{
    tb.beginTx();
    const Value a = tb.load(accounts + from * 8, 8);
    const Value b = tb.load(accounts + to * 8, 8);
    // Software schemes would declare the undo set here; Proteus's
    // hardware logs dynamically, so declareLogged is a no-op for it
    // but keeps this function scheme-portable.
    tb.declareLogged(accounts + from * 8, 8);
    tb.declareLogged(accounts + to * 8, 8);
    tb.store(accounts + from * 8, 8, a.v - amount, a);
    tb.store(accounts + to * 8, 8, b.v + amount, b);
    tb.endTx();
}

std::uint64_t
totalBalance(const MemoryImage &image, Addr accounts)
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < numAccounts; ++i)
        sum += image.read64(accounts + i * 8);
    return sum;
}

} // namespace

int
main()
{
    // 1. Functional setup: allocate the ledger in the persistent heap.
    PersistentHeap heap;
    TraceBuilder tb(heap, LogScheme::Proteus, /*thread=*/0);
    const Addr log_area = heap.allocLogArea(1 << 20);
    tb.setLogArea(log_area, log_area + (1 << 20));

    const Addr accounts = heap.alloc(numAccounts * 8, blockSize);
    for (unsigned i = 0; i < numAccounts; ++i)
        heap.write<std::uint64_t>(accounts + i * 8, initialBalance);
    heap.syncNvmToVolatile();   // fast-forward: initial state durable

    // 2. Record 200 random transfers as a micro-op trace.
    Random rng(42);
    tb.setRecording(true);
    for (int i = 0; i < 200; ++i) {
        const auto from =
            static_cast<unsigned>(rng.nextBelow(numAccounts));
        auto to = static_cast<unsigned>(rng.nextBelow(numAccounts));
        if (to == from)
            to = (to + 1) % numAccounts;
        transfer(tb, accounts, from, to, 1 + rng.nextBelow(50));
    }
    tb.setRecording(false);

    // 3. Wire a single-core timing system and run halfway.
    SystemConfig cfg = baselineConfig();
    cfg.cores = 1;
    cfg.logging.scheme = LogScheme::Proteus;
    Simulator sim;
    MemCtrl mc(sim, cfg, heap.nvmImage());
    CacheHierarchy caches(sim, cfg, mc, heap.nvmImage());
    LockManager locks(sim);
    const Trace trace = tb.takeTrace();
    Core core(sim, cfg, 0, trace, caches, mc, locks);
    core.bindLogArea(tb.logAreaStart(), tb.logAreaEnd());
    sim.addTicked(&mc);
    sim.addTicked(&core);

    sim.runUntil([&]() { return core.committedTxs().size() >= 100; },
                 50'000'000);
    std::cout << "crashing after "
              << core.committedTxs().size() << " committed transfers "
              << "(cycle " << sim.now() << ")\n";

    // 4. Crash: keep the persistency domain, recover, audit the books.
    MemoryImage image = heap.nvmImage();
    mc.applyBatteryDrain(image);
    const RecoveryResult rec = Recovery::recoverProteus(
        image, tb.logAreaStart(), tb.logAreaEnd());
    std::cout << "recovery "
              << (rec.didUndo ? "rolled back an in-flight transfer"
                              : "found no in-flight transfer")
              << "\n";

    const std::uint64_t total = totalBalance(image, accounts);
    std::cout << "total balance after recovery: " << total
              << " (expected " << numAccounts * initialBalance
              << ")\n";
    const bool ok = total == numAccounts * initialBalance;
    std::cout << (ok ? "ledger is consistent: no money created or "
                       "destroyed by the crash\n"
                     : "LEDGER CORRUPT\n");
    return ok ? 0 : 1;
}
