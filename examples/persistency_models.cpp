/**
 * @file
 * Persistency-model demo (Section 2.1): the same three stores under
 * strict persistency (clwb + sfence after every store) and epoch
 * persistency (one barrier per epoch), built directly as micro-op
 * traces. Shows what the PMEM primitives cost the pipeline and why
 * write coalescing within an epoch matters — the context that makes
 * durable transactions (and Proteus) attractive.
 */

#include <iostream>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/lock_manager.hh"
#include "heap/persistent_heap.hh"
#include "harness/experiments.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

constexpr Addr base = PersistentHeap::persistentBase;

MicroOp
store(Addr a, std::uint64_t v)
{
    MicroOp m;
    m.op = Op::Store;
    m.addr = a;
    m.size = 8;
    m.data = v;
    m.persistent = true;
    return m;
}

MicroOp
simple(Op op, Addr a = invalidAddr)
{
    MicroOp m;
    m.op = op;
    m.addr = a;
    return m;
}

/** Run @p trace on a fresh single-core machine; @return cycles. */
Tick
run(const Trace &trace, std::uint64_t *nvm_writes = nullptr)
{
    SystemConfig cfg = baselineConfig();
    cfg.cores = 1;
    cfg.logging.scheme = LogScheme::PMEMNoLog;
    Simulator sim;
    MemoryImage nvm;
    MemCtrl mc(sim, cfg, nvm);
    CacheHierarchy caches(sim, cfg, mc, nvm);
    LockManager locks(sim);
    Core core(sim, cfg, 0, trace, caches, mc, locks);
    sim.addTicked(&mc);
    sim.addTicked(&core);
    if (!sim.runUntil([&]() { return core.done(); }, 10'000'000))
        fatal("trace did not drain");
    if (nvm_writes) {
        sim.runUntil([&]() { return mc.empty(); }, 10'000'000);
        *nvm_writes = mc.nvmWrites();
    }
    return sim.now();
}

} // namespace

int
main()
{
    // The paper's Section 2.1 listing: X and Y share a cache block,
    // Z lives in the next one. 100 repetitions of the 3-store pattern.
    constexpr int reps = 100;

    // Strict persistency: st X; clwb; sfence; st Y; clwb; sfence; st Z.
    Trace strict;
    for (int i = 0; i < reps; ++i) {
        strict.push(store(base + 0, i));
        strict.push(simple(Op::ClWb, base + 0));
        strict.push(simple(Op::SFence));
        strict.push(store(base + 8, i));
        strict.push(simple(Op::ClWb, base + 8));
        strict.push(simple(Op::SFence));
        strict.push(store(base + 64, i));
        strict.push(simple(Op::ClWb, base + 64));
        strict.push(simple(Op::SFence));
    }

    // Epoch persistency: {st X; st Y} | barrier | {st Z} | barrier.
    Trace epoch;
    for (int i = 0; i < reps; ++i) {
        epoch.push(store(base + 0, i));
        epoch.push(store(base + 8, i));
        epoch.push(simple(Op::ClWb, base + 0));
        epoch.push(simple(Op::SFence));
        epoch.push(store(base + 64, i));
        epoch.push(simple(Op::ClWb, base + 64));
        epoch.push(simple(Op::SFence));
    }

    std::uint64_t strict_writes = 0, epoch_writes = 0;
    const Tick strict_cycles = run(strict, &strict_writes);
    const Tick epoch_cycles = run(epoch, &epoch_writes);

    std::cout << "Section 2.1: ordering three persistent stores, x"
              << reps << "\n\n"
              << "strict persistency: " << strict_cycles
              << " cycles, " << strict_writes << " NVM writes\n"
              << "epoch persistency:  " << epoch_cycles << " cycles, "
              << epoch_writes << " NVM writes\n\n"
              << "epoch persistency is "
              << TablePrinter::fmt(
                     static_cast<double>(strict_cycles) / epoch_cycles)
              << "x faster: stores within an epoch coalesce (X and Y "
              << "share a block)\nand only the barrier waits. Durable "
              << "transactions relax ordering further --\nthat is the "
              << "opportunity Proteus's hardware logging exploits.\n";
    return 0;
}
