/**
 * @file
 * A gshare branch predictor: global history XOR static PC indexing a
 * table of 2-bit saturating counters. Mispredictions stall fetch until
 * the branch resolves at execute (trace-driven: no wrong-path fetch).
 */

#ifndef PROTEUS_CPU_BRANCH_PREDICTOR_HH
#define PROTEUS_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace proteus {

/** gshare with 2-bit counters. */
class BranchPredictor
{
  public:
    BranchPredictor(unsigned index_bits, stats::StatRegistry &stats,
                    const std::string &name);

    /** Predict the direction of the branch at @p static_pc. */
    bool predict(std::uint32_t static_pc) const;

    /** Update counters and history with the resolved outcome. */
    void update(std::uint32_t static_pc, bool taken, bool predicted);

    double accuracy() const;

  private:
    std::size_t index(std::uint32_t static_pc) const;

    std::vector<std::uint8_t> _counters;
    std::uint64_t _history = 0;
    std::uint64_t _historyMask;

    stats::Scalar _predictions;
    stats::Scalar _mispredictions;
};

} // namespace proteus

#endif // PROTEUS_CPU_BRANCH_PREDICTOR_HH
