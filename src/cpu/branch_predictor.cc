#include "branch_predictor.hh"

#include "sim/logging.hh"

namespace proteus {

namespace {

std::size_t
checkedTableSize(unsigned index_bits)
{
    if (index_bits == 0 || index_bits > 24)
        fatal("BranchPredictor: index bits must be in [1, 24]");
    return std::size_t{1} << index_bits;
}

} // namespace

BranchPredictor::BranchPredictor(unsigned index_bits,
                                 stats::StatRegistry &stats,
                                 const std::string &name)
    : _counters(checkedTableSize(index_bits), 1),
      _historyMask((std::size_t{1} << index_bits) - 1),
      _predictions(stats, name + ".predictions", "branches predicted"),
      _mispredictions(stats, name + ".mispredictions",
                      "branches mispredicted")
{
}

std::size_t
BranchPredictor::index(std::uint32_t static_pc) const
{
    return (static_pc ^ _history) & _historyMask;
}

bool
BranchPredictor::predict(std::uint32_t static_pc) const
{
    return _counters[index(static_pc)] >= 2;
}

void
BranchPredictor::update(std::uint32_t static_pc, bool taken,
                        bool predicted)
{
    ++_predictions;
    if (taken != predicted)
        ++_mispredictions;

    std::uint8_t &ctr = _counters[index(static_pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    _history = ((_history << 1) | (taken ? 1 : 0)) & _historyMask;
}

double
BranchPredictor::accuracy() const
{
    const double total = _predictions.value();
    return total > 0 ? 1.0 - _mispredictions.value() / total : 1.0;
}

} // namespace proteus
