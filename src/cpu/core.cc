#include "core.hh"

#include <algorithm>
#include <memory>

#include "heap/persistent_heap.hh"
#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace proteus {

const char *
toString(CommitBucket bucket)
{
    switch (bucket) {
      case CommitBucket::Base:            return "base";
      case CommitBucket::RobFull:         return "rob-full";
      case CommitBucket::IqLsqFull:       return "iq-lsq-full";
      case CommitBucket::BranchRedirect:  return "branch-redirect";
      case CommitBucket::PersistStall:    return "persist-stall";
      case CommitBucket::WpqBackpressure: return "wpq-backpressure";
      case CommitBucket::LockWait:        return "lock-wait";
    }
    return "unknown";
}

namespace {

/** One-way latency from the core to the memory controller used by the
 *  ATOM posted/source log path. */
constexpr Tick atomLogOneWay = 30;
/** Retry interval when the MC rejects an ATOM log entry. */
constexpr Tick atomLogRetry = 4;
/** Store-to-load forwarding latency. */
constexpr Tick forwardLatency = 3;

} // namespace

Core::Core(Simulator &sim, const SystemConfig &cfg, CoreId id,
           const Trace &trace, CacheHierarchy &caches, MemCtrl &mc,
           LockManager &locks)
    : _sim(sim), _cfg(cfg), _id(id),
      _name("core" + std::to_string(id)),
      _trace(trace), _caches(caches), _mc(mc), _locks(locks),
      _scheme(cfg.logging.scheme),
      _isHwScheme(!isSoftwareScheme(cfg.logging.scheme)),
      _isProteus(cfg.logging.scheme == LogScheme::Proteus ||
                 cfg.logging.scheme == LogScheme::ProteusNoLWR),
      _predictor(cfg.cpu.branchPredictorBits, sim.statsRegistry(),
                 _name + ".bp"),
      _logQ(cfg.logging.logQEntries, sim.statsRegistry(),
            _name + ".logq"),
      _llt(cfg.logging.lltEntries, cfg.logging.lltWays,
           sim.statsRegistry(), _name + ".llt"),
      _retired(sim.statsRegistry(), _name + ".retired",
               "micro-ops retired"),
      _cycles(sim.statsRegistry(), _name + ".cycles", "cycles ticked"),
      _frontendStalls(sim.statsRegistry(), _name + ".frontendStalls",
                      "cycles dispatch was blocked on resources"),
      _frontendStallRob(sim.statsRegistry(), _name + ".feStallRob",
                        "dispatch stalls: ROB full"),
      _frontendStallRegs(sim.statsRegistry(), _name + ".feStallRegs",
                         "dispatch stalls: no physical registers"),
      _frontendStallLsq(sim.statsRegistry(), _name + ".feStallLsq",
                        "dispatch stalls: LQ/SQ full"),
      _frontendStallLogHw(sim.statsRegistry(), _name + ".feStallLogHw",
                          "dispatch stalls: LogQ/LR unavailable"),
      _retireStallFence(sim.statsRegistry(), _name + ".retStallFence",
                        "retire stalls: fence waiting for persists"),
      _retireStallAtom(sim.statsRegistry(), _name + ".retStallAtom",
                       "retire stalls: ATOM store waiting for log ack"),
      _retireStallTxEnd(sim.statsRegistry(), _name + ".retStallTxEnd",
                        "retire stalls: tx-end waiting for durability"),
      _sbOrderingStalls(sim.statsRegistry(), _name + ".sbOrderStalls",
                        "store buffer stalls on pending log flushes"),
      _committedTxStat(sim.statsRegistry(), _name + ".committedTxs",
                       "durable transactions committed"),
      _cpiBase(sim.statsRegistry(), _name + ".cpi.base",
               "commit slots: retiring, fill, or execution latency"),
      _cpiRobFull(sim.statsRegistry(), _name + ".cpi.robFull",
                  "commit slots: window full behind the ROB head"),
      _cpiIqLsqFull(sim.statsRegistry(), _name + ".cpi.iqLsqFull",
                    "commit slots: IQ/LSQ/registers starved dispatch"),
      _cpiBranchRedirect(sim.statsRegistry(),
                         _name + ".cpi.branchRedirect",
                         "commit slots: ROB empty on a mispredict"),
      _cpiPersistStall(sim.statsRegistry(), _name + ".cpi.persistStall",
                       "commit slots: fences, log acks, tx durability"),
      _cpiWpqBackpressure(sim.statsRegistry(),
                          _name + ".cpi.wpqBackpressure",
                          "commit slots: store buffer/WPQ backpressure"),
      _cpiLockWait(sim.statsRegistry(), _name + ".cpi.lockWait",
                   "commit slots: ROB head waiting on a lock")
{
    _perCycleStats = {&_cycles,
                      &_frontendStalls,
                      &_frontendStallRob,
                      &_frontendStallRegs,
                      &_frontendStallLsq,
                      &_frontendStallLogHw,
                      &_retireStallFence,
                      &_retireStallAtom,
                      &_retireStallTxEnd,
                      &_sbOrderingStalls,
                      &_cpiBase,
                      &_cpiRobFull,
                      &_cpiIqLsqFull,
                      &_cpiBranchRedirect,
                      &_cpiPersistStall,
                      &_cpiWpqBackpressure,
                      &_cpiLockWait};

    const unsigned phys = cfg.cpu.physIntRegs;
    if (phys <= numArchRegs)
        fatal("Core: physIntRegs must exceed ", numArchRegs);
    _renameMap.resize(numArchRegs);
    _physReady.assign(phys, false);
    for (unsigned i = 0; i < numArchRegs; ++i) {
        _renameMap[i] = static_cast<std::int16_t>(i);
        _physReady[i] = true;
    }
    for (unsigned i = phys; i-- > numArchRegs;)
        _freePhysRegs.push_back(static_cast<std::int16_t>(i));
    _iq.reserve(cfg.cpu.issueQueueEntries);

    if (TraceEventSink *ts = sim.trace()) {
        _traceSink = ts;
        if (ts->wants(TraceCatCpu)) {
            _trkPipeline = ts->defineTrack(_name + ".pipeline");
            _trkTx = ts->defineTrack(_name + ".tx");
        }
        if (ts->wants(TraceCatLog))
            _trkLogQ = ts->defineTrack(_name + ".logq");
    }
}

void
Core::bindLogArea(Addr start, Addr end)
{
    _txCtx.bindLogArea(start, end);
}

bool
Core::done() const
{
    return _fetchIndex >= _trace.size() && _fetchQueue.empty() &&
           _rob.empty() && _storeBuffer.empty() &&
           _outstandingStores == 0 && _pendingFlushAcks == 0 &&
           _autoFlushQueue.empty() && _autoFlushAcks == 0 &&
           _logQ.empty() && _atomPendingLogs == 0;
}

void
Core::tick(Tick now)
{
    for (unsigned i = 0; i < numPerCycleStats; ++i)
        _preTickValues[i] = _perCycleStats[i]->value();
    _tickBusy = false;
    _poked = false;

    ++_cycles;
    _headBlock = RetireBlock::None;
    _sbBlockedOnLog = false;
    const double before = _retired.value();
    retireStage(now);
    releaseStoreBuffer(now);
    releaseAutoFlushes();
    issueStage(now);
    _dispatchBlock = DispatchBlock::None;
    dispatchStage();
    fetchStage();
    accountCommitSlot(_retired.value() > before, now);
    if (_retired.value() > before)
        _tickBusy = true;
}

Tick
Core::nextWake(Tick now)
{
    if (_tickBusy || _poked)
        return now;
    // The branch-redirect resume is the one purely time-based state
    // change: it gates fetch and flips the ROB-empty CPI bucket, with
    // no event announcing it.
    if (_fetchResumeAt >= now)
        return _fetchResumeAt;
    return maxTick;
}

void
Core::accountSkipped(Tick from, Tick to)
{
    // A pure-blocked tick repeats the exact same stat bumps every cycle
    // until an external change (always event-signaled or covered by
    // nextWake) arrives, so replaying the last tick's deltas keeps all
    // cycle-denominated stats bit-identical with skipping off.
    const double n = static_cast<double>(to - from);
    for (unsigned i = 0; i < numPerCycleStats; ++i) {
        const double delta =
            _perCycleStats[i]->value() - _preTickValues[i];
        if (delta != 0.0)
            *_perCycleStats[i] += delta * n;
    }
    // The per-tx commit-slot feed mirrors the scalar replay: a blocked
    // tick's bucket (and the transaction live at retirement) repeats
    // for every skipped cycle.
    if (_txObs && to > from) {
        _txObs->commitSlot(_id, _retireTxId,
                           static_cast<obs::TxSlot>(_lastSlotBucket),
                           to - from);
    }
}

CpiStack
Core::cpiStack() const
{
    CpiStack s;
    s.base = static_cast<std::uint64_t>(_cpiBase.value());
    s.robFull = static_cast<std::uint64_t>(_cpiRobFull.value());
    s.iqLsqFull = static_cast<std::uint64_t>(_cpiIqLsqFull.value());
    s.branchRedirect =
        static_cast<std::uint64_t>(_cpiBranchRedirect.value());
    s.persistStall =
        static_cast<std::uint64_t>(_cpiPersistStall.value());
    s.wpqBackpressure =
        static_cast<std::uint64_t>(_cpiWpqBackpressure.value());
    s.lockWait = static_cast<std::uint64_t>(_cpiLockWait.value());
    return s;
}

void
Core::tracePhase(CommitBucket bucket, Tick now)
{
    // Coalesce consecutive same-bucket cycles into one span so the
    // Perfetto track reads as phases rather than per-cycle confetti.
    if (_phaseOpen && bucket == _phaseBucket)
        return;
    if (_phaseOpen && _trkPipeline) {
        _traceSink->complete(TraceCatCpu, _trkPipeline,
                             toString(_phaseBucket), _phaseStart, now);
    }
    _phaseBucket = bucket;
    _phaseStart = now;
    _phaseOpen = true;
}

void
Core::finalizeTrace()
{
    if (!_traceSink)
        return;
    if (_phaseOpen && _trkPipeline) {
        _traceSink->complete(TraceCatCpu, _trkPipeline,
                             toString(_phaseBucket), _phaseStart,
                             _sim.now());
        _phaseOpen = false;
    }
}

void
Core::traceLogQOccupancy()
{
    if (_trkLogQ) {
        _traceSink->counter(TraceCatLog, _trkLogQ, "logq",
                            _sim.now(), _logQ.occupancy());
    }
}

void
Core::accountCommitSlot(bool retired, Tick now)
{
    CommitBucket bucket = CommitBucket::Base;
    if (retired) {
        bucket = CommitBucket::Base;
    } else if (_rob.empty()) {
        // Front-end-bound (or drained). A pending branch redirect is
        // the one cause we can name; plain fill latency stays in base.
        if (_fetchBlocked || now < _fetchResumeAt)
            bucket = CommitBucket::BranchRedirect;
    } else {
        switch (_headBlock) {
          case RetireBlock::Exec:
            // Latency-bound window: blame the back-end resource that
            // starved dispatch this cycle, if any.
            if (_dispatchBlock == DispatchBlock::Rob)
                bucket = CommitBucket::RobFull;
            else if (_dispatchBlock == DispatchBlock::IqLsqRegs)
                bucket = CommitBucket::IqLsqFull;
            else if (_dispatchBlock == DispatchBlock::LogHw)
                bucket = CommitBucket::PersistStall;
            break;
          case RetireBlock::StoreBuffer:
            bucket = _sbBlockedOnLog ? CommitBucket::PersistStall
                                     : CommitBucket::WpqBackpressure;
            break;
          case RetireBlock::Persist:
            bucket = CommitBucket::PersistStall;
            break;
          case RetireBlock::Lock:
            bucket = CommitBucket::LockWait;
            break;
          case RetireBlock::None:
            break;      // retire width exhausted mid-burst: base
        }
    }

    switch (bucket) {
      case CommitBucket::Base:            ++_cpiBase; break;
      case CommitBucket::RobFull:         ++_cpiRobFull; break;
      case CommitBucket::IqLsqFull:       ++_cpiIqLsqFull; break;
      case CommitBucket::BranchRedirect:  ++_cpiBranchRedirect; break;
      case CommitBucket::PersistStall:    ++_cpiPersistStall; break;
      case CommitBucket::WpqBackpressure: ++_cpiWpqBackpressure; break;
      case CommitBucket::LockWait:        ++_cpiLockWait; break;
    }

    // obs::TxSlot mirrors CommitBucket value-for-value (obs cannot
    // depend on cpu), so the cast is the mapping. Accounting runs after
    // retireStage: a tx-begin tick counts toward the new transaction
    // and a commit tick does not, making the per-tx slots sum exactly
    // to commitTick - beginTick.
    _lastSlotBucket = bucket;
    if (_txObs) {
        _txObs->commitSlot(_id, _retireTxId,
                           static_cast<obs::TxSlot>(bucket), 1);
    }

    if (_traceSink)
        tracePhase(bucket, now);
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::fetchStage()
{
    if (_fetchBlocked || _sim.now() < _fetchResumeAt)
        return;

    for (unsigned n = 0; n < _cfg.cpu.fetchWidth; ++n) {
        if (_fetchIndex >= _trace.size() ||
            _fetchQueue.size() >= _cfg.cpu.fetchQueueEntries) {
            return;
        }
        const MicroOp *mop = &_trace.op(_fetchIndex);
        ++_fetchIndex;
        _tickBusy = true;
        _fetchQueue.push_back(mop);
        if (mop->op == Op::Branch) {
            const bool predicted = _predictor.predict(mop->staticPc);
            _predictedTaken.push_back(predicted);
            if (predicted != mop->taken) {
                // Trace-driven mispredict: stop fetching until the
                // branch resolves at execute.
                _fetchBlocked = true;
                return;
            }
        } else {
            _predictedTaken.push_back(false);
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch / rename
// ---------------------------------------------------------------------

bool
Core::dispatchOne(const MicroOp &mop)
{
    // Resource checks; any failure stalls dispatch in order.
    if (_rob.size() >= _cfg.cpu.robEntries) {
        ++_frontendStallRob;
        _dispatchBlock = DispatchBlock::Rob;
        return false;
    }

    const bool needs_iq =
        mop.op == Op::IntAlu || mop.op == Op::IntMul ||
        mop.op == Op::Load || mop.op == Op::Store ||
        mop.op == Op::Branch || mop.op == Op::LockAcquire ||
        mop.op == Op::LogLoad || mop.op == Op::LogFlush;
    if (needs_iq && _iq.size() >= _cfg.cpu.issueQueueEntries) {
        ++_frontendStallLsq;
        _dispatchBlock = DispatchBlock::IqLsqRegs;
        return false;
    }
    if ((mop.op == Op::Load || mop.op == Op::LogLoad) &&
        _loadsInFlight >= _cfg.cpu.loadQueueEntries) {
        ++_frontendStallLsq;
        _dispatchBlock = DispatchBlock::IqLsqRegs;
        return false;
    }
    if (mop.op == Op::Store &&
        _storesInFlight >= _cfg.cpu.storeQueueEntries) {
        ++_frontendStallLsq;
        _dispatchBlock = DispatchBlock::IqLsqRegs;
        return false;
    }
    if (mop.dst != noReg && _freePhysRegs.empty()) {
        ++_frontendStallRegs;
        _dispatchBlock = DispatchBlock::IqLsqRegs;
        return false;
    }
    if (mop.op == Op::LogLoad && !_isProteus)
        panic("log-load executed under a non-Proteus scheme");
    if (mop.op == Op::LogLoad && _lrInUse >= _cfg.logging.logRegisters) {
        ++_frontendStallLogHw;
        _dispatchBlock = DispatchBlock::LogHw;
        return false;
    }
    if (mop.op == Op::LogFlush && !_lastLogLoadWasHit && _logQ.full()) {
        // Stall dispatch so no store can bypass the log-flush
        // (Section 4.2).
        ++_frontendStallLogHw;
        _dispatchBlock = DispatchBlock::LogHw;
        return false;
    }

    _rob.emplace_back();
    DynInst &inst = _rob.back();
    inst.mop = &mop;
    inst.seq = _nextSeq++;
    inst.txId = _txCtx.txId();      // before TxBegin below updates it

    // Rename.
    if (mop.src0 != noReg)
        inst.physSrc0 = _renameMap[mop.src0];
    if (mop.src1 != noReg)
        inst.physSrc1 = _renameMap[mop.src1];
    if (mop.dst != noReg) {
        inst.oldPhysDst = _renameMap[mop.dst];
        inst.physDst = _freePhysRegs.back();
        _freePhysRegs.pop_back();
        _physReady[inst.physDst] = false;
        _renameMap[mop.dst] = inst.physDst;
    }

    switch (mop.op) {
      case Op::TxBegin:
        _txCtx.beginTx(mop.data);
        inst.completed = true;
        break;
      case Op::TxEnd:
        _txCtx.endTx();
        if (_isProteus) {
            _llt.clear();
            if (_trkLogQ) {
                _traceSink->instant(TraceCatLog, _trkLogQ, "llt.clear",
                                    _sim.now());
            }
        }
        inst.completed = true;
        break;
      case Op::LogLoad: {
        const Addr granule = logAlign(mop.addr);
        const bool hit =
            _txCtx.inTx() && _llt.lookupInsert(granule);
        if (hit) {
            // Hit: both the log-load and the upcoming log-flush
            // complete immediately (Section 4.2).
            inst.completed = true;
            inst.lltHit = true;
            setDstReady(inst);
            _lastLogLoadWasHit = true;
        } else {
            _lastLogLoadWasHit = false;
            ++_lrInUse;
            ++_loadsInFlight;
            inst.inIq = true;
            _iq.push_back(&inst);
        }
        break;
      }
      case Op::LogFlush: {
        if (inst.mop->payload == noPayload)
            panic("log-flush without a payload");
        if (_lastLogLoadWasHit) {
            inst.completed = true;
            inst.lltHit = true;
            _lastLogLoadWasHit = false;
            if (_txObs) {
                _txObs->logFiltered(
                    _id, _trace.logPayload(mop.payload).txId,
                    _sim.now());
            }
            break;
        }
        const LogPayload &payload = _trace.logPayload(mop.payload);
        LogRecord rec;
        std::copy(std::begin(payload.bytes), std::end(payload.bytes),
                  rec.data.begin());
        rec.fromAddr = payload.fromAddr;
        rec.txId = payload.txId;
        rec.seq = _txCtx.nextSeq();
        rec.flags = LogRecord::flagValid;
        rec.magic = LogRecord::magicValue;
        const Addr log_to = _txCtx.nextLogTo();
        inst.logQEntry =
            _logQ.allocate(inst.seq, payload.fromAddr, log_to, rec);
        inst.logCreatedAt = _sim.now();
        if (_txObs)
            _txObs->logCreated(_id, payload.txId, _sim.now());
        traceLogQOccupancy();
        inst.inIq = true;
        _iq.push_back(&inst);
        break;
      }
      case Op::Load:
        ++_loadsInFlight;
        inst.inIq = true;
        _iq.push_back(&inst);
        break;
      case Op::Store:
        ++_storesInFlight;
        _storeAddrCount[mop.addr & ~Addr{7}]++;
        inst.inIq = true;
        _iq.push_back(&inst);
        break;
      case Op::IntAlu:
      case Op::IntMul:
      case Op::LockAcquire:
        inst.inIq = true;
        _iq.push_back(&inst);
        break;
      case Op::Branch:
        inst.predictedTaken = _predictedTaken.front();
        inst.inIq = true;
        _iq.push_back(&inst);
        break;
      case Op::PCommit:
      case Op::LogSave:
        inst.completed = false;     // completed by the drain callback
        break;
      default:
        // Fences, clwb, lock release, nop: no execution; semantics at
        // retirement.
        inst.completed = true;
        break;
    }
    return true;
}

void
Core::dispatchStage()
{
    bool stalled = false;
    for (unsigned n = 0; n < _cfg.cpu.dispatchWidth; ++n) {
        if (_fetchQueue.empty())
            return;
        const MicroOp &mop = *_fetchQueue.front();
        if (!dispatchOne(mop)) {
            stalled = true;
            break;
        }
        _tickBusy = true;
        _fetchQueue.pop_front();
        _predictedTaken.pop_front();
    }
    if (stalled) {
        // The Figure 7 metric: a cycle in which dispatch was blocked by
        // a lack of free back-end resources.
        ++_frontendStalls;
    }
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

bool
Core::srcsReady(const DynInst &inst) const
{
    if (inst.physSrc0 >= 0 && !_physReady[inst.physSrc0])
        return false;
    if (inst.physSrc1 >= 0 && !_physReady[inst.physSrc1])
        return false;
    return true;
}

void
Core::setDstReady(DynInst &inst)
{
    if (inst.physDst >= 0)
        _physReady[inst.physDst] = true;
}

void
Core::completeInst(DynInst &inst)
{
    _poked = true;
    inst.completed = true;
    setDstReady(inst);
}

bool
Core::forwardFromStores(Addr addr, unsigned size, std::uint64_t seq) const
{
    (void)seq;
    const Addr first = addr & ~Addr{7};
    const Addr last = (addr + (size ? size : 1) - 1) & ~Addr{7};
    for (Addr chunk = first; chunk <= last; chunk += 8) {
        auto it = _storeAddrCount.find(chunk);
        if (it != _storeAddrCount.end() && it->second > 0)
            return true;
    }
    return false;
}

void
Core::executeInst(DynInst &inst, Tick now)
{
    DynInst *ip = &inst;
    switch (inst.mop->op) {
      case Op::IntAlu:
        _sim.schedule(_cfg.cpu.intAluLatency,
                      [this, ip]() { completeInst(*ip); });
        break;
      case Op::IntMul:
        _sim.schedule(_cfg.cpu.intMulLatency,
                      [this, ip]() { completeInst(*ip); });
        break;
      case Op::Branch: {
        const bool mispredicted =
            inst.predictedTaken != inst.mop->taken;
        _sim.schedule(_cfg.cpu.intAluLatency, [this, ip, mispredicted,
                                               now]() {
            _predictor.update(ip->mop->staticPc, ip->mop->taken,
                              ip->predictedTaken);
            if (mispredicted) {
                _fetchBlocked = false;
                _fetchResumeAt =
                    now + _cfg.cpu.intAluLatency +
                    _cfg.cpu.branchMispredictPenalty;
            }
            completeInst(*ip);
        });
        break;
      }
      case Op::Store:
        // Address and data are both available; the access happens when
        // the store buffer releases it after retirement.
        _sim.schedule(1, [this, ip]() { completeInst(*ip); });
        break;
      case Op::Load:
        if (forwardFromStores(inst.mop->addr, inst.mop->size,
                              inst.seq)) {
            _sim.schedule(forwardLatency,
                          [this, ip]() { completeInst(*ip); });
        } else if (!_caches.load(_id, inst.mop->addr, inst.mop->size,
                                 [this, ip]() { completeInst(*ip); })) {
            // MSHRs full: put it back and retry.
            inst.issued = false;
            return;
        }
        break;
      case Op::LogLoad:
        if (!_caches.load(_id, logAlign(inst.mop->addr), logDataSize,
                          [this, ip]() { completeInst(*ip); })) {
            inst.issued = false;
            return;
        }
        break;
      case Op::LogFlush: {
        // Send the entry to the MC over the uncacheable path. The
        // instruction is complete (and may retire) once sent; the LogQ
        // entry lives on until the MC acknowledgment arrives.
        const LogQueue::EntryId entry = inst.logQEntry;
        WriteRequest req;
        req.addr = _logQ.logTo(entry);
        req.kind = WriteKind::Log;
        req.core = _id;
        req.txId = _logQ.record(entry).txId;
        req.data = _logQ.record(entry).toBytes();
        const TxId log_tx = req.txId;
        const Tick created_at = inst.logCreatedAt;
        _caches.sendLogWrite(req, [this, entry, log_tx, created_at]() {
            _poked = true;
            _logQ.deallocate(entry);
            traceLogQOccupancy();
            if (_txObs)
                _txObs->logAcked(_id, log_tx, created_at, _sim.now());
        });
        _sim.schedule(1, [this, ip]() { completeInst(*ip); });
        break;
      }
      case Op::LockAcquire:
        if (_txObs) {
            _txObs->lockRequested(_id, inst.txId, inst.mop->addr,
                                  _sim.now());
        }
        _locks.acquire(inst.mop->addr, _id, inst.mop->data,
                       [this, ip]() {
                           if (_txObs) {
                               _txObs->lockGranted(_id, ip->txId,
                                                   ip->mop->addr,
                                                   _sim.now());
                           }
                           completeInst(*ip);
                       });
        break;
      default:
        panic("executeInst: op ", toString(inst.mop->op),
              " should not reach the issue queue");
    }
}

void
Core::issueStage(Tick now)
{
    unsigned issued = 0;
    unsigned alu_used = 0;
    unsigned mul_used = 0;
    unsigned mem_used = 0;

    for (DynInst *inst : _iq) {
        if (issued >= _cfg.cpu.issueWidth)
            break;
        if (inst->issued || !srcsReady(*inst))
            continue;

        const Op op = inst->mop->op;
        const bool is_mem = op == Op::Load || op == Op::Store ||
                            op == Op::LogLoad || op == Op::LogFlush ||
                            op == Op::LockAcquire;
        if (is_mem) {
            if (mem_used >= _cfg.cpu.memPortCount)
                continue;
        } else if (op == Op::IntMul) {
            if (mul_used >= _cfg.cpu.intMulCount)
                continue;
        } else {
            if (alu_used >= _cfg.cpu.intAluCount)
                continue;
        }

        // Issuing — even an attempt the caches reject — touches cache
        // state and stats, so the cycle counts as busy.
        _tickBusy = true;
        inst->issued = true;
        executeInst(*inst, now);
        if (!inst->issued)
            continue;   // rejected (MSHR full); port not consumed

        ++issued;
        if (is_mem)
            ++mem_used;
        else if (op == Op::IntMul)
            ++mul_used;
        else
            ++alu_used;
    }

    // Compact: drop issued entries, preserving age order.
    std::erase_if(_iq, [](DynInst *i) { return i->issued; });
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
Core::startAtomLog(DynInst &inst)
{
    _tickBusy = true;
    inst.atomLogState = 1;
    ++_atomPendingLogs;
    const Addr block = blockAlign(inst.mop->addr);
    const TxId tx = _retireTxId;

    // One ATOM block pair counts as one log record for the flight
    // recorder: created when the MC trip starts, acked when the ack
    // returns (the paired granule writes are MC-internal detail).
    const Tick created_at = _sim.now();
    if (_txObs)
        _txObs->logCreated(_id, tx, created_at);

    auto snapshot = _caches.tracker().snapshot(block);
    auto submit = std::make_shared<std::function<void(unsigned)>>();
    DynInst *ip = &inst;
    // Self-capture must be weak or the closure keeps itself alive
    // forever; the scheduled continuations hold the strong refs.
    std::weak_ptr<std::function<void(unsigned)>> weak = submit;
    *submit = [this, ip, block, tx, snapshot, weak,
               created_at](unsigned next) {
        if (next >= blockSize / logDataSize) {
            // Both granules accepted; the ack travels back.
            _sim.schedule(atomLogOneWay, [this, ip, tx, created_at]() {
                _poked = true;
                ip->atomLogState = 2;
                --_atomPendingLogs;
                if (_txObs) {
                    _txObs->logAcked(_id, tx, created_at, _sim.now());
                }
            });
            return;
        }
        LogRecord rec;
        std::copy(snapshot.begin() +
                      static_cast<std::ptrdiff_t>(next * logDataSize),
                  snapshot.begin() +
                      static_cast<std::ptrdiff_t>((next + 1) *
                                                  logDataSize),
                  rec.data.begin());
        rec.fromAddr = block + next * logDataSize;
        rec.txId = tx;
        rec.seq = _atomSeq++;
        rec.flags = LogRecord::flagValid;
        rec.magic = LogRecord::magicValue;
        if (_mc.atomLog(_id, tx, rec))
            (*weak.lock())(next + 1);
        else
            _sim.schedule(atomLogRetry, [s = weak.lock(), next]() {
                (*s)(next);
            });
    };
    // One-way trip to the MC, then submit both 32B granule records.
    _sim.schedule(atomLogOneWay, [submit]() { (*submit)(0); });
}

bool
Core::persistsDrained() const
{
    return _storeBuffer.empty() && _outstandingStores == 0 &&
           _pendingFlushAcks == 0 && _autoFlushQueue.empty() &&
           _autoFlushAcks == 0 &&
           _caches.pendingEvictionWrites() == 0;
}

bool
Core::canRetire(DynInst &inst, Tick now)
{
    (void)now;
    const MicroOp &mop = *inst.mop;

    switch (mop.op) {
      case Op::Store:
        if (!inst.completed) {
            _headBlock = RetireBlock::Exec;
            return false;
        }
        if (_storeBuffer.size() >= _cfg.cpu.storeBufferEntries) {
            _headBlock = RetireBlock::StoreBuffer;
            return false;
        }
        if (_scheme == LogScheme::ATOM && _retireTxId != 0 &&
            mop.persistent) {
            const Addr block = blockAlign(mop.addr);
            if (_atomLoggedBlocks.count(block) == 0) {
                if (inst.atomLogState == 0 &&
                    _atomLogStarted.insert(block).second) {
                    startAtomLog(inst);
                }
                if (inst.atomLogState != 2) {
                    ++_retireStallAtom;
                    _headBlock = RetireBlock::Persist;
                    return false;
                }
                _atomLoggedBlocks.insert(block);
            }
        }
        return true;
      case Op::SFence:
      case Op::MFence:
        if (!persistsDrained()) {
            ++_retireStallFence;
            _headBlock = RetireBlock::Persist;
            return false;
        }
        return true;
      case Op::PCommit:
        if (!inst.pcommitIssued) {
            _tickBusy = true;
            inst.pcommitIssued = true;
            DynInst *ip = &inst;
            _mc.drain([this, ip]() {
                _poked = true;
                ip->completed = true;
            });
        }
        if (!inst.completed) {
            ++_retireStallFence;
            _headBlock = RetireBlock::Persist;
        }
        return inst.completed;
      case Op::LogSave:
        if (!inst.logSaveIssued) {
            _tickBusy = true;
            inst.logSaveIssued = true;
            _savedCtx = _txCtx.save();
            DynInst *ip = &inst;
            _mc.flushCoreLogs(_id, [this, ip]() {
                _poked = true;
                ip->completed = true;
            });
        }
        if (!inst.completed)
            _headBlock = RetireBlock::Persist;
        return inst.completed;
      case Op::TxEnd: {
        if (_scheme == LogScheme::ATOM) {
            if (!persistsDrained() || _atomPendingLogs != 0) {
                ++_retireStallTxEnd;
                _headBlock = RetireBlock::Persist;
                return false;
            }
            // The commit record must be durable before the durability
            // point is announced.
            if (!inst.atomCommitDone) {
                if (!_mc.atomTxCommit(_id, mop.data)) {
                    ++_retireStallTxEnd;
                    _headBlock = RetireBlock::Persist;
                    return false;
                }
                inst.atomCommitDone = true;
            }
            return true;
        }
        if (_isProteus) {
            if (!persistsDrained() ||
                !_logQ.emptyForTx(mop.data)) {
                ++_retireStallTxEnd;
                _headBlock = RetireBlock::Persist;
                return false;
            }
            return true;
        }
        return true;    // software schemes fence explicitly
      }
      default:
        if (!inst.completed) {
            _headBlock = mop.op == Op::LockAcquire ? RetireBlock::Lock
                                                   : RetireBlock::Exec;
        }
        return inst.completed;
    }
}

void
Core::doRetire(DynInst &inst, Tick now)
{
    const MicroOp &mop = *inst.mop;

    switch (mop.op) {
      case Op::Load:
        --_loadsInFlight;
        break;
      case Op::LogLoad:
        if (!inst.lltHit)
            --_loadsInFlight;
        break;
      case Op::LogFlush:
        if (!inst.lltHit)
            --_lrInUse;     // the dependent log-flush has committed
        break;
      case Op::Store: {
        --_storesInFlight;
        SbEntry entry;
        entry.addr = mop.addr;
        entry.size = mop.size;
        entry.value = mop.data;
        entry.seq = inst.seq;
        entry.tx = _retireTxId;
        entry.persistent = mop.persistent;
        _storeBuffer.push_back(entry);
        if (_pSink) {
            _pSink->storeRetired(_id, _retireTxId, mop.addr, mop.size,
                                 mop.persistent, inst.seq, now);
        }
        break;
      }
      case Op::ClWb: {
        SbEntry entry;
        entry.isFlush = true;
        entry.addr = blockAlign(mop.addr);
        entry.tx = _retireTxId;
        _storeBuffer.push_back(entry);
        break;
      }
      case Op::TxBegin:
        _retireTxId = mop.data;
        _atomLoggedBlocks.clear();
        _atomLogStarted.clear();
        _atomSeq = 0;
        _txStartTick = now;
        if (_txObs)
            _txObs->txBegin(_id, mop.data, now);
        if (_traceSink && _trkTx) {
            _traceSink->flowStart(TraceCatCpu, _trkTx,
                                  "tx" + std::to_string(mop.data), now,
                                  obs::txFlowId(_id, mop.data));
        }
        break;
      case Op::TxEnd: {
        const TxId tx = mop.data;
        _retireTxId = 0;
        // The durability point precedes MemCtrl::txEnd so flash-clear
        // events always follow the durable-commit announcement.
        if (_pSink)
            _pSink->durablePoint(_id, tx, now);
        if (_scheme == LogScheme::Proteus ||
            _scheme == LogScheme::ProteusNoLWR) {
            _mc.txEnd(_id, tx);
        } else if (_scheme == LogScheme::ATOM) {
            _mc.atomTxEnd(_id, tx, nullptr);
        }
        _committedTxs.push_back(tx);
        _commitCycles.push_back(now);
        ++_committedTxStat;
        // After _mc.txEnd so any flash-clear drops are recorded into
        // the still-open transaction before it closes.
        if (_txObs)
            _txObs->txCommit(_id, tx, now);
        if (_traceSink && _trkTx) {
            _traceSink->complete(TraceCatCpu, _trkTx,
                                 "tx" + std::to_string(tx),
                                 _txStartTick, now);
            _traceSink->instant(TraceCatCpu, _trkTx, "commit", now);
            _traceSink->flowFinish(TraceCatCpu, _trkTx,
                                   "tx" + std::to_string(tx), now,
                                   obs::txFlowId(_id, tx));
        }
        break;
      }
      case Op::LockRelease:
        _locks.release(mop.addr, _id);
        if (_pSink)
            _pSink->lockReleased(_id, mop.addr, now);
        break;
      case Op::SFence:
      case Op::MFence:
      case Op::PCommit:
        if (_pSink)
            _pSink->fenceRetired(_id, now);
        break;
      default:
        break;
    }

    if (inst.oldPhysDst >= 0)
        _freePhysRegs.push_back(inst.oldPhysDst);
    ++_retired;
}

void
Core::scanAtomWindow()
{
    // ATOM creates a log entry "right before a store gets retired";
    // entries for the few oldest stores are initiated in parallel so
    // that only the acknowledgment latency of the head store is
    // exposed. The scan stops at a transaction boundary: younger
    // transactions must not log against the current txId.
    if (_retireTxId == 0)
        return;
    unsigned budget = 16;
    for (DynInst &inst : _rob) {
        if (budget-- == 0)
            break;
        const Op op = inst.mop->op;
        if (op == Op::TxBegin || op == Op::TxEnd)
            break;
        if (op != Op::Store || !inst.mop->persistent)
            continue;
        const Addr block = blockAlign(inst.mop->addr);
        if (inst.atomLogState == 0 &&
            _atomLoggedBlocks.count(block) == 0 &&
            _atomLogStarted.insert(block).second) {
            startAtomLog(inst);
        }
    }
}

void
Core::retireStage(Tick now)
{
    if (_scheme == LogScheme::ATOM)
        scanAtomWindow();
    for (unsigned n = 0; n < _cfg.cpu.retireWidth; ++n) {
        if (_rob.empty())
            return;
        DynInst &head = _rob.front();
        if (!canRetire(head, now))
            return;
        doRetire(head, now);
        _rob.pop_front();
    }
}

// ---------------------------------------------------------------------
// Store buffer / persistence
// ---------------------------------------------------------------------

void
Core::markAutoFlush(Addr block)
{
    if (_autoFlushPending.insert(block).second)
        _autoFlushQueue.push_back(block);
}

void
Core::checkStoreOrdering(const SbEntry &entry) const
{
    if (PersistentHeap::isLogArea(entry.addr))
        return;
    const Addr first = logAlign(entry.addr);
    const Addr last = logAlign(entry.addr + entry.size - 1);
    for (Addr g = first; g <= last; g += logDataSize) {
        if (!_mc.logGranuleDurable(_id, entry.tx, g))
            panic("persist-ordering violation: store to ", std::hex,
                  entry.addr, std::dec, " released before its log "
                  "entry became durable (tx ", entry.tx, ")");
    }
}

void
Core::releaseStoreBuffer(Tick now)
{
    (void)now;
    for (unsigned n = 0; n < _cfg.cpu.memPortCount; ++n) {
        if (_storeBuffer.empty())
            return;
        SbEntry &entry = _storeBuffer.front();

        if (entry.isFlush) {
            // clwb: conservatively ordered behind all outstanding
            // stores so it writes back post-store data.
            if (_outstandingStores > 0)
                return;
            _tickBusy = true;
            ++_pendingFlushAcks;
            _caches.flush(_id, entry.addr, entry.tx, [this]() {
                _poked = true;
                --_pendingFlushAcks;
            });
            _storeBuffer.pop_front();
            continue;
        }

        if (_isProteus && entry.persistent && entry.tx != 0 &&
            _logQ.pendingOlderFor(entry.addr, entry.seq)) {
            // The undo log covering this store has not yet been
            // acknowledged (Section 4.2).
            ++_sbOrderingStalls;
            _sbBlockedOnLog = true;
            return;
        }
        if (_checkOrdering && _isHwScheme && entry.persistent &&
            entry.tx != 0) {
            checkStoreOrdering(entry);
        }

        const Addr block = blockAlign(entry.addr);
        const SbEntry released = entry;
        // The store attempt mutates cache stats and the consistency
        // tracker even when the MSHRs reject it, so the cycle is busy
        // either way.
        _tickBusy = true;
        const bool ok = _caches.store(
            _id, released.addr, released.size, released.value,
            released.tx, [this, released, block]() {
                _poked = true;
                --_outstandingStores;
                auto it = _outstandingPerBlock.find(block);
                if (it != _outstandingPerBlock.end() &&
                    --it->second == 0) {
                    _outstandingPerBlock.erase(it);
                }
                const Addr chunk = released.addr & ~Addr{7};
                auto sc = _storeAddrCount.find(chunk);
                if (sc != _storeAddrCount.end() && --sc->second == 0)
                    _storeAddrCount.erase(sc);
            });
        if (!ok)
            return;     // MSHRs full; retry next cycle

        ++_outstandingStores;
        ++_outstandingPerBlock[block];
        if (_isHwScheme && entry.tx != 0 && entry.persistent)
            markAutoFlush(block);
        if (_pSink) {
            _pSink->storeReleased(_id, entry.tx, entry.addr, entry.size,
                                  entry.seq, now);
        }
        _storeBuffer.pop_front();
    }
}

void
Core::releaseAutoFlushes()
{
    if (_autoFlushQueue.empty())
        return;
    const Addr block = _autoFlushQueue.front();
    if (_outstandingPerBlock.count(block) > 0)
        return;     // wait for the block's stores to reach the cache
    _autoFlushQueue.pop_front();
    _autoFlushPending.erase(block);
    _tickBusy = true;
    ++_autoFlushAcks;
    _caches.flush(_id, block, _retireTxId, [this]() {
        _poked = true;
        --_autoFlushAcks;
    });
}

} // namespace proteus
