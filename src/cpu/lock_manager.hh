/**
 * @file
 * Timing-level ticket locks. The paper serializes concurrent
 * transactions with pthread locks; we model each lock word as a fair
 * ticket lock whose grant order is fixed at trace-generation time.
 * This makes the timing simulation's serialization identical to the
 * functional serialization that produced the store values — the
 * property that makes multi-threaded crash snapshots well-defined.
 * Waiters are notified on release (MESI-style: the spinning core sees
 * the invalidation) after a fixed handoff latency.
 */

#ifndef PROTEUS_CPU_LOCK_MANAGER_HH
#define PROTEUS_CPU_LOCK_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

class TraceEventSink;

/** Address-keyed fair ticket locks shared by all timing cores. */
class LockManager
{
  public:
    LockManager(Simulator &sim);

    /**
     * Acquire the lock at @p addr with @p ticket (assigned in trace
     * order). @p granted runs when the lock is handed to this ticket —
     * immediately (well, next event slot) if it is free and it is this
     * ticket's turn, otherwise after the predecessor releases.
     */
    void acquire(Addr addr, CoreId core, std::uint64_t ticket,
                 std::function<void()> granted);

    /** Release the lock; panics if @p core does not hold it. */
    void release(Addr addr, CoreId core);

    bool held(Addr addr) const;

  private:
    struct LockState
    {
        bool held = false;
        CoreId holder = 0;
        std::uint64_t nextServe = 0;
        Tick grantedAt = 0;     ///< tick the current holder was granted
        std::map<std::uint64_t, std::function<void()>> waiters;
    };

    void grant(Addr addr, LockState &state);
    void traceHeldSpan(Addr addr, const LockState &state);

    Simulator &_sim;
    std::map<Addr, LockState> _locks;
    stats::Scalar _acquires;
    stats::Scalar _contendedAcquires;
    TraceEventSink *_traceSink = nullptr;
    std::uint32_t _trkLocks = 0;
};

} // namespace proteus

#endif // PROTEUS_CPU_LOCK_MANAGER_HH
