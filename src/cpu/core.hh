/**
 * @file
 * The out-of-order timing core.
 *
 * A five-wide Skylake-like pipeline (Table 1): fetch with a gshare
 * predictor, rename over a physical register file, a unified issue
 * queue with oldest-first select, load/store queues, a reorder buffer,
 * and a post-retirement store buffer. On top of the plain pipeline it
 * implements every persistence mechanism the paper evaluates:
 *
 *  - PMEM software logging: clwb enters the store buffer in order and
 *    writes dirty blocks to the WPQ; sfence stalls retirement until all
 *    stores and clwb acks have drained; pcommit additionally drains the
 *    WPQ (Section 2.1).
 *  - ATOM hardware logging: the first store to each cache block inside
 *    a transaction is held at retirement until the MC-side log entry is
 *    acknowledged (posted + source log optimizations, Section 5.1).
 *  - Proteus SSHL: log-load allocates a log register, log-flush
 *    allocates a LogQ entry at dispatch (stalling dispatch when full,
 *    Section 4.2), gets its log-to address in program order, sends the
 *    entry over the uncacheable path, and *retires as soon as it is
 *    sent* — the LogQ tracks the ack and holds back any store buffer
 *    release to the same 32B granule until then. The LLT filters
 *    repeated logging of the same granule within one transaction.
 *
 * For hardware schemes, data stores inside a transaction write through
 * to the memory controller (an automatic per-block flush after store
 * buffer release) so that all data updates are durable by tx-end,
 * enabling the flash-clear of Section 4.3.
 */

#ifndef PROTEUS_CPU_CORE_HH
#define PROTEUS_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "branch_predictor.hh"
#include "cache/hierarchy.hh"
#include "isa/trace.hh"
#include "analysis/persist_sink.hh"
#include "lock_manager.hh"
#include "logging/llt.hh"
#include "logging/log_queue.hh"
#include "logging/tx_context.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/tx_observer.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace proteus {

class TraceEventSink;

/**
 * Commit-slot cycle attribution (a top-down / gem5-style CPI stack).
 * Every core cycle lands in exactly one bucket, so the buckets sum to
 * the core's total cycles by construction. "base" covers cycles that
 * retired work plus front-end fill and plain execution latency; the
 * remaining buckets name the resource the ROB head was blocked on.
 */
struct CpiStack
{
    std::uint64_t base = 0;             ///< retiring / fill / exec latency
    std::uint64_t robFull = 0;          ///< window full behind a long op
    std::uint64_t iqLsqFull = 0;        ///< IQ/LSQ/regs starved dispatch
    std::uint64_t branchRedirect = 0;   ///< ROB empty on a mispredict
    std::uint64_t persistStall = 0;     ///< fences, log acks, tx-end
    std::uint64_t wpqBackpressure = 0;  ///< store buffer / WPQ full
    std::uint64_t lockWait = 0;         ///< ROB head waiting on a lock

    std::uint64_t
    total() const
    {
        return base + robFull + iqLsqFull + branchRedirect +
               persistStall + wpqBackpressure + lockWait;
    }

    CpiStack &
    operator+=(const CpiStack &o)
    {
        base += o.base;
        robFull += o.robFull;
        iqLsqFull += o.iqLsqFull;
        branchRedirect += o.branchRedirect;
        persistStall += o.persistStall;
        wpqBackpressure += o.wpqBackpressure;
        lockWait += o.lockWait;
        return *this;
    }
};

/** The CPI-stack bucket a commit-slot cycle is attributed to. */
enum class CommitBucket : unsigned char
{
    Base,
    RobFull,
    IqLsqFull,
    BranchRedirect,
    PersistStall,
    WpqBackpressure,
    LockWait,
};

/** @return a short printable bucket name, e.g. "persist-stall". */
const char *toString(CommitBucket bucket);

/** One hardware thread executing a pre-decoded trace. */
class Core : public Ticked
{
  public:
    Core(Simulator &sim, const SystemConfig &cfg, CoreId id,
         const Trace &trace, CacheHierarchy &caches, MemCtrl &mc,
         LockManager &locks);

    void tick(Tick now) override;
    const std::string &componentName() const override { return _name; }

    /**
     * Quiescence protocol: busy whenever the last tick made progress,
     * retried a rejected cache access, or an execution callback landed
     * since; a pure-blocked core (fence/persist stall, log-ack wait,
     * lock wait, ROB empty awaiting a response, trace exhausted) sleeps
     * until the next event, except for the time-based branch-redirect
     * resume which is reported explicitly.
     */
    Tick nextWake(Tick now) override;
    /** Replay the last blocked tick's per-cycle stat bumps (cycle count,
     *  CPI bucket, stall counters) for each skipped cycle. */
    void accountSkipped(Tick from, Tick to) override;

    /** Bind the software-allocated Proteus log area (Section 4.1). */
    void bindLogArea(Addr start, Addr end);

    /** @return true once the whole trace has drained. */
    bool done() const;

    /** Transactions whose durability point has been reached, in order. */
    const std::vector<TxId> &committedTxs() const { return _committedTxs; }

    /** Cycle at which each committedTxs() entry became durable. */
    const std::vector<Tick> &commitCycles() const
    {
        return _commitCycles;
    }

    /** Enable the persist-ordering invariant checker (tests). */
    void setOrderingChecks(bool on) { _checkOrdering = on; }

    /**
     * Attach a transaction flight-recorder observer (nullptr detaches).
     * Hooks fire at retirement boundaries, log-record lifecycle points,
     * lock request/grant, and once per accounted commit-slot cycle;
     * when no observer is attached every site is one null check.
     */
    void setTxObserver(obs::TxObserver *obs) { _txObs = obs; }

    /**
     * Attach a persist-edge sink for the persistency-order checker
     * (nullptr detaches). Hooks fire at store/fence retirement, store
     * buffer release, the tx-end durability gate, and lock release;
     * when no sink is attached every site is one null check.
     */
    void setPersistSink(analysis::PersistSink *sink) { _pSink = sink; }

    std::uint64_t retiredOps() const
    {
        return static_cast<std::uint64_t>(_retired.value());
    }
    /** Front-end (dispatch) stall cycles: the Figure 7 metric. */
    std::uint64_t frontendStallCycles() const
    {
        return static_cast<std::uint64_t>(_frontendStalls.value());
    }
    /** Per-bucket commit-slot cycle attribution; sums to cycles(). */
    CpiStack cpiStack() const;
    std::uint64_t cycles() const
    {
        return static_cast<std::uint64_t>(_cycles.value());
    }
    /** Emit the still-open pipeline-phase trace span (end of run). */
    void finalizeTrace();
    const LogLookupTable &llt() const { return _llt; }
    const LogQueue &logQueue() const { return _logQ; }

  private:
    /** In-flight instruction state. */
    struct DynInst
    {
        const MicroOp *mop = nullptr;
        std::uint64_t seq = 0;
        /** Program-order transaction at dispatch (0 = outside). */
        TxId txId = 0;
        std::int16_t physSrc0 = -1;
        std::int16_t physSrc1 = -1;
        std::int16_t physDst = -1;
        std::int16_t oldPhysDst = -1;
        bool inIq = false;
        bool issued = false;
        bool completed = false;
        bool lltHit = false;        ///< log-load/log-flush filtered
        bool predictedTaken = false;
        /** ATOM: 0 = not needed, 1 = log pending, 2 = log acked. */
        std::uint8_t atomLogState = 0;
        bool atomCommitDone = false;
        bool pcommitIssued = false;
        bool logSaveIssued = false;
        LogQueue::EntryId logQEntry = LogQueue::invalidEntry;
        /** Cycle the log record was created (LogQ allocate), for the
         *  flight recorder's creation-to-ack span. */
        Tick logCreatedAt = 0;
    };

    /** A post-retirement store buffer entry. */
    struct SbEntry
    {
        bool isFlush = false;       ///< clwb rather than a store
        Addr addr = invalidAddr;
        unsigned size = 0;
        std::uint64_t value = 0;
        std::uint64_t seq = 0;
        TxId tx = 0;
        bool persistent = false;
    };

    /** Why the ROB head could not retire this cycle. */
    enum class RetireBlock : unsigned char
    {
        None,           ///< retired, or ROB empty
        Exec,           ///< head still executing (latency-bound)
        StoreBuffer,    ///< head store blocked on a full store buffer
        Persist,        ///< fence / log ack / tx-end durability
        Lock,           ///< head lock-acquire not yet granted
    };

    /** Why dispatch stalled this cycle (for Exec-blocked attribution). */
    enum class DispatchBlock : unsigned char
    {
        None,
        Rob,
        IqLsqRegs,
        LogHw,
    };

    void fetchStage();
    void dispatchStage();
    void issueStage(Tick now);
    void retireStage(Tick now);
    void scanAtomWindow();
    void releaseStoreBuffer(Tick now);
    void releaseAutoFlushes();
    void accountCommitSlot(bool retired, Tick now);
    void tracePhase(CommitBucket bucket, Tick now);
    void traceLogQOccupancy();

    bool dispatchOne(const MicroOp &mop);
    void executeInst(DynInst &inst, Tick now);
    void completeInst(DynInst &inst);
    bool canRetire(DynInst &inst, Tick now);
    void doRetire(DynInst &inst, Tick now);
    bool srcsReady(const DynInst &inst) const;
    void setDstReady(DynInst &inst);
    bool forwardFromStores(Addr addr, unsigned size,
                           std::uint64_t seq) const;
    void markAutoFlush(Addr block);
    bool persistsDrained() const;
    void startAtomLog(DynInst &inst);
    void checkStoreOrdering(const SbEntry &entry) const;

    Simulator &_sim;
    SystemConfig _cfg;
    CoreId _id;
    std::string _name;
    const Trace &_trace;
    CacheHierarchy &_caches;
    MemCtrl &_mc;
    LockManager &_locks;
    LogScheme _scheme;
    bool _isHwScheme;
    bool _isProteus;
    bool _checkOrdering = true;

    /// @name Front end
    /// @{
    std::size_t _fetchIndex = 0;
    std::deque<const MicroOp *> _fetchQueue;
    std::deque<bool> _predictedTaken;   ///< parallel to _fetchQueue
    BranchPredictor _predictor;
    bool _fetchBlocked = false;
    Tick _fetchResumeAt = 0;
    /// @}

    /// @name Rename
    /// @{
    std::vector<std::int16_t> _renameMap;
    std::vector<std::int16_t> _freePhysRegs;
    std::vector<bool> _physReady;
    /// @}

    /// @name Back end
    /// @{
    std::deque<DynInst> _rob;
    std::vector<DynInst *> _iq;
    unsigned _loadsInFlight = 0;    ///< LoadQ occupancy
    unsigned _storesInFlight = 0;   ///< StoreQ occupancy
    std::uint64_t _nextSeq = 0;
    /// @}

    /// @name Store buffer and persistence tracking
    /// @{
    std::deque<SbEntry> _storeBuffer;
    unsigned _outstandingStores = 0;        ///< released, not yet in L1
    std::unordered_map<Addr, unsigned> _outstandingPerBlock;
    /** In-flight store 8B chunks for store-to-load forwarding. */
    std::unordered_map<Addr, unsigned> _storeAddrCount;
    unsigned _pendingFlushAcks = 0;         ///< clwb acks outstanding
    std::deque<Addr> _autoFlushQueue;       ///< HW write-through blocks
    std::set<Addr> _autoFlushPending;
    unsigned _autoFlushAcks = 0;
    /// @}

    /// @name Logging hardware (Figure 5)
    /// @{
    TxContext _txCtx;
    LogQueue _logQ;
    LogLookupTable _llt;
    unsigned _lrInUse = 0;
    bool _lastLogLoadWasHit = false;
    std::set<Addr> _atomLoggedBlocks;       ///< per-tx dedup (ATOM)
    std::set<Addr> _atomLogStarted;         ///< log creation in flight
    unsigned _atomPendingLogs = 0;
    std::uint64_t _atomSeq = 0;
    TxId _retireTxId = 0;       ///< transaction live at retirement
    TxContext::Saved _savedCtx{};   ///< log-save destination
    /// @}

    std::vector<TxId> _committedTxs;
    std::vector<Tick> _commitCycles;    ///< parallel to _committedTxs

    /// @name Commit-slot attribution and trace emission
    /// @{
    RetireBlock _headBlock = RetireBlock::None;
    DispatchBlock _dispatchBlock = DispatchBlock::None;
    bool _sbBlockedOnLog = false;   ///< store buffer held by log order
    TraceEventSink *_traceSink = nullptr;
    std::uint32_t _trkPipeline = 0;
    std::uint32_t _trkTx = 0;
    std::uint32_t _trkLogQ = 0;
    CommitBucket _phaseBucket = CommitBucket::Base;
    bool _phaseOpen = false;
    Tick _phaseStart = 0;
    Tick _txStartTick = 0;
    obs::TxObserver *_txObs = nullptr;
    analysis::PersistSink *_pSink = nullptr;
    /** Bucket the last accounted tick landed in, replayed (with the
     *  live _retireTxId) for skipped quiescent spans so per-tx slot
     *  attribution is bit-identical with cycle skipping on or off. */
    CommitBucket _lastSlotBucket = CommitBucket::Base;
    /// @}

    stats::Scalar _retired;
    stats::Scalar _cycles;
    stats::Scalar _frontendStalls;
    stats::Scalar _frontendStallRob;
    stats::Scalar _frontendStallRegs;
    stats::Scalar _frontendStallLsq;
    stats::Scalar _frontendStallLogHw;
    stats::Scalar _retireStallFence;
    stats::Scalar _retireStallAtom;
    stats::Scalar _retireStallTxEnd;
    stats::Scalar _sbOrderingStalls;
    stats::Scalar _committedTxStat;

    /** CPI-stack buckets; exactly one is incremented per cycle. */
    stats::Scalar _cpiBase;
    stats::Scalar _cpiRobFull;
    stats::Scalar _cpiIqLsqFull;
    stats::Scalar _cpiBranchRedirect;
    stats::Scalar _cpiPersistStall;
    stats::Scalar _cpiWpqBackpressure;
    stats::Scalar _cpiLockWait;

    /// @name Quiescence (cycle skipping)
    /// @{
    /** Every scalar a pure-blocked tick can bump: the cycle counter,
     *  the CPI buckets, and the per-cycle stall counters. Snapshotted
     *  at tick start so accountSkipped can replay the last tick's exact
     *  deltas for each skipped cycle. */
    static constexpr unsigned numPerCycleStats = 17;
    std::array<stats::Scalar *, numPerCycleStats> _perCycleStats{};
    std::array<double, numPerCycleStats> _preTickValues{};
    /** Last tick made progress or performed a side-effectful retry. */
    bool _tickBusy = true;
    /** An execution/ack callback mutated core state after the last
     *  tick (cleared at tick start). */
    bool _poked = false;
    /// @}
};

} // namespace proteus

#endif // PROTEUS_CPU_CORE_HH
