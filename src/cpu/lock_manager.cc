#include "lock_manager.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace proteus {

namespace {

/** Cross-core lock handoff latency (coherence transfer). */
constexpr Tick handoffLatency = 25;
/** Uncontended acquire latency (shared-line access). */
constexpr Tick acquireLatency = 12;

} // namespace

LockManager::LockManager(Simulator &sim)
    : _sim(sim),
      _acquires(sim.statsRegistry(), "locks.acquires",
                "successful lock acquisitions"),
      _contendedAcquires(sim.statsRegistry(), "locks.contended",
                         "acquisitions that had to wait")
{
    if (TraceEventSink *ts = sim.trace()) {
        if (ts->wants(TraceCatLock)) {
            _traceSink = ts;
            _trkLocks = ts->defineTrack("locks");
        }
    }
}

void
LockManager::traceHeldSpan(Addr addr, const LockState &state)
{
    if (!_traceSink)
        return;
    std::ostringstream name;
    name << "lock:0x" << std::hex << addr << std::dec << " core"
         << state.holder;
    _traceSink->complete(TraceCatLock, _trkLocks, name.str(),
                         state.grantedAt, _sim.now());
}

void
LockManager::grant(Addr addr, LockState &state)
{
    auto it = state.waiters.find(state.nextServe);
    if (it == state.waiters.end())
        return;
    auto cb = std::move(it->second);
    state.waiters.erase(it);
    state.held = true;
    state.grantedAt = _sim.now() + handoffLatency;
    ++_acquires;
    _sim.schedule(handoffLatency, std::move(cb));
    (void)addr;
}

void
LockManager::acquire(Addr addr, CoreId core, std::uint64_t ticket,
                     std::function<void()> granted)
{
    LockState &state = _locks[addr];
    if (!state.held && ticket == state.nextServe) {
        state.held = true;
        state.holder = core;
        state.grantedAt = _sim.now() + acquireLatency;
        ++_acquires;
        _sim.schedule(acquireLatency, std::move(granted));
        return;
    }
    ++_contendedAcquires;
    if (_traceSink)
        _traceSink->instant(TraceCatLock, _trkLocks, "wait", _sim.now());
    // The holder field is set when the grant fires; remember who asked.
    state.waiters.emplace(ticket, [this, addr, core,
                                   cb = std::move(granted)]() {
        _locks[addr].holder = core;
        if (cb)
            cb();
    });
}

void
LockManager::release(Addr addr, CoreId core)
{
    auto it = _locks.find(addr);
    if (it == _locks.end() || !it->second.held ||
        it->second.holder != core) {
        panic("LockManager: core ", core,
              " released a lock it does not hold");
    }
    traceHeldSpan(addr, it->second);
    it->second.held = false;
    ++it->second.nextServe;
    grant(addr, it->second);
}

bool
LockManager::held(Addr addr) const
{
    auto it = _locks.find(addr);
    return it != _locks.end() && it->second.held;
}

} // namespace proteus
