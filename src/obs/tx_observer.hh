/**
 * @file
 * The transaction flight-recorder hook interface.
 *
 * Core and MemCtrl hold a nullable TxObserver pointer (the same
 * pattern as crashtest's TraceWriteObserver on TraceBuilder) and
 * invoke it at every transaction lifecycle boundary: tx begin, lock
 * request/grant, log-record creation/filtering/ack, memory-controller
 * queue entry/issue/drop, NVM persist, per-cycle commit-slot
 * attribution, and durable commit (or rollback). With no observer
 * attached every hook site is a single null-check, so the recorder is
 * near-zero cost when disabled.
 *
 * All timestamps are simulation cycles taken at the instrumented
 * event, never at aggregation time, so recorded values are
 * bit-identical with quiescence cycle skipping on or off: hooks fire
 * only on executed ticks, and the one per-cycle hook (commitSlot) is
 * replayed for skipped spans exactly like the core's per-cycle
 * scalars.
 */

#ifndef PROTEUS_OBS_TX_OBSERVER_HH
#define PROTEUS_OBS_TX_OBSERVER_HH

#include <cstdint>

#include "sim/types.hh"

namespace proteus {
namespace obs {

/**
 * The commit-slot bucket a cycle was attributed to, mirroring the
 * core's CPI stack (src/cpu/core.hh) without depending on it: obs is
 * below cpu in the link order, so the enum is duplicated here and the
 * core maps its CommitBucket into it.
 */
enum class TxSlot : unsigned char
{
    Base,
    RobFull,
    IqLsqFull,
    BranchRedirect,
    PersistStall,
    WpqBackpressure,
    LockWait,
};

constexpr unsigned numTxSlots = 7;

/** @return a short printable slot name, e.g. "persistStall". */
const char *toString(TxSlot slot);

/** A run-unique flow id for (core, tx), shared with the trace sink so
 *  core-side and MC-side flow events join into one arrow chain. */
inline std::uint64_t
txFlowId(CoreId core, TxId tx)
{
    return (static_cast<std::uint64_t>(core) << 48) | tx;
}

/** Lifecycle hooks; default implementations ignore everything. */
class TxObserver
{
  public:
    virtual ~TxObserver() = default;

    /// @name Transaction boundaries (core retirement)
    /// @{
    virtual void txBegin(CoreId, TxId, Tick) {}
    virtual void txCommit(CoreId, TxId, Tick) {}
    virtual void txRollback(CoreId, TxId, Tick) {}
    /// @}

    /// @name Lock manager
    /// @{
    virtual void lockRequested(CoreId, TxId, Addr, Tick) {}
    virtual void lockGranted(CoreId, TxId, Addr, Tick) {}
    /// @}

    /// @name Log-record lifecycle (LogQueue / ATOM MC-side logs)
    /// @{
    /** A log record was created (LogQ allocate / ATOM log start). */
    virtual void logCreated(CoreId, TxId, Tick) {}
    /** An LLT hit elided the record entirely. */
    virtual void logFiltered(CoreId, TxId, Tick) {}
    /** The record became durable; @p createdAt is its creation tick. */
    virtual void logAcked(CoreId, TxId, Tick /*createdAt*/, Tick) {}
    /// @}

    /**
     * Per-cycle commit-slot attribution: @p n cycles (n > 1 when the
     * kernel replays a skipped quiescent span) landed in @p slot while
     * @p tx was live at retirement (tx == 0: outside any transaction).
     */
    virtual void commitSlot(CoreId, TxId, TxSlot, std::uint64_t /*n*/) {}

    /// @name Memory controller
    /// @{
    /** A write entered the WPQ (@p lpq false) or LPQ (@p lpq true). */
    virtual void mcQueued(CoreId, TxId, bool /*lpq*/, Tick) {}
    /** A queued write was issued to the NVM array. */
    virtual void mcIssued(CoreId, TxId, bool /*lpq*/, Tick /*acceptedAt*/,
                          Tick) {}
    /** @p n LPQ entries were flash-cleared at tx end (log write
     *  removal) and will never reach the array. */
    virtual void mcDropped(CoreId, TxId, std::uint64_t /*n*/, Tick) {}
    /** A write's data reached the NVM array. */
    virtual void nvmPersisted(CoreId, TxId, bool /*lpq*/, Tick) {}
    /// @}
};

/**
 * Fans one observer stream out to two observers (either may be null):
 * lets the flight recorder and the persistency-order checker watch the
 * same machine simultaneously.
 */
class TxObserverFanout : public TxObserver
{
  public:
    TxObserverFanout(TxObserver *a, TxObserver *b) : _a(a), _b(b) {}

    void
    txBegin(CoreId core, TxId tx, Tick now) override
    {
        if (_a)
            _a->txBegin(core, tx, now);
        if (_b)
            _b->txBegin(core, tx, now);
    }
    void
    txCommit(CoreId core, TxId tx, Tick now) override
    {
        if (_a)
            _a->txCommit(core, tx, now);
        if (_b)
            _b->txCommit(core, tx, now);
    }
    void
    txRollback(CoreId core, TxId tx, Tick now) override
    {
        if (_a)
            _a->txRollback(core, tx, now);
        if (_b)
            _b->txRollback(core, tx, now);
    }
    void
    lockRequested(CoreId core, TxId tx, Addr addr, Tick now) override
    {
        if (_a)
            _a->lockRequested(core, tx, addr, now);
        if (_b)
            _b->lockRequested(core, tx, addr, now);
    }
    void
    lockGranted(CoreId core, TxId tx, Addr addr, Tick now) override
    {
        if (_a)
            _a->lockGranted(core, tx, addr, now);
        if (_b)
            _b->lockGranted(core, tx, addr, now);
    }
    void
    logCreated(CoreId core, TxId tx, Tick now) override
    {
        if (_a)
            _a->logCreated(core, tx, now);
        if (_b)
            _b->logCreated(core, tx, now);
    }
    void
    logFiltered(CoreId core, TxId tx, Tick now) override
    {
        if (_a)
            _a->logFiltered(core, tx, now);
        if (_b)
            _b->logFiltered(core, tx, now);
    }
    void
    logAcked(CoreId core, TxId tx, Tick created_at, Tick now) override
    {
        if (_a)
            _a->logAcked(core, tx, created_at, now);
        if (_b)
            _b->logAcked(core, tx, created_at, now);
    }
    void
    commitSlot(CoreId core, TxId tx, TxSlot slot, std::uint64_t n) override
    {
        if (_a)
            _a->commitSlot(core, tx, slot, n);
        if (_b)
            _b->commitSlot(core, tx, slot, n);
    }
    void
    mcQueued(CoreId core, TxId tx, bool lpq, Tick now) override
    {
        if (_a)
            _a->mcQueued(core, tx, lpq, now);
        if (_b)
            _b->mcQueued(core, tx, lpq, now);
    }
    void
    mcIssued(CoreId core, TxId tx, bool lpq, Tick accepted_at,
             Tick now) override
    {
        if (_a)
            _a->mcIssued(core, tx, lpq, accepted_at, now);
        if (_b)
            _b->mcIssued(core, tx, lpq, accepted_at, now);
    }
    void
    mcDropped(CoreId core, TxId tx, std::uint64_t n, Tick now) override
    {
        if (_a)
            _a->mcDropped(core, tx, n, now);
        if (_b)
            _b->mcDropped(core, tx, n, now);
    }
    void
    nvmPersisted(CoreId core, TxId tx, bool lpq, Tick now) override
    {
        if (_a)
            _a->nvmPersisted(core, tx, lpq, now);
        if (_b)
            _b->nvmPersisted(core, tx, lpq, now);
    }

  private:
    TxObserver *_a;
    TxObserver *_b;
};

} // namespace obs
} // namespace proteus

#endif // PROTEUS_OBS_TX_OBSERVER_HH
