#include "json_reader.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {
namespace obs {

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = get(key);
    if (!v)
        fatal("JSON: missing object key \"", key, "\"");
    return *v;
}

std::uint64_t
JsonValue::asU64() const
{
    return static_cast<std::uint64_t>(asNumber());
}

double
JsonValue::asNumber() const
{
    if (type != Type::Number)
        fatal("JSON: expected a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::String)
        fatal("JSON: expected a string");
    return str;
}

namespace {

/** Recursive-descent parser over an in-memory buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < _pos && i < _text.size(); ++i) {
            if (_text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("JSON parse error at line ", line, ", column ", col, ": ",
              what);
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (_text.compare(_pos, n, word) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return stringValue();
          case 't':
          case 'f': return boolValue();
          case 'n': return nullValue();
          default:  return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        for (;;) {
            skipWs();
            JsonValue key = stringValue();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key.str), value());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    stringValue()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        for (;;) {
            const char c = peek();
            ++_pos;
            if (c == '"')
                return v;
            if (c != '\\') {
                v.str.push_back(c);
                continue;
            }
            const char esc = peek();
            ++_pos;
            switch (esc) {
              case '"':  v.str.push_back('"'); break;
              case '\\': v.str.push_back('\\'); break;
              case '/':  v.str.push_back('/'); break;
              case 'b':  v.str.push_back('\b'); break;
              case 'f':  v.str.push_back('\f'); break;
              case 'n':  v.str.push_back('\n'); break;
              case 'r':  v.str.push_back('\r'); break;
              case 't':  v.str.push_back('\t'); break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= h - '0';
                    else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                    else fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs unsupported; this
                // repo's writers only escape control characters).
                if (code < 0x80) {
                    v.str.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    v.str.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    v.str.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    v.str.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    v.str.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    v.str.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: fail("unknown escape sequence");
            }
        }
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (consumeWord("true"))
            v.boolean = true;
        else if (consumeWord("false"))
            v.boolean = false;
        else
            fail("bad literal");
        return v;
    }

    JsonValue
    nullValue()
    {
        if (!consumeWord("null"))
            fail("bad literal");
        return JsonValue{};
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        auto digits = [&]() {
            bool any = false;
            while (_pos < _text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
                any = true;
            }
            return any;
        };
        if (!digits())
            fail("expected a number");
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            if (!digits())
                fail("expected digits after decimal point");
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-')) {
                ++_pos;
            }
            if (!digits())
                fail("expected exponent digits");
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(_text.c_str() + start, nullptr);
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open JSON file: ", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseJson(buf.str());
}

} // namespace obs
} // namespace proteus
