#include "tx_tracker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace proteus {
namespace obs {

const char *
toString(TxSlot slot)
{
    switch (slot) {
      case TxSlot::Base:            return "base";
      case TxSlot::RobFull:         return "robFull";
      case TxSlot::IqLsqFull:       return "iqLsqFull";
      case TxSlot::BranchRedirect:  return "branchRedirect";
      case TxSlot::PersistStall:    return "persistStall";
      case TxSlot::WpqBackpressure: return "wpqBackpressure";
      case TxSlot::LockWait:        return "lockWait";
    }
    return "unknown";
}

const char *
toString(TxStage stage)
{
    switch (stage) {
      case TxStage::CommitLatency:       return "commitLatency";
      case TxStage::SlotBase:            return "slot.base";
      case TxStage::SlotRobFull:         return "slot.robFull";
      case TxStage::SlotIqLsqFull:       return "slot.iqLsqFull";
      case TxStage::SlotBranchRedirect:  return "slot.branchRedirect";
      case TxStage::SlotPersistStall:    return "slot.persistStall";
      case TxStage::SlotWpqBackpressure: return "slot.wpqBackpressure";
      case TxStage::SlotLockWait:        return "slot.lockWait";
      case TxStage::LockWait:            return "lockWait";
      case TxStage::LogAck:              return "logAck";
      case TxStage::McQueueWait:         return "mcQueueWait";
      case TxStage::LogsPerTx:           return "logsPerTx";
    }
    return "unknown";
}

const char *
toString(TxEvent::Kind kind)
{
    switch (kind) {
      case TxEvent::Kind::Begin:       return "begin";
      case TxEvent::Kind::LockRequest: return "lockRequest";
      case TxEvent::Kind::LockGrant:   return "lockGrant";
      case TxEvent::Kind::LogCreate:   return "logCreate";
      case TxEvent::Kind::LogFilter:   return "logFilter";
      case TxEvent::Kind::LogAck:      return "logAck";
      case TxEvent::Kind::McQueued:    return "mcQueued";
      case TxEvent::Kind::McIssued:    return "mcIssued";
      case TxEvent::Kind::McDropped:   return "mcDropped";
      case TxEvent::Kind::NvmPersist:  return "nvmPersist";
      case TxEvent::Kind::Commit:      return "commit";
      case TxEvent::Kind::Rollback:    return "rollback";
    }
    return "unknown";
}

namespace {

/** Linear histogram shape per stage; the percentile map is what makes
 *  the tails exact, the buckets are for at-a-glance dumps. Every stage
 *  of a given kind shares one shape so merge() is always legal. */
struct StageShape
{
    double hi;
    unsigned buckets;
};

StageShape
shapeOf(TxStage stage)
{
    if (stage == TxStage::LogsPerTx)
        return {256.0, 64};
    return {16384.0, 64};
}

} // namespace

TxTracker::TxTracker(stats::StatRegistry &registry, unsigned numCores,
                     unsigned slowestK)
    : _numCores(numCores ? numCores : 1), _slowestK(slowestK)
{
    _dists.resize(_numCores);
    for (unsigned c = 0; c < _numCores; ++c) {
        _dists[c].reserve(numTxStages);
        for (unsigned s = 0; s < numTxStages; ++s) {
            const auto stage = static_cast<TxStage>(s);
            const StageShape shape = shapeOf(stage);
            _dists[c].push_back(std::make_unique<stats::Distribution>(
                _coreReg,
                "c" + std::to_string(c) + "." + toString(stage),
                "per-core tx stage", 0.0, shape.hi, shape.buckets));
        }
    }
    _merged.reserve(numTxStages);
    for (unsigned s = 0; s < numTxStages; ++s) {
        const auto stage = static_cast<TxStage>(s);
        const StageShape shape = shapeOf(stage);
        _merged.push_back(std::make_unique<stats::Distribution>(
            registry, std::string("tx.") + toString(stage),
            "flight recorder: " + std::string(toString(stage)), 0.0,
            shape.hi, shape.buckets));
    }
    _s.cores.resize(_numCores);
}

TxTracker::~TxTracker() = default;

stats::Distribution &
TxTracker::dist(CoreId core, TxStage stage)
{
    const unsigned c = core < _numCores ? core : _numCores - 1;
    return *_dists[c][static_cast<unsigned>(stage)];
}

TxTracker::OpenTx &
TxTracker::open(CoreId core, TxId tx)
{
    return _open[{core, tx}];
}

TxTracker::OpenTx *
TxTracker::find(CoreId core, TxId tx)
{
    auto it = _open.find({core, tx});
    return it == _open.end() ? nullptr : &it->second;
}

void
TxTracker::record(OpenTx *otx, Tick at, TxEvent::Kind kind,
                  std::uint64_t arg)
{
    if (otx && _slowestK > 0)
        otx->events.push_back(TxEvent{at, kind, arg});
}

void
TxTracker::txBegin(CoreId core, TxId tx, Tick at)
{
    OpenTx &otx = open(core, tx);
    otx.begun = true;
    otx.beginTick = at;
    record(&otx, at, TxEvent::Kind::Begin, 0);
}

void
TxTracker::retain(TxTimeline &&tl)
{
    if (_slowestK == 0)
        return;
    if (_slowest.size() >= _slowestK &&
        tl.latency <= _slowest.back().latency) {
        return;
    }
    auto pos = std::upper_bound(
        _slowest.begin(), _slowest.end(), tl,
        [](const TxTimeline &a, const TxTimeline &b) {
            return a.latency > b.latency;
        });
    _slowest.insert(pos, std::move(tl));
    if (_slowest.size() > _slowestK)
        _slowest.pop_back();
}

void
TxTracker::close(CoreId core, TxId tx, Tick at, bool committed)
{
    auto it = _open.find({core, tx});
    if (it == _open.end()) {
        warn("TxTracker: ", committed ? "commit" : "rollback",
             " for unknown tx ", tx, " (core ", core, ")");
        return;
    }
    OpenTx &otx = it->second;
    record(&otx, at, committed ? TxEvent::Kind::Commit
                               : TxEvent::Kind::Rollback, 0);

    if (committed) {
        ++_s.committedTxs;
        const Tick begin = otx.begun ? otx.beginTick : at;
        const std::uint64_t latency = at - begin;
        dist(core, TxStage::CommitLatency)
            .sample(static_cast<double>(latency));
        dist(core, TxStage::LogsPerTx)
            .sample(static_cast<double>(otx.logsCreated +
                                        otx.logsFiltered));

        unsigned crit = 0;
        for (unsigned s = 0; s < numTxSlots; ++s) {
            dist(core, static_cast<TxStage>(
                           static_cast<unsigned>(TxStage::SlotBase) + s))
                .sample(static_cast<double>(otx.slots[s]));
            if (otx.slots[s] > otx.slots[crit])
                crit = s;
        }
        ++_s.critPath[crit];

        if (_slowestK > 0) {
            TxTimeline tl;
            tl.core = core;
            tl.tx = tx;
            tl.begin = begin;
            tl.commit = at;
            tl.latency = latency;
            tl.critPath = static_cast<TxSlot>(crit);
            tl.slots = otx.slots;
            tl.events = std::move(otx.events);
            retain(std::move(tl));
        }
    } else {
        ++_s.rollbacks;
    }
    _open.erase(it);
}

void
TxTracker::txCommit(CoreId core, TxId tx, Tick at)
{
    close(core, tx, at, true);
}

void
TxTracker::txRollback(CoreId core, TxId tx, Tick at)
{
    close(core, tx, at, false);
}

void
TxTracker::lockRequested(CoreId core, TxId tx, Addr addr, Tick at)
{
    ++_s.lockAcquires;
    _pendingLocks.push_back(PendingLock{core, addr, tx, at});
    record(find(core, tx), at, TxEvent::Kind::LockRequest, addr);
}

void
TxTracker::lockGranted(CoreId core, TxId tx, Addr addr, Tick at)
{
    for (auto it = _pendingLocks.begin(); it != _pendingLocks.end();
         ++it) {
        if (it->core == core && it->addr == addr) {
            dist(core, TxStage::LockWait)
                .sample(static_cast<double>(at - it->at));
            _pendingLocks.erase(it);
            break;
        }
    }
    record(find(core, tx), at, TxEvent::Kind::LockGrant, addr);
}

void
TxTracker::logCreated(CoreId core, TxId tx, Tick at)
{
    ++_s.logsCreated;
    OpenTx *otx = tx ? &open(core, tx) : nullptr;
    if (otx)
        ++otx->logsCreated;
    record(otx, at, TxEvent::Kind::LogCreate, 0);
}

void
TxTracker::logFiltered(CoreId core, TxId tx, Tick at)
{
    ++_s.logsFiltered;
    OpenTx *otx = tx ? &open(core, tx) : nullptr;
    if (otx)
        ++otx->logsFiltered;
    record(otx, at, TxEvent::Kind::LogFilter, 0);
}

void
TxTracker::logAcked(CoreId core, TxId tx, Tick createdAt, Tick at)
{
    ++_s.logsAcked;
    dist(core, TxStage::LogAck)
        .sample(static_cast<double>(at - createdAt));
    record(find(core, tx), at, TxEvent::Kind::LogAck, at - createdAt);
}

void
TxTracker::commitSlot(CoreId core, TxId tx, TxSlot slot, std::uint64_t n)
{
    const auto s = static_cast<unsigned>(slot);
    _s.slotTotal[s] += n;
    if (tx == 0)
        return;
    _s.slotInTx[s] += n;
    // The begin hook always precedes the first in-tx commit slot (both
    // happen in the tx-begin retire tick, retire before accounting), so
    // this lookup hits except for synthetic feeds.
    open(core, tx).slots[s] += n;
}

void
TxTracker::mcQueued(CoreId core, TxId tx, bool lpq, Tick at)
{
    if (lpq)
        ++_s.mcLogQueued;
    else
        ++_s.mcDataQueued;
    record(find(core, tx), at, TxEvent::Kind::McQueued, lpq);
}

void
TxTracker::mcIssued(CoreId core, TxId tx, bool lpq, Tick acceptedAt,
                    Tick at)
{
    ++_s.mcIssued;
    dist(core, TxStage::McQueueWait)
        .sample(static_cast<double>(at - acceptedAt));
    record(find(core, tx), at, TxEvent::Kind::McIssued, at - acceptedAt);
    (void)lpq;
}

void
TxTracker::mcDropped(CoreId core, TxId tx, std::uint64_t n, Tick at)
{
    _s.mcDropped += n;
    record(find(core, tx), at, TxEvent::Kind::McDropped, n);
}

void
TxTracker::nvmPersisted(CoreId core, TxId tx, bool lpq, Tick at)
{
    ++_s.nvmPersists;
    OpenTx *otx = tx ? find(core, tx) : nullptr;
    if (tx != 0 && !otx)
        ++_s.postCommitPersists;
    record(otx, at, TxEvent::Kind::NvmPersist, lpq);
}

void
TxTracker::finish()
{
    if (_finished)
        return;
    _finished = true;
    for (unsigned s = 0; s < numTxStages; ++s)
        for (unsigned c = 0; c < _numCores; ++c)
            _merged[s]->merge(*_dists[c][s]);
}

namespace {

TxStageSnap
snap(const stats::Distribution &d)
{
    TxStageSnap s;
    s.count = d.count();
    s.sum = d.sum();
    s.min = d.min();
    s.max = d.max();
    s.p50 = d.percentile(50);
    s.p95 = d.percentile(95);
    s.p99 = d.percentile(99);
    s.qhist.assign(d.quantized().begin(), d.quantized().end());
    return s;
}

} // namespace

TxStatsSummary
TxTracker::summary()
{
    finish();
    TxStatsSummary out = _s;
    out.openTxs = _open.size();
    for (unsigned s = 0; s < numTxStages; ++s) {
        out.stages[s] = snap(*_merged[s]);
        for (unsigned c = 0; c < _numCores; ++c)
            out.cores[c][s] = snap(*_dists[c][s]);
    }
    out.slowest = _slowest;
    return out;
}

} // namespace obs
} // namespace proteus
