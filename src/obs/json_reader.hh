/**
 * @file
 * A minimal DOM JSON parser, just enough for the proteus-txstats tool
 * to read back the files writeTxStatsJson produces (and any other
 * machine output of this repo). No external dependencies; strict
 * enough for well-formed input, with position-annotated fatal errors
 * on malformed text.
 */

#ifndef PROTEUS_OBS_JSON_READER_HH
#define PROTEUS_OBS_JSON_READER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace proteus {
namespace obs {

/** One parsed JSON value; a tagged union over the six JSON types. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key order preserved as written. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Member lookup that panics when @p key is missing. */
    const JsonValue &at(const std::string &key) const;

    /** number as u64 (panics unless a Number). */
    std::uint64_t asU64() const;
    /** number (panics unless a Number). */
    double asNumber() const;
    /** str (panics unless a String). */
    const std::string &asString() const;
};

/** Parse @p text; throws FatalError on malformed JSON. */
JsonValue parseJson(const std::string &text);

/** Read and parse @p path; throws FatalError on I/O or parse errors. */
JsonValue parseJsonFile(const std::string &path);

} // namespace obs
} // namespace proteus

#endif // PROTEUS_OBS_JSON_READER_HH
