/**
 * @file
 * The transaction flight recorder: a TxObserver that follows every
 * transaction from begin to durable commit and aggregates the spans
 * into streaming histograms.
 *
 * Memory stays bounded for arbitrarily long runs: per-transaction
 * state lives only while the transaction is in flight, every completed
 * span is folded into HDR-style Distributions (exact percentiles below
 * stats::Distribution::percentileExactMax, bounded relative error
 * above), and full event timelines are retained only for a ring of the
 * K slowest transactions.
 *
 * Per-core distributions are kept in a private registry and merged
 * (stats::Distribution::merge) into scheme-level "tx.*" distributions
 * registered with the simulation's main registry, so enabling the
 * recorder also surfaces the merged stages in StatRegistry::dumpJson.
 *
 * The per-cycle commitSlot feed gives each committed transaction an
 * exact CPI-stack decomposition: the seven per-tx slot buckets sum to
 * commitTick - beginTick by construction, and the tracker's per-bucket
 * totals (slotTotal) equal the aggregate CpiStack counts — the
 * cross-check tests assert both. The per-tx critical path is the
 * arg-max slot bucket (lowest index wins ties).
 */

#ifndef PROTEUS_OBS_TX_TRACKER_HH
#define PROTEUS_OBS_TX_TRACKER_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/tx_observer.hh"
#include "sim/stats.hh"

namespace proteus {
namespace obs {

/** Aggregated stages the recorder histograms (all in cycles except
 *  LogsPerTx, a per-transaction record count). */
enum class TxStage : unsigned char
{
    CommitLatency,      ///< durable commit - tx begin
    SlotBase,           ///< per-tx commit-slot cycles, per CPI bucket
    SlotRobFull,
    SlotIqLsqFull,
    SlotBranchRedirect,
    SlotPersistStall,
    SlotWpqBackpressure,
    SlotLockWait,
    LockWait,           ///< lock grant - lock request, per acquire
    LogAck,             ///< log durable ack - creation, per record
    McQueueWait,        ///< NVM issue - MC acceptance, per write
    LogsPerTx,          ///< log records created+filtered, per tx
};

constexpr unsigned numTxStages = 12;

/** @return the stage's JSON/report key, e.g. "commitLatency". */
const char *toString(TxStage stage);

/** One timeline entry of a retained slow-transaction recording. */
struct TxEvent
{
    Tick at = 0;
    enum class Kind : unsigned char
    {
        Begin,
        LockRequest,
        LockGrant,
        LogCreate,
        LogFilter,
        LogAck,
        McQueued,
        McIssued,
        McDropped,
        NvmPersist,
        Commit,
        Rollback,
    } kind = Kind::Begin;
    std::uint64_t arg = 0;      ///< kind-specific (addr, count, ...)
};

const char *toString(TxEvent::Kind kind);

/** A bit-copyable snapshot of one stage distribution. */
struct TxStageSnap
{
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    /** The HDR value->count map; exact percentile state, mergeable. */
    std::vector<std::pair<double, std::uint64_t>> qhist;
};

/** A fully-recorded slow transaction. */
struct TxTimeline
{
    CoreId core = 0;
    TxId tx = 0;
    Tick begin = 0;
    Tick commit = 0;
    std::uint64_t latency = 0;
    TxSlot critPath = TxSlot::Base;
    std::array<std::uint64_t, numTxSlots> slots{};
    std::vector<TxEvent> events;
};

/** Everything one run's recorder learned, as plain data. */
struct TxStatsSummary
{
    std::uint64_t committedTxs = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t openTxs = 0;          ///< still in flight at snapshot
    std::uint64_t lockAcquires = 0;
    std::uint64_t logsCreated = 0;
    std::uint64_t logsFiltered = 0;
    std::uint64_t logsAcked = 0;
    std::uint64_t mcDataQueued = 0;
    std::uint64_t mcLogQueued = 0;
    std::uint64_t mcIssued = 0;
    std::uint64_t mcDropped = 0;        ///< flash-cleared log writes
    std::uint64_t nvmPersists = 0;
    std::uint64_t postCommitPersists = 0;   ///< lazy drains after commit

    /** Every commitSlot cycle, per bucket (== aggregate CpiStack). */
    std::array<std::uint64_t, numTxSlots> slotTotal{};
    /** The subset attributed to a live transaction. */
    std::array<std::uint64_t, numTxSlots> slotInTx{};
    /** Committed transactions whose critical path is each bucket. */
    std::array<std::uint64_t, numTxSlots> critPath{};

    /** Merged per-stage snapshots, indexed by TxStage. */
    std::array<TxStageSnap, numTxStages> stages{};
    /** Per-core stage snapshots (index = core id). */
    std::vector<std::array<TxStageSnap, numTxStages>> cores;

    /** The K slowest transactions, slowest first. */
    std::vector<TxTimeline> slowest;
};

/** The flight recorder proper. */
class TxTracker : public TxObserver
{
  public:
    /**
     * @param registry main simulation registry for the merged "tx.*"
     *                 distributions (dumpJson visibility)
     * @param numCores per-core distribution fan-out
     * @param slowestK full timelines retained (0 disables recording)
     */
    TxTracker(stats::StatRegistry &registry, unsigned numCores,
              unsigned slowestK);
    ~TxTracker() override;

    void txBegin(CoreId core, TxId tx, Tick at) override;
    void txCommit(CoreId core, TxId tx, Tick at) override;
    void txRollback(CoreId core, TxId tx, Tick at) override;
    void lockRequested(CoreId core, TxId tx, Addr addr, Tick at) override;
    void lockGranted(CoreId core, TxId tx, Addr addr, Tick at) override;
    void logCreated(CoreId core, TxId tx, Tick at) override;
    void logFiltered(CoreId core, TxId tx, Tick at) override;
    void logAcked(CoreId core, TxId tx, Tick createdAt, Tick at) override;
    void commitSlot(CoreId core, TxId tx, TxSlot slot,
                    std::uint64_t n) override;
    void mcQueued(CoreId core, TxId tx, bool lpq, Tick at) override;
    void mcIssued(CoreId core, TxId tx, bool lpq, Tick acceptedAt,
                  Tick at) override;
    void mcDropped(CoreId core, TxId tx, std::uint64_t n, Tick at) override;
    void nvmPersisted(CoreId core, TxId tx, bool lpq, Tick at) override;

    /**
     * Merge the per-core distributions into the main-registry "tx.*"
     * ones. Idempotent; called by FullSystem::finishObservability and
     * implicitly by summary().
     */
    void finish();

    /** Snapshot everything recorded so far (calls finish()). */
    TxStatsSummary summary();

    unsigned numCores() const { return _numCores; }

  private:
    struct OpenTx
    {
        bool begun = false;
        Tick beginTick = 0;
        std::array<std::uint64_t, numTxSlots> slots{};
        std::uint32_t logsCreated = 0;
        std::uint32_t logsFiltered = 0;
        std::vector<TxEvent> events;
    };

    struct PendingLock
    {
        CoreId core;
        Addr addr;
        TxId tx;
        Tick at;
    };

    OpenTx &open(CoreId core, TxId tx);
    OpenTx *find(CoreId core, TxId tx);
    void record(OpenTx *otx, Tick at, TxEvent::Kind kind,
                std::uint64_t arg);
    void close(CoreId core, TxId tx, Tick at, bool committed);
    stats::Distribution &dist(CoreId core, TxStage stage);
    void retain(TxTimeline &&tl);

    unsigned _numCores;
    unsigned _slowestK;
    bool _finished = false;

    /** Private registry backing the per-core distributions. */
    stats::StatRegistry _coreReg;
    /** [core][stage] streaming distributions. */
    std::vector<std::vector<std::unique_ptr<stats::Distribution>>> _dists;
    /** Merged per-stage distributions in the main registry. */
    std::vector<std::unique_ptr<stats::Distribution>> _merged;

    /** In-flight transactions, keyed (core, tx). */
    std::map<std::pair<CoreId, TxId>, OpenTx> _open;
    /** Lock requests awaiting their grant. */
    std::vector<PendingLock> _pendingLocks;
    /** The K slowest timelines, kept sorted slowest-first. */
    std::vector<TxTimeline> _slowest;

    TxStatsSummary _s;      ///< counters accumulate here directly
};

} // namespace obs
} // namespace proteus

#endif // PROTEUS_OBS_TX_TRACKER_HH
