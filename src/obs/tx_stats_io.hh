/**
 * @file
 * Serialization of transaction flight-recorder summaries.
 *
 * One TxStatsRow binds a run's identity (scheme, workload, run
 * parameters), its aggregate CPI stack (for the slotTotal cross-check)
 * and the TxStatsSummary itself. Rows are written as {"version": 1,
 * "rows": [...]} JSON or as a flat CSV of per-stage statistics.
 *
 * The JSON writer is byte-deterministic: identical summaries always
 * produce identical bytes (integral doubles print as integers, the
 * rest with round-trip precision), which is what lets the tests assert
 * bit-identical output across --jobs counts and cycle-skip modes. The
 * serialized qhist per stage is the distribution's full HDR percentile
 * state, so proteus-txstats can reconstruct and merge distributions
 * across rows without losing percentile accuracy.
 */

#ifndef PROTEUS_OBS_TX_STATS_IO_HH
#define PROTEUS_OBS_TX_STATS_IO_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "faults/fault_config.hh"
#include "obs/tx_tracker.hh"

namespace proteus {
namespace obs {

/** One run's flight-recorder output plus identifying metadata. */
struct TxStatsRow
{
    std::string scheme;
    std::string workload;
    unsigned threads = 0;
    unsigned scale = 0;
    unsigned initScale = 0;
    std::uint64_t seed = 0;
    Tick cycles = 0;
    /** Aggregate CPI-stack cycles per bucket (summed over cores); must
     *  equal summary.slotTotal bucket-for-bucket when the recorder saw
     *  the whole run. */
    std::array<std::uint64_t, numTxSlots> cpi{};
    TxStatsSummary summary;
    /** Media fault counters; serialized (JSON only) when enabled, so
     *  fault-free rows stay byte-identical to earlier versions. */
    faults::FaultStatsSummary faults;
};

/** Write @p rows as {"version": 1, "rows": [...]} JSON. */
void writeTxStatsJson(std::ostream &os,
                      const std::vector<TxStatsRow> &rows);

/** Write per-stage statistics as CSV (one line per row x stage). */
void writeTxStatsCsv(std::ostream &os,
                     const std::vector<TxStatsRow> &rows);

/** Write @p path, dispatching on extension (".csv" = CSV, else JSON).
 *  Throws FatalError if the file cannot be written. */
void writeTxStatsFile(const std::string &path,
                      const std::vector<TxStatsRow> &rows);

} // namespace obs
} // namespace proteus

#endif // PROTEUS_OBS_TX_STATS_IO_HH
