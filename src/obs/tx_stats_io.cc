#include "tx_stats_io.hh"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/json_util.hh"
#include "sim/logging.hh"

namespace proteus {
namespace obs {

namespace {

/**
 * Deterministic number formatting: every recorded value is a cycle
 * count or a sample count, so almost all doubles here are integral —
 * print those as integers (json::writeNumber's default 6-significant-
 * digit formatting would round large cycle counts). Non-integral
 * values (possible only after counts exceed 2^53) get round-trip
 * precision.
 */
void
num(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        os << static_cast<long long>(v);
        return;
    }
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
}

void
writeSlots(std::ostream &os,
           const std::array<std::uint64_t, numTxSlots> &slots)
{
    os << "{";
    for (unsigned s = 0; s < numTxSlots; ++s) {
        if (s)
            os << ", ";
        os << "\"" << toString(static_cast<TxSlot>(s))
           << "\": " << slots[s];
    }
    os << "}";
}

void
writeSnap(std::ostream &os, const TxStageSnap &s)
{
    os << "{\"count\": " << s.count << ", \"sum\": ";
    num(os, s.sum);
    os << ", \"min\": ";
    num(os, s.min);
    os << ", \"max\": ";
    num(os, s.max);
    os << ", \"p50\": ";
    num(os, s.p50);
    os << ", \"p95\": ";
    num(os, s.p95);
    os << ", \"p99\": ";
    num(os, s.p99);
    os << ", \"qhist\": [";
    for (std::size_t i = 0; i < s.qhist.size(); ++i) {
        if (i)
            os << ", ";
        os << "[";
        num(os, s.qhist[i].first);
        os << ", " << s.qhist[i].second << "]";
    }
    os << "]}";
}

void
writeStages(std::ostream &os,
            const std::array<TxStageSnap, numTxStages> &stages)
{
    os << "{";
    for (unsigned s = 0; s < numTxStages; ++s) {
        if (s)
            os << ", ";
        os << "\"" << toString(static_cast<TxStage>(s)) << "\": ";
        writeSnap(os, stages[s]);
    }
    os << "}";
}

void
writeTimeline(std::ostream &os, const TxTimeline &tl)
{
    os << "{\"core\": " << static_cast<unsigned>(tl.core)
       << ", \"tx\": " << tl.tx << ", \"begin\": " << tl.begin
       << ", \"commit\": " << tl.commit
       << ", \"latency\": " << tl.latency << ", \"critPath\": \""
       << toString(tl.critPath) << "\", \"slots\": ";
    writeSlots(os, tl.slots);
    os << ", \"events\": [";
    for (std::size_t i = 0; i < tl.events.size(); ++i) {
        const TxEvent &e = tl.events[i];
        if (i)
            os << ", ";
        os << "{\"at\": " << e.at << ", \"kind\": \"" << toString(e.kind)
           << "\", \"arg\": " << e.arg << "}";
    }
    os << "]}";
}

void
writeRow(std::ostream &os, const TxStatsRow &row)
{
    const TxStatsSummary &s = row.summary;
    os << "    {\"scheme\": " << json::quoted(row.scheme)
       << ", \"workload\": " << json::quoted(row.workload)
       << ", \"threads\": " << row.threads
       << ", \"scale\": " << row.scale
       << ", \"initScale\": " << row.initScale
       << ", \"seed\": " << row.seed << ", \"cycles\": " << row.cycles
       << ",\n     \"cpi\": ";
    writeSlots(os, row.cpi);
    os << ",\n     \"counters\": {\"committedTxs\": " << s.committedTxs
       << ", \"rollbacks\": " << s.rollbacks
       << ", \"openTxs\": " << s.openTxs
       << ", \"lockAcquires\": " << s.lockAcquires
       << ", \"logsCreated\": " << s.logsCreated
       << ", \"logsFiltered\": " << s.logsFiltered
       << ", \"logsAcked\": " << s.logsAcked
       << ", \"mcDataQueued\": " << s.mcDataQueued
       << ", \"mcLogQueued\": " << s.mcLogQueued
       << ", \"mcIssued\": " << s.mcIssued
       << ", \"mcDropped\": " << s.mcDropped
       << ", \"nvmPersists\": " << s.nvmPersists
       << ", \"postCommitPersists\": " << s.postCommitPersists << "}";
    if (row.faults.enabled) {
        const faults::FaultStatsSummary &f = row.faults;
        os << ",\n     \"faults\": {\"tornWrites\": " << f.tornWrites
           << ", \"wornWrites\": " << f.wornWrites
           << ", \"readFaults\": " << f.readFaults
           << ", \"eccCorrected\": " << f.eccCorrected
           << ", \"eccDetected\": " << f.eccDetected
           << ", \"silentFaults\": " << f.silentFaults
           << ", \"readRetries\": " << f.readRetries
           << ", \"retryBackoffCycles\": " << f.retryBackoffCycles
           << ", \"retriesExhausted\": " << f.retriesExhausted
           << ", \"poisonedLines\": " << f.poisonedLines << "}";
    }
    os << ",\n     \"slotTotal\": ";
    writeSlots(os, s.slotTotal);
    os << ",\n     \"slotInTx\": ";
    writeSlots(os, s.slotInTx);
    os << ",\n     \"critPath\": ";
    writeSlots(os, s.critPath);
    os << ",\n     \"stages\": ";
    writeStages(os, s.stages);
    os << ",\n     \"cores\": [";
    for (std::size_t c = 0; c < s.cores.size(); ++c) {
        if (c)
            os << ", ";
        writeStages(os, s.cores[c]);
    }
    os << "],\n     \"slowest\": [";
    for (std::size_t i = 0; i < s.slowest.size(); ++i) {
        if (i)
            os << ", ";
        writeTimeline(os, s.slowest[i]);
    }
    os << "]}";
}

} // namespace

void
writeTxStatsJson(std::ostream &os, const std::vector<TxStatsRow> &rows)
{
    os << "{\"version\": 1, \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        writeRow(os, rows[i]);
        os << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "]}\n";
}

void
writeTxStatsCsv(std::ostream &os, const std::vector<TxStatsRow> &rows)
{
    os << "scheme,workload,stage,count,sum,min,max,p50,p95,p99\n";
    for (const TxStatsRow &row : rows) {
        for (unsigned s = 0; s < numTxStages; ++s) {
            const TxStageSnap &snap = row.summary.stages[s];
            os << row.scheme << "," << row.workload << ","
               << toString(static_cast<TxStage>(s)) << ","
               << snap.count << ",";
            num(os, snap.sum);
            os << ",";
            num(os, snap.min);
            os << ",";
            num(os, snap.max);
            os << ",";
            num(os, snap.p50);
            os << ",";
            num(os, snap.p95);
            os << ",";
            num(os, snap.p99);
            os << "\n";
        }
    }
}

void
writeTxStatsFile(const std::string &path,
                 const std::vector<TxStatsRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open --tx-stats output file: ", path);
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        writeTxStatsCsv(os, rows);
    else
        writeTxStatsJson(os, rows);
    if (!os.flush())
        fatal("failed writing --tx-stats output file: ", path);
}

} // namespace obs
} // namespace proteus
