#include "crash_tester.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "harness/check_runner.hh"
#include "harness/trace_cache.hh"
#include "sim/json_util.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace proteus {

namespace {

constexpr Tick runCycleLimit = 2'000'000'000ull;

std::string
fmtHex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

const char *
toString(InDoubtOutcome o)
{
    switch (o) {
      case InDoubtOutcome::NoEvidence: return "none";
      case InDoubtOutcome::RolledBack: return "rolledback";
      case InDoubtOutcome::Committed:  return "committed";
      case InDoubtOutcome::Torn:       return "torn";
    }
    return "unknown";
}

/** Deterministic per-pair fuzz seed: campaign seed + pair identity. */
std::uint64_t
pairFuzzSeed(std::uint64_t seed, LogScheme scheme, WorkloadKind kind)
{
    return seed * 0x9E3779B97F4A7C15ull +
           (static_cast<std::uint64_t>(scheme) << 32) +
           (static_cast<std::uint64_t>(kind) << 8) + 1;
}

/** The ascending, deduplicated crash cycles for one pair. */
std::vector<Tick>
crashCycles(const CrashTestOptions &opts, LogScheme scheme,
            WorkloadKind kind, Tick total_cycles)
{
    std::vector<Tick> points;
    switch (opts.mode) {
      case CrashMode::Stride: {
        Tick stride = opts.stride;
        if (stride == 0) {
            stride = total_cycles / std::max(1u, opts.autoPoints);
            if (stride == 0)
                stride = 1;
        }
        for (Tick at = stride; at < total_cycles; at += stride)
            points.push_back(at);
        break;
      }
      case CrashMode::Points:
        points = opts.points;
        break;
      case CrashMode::Fuzz: {
        Random rng(pairFuzzSeed(opts.seed, scheme, kind));
        const Tick hi = total_cycles > 2 ? total_cycles - 1 : 1;
        for (unsigned i = 0; i < opts.fuzzCount; ++i)
            points.push_back(rng.nextRange(1, hi));
        break;
      }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    while (!points.empty() && points.front() == 0)
        points.erase(points.begin());
    return points;
}

std::string
describeSerializeMismatch(const std::string &recovered,
                          const std::string &replayed)
{
    std::size_t at = 0;
    const std::size_t n = std::min(recovered.size(), replayed.size());
    while (at < n && recovered[at] == replayed[at])
        ++at;
    std::ostringstream os;
    os << "recovered state diverges from the committed-prefix replay "
          "at serialization offset "
       << at << " (recovered " << recovered.size() << " bytes, replay "
       << replayed.size() << " bytes)";
    return os.str();
}

} // namespace

const char *
toString(CrashMode mode)
{
    switch (mode) {
      case CrashMode::Stride: return "stride";
      case CrashMode::Points: return "points";
      case CrashMode::Fuzz:   return "fuzz";
    }
    return "unknown";
}

std::vector<RecoveryResult>
recoverAllThreads(FullSystem &system, MemoryImage &image)
{
    std::vector<RecoveryResult> results;
    const LogScheme scheme = system.config().logging.scheme;
    for (unsigned t = 0; t < system.coreCount(); ++t) {
        // Log-area bounds live in the bundle, so recovery also works
        // for systems wired from a cached or file-loaded bundle.
        const TraceBundle::ThreadTrace &tt = system.bundle().threads[t];
        switch (scheme) {
          case LogScheme::PMEM:
          case LogScheme::PMEMPCommit:
            results.push_back(Recovery::recoverSoftware(
                image, tt.logStart, tt.logEnd, tt.logFlag));
            break;
          case LogScheme::Proteus:
          case LogScheme::ProteusNoLWR:
            results.push_back(Recovery::recoverProteus(
                image, tt.logStart, tt.logEnd));
            break;
          case LogScheme::ATOM: {
            const auto [start, end] = system.atomLogArea(t);
            results.push_back(Recovery::recoverAtom(image, start, end));
            break;
          }
          case LogScheme::PMEMNoLog:
            break;      // not failure-safe by design
        }
    }
    return results;
}

std::string
replayCommand(const CrashTestOptions &opts, const CrashPairResult &pair)
{
    std::ostringstream os;
    os << "proteus-crashtest --schemes " << toString(pair.scheme)
       << " --workloads " << toString(pair.workload) << " --seed "
       << opts.seed << " --threads " << opts.threads << " --scale "
       << opts.scale << " --init-scale " << opts.initScale;
    if (pair.workload == WorkloadKind::Generated)
        os << " --wl-spec " << opts.gen.canonical();
    switch (opts.mode) {
      case CrashMode::Stride:
        os << " --crash-stride "
           << (opts.stride ? opts.stride : Tick{0});
        if (opts.stride == 0)
            os << " --sweep-points " << opts.autoPoints;
        break;
      case CrashMode::Points:
        os << " --crash-at ";
        for (std::size_t i = 0; i < opts.points.size(); ++i)
            os << (i ? "," : "") << opts.points[i];
        break;
      case CrashMode::Fuzz:
        os << " --fuzz " << opts.fuzzCount;
        break;
    }
    if (opts.breakRecovery)
        os << " --break-recovery";
    if (opts.faults.enabled())
        os << " --faults " << faults::canonicalFaultSpec(opts.faults);
    return os.str();
}

namespace {

/** Check one crash point of @p sys (non-destructive). */
CrashPointResult
checkCrashPoint(const CrashTestOptions &opts, FullSystem &sys,
                const CommitOracle &oracle, WorkloadKind kind,
                const WorkloadParams &params)
{
    const LogScheme scheme = sys.config().logging.scheme;
    CrashPointResult row;
    row.crashCycle = sys.sim().now();

    std::vector<std::uint64_t> committed;
    for (unsigned t = 0; t < sys.coreCount(); ++t) {
        committed.push_back(sys.core(t).committedTxs().size());
        row.committed += committed.back();
    }

    MemoryImage image = sys.crashImage();
    if (!opts.breakRecovery) {
        for (const RecoveryResult &r : recoverAllThreads(sys, image)) {
            row.truncatedTail = row.truncatedTail || r.truncatedTail;
            row.tornSlots += r.tornSlots;
            row.poisonedSlots += r.poisonedSlots;
        }
    }
    row.poisonedLines = image.poisonedCount();

    if (opts.threads == 1) {
        row.oracle = oracle.check(image, committed, opts.maxViolations);
        row.replayed =
            CommitOracle::replayCount(row.oracle, committed[0]);
    } else {
        row.replayed = row.committed;
    }

    // Structural invariants: meaningless for pmem+nolog, whose
    // in-flight stores legitimately survive the crash un-rolled-back.
    if (scheme != LogScheme::PMEMNoLog) {
        row.invariantError = sys.workload().checkInvariants(image);
        row.invariantsOk = row.invariantError.empty();
    }

    // End-to-end: the recovered image must equal a functional replay
    // of exactly the surviving transaction prefix (single thread — a
    // multi-threaded prefix is not replayable without the schedule).
    if (opts.threads == 1 && scheme != LogScheme::PMEMNoLog &&
        opts.checkSerialization) {
        PersistentHeap replay_heap;
        auto replay = makeWorkload(kind, replay_heap, scheme, params,
                                   WorkloadExtras{{}, opts.gen});
        replay->setup();
        replay->replayOps(row.replayed);
        const std::string recovered = sys.workload().serialize(image);
        const std::string replayed =
            replay->serialize(replay_heap.volatileImage());
        row.serializeOk = recovered == replayed;
        if (!row.serializeOk)
            row.serializeError =
                describeSerializeMismatch(recovered, replayed);
    }

    // Media-loss verdict: with fault injection active, a crash point
    // whose image carries poison (flagged lines, classified log slots,
    // or tracked bytes on poisoned lines) may legitimately fail the
    // byte-exact checks — the medium destroyed data and *said so*.
    // Such points become detectedUnrecoverable instead of failures.
    // A failing point with no poison anywhere is silent corruption and
    // stays a hard failure regardless of the fault configuration.
    const bool mediaLoss = row.poisonedLines > 0 ||
                           row.poisonedSlots > 0 ||
                           row.oracle.poisonedBytes > 0;
    const bool checksOk =
        row.oracle.ok && row.invariantsOk && row.serializeOk;
    row.detectedUnrecoverable =
        mediaLoss && (!checksOk || row.oracle.poisonedBytes > 0);
    row.ok = checksOk || mediaLoss;
    return row;
}

/** Minimal byte-diff note for a detected-unrecoverable crash point. */
std::string
formatDetectedLoss(const CrashPairResult &pair,
                   const CrashPointResult &row)
{
    std::ostringstream os;
    os << "DETECTED-UNRECOVERABLE " << toString(pair.scheme) << "/"
       << toString(pair.workload) << " crash at cycle "
       << row.crashCycle << ": " << row.poisonedLines
       << " poisoned lines, " << row.poisonedSlots
       << " poisoned log slots, " << row.oracle.poisonedBytes
       << " tracked bytes lost\n";
    for (const OracleViolation &v : row.oracle.poisonedSample) {
        os << "    " << fmtHex(v.addr) << ": expected "
           << fmtHex(v.expected) << ", media lost the line — "
           << v.note << "\n";
    }
    return os.str();
}

/** Human-readable report of one failed crash point. */
std::string
formatFailure(const CrashTestOptions &opts, FullSystem &sys,
              const CrashPairResult &pair, const CrashPointResult &row)
{
    std::ostringstream os;
    os << "VIOLATION " << toString(pair.scheme) << "/"
       << toString(pair.workload) << " crash at cycle " << row.crashCycle
       << " (committed=" << row.committed << ", in-doubt "
       << toString(row.oracle.inDoubt) << ", seed=" << opts.seed
       << ")\n";
    if (!row.oracle.ok) {
        os << "  oracle: " << row.oracle.summary() << "\n";
        for (const OracleViolation &v : row.oracle.violations) {
            os << "    " << fmtHex(v.addr) << ": expected "
               << fmtHex(v.expected) << ", actual " << fmtHex(v.actual);
            if (v.alternative != v.expected)
                os << " (in-doubt alternative " << fmtHex(v.alternative)
                   << ")";
            os << ", tx " << v.guiltyTx << " — " << v.note << "\n";
        }
        if (row.oracle.violationCount > row.oracle.violations.size())
            os << "    ... "
               << row.oracle.violationCount - row.oracle.violations.size()
               << " more violating bytes\n";
    }
    if (!row.invariantsOk)
        os << "  invariants: " << row.invariantError << "\n";
    if (!row.serializeOk)
        os << "  serialize: " << row.serializeError << "\n";

    // What recovery changed, for debugging the undo path: diff the
    // pre-recovery crash image against a freshly recovered copy.
    MemoryImage pre = sys.crashImage();
    MemoryImage post = pre;
    if (!opts.breakRecovery)
        recoverAllThreads(sys, post);
    const auto delta = pre.diff(post, 64);
    if (!delta.empty()) {
        os << "  recovery changed " << delta.size()
           << (delta.size() == 64 ? "+" : "") << " words:\n"
           << MemoryImage::formatDiff(delta, 8);
    }
    os << "  replay: " << replayCommand(opts, pair) << " --crash-at "
       << row.crashCycle << "\n";
    return os.str();
}

/** Run every crash point of one (scheme, workload) pair. */
CrashPairResult
runPair(const CrashTestOptions &opts, LogScheme scheme,
        WorkloadKind kind)
{
    CrashPairResult pair;
    pair.scheme = scheme;
    pair.workload = kind;

    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = scheme;
    cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;
    cfg.seed = opts.seed;
    cfg.cycleSkip = opts.cycleSkip;
    cfg.faults = opts.faults;
    if (opts.threads > cfg.cores)
        cfg.cores = opts.threads;

    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.initScale = opts.initScale;
    params.seed = opts.seed;

    // With the cache on, one functional execution serves both the
    // reference run and the crash-injected run; the oracle is rebuilt
    // from the bundle's recorded write history, which is equivalent to
    // live attachment during trace generation.
    std::shared_ptr<const TraceBundle> bundle;
    CommitOracle oracle;
    if (opts.useTraceCache) {
        TraceBundleKey key;
        key.kind = kind;
        key.scheme = scheme;
        key.params = params;
        key.gen = opts.gen;
        bundle = TraceCache::global().get(key, /*want_history=*/true);
        bundle->history->replayTo(oracle);
    }

    // Reference run: the pair's total cycle count anchors the stride
    // and the fuzz range (and validates the configuration end to end).
    // With --check the persistency-order checker rides on it; ordering
    // violations fail the pair just like oracle violations do.
    {
        SystemConfig ref_cfg = cfg;
        if (opts.check) {
            ref_cfg.analysis.check = true;
            std::ostringstream repro;
            repro << "proteus-check run " << toString(kind)
                  << " --scheme " << toString(scheme) << " --seed "
                  << opts.seed << " --threads " << opts.threads
                  << " --scale " << opts.scale << " --init-scale "
                  << opts.initScale;
            ref_cfg.analysis.repro = repro.str();
        }
        std::unique_ptr<FullSystem> reference;
        if (bundle)
            reference = std::make_unique<FullSystem>(ref_cfg, bundle);
        else
            reference = std::make_unique<FullSystem>(
                ref_cfg, kind, params, WorkloadExtras{{}, opts.gen});
        const RunResult full = reference->run(runCycleLimit);
        if (!full.finished)
            fatal("crashtest: reference run hit the cycle limit");
        pair.totalCycles = full.cycles;
        if (opts.check && full.check && !full.check->pass()) {
            pair.checkViolations = full.check->totalViolations;
            pair.violations += full.check->totalViolations;
            CheckRow row;
            row.scheme = scheme;
            row.kind = kind;
            row.run = full;
            row.outcome = *full.check;
            pair.failureReports.push_back(formatCheckReport(row));
        }
    }

    const std::vector<Tick> cycles =
        crashCycles(opts, scheme, kind, pair.totalCycles);

    std::unique_ptr<FullSystem> sys_holder;
    if (bundle)
        sys_holder = std::make_unique<FullSystem>(cfg, bundle);
    else
        sys_holder =
            std::make_unique<FullSystem>(cfg, kind, params,
                                         WorkloadExtras{{}, opts.gen},
                                         &oracle);
    FullSystem &sys = *sys_holder;
    pair.totalTxs = oracle.txCount();

    for (const Tick at : cycles) {
        const Tick now = sys.sim().now();
        if (at > now)
            sys.runFor(at - now);
        CrashPointResult row =
            checkCrashPoint(opts, sys, oracle, kind, params);
        if (!row.ok) {
            ++pair.violations;
            if (pair.failureReports.size() < 5)
                pair.failureReports.push_back(
                    formatFailure(opts, sys, pair, row));
        } else if (row.detectedUnrecoverable) {
            ++pair.detectedUnrecoverable;
            if (pair.degradedReports.size() < 5)
                pair.degradedReports.push_back(
                    formatDetectedLoss(pair, row));
        }
        pair.points.push_back(std::move(row));
    }
    return pair;
}

void
writeJson(const std::string &path, const CrashTestOptions &opts,
          const CrashTestSummary &summary)
{
    std::ofstream os(path);
    if (!os)
        fatal("crashtest: cannot write " + path);

    os << "{\n";
    os << "  \"tool\": \"proteus-crashtest\",\n";
    os << "  \"mode\": " << json::quoted(toString(opts.mode)) << ",\n";
    os << "  \"seed\": " << opts.seed << ",\n";
    os << "  \"threads\": " << opts.threads << ",\n";
    os << "  \"scale\": " << opts.scale << ",\n";
    os << "  \"initScale\": " << opts.initScale << ",\n";
    const bool any_gen = std::any_of(
        opts.workloads.begin(), opts.workloads.end(),
        [](WorkloadKind k) { return k == WorkloadKind::Generated; });
    if (any_gen)
        os << "  \"wlSpec\": " << json::quoted(opts.gen.canonical())
           << ",\n";
    // Fault fields appear only with injection active so the default
    // campaign's JSON stays byte-identical to a faultless build.
    if (opts.faults.enabled()) {
        os << "  \"faults\": "
           << json::quoted(faults::canonicalFaultSpec(opts.faults))
           << ",\n";
        os << "  \"detectedUnrecoverable\": "
           << summary.detectedUnrecoverable << ",\n";
    }
    os << "  \"crashPoints\": " << summary.crashPoints << ",\n";
    // Only with --check armed, so default JSON stays byte-identical.
    if (opts.check)
        os << "  \"checkViolations\": " << summary.checkViolations
           << ",\n";
    os << "  \"violations\": " << summary.violations << ",\n";
    os << "  \"ok\": " << (summary.ok ? "true" : "false") << ",\n";
    os << "  \"rows\": [";
    bool first_row = true;
    for (const CrashPairResult &pair : summary.pairs) {
        for (const CrashPointResult &row : pair.points) {
            os << (first_row ? "\n" : ",\n");
            first_row = false;
            os << "    {\"scheme\": "
               << json::quoted(toString(pair.scheme))
               << ", \"workload\": "
               << json::quoted(toString(pair.workload))
               << ", \"seed\": " << opts.seed
               << ", \"crashCycle\": " << row.crashCycle
               << ", \"totalCycles\": " << pair.totalCycles
               << ", \"committed\": " << row.committed
               << ", \"replayed\": " << row.replayed
               << ", \"inDoubt\": "
               << json::quoted(toString(row.oracle.inDoubt))
               << ", \"bytesChecked\": " << row.oracle.bytesChecked
               << ", \"bytesSkipped\": " << row.oracle.bytesSkipped
               << ", \"violations\": " << row.oracle.violationCount
               << ", \"invariantsOk\": "
               << (row.invariantsOk ? "true" : "false")
               << ", \"serializeOk\": "
               << (row.serializeOk ? "true" : "false")
               << ", \"truncatedTail\": "
               << (row.truncatedTail ? "true" : "false")
               << ", \"tornSlots\": " << row.tornSlots;
            if (opts.faults.enabled()) {
                os << ", \"poisonedSlots\": " << row.poisonedSlots
                   << ", \"poisonedLines\": " << row.poisonedLines
                   << ", \"poisonedBytes\": "
                   << row.oracle.poisonedBytes
                   << ", \"detectedUnrecoverable\": "
                   << (row.detectedUnrecoverable ? "true" : "false");
            }
            os << ", \"ok\": " << (row.ok ? "true" : "false") << "}";
        }
    }
    os << "\n  ]\n}\n";
    if (!os)
        fatal("crashtest: write to " + path + " failed");
}

} // namespace

CrashTestSummary
runCrashTests(const CrashTestOptions &opts, std::ostream &os)
{
    if (opts.schemes.empty() || opts.workloads.empty())
        fatal("crashtest: need at least one scheme and one workload");
    if (opts.threads == 0)
        fatal("crashtest: need at least one thread");

    CrashTestSummary summary;
    summary.pairs.resize(opts.schemes.size() * opts.workloads.size());

    ProgressReporter progress(os);
    std::vector<ParallelRunner::Task> tasks;
    std::size_t slot = 0;
    for (const LogScheme scheme : opts.schemes) {
        for (const WorkloadKind kind : opts.workloads) {
            const std::size_t i = slot++;
            std::string label = std::string(toString(scheme)) + " / " +
                                toString(kind);
            tasks.push_back(ParallelRunner::Task{
                std::move(label), [&opts, &summary, scheme, kind, i]() {
                    summary.pairs[i] = runPair(opts, scheme, kind);
                }});
        }
    }
    ParallelRunner runner(opts.jobs);
    runner.runTasks(tasks, &progress);

    for (const CrashPairResult &pair : summary.pairs) {
        summary.crashPoints += pair.points.size();
        summary.violations += pair.violations;
        summary.checkViolations += pair.checkViolations;
        summary.detectedUnrecoverable += pair.detectedUnrecoverable;
        for (const std::string &report : pair.failureReports)
            os << report;
        if (pair.violations > pair.failureReports.size()) {
            os << "  ... " << pair.violations - pair.failureReports.size()
               << " more violating crash points in "
               << toString(pair.scheme) << "/" << toString(pair.workload)
               << "\n";
        }
        if (opts.verbose) {
            for (const std::string &report : pair.degradedReports)
                os << report;
        }
        if (pair.detectedUnrecoverable > 0 && !opts.verbose) {
            os << "  " << pair.detectedUnrecoverable
               << " crash points with detected-unrecoverable media "
                  "loss in "
               << toString(pair.scheme) << "/" << toString(pair.workload)
               << " (acceptable; --verbose for byte diffs)\n";
        }
    }
    summary.ok = summary.violations == 0;

    if (!opts.jsonPath.empty())
        writeJson(opts.jsonPath, opts, summary);
    return summary;
}

} // namespace proteus
