#include "commit_oracle.hh"

#include <algorithm>
#include <cstdio>

#include "heap/persistent_heap.hh"
#include "sim/logging.hh"

namespace proteus {

namespace {

/** txIndex of writes recorded outside any transaction. */
constexpr std::uint32_t noTx = 0xFFFF'FFFFu;

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

std::string
OracleReport::summary() const
{
    std::string poisoned;
    if (poisonedBytes > 0) {
        poisoned = ", " + std::to_string(poisonedBytes) +
                   " on poisoned lines (detected-unrecoverable)";
    }
    if (ok) {
        return "ok: " + std::to_string(bytesChecked) +
               " bytes checked, " + std::to_string(bytesSkipped) +
               " skipped" + poisoned;
    }
    return std::to_string(violationCount) + " violating bytes (" +
           std::to_string(bytesChecked) + " checked)" + poisoned;
}

void
CommitOracle::onTxBegin(CoreId thread, TxId tx)
{
    if (thread >= _txOrder.size())
        _txOrder.resize(thread + 1);
    TxInfo info;
    info.thread = thread;
    info.id = tx;
    info.perThreadIndex = _txOrder[thread].size();
    _txIndexById.emplace(tx, static_cast<std::uint32_t>(_txs.size()));
    _txs.push_back(info);
    _txOrder[thread].push_back(tx);
}

void
CommitOracle::onTxEnd(CoreId thread, TxId tx)
{
    (void)thread;
    (void)tx;
}

void
CommitOracle::onStore(CoreId thread, TxId tx, Addr addr, unsigned size,
                      std::uint64_t before, std::uint64_t after,
                      ObservedWrite kind)
{
    (void)thread;
    // Only the persistent data region is durable state worth checking;
    // the log areas are scheme-internal and consumed by recovery.
    if (!PersistentHeap::isPersistent(addr) ||
        PersistentHeap::isLogArea(addr)) {
        return;
    }

    std::uint32_t tx_index = noTx;
    if (tx != 0) {
        const auto it = _txIndexById.find(tx);
        if (it == _txIndexById.end())
            panic("CommitOracle: store from an unknown transaction");
        tx_index = it->second;
    }

    for (unsigned i = 0; i < size; ++i) {
        ByteHistory &hist = _bytes[addr + i];
        if (hist.writes.empty())
            hist.initial =
                static_cast<std::uint8_t>((before >> (8 * i)) & 0xFF);
        ByteWrite w;
        w.txIndex = tx_index;
        w.value = static_cast<std::uint8_t>((after >> (8 * i)) & 0xFF);
        w.kind = kind;
        // Consecutive writes by the same transaction to the same byte
        // collapse to the last value — only the final value per
        // transaction is observable after recovery (undo is
        // earliest-entry-per-granule, redo is absent).
        if (!hist.writes.empty() &&
            hist.writes.back().txIndex == tx_index &&
            hist.writes.back().kind == kind) {
            hist.writes.back().value = w.value;
        } else {
            hist.writes.push_back(w);
        }
    }
}

const std::vector<TxId> &
CommitOracle::txOrder(CoreId thread) const
{
    static const std::vector<TxId> empty;
    return thread < _txOrder.size() ? _txOrder[thread] : empty;
}

std::uint64_t
CommitOracle::replayCount(const OracleReport &report,
                          std::uint64_t committed)
{
    return committed +
           (report.inDoubt == InDoubtOutcome::Committed ? 1 : 0);
}

OracleReport
CommitOracle::check(const MemoryImage &image,
                    const std::vector<std::uint64_t> &committed_per_thread,
                    std::size_t max_violations) const
{
    OracleReport report;

    auto committedOf = [&](CoreId thread) -> std::uint64_t {
        return thread < committed_per_thread.size()
                   ? committed_per_thread[thread]
                   : 0;
    };

    // Per-byte vote of an in-doubt transaction, kept until all bytes
    // are classified so a torn transaction can name its minority bytes.
    struct InDoubtByte
    {
        Addr addr;
        std::uint8_t committedValue;    ///< rolled-back expectation
        std::uint8_t inDoubtValue;      ///< committed expectation
        std::uint8_t actual;
        bool votesCommit;
    };
    std::map<std::uint32_t, std::vector<InDoubtByte>> inDoubtVotes;

    auto addViolation = [&](const OracleViolation &v) {
        report.ok = false;
        ++report.violationCount;
        if (report.violations.size() < max_violations)
            report.violations.push_back(v);
    };

    for (const auto &[addr, hist] : _bytes) {
        // Classify the byte's writers against the crash point.
        bool skip = false;
        bool has_in_doubt = false;
        std::uint8_t committed_value = hist.initial;
        std::uint8_t in_doubt_value = hist.initial;
        std::uint32_t in_doubt_tx = noTx;
        std::uint32_t last_committed_tx = noTx;
        for (const ByteWrite &w : hist.writes) {
            if (w.kind == ObservedWrite::Raw || w.txIndex == noTx) {
                // storeRaw is neither logged nor persist-ordered: the
                // byte's durable state is unpredictable.
                skip = true;
                break;
            }
            const TxInfo &tx = _txs[w.txIndex];
            const std::uint64_t cut = committedOf(tx.thread);
            if (tx.perThreadIndex < cut) {
                committed_value = w.value;
                in_doubt_value = w.value;
                last_committed_tx = w.txIndex;
            } else if (tx.perThreadIndex == cut) {
                if (w.kind == ObservedWrite::Unlogged) {
                    // Unlogged write of an uncommitted transaction
                    // (storeInit / pmem+nolog): recovery cannot roll it
                    // back and durability is not ordered — the byte may
                    // hold anything.
                    skip = true;
                    break;
                }
                has_in_doubt = true;
                in_doubt_value = w.value;
                in_doubt_tx = w.txIndex;
            }
            // perThreadIndex > cut: the transaction never started in
            // the timing run (its stores cannot retire before the
            // in-doubt tx-end does); no durable trace of it may exist,
            // which the committed_value comparison enforces.
        }
        if (skip) {
            ++report.bytesSkipped;
            continue;
        }

        std::uint8_t actual = 0;
        image.read(addr, &actual, 1);

        // A byte on a poisoned line is a *detected* loss: the media ECC
        // flagged the line uncorrectable and no checker should treat
        // its contents as meaningful. Record the byte-diff separately;
        // the crash tester decides whether detected loss is acceptable.
        if (image.isPoisoned(addr)) {
            ++report.poisonedBytes;
            if (report.poisonedSample.size() < max_violations) {
                OracleViolation v;
                v.addr = addr;
                v.expected = committed_value;
                v.actual = actual;
                v.alternative = in_doubt_value;
                v.note = "line poisoned by media fault "
                         "(detected-unrecoverable)";
                report.poisonedSample.push_back(v);
            }
            continue;
        }
        ++report.bytesChecked;

        if (has_in_doubt && in_doubt_value != committed_value) {
            if (actual != committed_value && actual != in_doubt_value) {
                OracleViolation v;
                v.addr = addr;
                v.expected = committed_value;
                v.actual = actual;
                v.alternative = in_doubt_value;
                v.guiltyTx = _txs[in_doubt_tx].id;
                v.note = "byte matches neither the rolled-back nor the "
                         "committed value of the in-doubt tx";
                addViolation(v);
                continue;
            }
            InDoubtByte b;
            b.addr = addr;
            b.committedValue = committed_value;
            b.inDoubtValue = in_doubt_value;
            b.actual = actual;
            b.votesCommit = actual == in_doubt_value;
            inDoubtVotes[in_doubt_tx].push_back(b);
            continue;
        }

        if (actual != committed_value) {
            OracleViolation v;
            v.addr = addr;
            v.expected = committed_value;
            v.actual = actual;
            v.alternative = committed_value;
            if (last_committed_tx != noTx) {
                v.guiltyTx = _txs[last_committed_tx].id;
                v.note = "committed write lost or overwritten";
            } else {
                v.note = "pre-existing byte corrupted";
            }
            // A surviving value of a never-started or in-flight
            // transaction is the sharper diagnosis when it matches.
            std::uint8_t chain = hist.initial;
            for (const ByteWrite &w : hist.writes) {
                chain = w.value;
                const TxInfo &tx = _txs[w.txIndex];
                if (tx.perThreadIndex >= committedOf(tx.thread) &&
                    chain == actual) {
                    v.guiltyTx = tx.id;
                    v.note = "write of uncommitted tx survived recovery";
                    break;
                }
            }
            addViolation(v);
        }
    }

    // Atomicity of each in-doubt transaction: its bytes must vote
    // unanimously. (With one thread there is at most one such tx.)
    for (const auto &[tx_index, bytes] : inDoubtVotes) {
        std::size_t commit_votes = 0;
        for (const InDoubtByte &b : bytes)
            commit_votes += b.votesCommit ? 1 : 0;
        const TxId tx_id = _txs[tx_index].id;
        if (commit_votes == 0 || commit_votes == bytes.size()) {
            if (report.inDoubt != InDoubtOutcome::Torn) {
                report.inDoubt = commit_votes
                                     ? InDoubtOutcome::Committed
                                     : InDoubtOutcome::RolledBack;
                report.inDoubtTx = tx_id;
            }
            continue;
        }
        // Torn: report the minority bytes as the diff.
        report.inDoubt = InDoubtOutcome::Torn;
        report.inDoubtTx = tx_id;
        const bool minority_commit = commit_votes * 2 < bytes.size();
        for (const InDoubtByte &b : bytes) {
            if (b.votesCommit != minority_commit)
                continue;
            OracleViolation v;
            v.addr = b.addr;
            v.expected = minority_commit ? b.committedValue
                                         : b.inDoubtValue;
            v.actual = b.actual;
            v.alternative = minority_commit ? b.inDoubtValue
                                            : b.committedValue;
            v.guiltyTx = tx_id;
            v.note = "in-doubt tx " + std::to_string(tx_id) +
                     " is torn at " + hexAddr(b.addr);
            addViolation(v);
        }
    }

    return report;
}

} // namespace proteus
