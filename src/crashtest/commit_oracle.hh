/**
 * @file
 * The commit oracle of the crash-consistency validation subsystem.
 *
 * While a workload's traces are recorded, the oracle observes every
 * program-level write in the global round-robin recording order — which
 * is the functional serialization the timing simulation replays — and
 * builds a per-byte write history of the persistent data region. After
 * a crash is injected and recovery has run, check() confronts the
 * recovered image with that history:
 *
 *  1. every write of an oracle-committed transaction must be present
 *     (durability),
 *  2. no write of a transaction past the commit point may survive
 *     (rollback), and
 *  3. the one in-doubt transaction per thread — the next transaction
 *     in trace order, whose durable commit point may have been reached
 *     even though its tx-end micro-op had not yet retired — must be
 *     either fully present or fully rolled back, never torn.
 *
 * The byte-exact analysis is defined for single-threaded runs (the
 * paper's recovery-equivalence setting); multi-threaded crash tests
 * fall back to structural invariant checking in the crash tester.
 */

#ifndef PROTEUS_CRASHTEST_COMMIT_ORACLE_HH
#define PROTEUS_CRASHTEST_COMMIT_ORACLE_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/memory_image.hh"
#include "sim/config.hh"
#include "trace/trace_builder.hh"

namespace proteus {

/** One byte of post-recovery state that contradicts the oracle. */
struct OracleViolation
{
    Addr addr = invalidAddr;
    std::uint8_t expected = 0;      ///< committed-prefix value
    std::uint8_t actual = 0;        ///< recovered-image value
    /** In-doubt alternative (equals expected when none applies). */
    std::uint8_t alternative = 0;
    TxId guiltyTx = 0;              ///< tx whose write explains actual, or
                                    ///< the last writer when none does
    std::string note;               ///< one-line diagnosis
};

/** Verdict on one in-doubt transaction. */
enum class InDoubtOutcome
{
    NoEvidence,     ///< wrote nothing checkable; either way is fine
    RolledBack,     ///< every byte carries the pre-transaction value
    Committed,      ///< every byte carries the transaction's value
    Torn,           ///< mixed — the atomicity violation
};

/** What check() concluded about one recovered crash image. */
struct OracleReport
{
    bool ok = true;
    std::vector<OracleViolation> violations;    ///< capped by caller
    std::uint64_t violationCount = 0;           ///< uncapped total
    std::uint64_t bytesChecked = 0;
    std::uint64_t bytesSkipped = 0;     ///< unpredictable (raw/unlogged)
    InDoubtOutcome inDoubt = InDoubtOutcome::NoEvidence;
    TxId inDoubtTx = 0;
    /**
     * Tracked bytes on lines the media fault layer marked
     * detected-uncorrectable. These are excluded from the byte-exact
     * checks — the loss is *detected*, not silent — and surfaced
     * separately so the crash tester can return a
     * detectedUnrecoverable verdict with a minimal byte-diff.
     */
    std::uint64_t poisonedBytes = 0;
    std::vector<OracleViolation> poisonedSample;    ///< capped byte-diff

    std::string summary() const;
};

/**
 * Records durable-commit points and per-byte expected values while
 * traces are generated; attach via FullSystem's trace_observer hook.
 */
class CommitOracle : public TraceWriteObserver
{
  public:
    void onTxBegin(CoreId thread, TxId tx) override;
    void onTxEnd(CoreId thread, TxId tx) override;
    void onStore(CoreId thread, TxId tx, Addr addr, unsigned size,
                 std::uint64_t before, std::uint64_t after,
                 ObservedWrite kind) override;

    /** Transactions recorded for @p thread, in begin (= commit) order. */
    const std::vector<TxId> &txOrder(CoreId thread) const;

    /** Total transactions recorded across all threads. */
    std::uint64_t txCount() const { return _txs.size(); }

    /** Distinct persistent bytes with at least one observed write. */
    std::uint64_t trackedBytes() const { return _bytes.size(); }

    /**
     * Check a *recovered* crash image against the history.
     * @p committed_per_thread[t] is the number of thread @p t's
     * transactions whose tx-end had retired at the crash
     * (Core::committedTxs().size()); the next recorded transaction of
     * each thread is in-doubt. At most @p max_violations are
     * materialized in the report. Byte-exact checking is sound for
     * single-threaded runs; with several threads the hardware schemes'
     * granule-sized undo can legitimately interact across threads, so
     * the crash tester only calls this when threads == 1.
     */
    OracleReport
    check(const MemoryImage &image,
          const std::vector<std::uint64_t> &committed_per_thread,
          std::size_t max_violations = 16) const;

    /**
     * The replay length a recovered image corresponds to: @p committed,
     * plus one when the in-doubt transaction's durable commit point was
     * crossed (report says Committed). Feed to Workload::replayOps for
     * the end-to-end serialize comparison.
     */
    static std::uint64_t replayCount(const OracleReport &report,
                                     std::uint64_t committed);

  private:
    struct ByteWrite
    {
        std::uint32_t txIndex;      ///< into _txs
        std::uint8_t value;
        ObservedWrite kind;
    };

    struct ByteHistory
    {
        std::uint8_t initial = 0;   ///< pre-image of the first write
        std::vector<ByteWrite> writes;
    };

    struct TxInfo
    {
        CoreId thread = 0;
        TxId id = 0;
        std::uint64_t perThreadIndex = 0;   ///< into txOrder(thread)
    };

    std::vector<TxInfo> _txs;
    std::vector<std::vector<TxId>> _txOrder;    ///< per thread
    std::unordered_map<TxId, std::uint32_t> _txIndexById;

    /** Byte address -> history; ordered so reports are deterministic. */
    std::map<Addr, ByteHistory> _bytes;
};

} // namespace proteus

#endif // PROTEUS_CRASHTEST_COMMIT_ORACLE_HH
