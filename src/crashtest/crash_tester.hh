/**
 * @file
 * Crash injection, recovery, and oracle checking over full systems.
 *
 * A CrashTester drives one FullSystem per (scheme, workload) pair
 * through an ascending series of crash points. At each point it
 * materializes the crash image non-destructively (NVM plus the
 * battery-drained queues under ADR), runs the scheme's recovery on the
 * copy, and confronts the result with the CommitOracle's per-byte
 * expectations, the workload's structural invariants, and — for
 * single-threaded runs — an end-to-end serialize comparison against a
 * functional replay of exactly the committed prefix.
 *
 * Crash points come from a fixed list (--crash-at), a cycle stride
 * (--crash-stride / --sweep), or a seeded fuzzer (--fuzz); every mode
 * is deterministic given the seed, and results are bit-identical at
 * any --jobs level (pairs are independent machines; rows land in
 * submission order).
 */

#ifndef PROTEUS_CRASHTEST_CRASH_TESTER_HH
#define PROTEUS_CRASHTEST_CRASH_TESTER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "commit_oracle.hh"
#include "faults/fault_config.hh"
#include "harness/parallel_runner.hh"
#include "harness/system.hh"
#include "recovery/recovery.hh"

namespace proteus {

/** How crash points are chosen within one (scheme, workload) run. */
enum class CrashMode
{
    Stride,     ///< every N cycles (0 = auto: ~points per run)
    Points,     ///< explicit cycle list
    Fuzz,       ///< seeded-random cycles in (0, totalCycles)
};

const char *toString(CrashMode mode);

/** Options of one crash-testing campaign. */
struct CrashTestOptions
{
    std::vector<LogScheme> schemes;
    std::vector<WorkloadKind> workloads;
    unsigned threads = 1;
    unsigned scale = 250;
    unsigned initScale = 100;
    /** Spec for WorkloadKind::Generated entries in `workloads`. */
    wlgen::GenSpec gen;
    /** Workload seed and fuzz base seed; echoed in every report. */
    std::uint64_t seed = 11;
    CrashMode mode = CrashMode::Stride;
    Tick stride = 0;                ///< Stride mode; 0 = auto
    unsigned autoPoints = 50;       ///< target points for auto stride
    std::vector<Tick> points;       ///< Points mode, cycles
    unsigned fuzzCount = 50;        ///< Fuzz mode draws per pair
    unsigned jobs = 1;              ///< host workers over pairs
    std::string jsonPath;           ///< "" = no JSON output
    std::size_t maxViolations = 8;  ///< materialized per crash point
    /**
     * Test-only hook: skip recovery so in-flight state survives into
     * the checked image. The oracle must then report violations — this
     * is how the subsystem's own detection power is regression-tested.
     */
    bool breakRecovery = false;
    bool checkSerialization = true; ///< committed-prefix replay compare
    /** Arm the persistency-order checker (src/analysis) on each pair's
     *  reference run; ordering violations count against the pair. */
    bool check = false;
    /**
     * Share TraceBundles through the process-global TraceCache: the
     * reference run and the crash-injected run of each pair reuse one
     * functional execution (the oracle is rebuilt by replaying the
     * bundle's WriteHistory), and repeated campaigns in one process
     * skip trace generation entirely. Results are bit-identical with
     * the cache on or off.
     */
    bool useTraceCache = true;
    /** Quiescence-driven cycle skipping (see SystemConfig::cycleSkip).
     *  Crash points are cycle numbers; skipping clamps to them via
     *  run()'s limit, so sweeps are bit-identical either way. */
    bool cycleSkip = true;
    bool verbose = false;
    /**
     * NVM media fault injection composed with the crash campaign
     * (--faults / --fault-seed). With faults active a crash point may
     * legitimately lose data the media destroyed — such points are
     * verdicted detectedUnrecoverable (acceptable) as long as the loss
     * was flagged by ECC/poison; silent corruption is always a failure.
     */
    faults::FaultConfig faults;
};

/** Outcome of one crash point. */
struct CrashPointResult
{
    Tick crashCycle = 0;
    std::uint64_t committed = 0;        ///< tx-ends retired, all threads
    std::uint64_t replayed = 0;         ///< prefix used for serialize cmp
    OracleReport oracle;
    bool invariantsOk = true;
    std::string invariantError;
    bool serializeOk = true;
    std::string serializeError;
    bool truncatedTail = false;         ///< any thread's log scan
    std::uint64_t tornSlots = 0;        ///< summed over threads
    /** Log slots classified poisoned by the recovery scans. */
    std::uint64_t poisonedSlots = 0;
    /** Poisoned lines anywhere in the recovered image. */
    std::uint64_t poisonedLines = 0;
    /**
     * The crash point lost data, but every loss was *detected* (ECC
     * poison on the lines involved): an acceptable degraded outcome.
     * Rows with check failures and no detected media loss stay plain
     * failures — silent corruption is never excused.
     */
    bool detectedUnrecoverable = false;
    bool ok = true;
};

/** Outcome of one (scheme, workload) pair. */
struct CrashPairResult
{
    LogScheme scheme{};
    WorkloadKind workload{};
    Tick totalCycles = 0;               ///< full-run length
    std::uint64_t totalTxs = 0;         ///< recorded transactions
    std::vector<CrashPointResult> points;
    std::uint64_t violations = 0;       ///< oracle + invariant + serialize
    /** Persistency-order violations on the reference run (--check). */
    std::uint64_t checkViolations = 0;
    /** Crash points verdicted detectedUnrecoverable (media loss). */
    std::uint64_t detectedUnrecoverable = 0;
    std::vector<std::string> failureReports;    ///< human-readable
    /** Byte-diff notes for detected-unrecoverable points (capped). */
    std::vector<std::string> degradedReports;
};

/** Campaign outcome. */
struct CrashTestSummary
{
    std::vector<CrashPairResult> pairs;
    std::uint64_t crashPoints = 0;
    std::uint64_t violations = 0;
    /** Persistency-order violations across reference runs (--check). */
    std::uint64_t checkViolations = 0;
    /** Crash points with acceptable detected-unrecoverable media loss. */
    std::uint64_t detectedUnrecoverable = 0;
    bool ok = true;
};

/**
 * Run per-thread recovery for @p system's scheme against @p image
 * (in place) and return the per-thread results. PMEMNoLog has no
 * recovery and returns empty results.
 */
std::vector<RecoveryResult> recoverAllThreads(FullSystem &system,
                                              MemoryImage &image);

/**
 * Run the campaign described by @p opts; progress and failure reports
 * go to @p os. Writes JSON to opts.jsonPath if set. The returned
 * summary (and the JSON) is bit-identical for any opts.jobs value.
 */
CrashTestSummary runCrashTests(const CrashTestOptions &opts,
                               std::ostream &os);

/** The single command line that reproduces @p pair's campaign cell. */
std::string replayCommand(const CrashTestOptions &opts,
                          const CrashPairResult &pair);

} // namespace proteus

#endif // PROTEUS_CRASHTEST_CRASH_TESTER_HH
