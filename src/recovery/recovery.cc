#include "recovery.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace proteus {

namespace {

bool
isAllZero(const std::uint8_t *bytes, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (bytes[i] != 0)
            return false;
    }
    return true;
}

} // namespace

Recovery::LogScan
Recovery::scanLogContiguous(const MemoryImage &image, Addr log_start,
                            Addr log_end)
{
    LogScan scan;
    for (Addr slot = log_start; slot + logEntrySize <= log_end;
         slot += logEntrySize) {
        ++scan.slotsScanned;
        // The media ECC verdict outranks the parse: a poisoned slot may
        // still decode as a plausible record, and replaying it would
        // inject garbage. The writer fills this area contiguously, so
        // the scan stops here either way.
        if (image.isPoisoned(slot)) {
            scan.truncated = true;
            scan.poisonedSlots = 1;
            scan.firstPoisonedSlot = slot;
            break;
        }
        std::uint8_t bytes[logEntrySize];
        image.read(slot, bytes, sizeof(bytes));
        const LogRecord rec = LogRecord::fromBytes(bytes);
        if (!rec.valid()) {
            // First invalid slot: the writer fills this area from the
            // base, so nothing live can follow. A nonzero slot is a
            // torn record — report, never parse past it.
            if (!isAllZero(bytes, sizeof(bytes))) {
                scan.truncated = true;
                scan.tornSlot = slot;
                scan.tornSlots = 1;
            }
            break;
        }
        scan.records.push_back(rec);
    }
    return scan;
}

Recovery::LogScan
Recovery::scanLogSparse(const MemoryImage &image, Addr log_start,
                        Addr log_end)
{
    LogScan scan;
    for (Addr slot = log_start; slot + logEntrySize <= log_end;
         slot += logEntrySize) {
        ++scan.slotsScanned;
        // Poison outranks the parse (see scanLogContiguous); in the
        // circular areas valid records may follow holes, so classify
        // the slot and keep scanning.
        if (image.isPoisoned(slot)) {
            ++scan.poisonedSlots;
            if (scan.firstPoisonedSlot == invalidAddr)
                scan.firstPoisonedSlot = slot;
            continue;
        }
        std::uint8_t bytes[logEntrySize];
        image.read(slot, bytes, sizeof(bytes));
        const LogRecord rec = LogRecord::fromBytes(bytes);
        if (rec.valid()) {
            scan.records.push_back(rec);
        } else if (!isAllZero(bytes, sizeof(bytes))) {
            ++scan.tornSlots;
            if (scan.tornSlot == invalidAddr)
                scan.tornSlot = slot;
        }
    }
    return scan;
}

std::vector<LogRecord>
Recovery::scanLog(const MemoryImage &image, Addr log_start, Addr log_end)
{
    return scanLogSparse(image, log_start, log_end).records;
}

std::uint64_t
Recovery::undo(MemoryImage &image, const std::vector<LogRecord> &records)
{
    // Recovery must restore the *pre-transaction* value: when several
    // entries cover the same granule (LLT miss after eviction, or a
    // rescheduled thread), only the earliest in program order is
    // authoritative (Section 4.2).
    std::map<Addr, const LogRecord *> earliest;
    for (const LogRecord &rec : records) {
        auto [it, inserted] = earliest.emplace(rec.fromAddr, &rec);
        if (!inserted && rec.seq < it->second->seq)
            it->second = &rec;
    }
    for (const auto &[addr, rec] : earliest)
        image.write(addr, rec->data.data(), logDataSize);
    return earliest.size();
}

RecoveryResult
Recovery::recoverProteus(MemoryImage &image, Addr log_start, Addr log_end)
{
    RecoveryResult result;
    const LogScan scan = scanLogSparse(image, log_start, log_end);
    const auto &records = scan.records;
    result.entriesScanned = records.size();
    result.tornSlot = scan.tornSlot;
    result.tornSlots = scan.tornSlots;
    result.poisonedSlots = scan.poisonedSlots;
    result.firstPoisonedSlot = scan.firstPoisonedSlot;
    if (records.empty())
        return result;

    // Only the most recent transaction's entries are live: txIds are
    // monotonic within a thread (Section 4.3).
    TxId newest = 0;
    for (const LogRecord &rec : records)
        newest = std::max(newest, rec.txId);

    std::vector<LogRecord> live;
    bool committed = false;
    for (const LogRecord &rec : records) {
        if (rec.txId != newest)
            continue;
        live.push_back(rec);
        if (rec.committed())
            committed = true;
    }
    if (committed)
        return result;

    result.didUndo = true;
    result.undoneTx = newest;
    result.entriesApplied = undo(image, live);
    return result;
}

RecoveryResult
Recovery::recoverAtom(MemoryImage &image, Addr area_start, Addr area_end)
{
    RecoveryResult result;
    const TxId committed = image.read64(area_start);
    const LogScan scan =
        scanLogSparse(image, area_start + logEntrySize, area_end);
    const auto &records = scan.records;
    result.entriesScanned = records.size();
    result.tornSlot = scan.tornSlot;
    result.tornSlots = scan.tornSlots;
    result.poisonedSlots = scan.poisonedSlots;
    result.firstPoisonedSlot = scan.firstPoisonedSlot;

    std::vector<LogRecord> live;
    TxId newest = 0;
    for (const LogRecord &rec : records) {
        if (rec.txId > committed) {
            live.push_back(rec);
            newest = std::max(newest, rec.txId);
        }
    }
    if (live.empty())
        return result;

    result.didUndo = true;
    result.undoneTx = newest;
    result.entriesApplied = undo(image, live);
    return result;
}

RecoveryResult
Recovery::recoverSoftware(MemoryImage &image, Addr log_start,
                          Addr log_end, Addr log_flag_addr)
{
    RecoveryResult result;
    const TxId flagged = image.read64(log_flag_addr);
    if (flagged == 0)
        return result;  // no transaction was between steps 2 and 4

    // The software logger rewrites the area from its base every
    // transaction, so the scan stops at the first invalid slot rather
    // than parsing whatever stale bytes lie beyond a torn record.
    const LogScan scan = scanLogContiguous(image, log_start, log_end);
    const auto &records = scan.records;
    result.entriesScanned = records.size();
    result.truncatedTail = scan.truncated;
    result.tornSlot = scan.tornSlot;
    result.tornSlots = scan.tornSlots;
    result.poisonedSlots = scan.poisonedSlots;
    result.firstPoisonedSlot = scan.firstPoisonedSlot;

    std::vector<LogRecord> live;
    for (const LogRecord &rec : records) {
        if (rec.txId == flagged)
            live.push_back(rec);
    }
    result.didUndo = true;
    result.undoneTx = flagged;
    result.entriesApplied = undo(image, live);
    image.write64(log_flag_addr, 0);
    return result;
}

} // namespace proteus
