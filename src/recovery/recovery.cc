#include "recovery.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace proteus {

std::vector<LogRecord>
Recovery::scanLog(const MemoryImage &image, Addr log_start, Addr log_end)
{
    std::vector<LogRecord> records;
    for (Addr slot = log_start; slot + logEntrySize <= log_end;
         slot += logEntrySize) {
        std::uint8_t bytes[logEntrySize];
        image.read(slot, bytes, sizeof(bytes));
        const LogRecord rec = LogRecord::fromBytes(bytes);
        if (rec.valid())
            records.push_back(rec);
    }
    return records;
}

std::uint64_t
Recovery::undo(MemoryImage &image, const std::vector<LogRecord> &records)
{
    // Recovery must restore the *pre-transaction* value: when several
    // entries cover the same granule (LLT miss after eviction, or a
    // rescheduled thread), only the earliest in program order is
    // authoritative (Section 4.2).
    std::map<Addr, const LogRecord *> earliest;
    for (const LogRecord &rec : records) {
        auto [it, inserted] = earliest.emplace(rec.fromAddr, &rec);
        if (!inserted && rec.seq < it->second->seq)
            it->second = &rec;
    }
    for (const auto &[addr, rec] : earliest)
        image.write(addr, rec->data.data(), logDataSize);
    return earliest.size();
}

RecoveryResult
Recovery::recoverProteus(MemoryImage &image, Addr log_start, Addr log_end)
{
    RecoveryResult result;
    const auto records = scanLog(image, log_start, log_end);
    result.entriesScanned = records.size();
    if (records.empty())
        return result;

    // Only the most recent transaction's entries are live: txIds are
    // monotonic within a thread (Section 4.3).
    TxId newest = 0;
    for (const LogRecord &rec : records)
        newest = std::max(newest, rec.txId);

    std::vector<LogRecord> live;
    bool committed = false;
    for (const LogRecord &rec : records) {
        if (rec.txId != newest)
            continue;
        live.push_back(rec);
        if (rec.committed())
            committed = true;
    }
    if (committed)
        return result;

    result.didUndo = true;
    result.undoneTx = newest;
    result.entriesApplied = undo(image, live);
    return result;
}

RecoveryResult
Recovery::recoverAtom(MemoryImage &image, Addr area_start, Addr area_end)
{
    RecoveryResult result;
    const TxId committed = image.read64(area_start);
    const auto records =
        scanLog(image, area_start + logEntrySize, area_end);
    result.entriesScanned = records.size();

    std::vector<LogRecord> live;
    TxId newest = 0;
    for (const LogRecord &rec : records) {
        if (rec.txId > committed) {
            live.push_back(rec);
            newest = std::max(newest, rec.txId);
        }
    }
    if (live.empty())
        return result;

    result.didUndo = true;
    result.undoneTx = newest;
    result.entriesApplied = undo(image, live);
    return result;
}

RecoveryResult
Recovery::recoverSoftware(MemoryImage &image, Addr log_start,
                          Addr log_end, Addr log_flag_addr)
{
    RecoveryResult result;
    const TxId flagged = image.read64(log_flag_addr);
    if (flagged == 0)
        return result;  // no transaction was between steps 2 and 4

    const auto records = scanLog(image, log_start, log_end);
    result.entriesScanned = records.size();

    std::vector<LogRecord> live;
    for (const LogRecord &rec : records) {
        if (rec.txId == flagged)
            live.push_back(rec);
    }
    result.didUndo = true;
    result.undoneTx = flagged;
    result.entriesApplied = undo(image, live);
    image.write64(log_flag_addr, 0);
    return result;
}

} // namespace proteus
