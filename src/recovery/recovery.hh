/**
 * @file
 * Crash recovery for all three logging families.
 *
 * The crash image is what the persistency domain preserves: the NVM
 * contents plus (under ADR) whatever the battery drains from the
 * WPQ/LPQ. Recovery parses per-thread undo logs in that image and rolls
 * back the one transaction per thread that may be incomplete:
 *
 *  - Proteus (Section 4.3): only entries of the *most recent*
 *    transaction in a thread's log area are live; if none of them
 *    carries the tx-end marker, the transaction was in flight and is
 *    undone using the earliest entry per 32B granule.
 *  - ATOM: the per-core commit record names the last committed
 *    transaction; valid entries with a newer txId are undone.
 *  - PMEM software logging (Figure 2): a nonzero logFlag means the
 *    flagged transaction was in flight; its entries are undone.
 */

#ifndef PROTEUS_RECOVERY_RECOVERY_HH
#define PROTEUS_RECOVERY_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "heap/memory_image.hh"
#include "logging/log_record.hh"
#include "sim/types.hh"

namespace proteus {

/** Outcome of recovering one thread's log. */
struct RecoveryResult
{
    bool didUndo = false;
    TxId undoneTx = 0;
    std::uint64_t entriesApplied = 0;
    std::uint64_t entriesScanned = 0;
    /** The scan stopped early at a torn tail record (software logs). */
    bool truncatedTail = false;
    /** First slot holding a torn (nonzero but unparseable) record. */
    Addr tornSlot = invalidAddr;
    /** Torn slots seen; for the circular hardware areas these are
     *  skipped (valid records may follow holes) but still reported. */
    std::uint64_t tornSlots = 0;
    /** Log slots the media fault layer marked detected-uncorrectable:
     *  classified and skipped (the ECC mark — not the parse — decides;
     *  a poisoned slot may still decode as a plausible record), never
     *  replayed into the image. */
    std::uint64_t poisonedSlots = 0;
    /** First poisoned slot seen (invalidAddr if none). */
    Addr firstPoisonedSlot = invalidAddr;
};

/** Stateless recovery routines operating on a crash image. */
class Recovery
{
  public:
    /** What one pass over a log region found. */
    struct LogScan
    {
        std::vector<LogRecord> records;
        bool truncated = false;     ///< contiguous scan stopped early
        Addr tornSlot = invalidAddr;
        std::uint64_t tornSlots = 0;
        std::uint64_t slotsScanned = 0;
        /** Detected-uncorrectable slots (media ECC poison); skipped,
         *  counted, and never parsed into records. */
        std::uint64_t poisonedSlots = 0;
        Addr firstPoisonedSlot = invalidAddr;
    };

    /**
     * Scan a log the writer fills contiguously from @p log_start (the
     * software schemes rewrite the area from its base every
     * transaction). The scan stops cleanly at the first invalid slot —
     * nothing live can follow it — and reports a torn tail when that
     * slot holds a partial (nonzero) record rather than virgin zeros.
     */
    static LogScan scanLogContiguous(const MemoryImage &image,
                                     Addr log_start, Addr log_end);

    /**
     * Scan a circular hardware log area in which committed entries are
     * invalidated in place (ATOM zeroes them, Proteus LWR drops their
     * writes), so live records may follow holes: the whole area is
     * scanned and invalid slots skipped. Torn slots (nonzero yet
     * unparseable) are counted and reported, never applied.
     */
    static LogScan scanLogSparse(const MemoryImage &image,
                                 Addr log_start, Addr log_end);

    /** Parse every valid record in [@p log_start, @p log_end). */
    static std::vector<LogRecord> scanLog(const MemoryImage &image,
                                          Addr log_start, Addr log_end);

    /** Proteus: undo the newest transaction unless it is marked
     *  committed (tx-end flag on any of its entries). */
    static RecoveryResult recoverProteus(MemoryImage &image,
                                         Addr log_start, Addr log_end);

    /** ATOM: undo valid entries newer than the commit record stored in
     *  the area's first block. */
    static RecoveryResult recoverAtom(MemoryImage &image,
                                      Addr area_start, Addr area_end);

    /** PMEM software logging: undo the transaction named by logFlag. */
    static RecoveryResult recoverSoftware(MemoryImage &image,
                                          Addr log_start, Addr log_end,
                                          Addr log_flag_addr);

  private:
    /** Apply the earliest entry per granule among @p records. */
    static std::uint64_t undo(MemoryImage &image,
                              const std::vector<LogRecord> &records);
};

} // namespace proteus

#endif // PROTEUS_RECOVERY_RECOVERY_HH
