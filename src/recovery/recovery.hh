/**
 * @file
 * Crash recovery for all three logging families.
 *
 * The crash image is what the persistency domain preserves: the NVM
 * contents plus (under ADR) whatever the battery drains from the
 * WPQ/LPQ. Recovery parses per-thread undo logs in that image and rolls
 * back the one transaction per thread that may be incomplete:
 *
 *  - Proteus (Section 4.3): only entries of the *most recent*
 *    transaction in a thread's log area are live; if none of them
 *    carries the tx-end marker, the transaction was in flight and is
 *    undone using the earliest entry per 32B granule.
 *  - ATOM: the per-core commit record names the last committed
 *    transaction; valid entries with a newer txId are undone.
 *  - PMEM software logging (Figure 2): a nonzero logFlag means the
 *    flagged transaction was in flight; its entries are undone.
 */

#ifndef PROTEUS_RECOVERY_RECOVERY_HH
#define PROTEUS_RECOVERY_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "heap/memory_image.hh"
#include "logging/log_record.hh"
#include "sim/types.hh"

namespace proteus {

/** Outcome of recovering one thread's log. */
struct RecoveryResult
{
    bool didUndo = false;
    TxId undoneTx = 0;
    std::uint64_t entriesApplied = 0;
    std::uint64_t entriesScanned = 0;
};

/** Stateless recovery routines operating on a crash image. */
class Recovery
{
  public:
    /** Parse every valid record in [@p log_start, @p log_end). */
    static std::vector<LogRecord> scanLog(const MemoryImage &image,
                                          Addr log_start, Addr log_end);

    /** Proteus: undo the newest transaction unless it is marked
     *  committed (tx-end flag on any of its entries). */
    static RecoveryResult recoverProteus(MemoryImage &image,
                                         Addr log_start, Addr log_end);

    /** ATOM: undo valid entries newer than the commit record stored in
     *  the area's first block. */
    static RecoveryResult recoverAtom(MemoryImage &image,
                                      Addr area_start, Addr area_end);

    /** PMEM software logging: undo the transaction named by logFlag. */
    static RecoveryResult recoverSoftware(MemoryImage &image,
                                          Addr log_start, Addr log_end,
                                          Addr log_flag_addr);

  private:
    /** Apply the earliest entry per granule among @p records. */
    static std::uint64_t undo(MemoryImage &image,
                              const std::vector<LogRecord> &records);
};

} // namespace proteus

#endif // PROTEUS_RECOVERY_RECOVERY_HH
