/**
 * @file
 * The persist-edge event interface consumed by the persistency-order
 * checker (src/analysis/persist_checker.hh).
 *
 * Core and MemCtrl hold a nullable PersistSink pointer — the same
 * near-zero-cost pattern as obs::TxObserver — and invoke it at the
 * points where a happens-before edge of the logging protocol is
 * created or discharged: store retirement (program order), the tx-end
 * durability point, fence retirement, memory-controller write
 * acceptance (the ADR durability boundary), NVM array issue/persist,
 * and the Proteus tx-end flash-clear/marker operations. Every hook
 * carries the simulation tick of the instrumented event, so the
 * recorded stream is bit-identical with quiescence cycle skipping on
 * or off: none of these sites is per-cycle, and all fire only on
 * executed ticks.
 *
 * The interface deliberately sits below every timing component (it
 * depends only on sim/types.hh) so cpu and memctrl can emit edges
 * without linking against the checker.
 */

#ifndef PROTEUS_ANALYSIS_PERSIST_SINK_HH
#define PROTEUS_ANALYSIS_PERSIST_SINK_HH

#include <cstdint>

#include "sim/types.hh"

namespace proteus {
namespace analysis {

/** What happened to a tx-end marker at the memory controller. */
enum class MarkerOp : std::uint8_t
{
    Held,       ///< latest LPQ entry flagged tx-end and retained
    Rewritten,  ///< all entries had left; last entry re-queued with flag
    Dropped,    ///< a successor tx's first entry retired the marker
};

/** Persist-edge hooks; default implementations ignore everything. */
class PersistSink
{
  public:
    virtual ~PersistSink() = default;

    /// @name Core side (retirement boundaries, program order)
    /// @{
    /** A store retired. @p ordinal is the dynamic instruction sequence
     *  number (the "store PC" of violation reports). */
    virtual void storeRetired(CoreId, TxId, Addr, unsigned /*size*/,
                              bool /*persistent*/,
                              std::uint64_t /*ordinal*/, Tick)
    {
    }
    /**
     * A store left the store buffer toward the cache hierarchy. Only
     * from this point on can its data reach the memory controller, so
     * this — not retirement — is where the transaction becomes a
     * visible writer of the granule for log-coverage purposes.
     */
    virtual void storeReleased(CoreId, TxId, Addr, unsigned /*size*/,
                               std::uint64_t /*ordinal*/, Tick)
    {
    }
    /** An sfence/mfence retired (all persists drained). */
    virtual void fenceRetired(CoreId, Tick) {}
    /**
     * The durability point of a transaction: tx-end passed its
     * scheme-specific retirement gate. Emitted before the core calls
     * MemCtrl::txEnd, so flash-clear events are always observed after
     * the durable-commit announcement they depend on.
     */
    virtual void durablePoint(CoreId, TxId, Tick) {}
    /** A timing-level lock was released at retirement. */
    virtual void lockReleased(CoreId, Addr, Tick) {}
    /// @}

    /// @name Memory-controller side
    /// @{
    /**
     * A data (non-log) write was accepted into the WPQ — the ADR
     * durability boundary. @p combined: absorbed into an existing WPQ
     * entry by write combining (still newly durable data). @p data
     * points at the 64B payload and is valid only during the call.
     */
    virtual void dataWriteAccepted(CoreId, TxId, Addr, std::uint64_t /*seq*/,
                                   bool /*combined*/,
                                   const std::uint8_t * /*data*/, Tick)
    {
    }
    /**
     * A log write (Proteus LPQ entry or ATOM WPQ log entry) was
     * accepted. @p granule is the 32B data granule the record covers
     * (LogRecord::fromAddr, log-aligned); @p lpq distinguishes the
     * Proteus LPQ from ATOM's WPQ-resident entries.
     */
    virtual void logWriteAccepted(CoreId, TxId, Addr /*slot*/,
                                  Addr /*granule*/,
                                  std::uint64_t /*recSeq*/, bool /*lpq*/,
                                  Tick)
    {
    }
    /** A queued write was issued to the NVM array. @p seq is its
     *  acceptance sequence number (FIFO-per-address witness). */
    virtual void nvmWriteIssued(bool /*lpq*/, Addr, std::uint64_t /*seq*/,
                                Tick)
    {
    }
    /** A write's data reached the NVM array. */
    virtual void nvmWritePersisted(bool /*lpq*/, Addr,
                                   std::uint64_t /*seq*/, Tick)
    {
    }
    /** @p n LPQ entries of (core, tx) were flash-cleared at tx-end. */
    virtual void lpqFlashCleared(CoreId, TxId, std::uint64_t /*n*/, Tick)
    {
    }
    /** A tx-end marker operation (Section 4.3). */
    virtual void txEndMarker(CoreId, TxId, MarkerOp, Tick) {}
    /// @}
};

} // namespace analysis
} // namespace proteus

#endif // PROTEUS_ANALYSIS_PERSIST_SINK_HH
