/**
 * @file
 * Seeded event-stream mutation for checker self-validation
 * (`--check-mutate N`).
 *
 * The mutator interposes between the instrumented machine and the
 * PersistChecker, forwarding both event streams unchanged except for
 * one seeded, rule-targeted perturbation: it drops or duplicates the
 * k-th qualifying persist edge (k derived from the seed) in exactly the
 * way the target rule forbids. A correct checker must flag the
 * mutated stream; the mutation campaign in check_runner asserts that
 * every armed rule catches its own injected violation, which is the CI
 * gate proving the rules are live (not vacuously passing).
 */

#ifndef PROTEUS_ANALYSIS_STREAM_MUTATOR_HH
#define PROTEUS_ANALYSIS_STREAM_MUTATOR_HH

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/persist_checker.hh"
#include "analysis/persist_sink.hh"
#include "analysis/rules.hh"
#include "obs/tx_observer.hh"

namespace proteus {
namespace analysis {

class StreamMutator : public obs::TxObserver, public PersistSink
{
  public:
    /** Mutates the @p target rule's k-th qualifying edge, k seeded by
     *  @p seed; everything else forwards verbatim to @p sink. */
    StreamMutator(Rule target, std::uint64_t seed, PersistChecker &sink);

    /** Register one log area [start, end). Lets the mutator target
     *  software log-entry writes and skip protocol stores. */
    void addLogArea(Addr start, Addr end);

    /** True once the seeded perturbation has been applied. */
    bool mutated() const { return _mutations > 0; }
    std::uint64_t mutations() const { return _mutations; }

    /// @name obs::TxObserver forwarding (with EntriesBeforeTxEnd drop)
    /// @{
    void txBegin(CoreId core, TxId tx, Tick now) override;
    void txCommit(CoreId core, TxId tx, Tick now) override;
    void lockGranted(CoreId core, TxId tx, Addr addr, Tick now) override;
    void logCreated(CoreId core, TxId tx, Tick now) override;
    void logAcked(CoreId core, TxId tx, Tick created_at,
                  Tick now) override;
    /// @}

    /// @name PersistSink forwarding (with rule-targeted perturbations)
    /// @{
    void storeRetired(CoreId core, TxId tx, Addr addr, unsigned size,
                      bool persistent, std::uint64_t ordinal,
                      Tick now) override;
    void storeReleased(CoreId core, TxId tx, Addr addr, unsigned size,
                       std::uint64_t ordinal, Tick now) override;
    void fenceRetired(CoreId core, Tick now) override;
    void durablePoint(CoreId core, TxId tx, Tick now) override;
    void lockReleased(CoreId core, Addr addr, Tick now) override;
    void dataWriteAccepted(CoreId core, TxId tx, Addr addr,
                           std::uint64_t seq, bool combined,
                           const std::uint8_t *data, Tick now) override;
    void logWriteAccepted(CoreId core, TxId tx, Addr slot, Addr granule,
                          std::uint64_t rec_seq, bool lpq,
                          Tick now) override;
    void nvmWriteIssued(bool lpq, Addr addr, std::uint64_t seq,
                        Tick now) override;
    void nvmWritePersisted(bool lpq, Addr addr, std::uint64_t seq,
                           Tick now) override;
    void lpqFlashCleared(CoreId core, TxId tx, std::uint64_t n,
                         Tick now) override;
    void txEndMarker(CoreId core, TxId tx, MarkerOp op,
                     Tick now) override;
    /// @}

  private:
    /** Core-id offset for the synthetic racing writer. */
    static constexpr CoreId phantomCore = 100;

    bool targeting(Rule r) const { return _target == r; }
    bool inLogArea(Addr addr) const;
    /** Counts qualifying edges; true exactly on the k-th. */
    bool takeKth();
    void releaseHeldDurablePoints(CoreId core);

    Rule _target;
    std::uint64_t _k;           ///< 1-based index of the mutated edge
    std::uint64_t _seen = 0;    ///< qualifying edges so far
    std::uint64_t _mutations = 0;
    PersistChecker &_sink;
    std::vector<std::pair<Addr, Addr>> _logAreas;

    /** FlashClearAfterCommit: durable points held back per core. */
    std::vector<std::tuple<CoreId, TxId, Tick>> _heldDurable;
    /** DurableByCommit: acceptance drop window. */
    bool _dropping = false;
    Addr _dropBlock = invalidAddr;
    CoreId _dropCore = 0;
    TxId _dropTx = 0;
};

} // namespace analysis
} // namespace proteus

#endif // PROTEUS_ANALYSIS_STREAM_MUTATOR_HH
