/**
 * @file
 * The online happens-before checker for the logging protocols.
 *
 * PersistChecker consumes three event streams:
 *   - obs::TxObserver spans (tx begin/commit, lock grants, log-record
 *     lifecycle) from the cores and the MC,
 *   - the new analysis::PersistSink persist/fence/flash-clear edges
 *     emitted by src/cpu/core.cc and src/memctrl/mem_ctrl.cc, and
 *   - optionally the TraceWriteObserver store kinds recorded at trace
 *     generation (WriteHistory), which distinguish undo-logged stores
 *     from fresh-allocation stores for the software schemes.
 *
 * Against these it verifies the per-scheme declarative rule set of
 * rules.hh and produces minimal violation reports in the style of the
 * crashtest byte-diff: guilty transaction, store ordinal, the missing
 * edge, and a one-command repro line.
 *
 * All state updates happen on executed-tick hooks, so verdicts are
 * bit-identical with cycle skipping on or off and at any --jobs count.
 */

#ifndef PROTEUS_ANALYSIS_PERSIST_CHECKER_HH
#define PROTEUS_ANALYSIS_PERSIST_CHECKER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/persist_sink.hh"
#include "analysis/rules.hh"
#include "obs/tx_observer.hh"
#include "sim/config.hh"

namespace proteus {

class WriteHistory;

namespace analysis {

/** One detected ordering violation (detail retained up to a cap). */
struct Violation
{
    Rule rule = Rule::LogBeforeData;
    CoreId core = 0;
    TxId tx = 0;
    Addr addr = invalidAddr;
    std::uint64_t ordinal = 0;  ///< dynamic seq of the guilty store (0: n/a)
    Tick tick = 0;              ///< when the violation was detected
    std::string missingEdge;    ///< the happens-before edge that is absent
    std::string detail;         ///< one extra context line
};

/** Per-rule counters: how often the rule was evaluated and failed. */
struct RuleStats
{
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
};

/** The checker's final verdict for one run. */
struct CheckOutcome
{
    std::array<RuleStats, numRules> rules{};
    std::array<bool, numRules> armed{};
    std::vector<Violation> violations;  ///< first reportCap, in event order
    std::uint64_t totalViolations = 0;
    std::uint64_t eventsSeen = 0;
    std::string repro;                  ///< one-command repro line

    bool pass() const { return totalViolations == 0; }
};

/** Detailed violations retained per run (all are counted). */
constexpr std::size_t reportCap = 32;

class PersistChecker : public obs::TxObserver, public PersistSink
{
  public:
    /** @p repro is the one-command repro line carried into reports. */
    PersistChecker(LogScheme scheme, bool adr, std::string repro);

    /** Register one log area [start, end) owned by @p owner: its
     *  blocks are excluded from data-store tracking, and (software
     *  schemes) Data writes into it are parsed as undo-log records. */
    void addLogArea(Addr start, Addr end, CoreId owner);

    /** Bind the trace-time write history (store kinds); arms
     *  LogBeforeData for the software schemes. Call before the run. */
    void bindWriteHistory(const WriteHistory &history);

    CheckOutcome outcome() const;
    std::uint64_t totalViolations() const { return _totalViolations; }

    /// @name obs::TxObserver stream
    /// @{
    void txBegin(CoreId core, TxId tx, Tick now) override;
    void txCommit(CoreId core, TxId tx, Tick now) override;
    void lockGranted(CoreId core, TxId tx, Addr addr, Tick now) override;
    void logCreated(CoreId core, TxId tx, Tick now) override;
    void logAcked(CoreId core, TxId tx, Tick created_at,
                  Tick now) override;
    /// @}

    /// @name analysis::PersistSink stream
    /// @{
    void storeRetired(CoreId core, TxId tx, Addr addr, unsigned size,
                      bool persistent, std::uint64_t ordinal,
                      Tick now) override;
    void storeReleased(CoreId core, TxId tx, Addr addr, unsigned size,
                       std::uint64_t ordinal, Tick now) override;
    void fenceRetired(CoreId core, Tick now) override;
    void durablePoint(CoreId core, TxId tx, Tick now) override;
    void lockReleased(CoreId core, Addr addr, Tick now) override;
    void dataWriteAccepted(CoreId core, TxId tx, Addr addr,
                           std::uint64_t seq, bool combined,
                           const std::uint8_t *data, Tick now) override;
    void logWriteAccepted(CoreId core, TxId tx, Addr slot, Addr granule,
                          std::uint64_t rec_seq, bool lpq,
                          Tick now) override;
    void nvmWriteIssued(bool lpq, Addr addr, std::uint64_t seq,
                        Tick now) override;
    void nvmWritePersisted(bool lpq, Addr addr, std::uint64_t seq,
                           Tick now) override;
    void lpqFlashCleared(CoreId core, TxId tx, std::uint64_t n,
                         Tick now) override;
    void txEndMarker(CoreId core, TxId tx, MarkerOp op,
                     Tick now) override;
    /// @}

  private:
    using CoreTx = std::pair<CoreId, TxId>;

    /** The last retired store to one 32B granule within a tx. */
    struct StoreRec
    {
        Tick retired = 0;
        std::uint64_t ordinal = 0;
        Addr addr = invalidAddr;    ///< original (unaligned) store addr
        unsigned size = 0;
    };

    struct TxState
    {
        bool began = false;
        bool durable = false;
        bool committed = false;
        Tick beginTick = 0;
        Tick durableTick = 0;
        Tick commitTick = 0;
        std::uint64_t logsCreated = 0;
        std::uint64_t logsAcked = 0;
        /** Transactional persistent stores by granule. Ordered so the
         *  durability sweep at tx end reports in address order. */
        std::map<Addr, StoreRec> stores;
        /** Granules whose stores have left the store buffer (visible
         *  writers for the LogBeforeData rule). */
        std::unordered_set<Addr> released;
        /** Granules covered by a durable undo-log record. */
        std::unordered_set<Addr> logCover;
    };

    struct CoreState
    {
        /** Locks currently held, in acquisition order (small). */
        std::vector<Addr> locks;
    };

    /** The last write to one 8-byte chunk (race detection). */
    struct ChunkWrite
    {
        CoreId core = 0;
        TxId tx = 0;
        std::uint64_t ordinal = 0;
        Tick tick = 0;
        std::vector<Addr> locks;    ///< lockset at retirement
    };

    bool armed(Rule r) const
    {
        return _armed[static_cast<unsigned>(r)];
    }
    RuleStats &stats(Rule r)
    {
        return _ruleStats[static_cast<unsigned>(r)];
    }
    TxState &tx(CoreId core, TxId id) { return _txs[CoreTx{core, id}]; }
    CoreState &coreState(CoreId core) { return _cores[core]; }

    void recordViolation(Rule rule, CoreId core, TxId id, Addr addr,
                         std::uint64_t ordinal, Tick now,
                         std::string missing_edge, std::string detail);
    /** Owner core of @p addr if it falls in a software log area. */
    bool logAreaOwner(Addr addr, CoreId &owner) const;
    /** True when the write history marks (core, tx, granule) as an
     *  undo-logged store (vs. storeInit / raw). */
    bool historyLogged(CoreId core, TxId id, Addr granule) const;
    /** True when every history write to (core, tx, granule) was a raw
     *  (persist-unordered) store — exempt from DurableByCommit. */
    bool historyRawOnly(CoreId core, TxId id, Addr granule) const;
    /** True when @p prev's transaction committed before the writing
     *  transaction began — the serialization order itself is the
     *  happens-before edge (LockDiscipline). */
    bool commitOrdered(const ChunkWrite &prev, CoreId core, TxId id,
                       Tick now) const;

    void checkLogCoverage(Addr granule, Tick now);

    LogScheme _scheme;
    bool _adr;
    bool _isHwScheme;
    bool _isSwLogScheme;
    bool _haveHistory = false;
    std::array<bool, numRules> _armed{};
    std::string _repro;

    std::array<RuleStats, numRules> _ruleStats{};
    std::vector<Violation> _violations;
    std::uint64_t _totalViolations = 0;
    std::uint64_t _eventsSeen = 0;

    std::unordered_map<CoreId, CoreState> _cores;
    /** Ordered so any whole-table sweep stays deterministic. */
    std::map<CoreTx, TxState> _txs;
    /** Granule -> live transactions that wrote it (insertion order). */
    std::unordered_map<Addr, std::vector<CoreTx>> _granuleWriters;
    /** Block -> tick of the last MC write acceptance. */
    std::unordered_map<Addr, Tick> _lastAccept;
    /** Block -> tick of the last NVM array writeback. */
    std::unordered_map<Addr, Tick> _lastPersist;
    /** Per queue (0 = WPQ, 1 = LPQ): block -> last issued/persisted
     *  acceptance seq, for the FIFO-per-address rule. */
    std::array<std::unordered_map<Addr, std::uint64_t>, 2> _lastIssuedSeq;
    std::array<std::unordered_map<Addr, std::uint64_t>, 2>
        _lastPersistSeq;
    /** 8B chunk -> last writer (race detection). */
    std::unordered_map<Addr, ChunkWrite> _chunks;
    /** Software log areas as (start, end, owner), sorted by start. */
    std::vector<std::tuple<Addr, Addr, CoreId>> _logAreas;
    /** (core, tx) -> granule -> history-kind bitmask (logged /
     *  unlogged / raw), from the bound write history. */
    std::map<CoreTx, std::unordered_map<Addr, std::uint8_t>> _hist;
};

} // namespace analysis
} // namespace proteus

#endif // PROTEUS_ANALYSIS_PERSIST_CHECKER_HH
