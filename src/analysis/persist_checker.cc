#include "analysis/persist_checker.hh"

#include <algorithm>
#include <sstream>

#include "logging/log_record.hh"
#include "trace/write_history.hh"

namespace proteus {
namespace analysis {

namespace {

/** History-kind bits for one (tx, granule); see bindWriteHistory. */
constexpr std::uint8_t histLoggedBit = 1;
constexpr std::uint8_t histUnloggedBit = 2;
constexpr std::uint8_t histRawBit = 4;

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

/** Sorted-vector intersection test (locksets are tiny). */
bool
haveCommonLock(const std::vector<Addr> &a, const std::vector<Addr> &b)
{
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib)
            ++ia;
        else if (*ib < *ia)
            ++ib;
        else
            return true;
    }
    return false;
}

} // namespace

PersistChecker::PersistChecker(LogScheme scheme, bool adr,
                               std::string repro)
    : _scheme(scheme), _adr(adr),
      _isHwScheme(!isSoftwareScheme(scheme)),
      _isSwLogScheme(scheme == LogScheme::PMEM ||
                     scheme == LogScheme::PMEMPCommit),
      _repro(std::move(repro))
{
    _armed = rulesForScheme(scheme, adr, /*have_history=*/false);
}

void
PersistChecker::addLogArea(Addr start, Addr end, CoreId owner)
{
    if (start == invalidAddr || start >= end)
        return;
    _logAreas.emplace_back(start, end, owner);
    std::sort(_logAreas.begin(), _logAreas.end());
}

void
PersistChecker::bindWriteHistory(const WriteHistory &history)
{
    _haveHistory = true;
    _armed = rulesForScheme(_scheme, _adr, /*have_history=*/true);
    for (const WriteEvent &ev : history.events()) {
        if (ev.kind != WriteEvent::Kind::Store || ev.tx == 0)
            continue;
        std::uint8_t bit = 0;
        switch (ev.writeKind) {
          case ObservedWrite::Logged:   bit = histLoggedBit;   break;
          case ObservedWrite::Unlogged: bit = histUnloggedBit; break;
          case ObservedWrite::Raw:      bit = histRawBit;      break;
        }
        auto &granules = _hist[CoreTx{ev.thread, ev.tx}];
        const Addr last =
            logAlign(ev.addr + (ev.size ? ev.size : 1) - 1);
        for (Addr g = logAlign(ev.addr); g <= last; g += logDataSize)
            granules[g] |= bit;
    }
}

bool
PersistChecker::logAreaOwner(Addr addr, CoreId &owner) const
{
    for (const auto &[start, end, core] : _logAreas) {
        if (addr >= start && addr < end) {
            owner = core;
            return true;
        }
        if (addr < start)
            break;      // sorted by start
    }
    return false;
}

bool
PersistChecker::historyLogged(CoreId core, TxId id, Addr granule) const
{
    auto it = _hist.find(CoreTx{core, id});
    if (it == _hist.end())
        return false;
    auto git = it->second.find(granule);
    return git != it->second.end() && (git->second & histLoggedBit);
}

bool
PersistChecker::historyRawOnly(CoreId core, TxId id, Addr granule) const
{
    auto it = _hist.find(CoreTx{core, id});
    if (it == _hist.end())
        return false;
    auto git = it->second.find(granule);
    return git != it->second.end() && git->second == histRawBit;
}

bool
PersistChecker::commitOrdered(const ChunkWrite &prev, CoreId core,
                              TxId id, Tick now) const
{
    // A lockset intersection misses the other legal hand-off: the
    // previous writer's transaction committed (locks released, writes
    // published by the serialization order) before the current
    // transaction even began. Tree workloads hit this constantly —
    // a node freed and re-allocated is rewritten by a later tx under
    // a different lock. Overlapping transactions get no such excuse.
    auto pit = _txs.find(CoreTx{prev.core, prev.tx});
    if (pit == _txs.end() || !pit->second.committed)
        return false;
    Tick begin = now;    // non-tx store: ordered by its own retirement
    if (id != 0) {
        auto cit = _txs.find(CoreTx{core, id});
        if (cit != _txs.end() && cit->second.began)
            begin = cit->second.beginTick;
    }
    return pit->second.commitTick <= begin;
}

void
PersistChecker::recordViolation(Rule rule, CoreId core, TxId id,
                                Addr addr, std::uint64_t ordinal,
                                Tick now, std::string missing_edge,
                                std::string detail)
{
    ++stats(rule).violations;
    ++_totalViolations;
    if (_violations.size() >= reportCap)
        return;
    Violation v;
    v.rule = rule;
    v.core = core;
    v.tx = id;
    v.addr = addr;
    v.ordinal = ordinal;
    v.tick = now;
    v.missingEdge = std::move(missing_edge);
    v.detail = std::move(detail);
    _violations.push_back(std::move(v));
}

CheckOutcome
PersistChecker::outcome() const
{
    CheckOutcome out;
    out.rules = _ruleStats;
    out.armed = _armed;
    out.violations = _violations;
    out.totalViolations = _totalViolations;
    out.eventsSeen = _eventsSeen;
    out.repro = _repro;
    return out;
}

// ---------------------------------------------------------------------
// obs::TxObserver stream
// ---------------------------------------------------------------------

void
PersistChecker::txBegin(CoreId core, TxId id, Tick now)
{
    ++_eventsSeen;
    TxState &t = tx(core, id);
    t.began = true;
    t.beginTick = now;
}

void
PersistChecker::txCommit(CoreId core, TxId id, Tick now)
{
    ++_eventsSeen;
    TxState &t = tx(core, id);
    t.committed = true;
    t.commitTick = now;
    // Retire the transaction's tracking state; keep a durable tombstone
    // so late MC-side events (marker drops) can still find it.
    for (const Addr g : t.released) {
        auto it = _granuleWriters.find(g);
        if (it == _granuleWriters.end())
            continue;
        auto &writers = it->second;
        writers.erase(std::remove(writers.begin(), writers.end(),
                                  CoreTx{core, id}),
                      writers.end());
        if (writers.empty())
            _granuleWriters.erase(it);
    }
    t.stores.clear();
    t.released.clear();
    t.logCover.clear();
}

void
PersistChecker::lockGranted(CoreId core, TxId id, Addr addr, Tick now)
{
    ++_eventsSeen;
    (void)id;
    (void)now;
    auto &locks = coreState(core).locks;
    auto it = std::lower_bound(locks.begin(), locks.end(), addr);
    if (it == locks.end() || *it != addr)
        locks.insert(it, addr);
}

void
PersistChecker::lockReleased(CoreId core, Addr addr, Tick now)
{
    ++_eventsSeen;
    (void)now;
    auto &locks = coreState(core).locks;
    auto it = std::lower_bound(locks.begin(), locks.end(), addr);
    if (it != locks.end() && *it == addr)
        locks.erase(it);
}

void
PersistChecker::logCreated(CoreId core, TxId id, Tick now)
{
    ++_eventsSeen;
    (void)now;
    ++tx(core, id).logsCreated;
}

void
PersistChecker::logAcked(CoreId core, TxId id, Tick created_at, Tick now)
{
    ++_eventsSeen;
    (void)created_at;
    (void)now;
    ++tx(core, id).logsAcked;
}

// ---------------------------------------------------------------------
// analysis::PersistSink stream
// ---------------------------------------------------------------------

void
PersistChecker::storeRetired(CoreId core, TxId id, Addr addr,
                             unsigned size, bool persistent,
                             std::uint64_t ordinal, Tick now)
{
    ++_eventsSeen;
    if (!persistent || size == 0)
        return;

    CoreId owner = 0;
    const bool in_log_area = logAreaOwner(addr, owner);

    // Record transactional stores per granule for the durability sweep
    // at the tx-end durability point (DurableByCommit). Software
    // log-area stores are protocol writes, checked via LogBeforeData.
    if (id != 0 && !in_log_area) {
        TxState &t = tx(core, id);
        const Addr last = logAlign(addr + size - 1);
        for (Addr g = logAlign(addr); g <= last; g += logDataSize) {
            StoreRec &rec = t.stores[g];
            rec.retired = now;
            rec.ordinal = ordinal;
            rec.addr = addr;
            rec.size = size;
        }
    }

    // Lockset race detection over 8-byte chunks.
    if (armed(Rule::LockDiscipline) && !in_log_area) {
        const auto &locks = coreState(core).locks;
        const Addr last_chunk = (addr + size - 1) & ~Addr{7};
        for (Addr c = addr & ~Addr{7}; c <= last_chunk; c += 8) {
            auto it = _chunks.find(c);
            if (it != _chunks.end() && it->second.core != core) {
                ++stats(Rule::LockDiscipline).checks;
                if (!haveCommonLock(it->second.locks, locks) &&
                    !commitOrdered(it->second, core, id, now)) {
                    std::ostringstream det;
                    det << "chunk " << hex(c) << " previously written by"
                        << " core " << it->second.core << " tx "
                        << it->second.tx << " (store #"
                        << it->second.ordinal << ", tick "
                        << it->second.tick << ") with no common lock";
                    recordViolation(
                        Rule::LockDiscipline, core, id, addr, ordinal,
                        now, "common lock (or ordering edge) between "
                             "cross-core writers",
                        det.str());
                }
            }
            ChunkWrite &cw = _chunks[c];
            cw.core = core;
            cw.tx = id;
            cw.ordinal = ordinal;
            cw.tick = now;
            cw.locks = locks;
        }
    }
}

void
PersistChecker::storeReleased(CoreId core, TxId id, Addr addr,
                              unsigned size, std::uint64_t ordinal,
                              Tick now)
{
    ++_eventsSeen;
    (void)ordinal;
    (void)now;
    if (id == 0 || size == 0 || !armed(Rule::LogBeforeData))
        return;
    CoreId owner = 0;
    if (logAreaOwner(addr, owner))
        return;     // software log-entry store: not undo-logged data
    // From here on the store's data can reach the cache hierarchy and
    // hence the MC, so the transaction becomes a visible writer of the
    // granule(s): any MC data-write acceptance covering them must find
    // a durable undo-log entry.
    TxState &t = tx(core, id);
    const Addr last = logAlign(addr + size - 1);
    for (Addr g = logAlign(addr); g <= last; g += logDataSize) {
        if (t.released.insert(g).second)
            _granuleWriters[g].push_back(CoreTx{core, id});
    }
}

void
PersistChecker::fenceRetired(CoreId core, Tick now)
{
    ++_eventsSeen;
    (void)core;
    (void)now;
}

void
PersistChecker::durablePoint(CoreId core, TxId id, Tick now)
{
    ++_eventsSeen;
    TxState &t = tx(core, id);
    t.durable = true;
    t.durableTick = now;

    if (armed(Rule::EntriesBeforeTxEnd)) {
        ++stats(Rule::EntriesBeforeTxEnd).checks;
        if (t.logsAcked < t.logsCreated) {
            std::ostringstream det;
            det << t.logsCreated << " log records created, only "
                << t.logsAcked << " durable at the tx-end gate";
            recordViolation(Rule::EntriesBeforeTxEnd, core, id,
                            invalidAddr, 0, now,
                            "last log-record ack -> tx-end retirement",
                            det.str());
        }
    }

    if (armed(Rule::DurableByCommit)) {
        const auto &witness = _adr ? _lastAccept : _lastPersist;
        for (const auto &[granule, rec] : t.stores) {
            if (_haveHistory && historyRawOnly(core, id, granule))
                continue;   // storeRaw: exempt from persist ordering
            ++stats(Rule::DurableByCommit).checks;
            auto it = witness.find(blockAlign(granule));
            if (it != witness.end() && it->second >= rec.retired)
                continue;
            std::ostringstream det;
            det << "store #" << rec.ordinal << " to " << hex(rec.addr)
                << " (retired tick " << rec.retired << ") has no "
                << (_adr ? "MC write acceptance"
                         : "NVM array writeback")
                << " of block " << hex(blockAlign(granule))
                << " at or after retirement";
            recordViolation(Rule::DurableByCommit, core, id, rec.addr,
                            rec.ordinal, now,
                            _adr ? "store flush acceptance -> tx-end "
                                   "retirement"
                                 : "store array writeback -> tx-end "
                                   "retirement",
                            det.str());
        }
    }
}

void
PersistChecker::checkLogCoverage(Addr granule, Tick now)
{
    auto wit = _granuleWriters.find(granule);
    if (wit == _granuleWriters.end())
        return;
    for (const CoreTx &ct : wit->second) {
        auto tit = _txs.find(ct);
        if (tit == _txs.end())
            continue;
        TxState &t = tit->second;
        if (!t.began || t.durable)
            continue;
        if (!_isHwScheme && !historyLogged(ct.first, ct.second, granule))
            continue;   // sw: only declared-logged granules need cover
        ++stats(Rule::LogBeforeData).checks;
        if (t.logCover.count(granule))
            continue;
        const auto sit = t.stores.find(granule);
        const std::uint64_t ordinal =
            sit != t.stores.end() ? sit->second.ordinal : 0;
        const Addr saddr =
            sit != t.stores.end() ? sit->second.addr : granule;
        std::ostringstream det;
        det << "data write covering granule " << hex(granule)
            << " accepted at the MC while tx " << ct.second
            << " (core " << ct.first << ") is in flight and no undo-log"
            << " entry for the granule is durable";
        recordViolation(Rule::LogBeforeData, ct.first, ct.second, saddr,
                        ordinal, now,
                        "undo-log entry durable -> data-write "
                        "acceptance",
                        det.str());
    }
}

void
PersistChecker::dataWriteAccepted(CoreId core, TxId id, Addr addr,
                                  std::uint64_t seq, bool combined,
                                  const std::uint8_t *data, Tick now)
{
    ++_eventsSeen;
    (void)core;
    (void)id;
    (void)seq;
    (void)combined;
    const Addr block = blockAlign(addr);
    _lastAccept[block] = now;

    // Software schemes write their undo log through the ordinary data
    // path: recover granule coverage by parsing the 64B record.
    CoreId owner = 0;
    if (logAreaOwner(addr, owner)) {
        if (_isSwLogScheme && data != nullptr) {
            const LogRecord rec = LogRecord::fromBytes(data);
            if (rec.valid())
                tx(owner, rec.txId).logCover.insert(logAlign(rec.fromAddr));
        }
        return;
    }

    if (armed(Rule::LogBeforeData)) {
        checkLogCoverage(block, now);
        checkLogCoverage(block + logDataSize, now);
    }
}

void
PersistChecker::logWriteAccepted(CoreId core, TxId id, Addr slot,
                                 Addr granule, std::uint64_t rec_seq,
                                 bool lpq, Tick now)
{
    ++_eventsSeen;
    (void)slot;
    (void)rec_seq;
    (void)lpq;
    (void)now;
    tx(core, id).logCover.insert(granule);
}

void
PersistChecker::nvmWriteIssued(bool lpq, Addr addr, std::uint64_t seq,
                               Tick now)
{
    ++_eventsSeen;
    if (!armed(Rule::FifoPerAddress))
        return;
    const Addr block = blockAlign(addr);
    auto &last = _lastIssuedSeq[lpq ? 1 : 0];
    auto it = last.find(block);
    if (it != last.end()) {
        ++stats(Rule::FifoPerAddress).checks;
        if (seq <= it->second) {
            std::ostringstream det;
            det << (lpq ? "LPQ" : "WPQ") << " issued seq " << seq
                << " to block " << hex(block) << " after already "
                << "issuing seq " << it->second;
            recordViolation(Rule::FifoPerAddress, 0, 0, block, seq, now,
                            "older same-block issue -> newer same-block"
                            " issue",
                            det.str());
            return;     // keep the high-water mark
        }
    }
    last[block] = seq;
}

void
PersistChecker::nvmWritePersisted(bool lpq, Addr addr,
                                  std::uint64_t seq, Tick now)
{
    ++_eventsSeen;
    const Addr block = blockAlign(addr);
    _lastPersist[block] = now;
    if (!armed(Rule::FifoPerAddress))
        return;
    auto &last = _lastPersistSeq[lpq ? 1 : 0];
    auto it = last.find(block);
    if (it != last.end()) {
        ++stats(Rule::FifoPerAddress).checks;
        if (seq <= it->second) {
            std::ostringstream det;
            det << (lpq ? "LPQ" : "WPQ") << " persisted seq " << seq
                << " to block " << hex(block) << " after already "
                << "persisting seq " << it->second;
            recordViolation(Rule::FifoPerAddress, 0, 0, block, seq, now,
                            "older same-block persist -> newer "
                            "same-block persist",
                            det.str());
            return;
        }
    }
    last[block] = seq;
}

void
PersistChecker::lpqFlashCleared(CoreId core, TxId id, std::uint64_t n,
                                Tick now)
{
    ++_eventsSeen;
    if (!armed(Rule::FlashClearAfterCommit))
        return;
    ++stats(Rule::FlashClearAfterCommit).checks;
    const TxState &t = tx(core, id);
    if (!t.durable) {
        std::ostringstream det;
        det << n << " LPQ log entries flash-cleared before tx " << id
            << " announced its durable commit";
        recordViolation(Rule::FlashClearAfterCommit, core, id,
                        invalidAddr, 0, now,
                        "durable commit -> LPQ flash-clear",
                        det.str());
    }
}

void
PersistChecker::txEndMarker(CoreId core, TxId id, MarkerOp op, Tick now)
{
    ++_eventsSeen;
    if (!armed(Rule::FlashClearAfterCommit))
        return;
    ++stats(Rule::FlashClearAfterCommit).checks;
    const TxState &t = tx(core, id);
    if (!t.durable) {
        const char *what =
            op == MarkerOp::Held ? "held"
                                 : op == MarkerOp::Rewritten
                                       ? "rewritten"
                                       : "dropped";
        std::ostringstream det;
        det << "tx-end marker " << what << " before tx " << id
            << " announced its durable commit";
        recordViolation(Rule::FlashClearAfterCommit, core, id,
                        invalidAddr, 0, now,
                        "durable commit -> tx-end marker operation",
                        det.str());
    }
}

} // namespace analysis
} // namespace proteus
