/**
 * @file
 * The declarative persistency-order rule set checked per scheme.
 *
 * Each rule is an ordering invariant of the logging protocol under
 * evaluation. Which rules are armed depends on the scheme (hardware
 * schemes expose log-entry and marker events; software schemes are
 * checked through the MC write stream) and on whether the persistency
 * domain includes the controller queues (ADR) or only the NVM array
 * (PMEM+pcommit).
 */

#ifndef PROTEUS_ANALYSIS_RULES_HH
#define PROTEUS_ANALYSIS_RULES_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace proteus {
namespace analysis {

/** The checkable ordering invariants, in stable report order. */
enum class Rule : unsigned
{
    /** An undo-log entry covering a granule must be durable before any
     *  data write touching that granule is accepted at the MC while
     *  the writing transaction is still in flight. */
    LogBeforeData = 0,
    /** Every log record created for a transaction must be durable
     *  (acknowledged) by the transaction's durability point. */
    EntriesBeforeTxEnd,
    /** LPQ flash-clears and tx-end marker operations may only happen
     *  for a transaction whose durable commit has been announced. */
    FlashClearAfterCommit,
    /** Within each MC queue (WPQ, LPQ), writes to the same block must
     *  issue to — and complete at — the NVM array in acceptance order. */
    FifoPerAddress,
    /** Every transactional persistent store must be durable by the
     *  transaction's durability point: accepted at the MC under ADR,
     *  written back to the array without ADR (pcommit semantics). */
    DurableByCommit,
    /** Lockset race detection: two cores writing overlapping bytes
     *  with no common lock held. */
    LockDiscipline,
};

constexpr unsigned numRules = 6;

/** @return the stable kebab-case rule name used in reports and JSON. */
const char *toString(Rule rule);

/** One-line description for the CLI rule table. */
const char *describe(Rule rule);

/**
 * Which rules are armed for @p scheme (with @p adr persistency
 * semantics). @p have_history: a TraceWriteObserver write history is
 * bound, which lets the checker distinguish undo-logged stores from
 * fresh-allocation (storeInit) stores and arms LogBeforeData for the
 * software schemes too.
 */
std::array<bool, numRules> rulesForScheme(LogScheme scheme, bool adr,
                                          bool have_history);

} // namespace analysis
} // namespace proteus

#endif // PROTEUS_ANALYSIS_RULES_HH
