#include "rules.hh"

#include "sim/logging.hh"

namespace proteus {
namespace analysis {

const char *
toString(Rule rule)
{
    switch (rule) {
      case Rule::LogBeforeData:         return "log-before-data";
      case Rule::EntriesBeforeTxEnd:    return "entries-before-txend";
      case Rule::FlashClearAfterCommit: return "flashclear-after-commit";
      case Rule::FifoPerAddress:        return "fifo-per-address";
      case Rule::DurableByCommit:       return "durable-by-commit";
      case Rule::LockDiscipline:        return "lock-discipline";
    }
    panic("unknown Rule");
}

const char *
describe(Rule rule)
{
    switch (rule) {
      case Rule::LogBeforeData:
        return "undo-log entry durable before its data write is "
               "accepted while the transaction is in flight";
      case Rule::EntriesBeforeTxEnd:
        return "every log record created for a tx acknowledged durable "
               "by the tx durability point";
      case Rule::FlashClearAfterCommit:
        return "LPQ flash-clear / tx-end marker only after the durable "
               "commit was announced";
      case Rule::FifoPerAddress:
        return "per-queue same-block writes issue and persist in "
               "acceptance order";
      case Rule::DurableByCommit:
        return "every transactional persistent store durable (ADR: MC "
               "acceptance; no-ADR: array writeback) by tx end";
      case Rule::LockDiscipline:
        return "no two cores write overlapping bytes without a common "
               "lock";
    }
    panic("unknown Rule");
}

std::array<bool, numRules>
rulesForScheme(LogScheme scheme, bool adr, bool have_history)
{
    (void)adr;  // DurableByCommit adapts its durability witness instead
    std::array<bool, numRules> armed{};
    const auto arm = [&armed](Rule r) {
        armed[static_cast<unsigned>(r)] = true;
    };

    // Scheme-independent invariants.
    arm(Rule::FifoPerAddress);
    arm(Rule::DurableByCommit);
    arm(Rule::LockDiscipline);

    switch (scheme) {
      case LogScheme::PMEM:
      case LogScheme::PMEMPCommit:
        // Software undo logging: log entries are ordinary stores into
        // the per-thread log area, parsed out of the MC write stream.
        // Only the write history can tell a logged store from a fresh
        // allocation (storeInit), so the rule arms with it.
        if (have_history)
            arm(Rule::LogBeforeData);
        break;
      case LogScheme::PMEMNoLog:
        break;      // the ideal bound logs nothing, by construction
      case LogScheme::ATOM:
        arm(Rule::LogBeforeData);
        arm(Rule::EntriesBeforeTxEnd);
        break;
      case LogScheme::Proteus:
        arm(Rule::LogBeforeData);
        arm(Rule::EntriesBeforeTxEnd);
        arm(Rule::FlashClearAfterCommit);
        break;
      case LogScheme::ProteusNoLWR:
        arm(Rule::LogBeforeData);
        arm(Rule::EntriesBeforeTxEnd);
        // No flash-clears happen without log write removal; marker
        // bookkeeping still flows through FlashClearAfterCommit's
        // sites, but the rule stays unarmed to keep "checks" honest.
        break;
    }
    return armed;
}

} // namespace analysis
} // namespace proteus
