#include "analysis/stream_mutator.hh"

namespace proteus {
namespace analysis {

StreamMutator::StreamMutator(Rule target, std::uint64_t seed,
                             PersistChecker &sink)
    : _target(target), _k(1 + seed % 7), _sink(sink)
{
}

void
StreamMutator::addLogArea(Addr start, Addr end)
{
    if (start != invalidAddr && start < end)
        _logAreas.emplace_back(start, end);
}

bool
StreamMutator::inLogArea(Addr addr) const
{
    for (const auto &[start, end] : _logAreas) {
        if (addr >= start && addr < end)
            return true;
    }
    return false;
}

bool
StreamMutator::takeKth()
{
    return ++_seen == _k;
}

void
StreamMutator::releaseHeldDurablePoints(CoreId core)
{
    for (auto it = _heldDurable.begin(); it != _heldDurable.end();) {
        if (std::get<0>(*it) == core) {
            _sink.durablePoint(std::get<0>(*it), std::get<1>(*it),
                               std::get<2>(*it));
            it = _heldDurable.erase(it);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------------
// obs::TxObserver stream
// ---------------------------------------------------------------------

void
StreamMutator::txBegin(CoreId core, TxId tx, Tick now)
{
    _sink.txBegin(core, tx, now);
}

void
StreamMutator::txCommit(CoreId core, TxId tx, Tick now)
{
    _sink.txCommit(core, tx, now);
}

void
StreamMutator::lockGranted(CoreId core, TxId tx, Addr addr, Tick now)
{
    _sink.lockGranted(core, tx, addr, now);
}

void
StreamMutator::logCreated(CoreId core, TxId tx, Tick now)
{
    _sink.logCreated(core, tx, now);
}

void
StreamMutator::logAcked(CoreId core, TxId tx, Tick created_at, Tick now)
{
    if (targeting(Rule::EntriesBeforeTxEnd) && takeKth()) {
        ++_mutations;   // the record's durability ack never happened
        return;
    }
    _sink.logAcked(core, tx, created_at, now);
}

// ---------------------------------------------------------------------
// PersistSink stream
// ---------------------------------------------------------------------

void
StreamMutator::storeRetired(CoreId core, TxId tx, Addr addr,
                            unsigned size, bool persistent,
                            std::uint64_t ordinal, Tick now)
{
    _sink.storeRetired(core, tx, addr, size, persistent, ordinal, now);
    if (!persistent || tx == 0 || inLogArea(addr))
        return;

    if (targeting(Rule::LockDiscipline) && takeKth()) {
        // A phantom core overwrites the same bytes holding no locks.
        ++_mutations;
        _sink.storeRetired(core + phantomCore, tx, addr, size, true,
                           ordinal, now);
        return;
    }
    if (targeting(Rule::DurableByCommit) && takeKth()) {
        // Swallow every durability witness for this store's block
        // until its transaction reaches the durability point.
        ++_mutations;
        _dropping = true;
        _dropBlock = blockAlign(addr);
        _dropCore = core;
        _dropTx = tx;
    }
}

void
StreamMutator::storeReleased(CoreId core, TxId tx, Addr addr,
                             unsigned size, std::uint64_t ordinal,
                             Tick now)
{
    _sink.storeReleased(core, tx, addr, size, ordinal, now);
}

void
StreamMutator::fenceRetired(CoreId core, Tick now)
{
    _sink.fenceRetired(core, now);
}

void
StreamMutator::durablePoint(CoreId core, TxId tx, Tick now)
{
    if (targeting(Rule::FlashClearAfterCommit) && takeKth()) {
        // Hold the durable-commit announcement back past the MC's
        // tx-end marker / flash-clear events for this core.
        ++_mutations;
        _heldDurable.emplace_back(core, tx, now);
        return;
    }
    if (_dropping && core == _dropCore && tx == _dropTx) {
        _sink.durablePoint(core, tx, now);  // the rule fires here
        _dropping = false;
        _dropBlock = invalidAddr;
        return;
    }
    _sink.durablePoint(core, tx, now);
}

void
StreamMutator::lockReleased(CoreId core, Addr addr, Tick now)
{
    _sink.lockReleased(core, addr, now);
}

void
StreamMutator::dataWriteAccepted(CoreId core, TxId tx, Addr addr,
                                 std::uint64_t seq, bool combined,
                                 const std::uint8_t *data, Tick now)
{
    if (_dropping && blockAlign(addr) == _dropBlock)
        return;
    if (targeting(Rule::LogBeforeData) && inLogArea(addr) && takeKth()) {
        ++_mutations;   // the software undo-log entry never persists
        return;
    }
    _sink.dataWriteAccepted(core, tx, addr, seq, combined, data, now);
}

void
StreamMutator::logWriteAccepted(CoreId core, TxId tx, Addr slot,
                                Addr granule, std::uint64_t rec_seq,
                                bool lpq, Tick now)
{
    if (targeting(Rule::LogBeforeData) && takeKth()) {
        ++_mutations;   // the hardware log entry never persists
        return;
    }
    _sink.logWriteAccepted(core, tx, slot, granule, rec_seq, lpq, now);
}

void
StreamMutator::nvmWriteIssued(bool lpq, Addr addr, std::uint64_t seq,
                              Tick now)
{
    _sink.nvmWriteIssued(lpq, addr, seq, now);
    if (targeting(Rule::FifoPerAddress) && takeKth()) {
        ++_mutations;   // the same acceptance issues twice (reorder)
        _sink.nvmWriteIssued(lpq, addr, seq, now);
    }
}

void
StreamMutator::nvmWritePersisted(bool lpq, Addr addr, std::uint64_t seq,
                                 Tick now)
{
    if (_dropping && blockAlign(addr) == _dropBlock)
        return;
    _sink.nvmWritePersisted(lpq, addr, seq, now);
}

void
StreamMutator::lpqFlashCleared(CoreId core, TxId tx, std::uint64_t n,
                               Tick now)
{
    _sink.lpqFlashCleared(core, tx, n, now);
    releaseHeldDurablePoints(core);
}

void
StreamMutator::txEndMarker(CoreId core, TxId tx, MarkerOp op, Tick now)
{
    _sink.txEndMarker(core, tx, op, now);
    releaseHeldDurablePoints(core);
}

} // namespace analysis
} // namespace proteus
