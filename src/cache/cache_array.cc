#include "cache_array.hh"

#include "sim/logging.hh"

namespace proteus {

CacheArray::CacheArray(const CacheConfig &cfg,
                       stats::StatRegistry &stats, const std::string &name)
    : _ways(cfg.ways), _latency(cfg.latency),
      _sets(cfg.sizeBytes / (static_cast<std::uint64_t>(blockSize) *
                             cfg.ways)),
      _hits(stats, name + ".hits", "cache hits"),
      _misses(stats, name + ".misses", "cache misses"),
      _writebacks(stats, name + ".writebacks", "dirty evictions")
{
    if (_sets == 0 || (_sets & (_sets - 1)) != 0)
        fatal("CacheArray ", name, ": set count must be a power of two");
    _lines.resize(_sets * _ways);
}

std::size_t
CacheArray::setIndex(Addr block) const
{
    return static_cast<std::size_t>((block / blockSize) & (_sets - 1));
}

CacheArray::Line *
CacheArray::findLine(Addr block)
{
    Line *row = &_lines[setIndex(block) * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        if (row[w].valid && row[w].block == block)
            return &row[w];
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::findLine(Addr block) const
{
    return const_cast<CacheArray *>(this)->findLine(block);
}

bool
CacheArray::probe(Addr block) const
{
    return findLine(block) != nullptr;
}

void
CacheArray::touch(Addr block)
{
    Line *line = findLine(block);
    if (!line)
        panic("CacheArray::touch on absent block");
    line->lastUse = ++_useCounter;
}

bool
CacheArray::isDirty(Addr block) const
{
    const Line *line = findLine(block);
    return line && line->dirty;
}

void
CacheArray::setDirty(Addr block)
{
    Line *line = findLine(block);
    if (!line)
        panic("CacheArray::setDirty on absent block");
    line->dirty = true;
}

std::optional<CacheArray::Victim>
CacheArray::insert(Addr block, bool dirty)
{
    if (Line *existing = findLine(block)) {
        existing->dirty |= dirty;
        existing->lastUse = ++_useCounter;
        return std::nullopt;
    }

    Line *row = &_lines[setIndex(block) * _ways];
    Line *slot = &row[0];
    for (unsigned w = 0; w < _ways; ++w) {
        if (!row[w].valid) {
            slot = &row[w];
            break;
        }
        if (row[w].lastUse < slot->lastUse)
            slot = &row[w];
    }

    std::optional<Victim> victim;
    if (slot->valid) {
        victim = Victim{slot->block, slot->dirty};
        if (slot->dirty)
            ++_writebacks;
    }
    slot->valid = true;
    slot->dirty = dirty;
    slot->block = block;
    slot->lastUse = ++_useCounter;
    return victim;
}

bool
CacheArray::invalidate(Addr block)
{
    Line *line = findLine(block);
    if (!line)
        return false;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
}

bool
CacheArray::clean(Addr block)
{
    Line *line = findLine(block);
    if (!line || !line->dirty)
        return false;
    line->dirty = false;
    return true;
}

} // namespace proteus
