#include "hierarchy.hh"

#include <cstring>

#include "sim/logging.hh"

namespace proteus {

namespace {

/** Cross-core dirty transfer penalty (snoop + forward). */
constexpr Tick remotePenalty = 40;
/** MC acknowledgment return latency. */
constexpr Tick mcAckLatency = 10;
/** One-way latency of the uncacheable log-flush path to the MC. */
constexpr Tick uncacheableLatency = 30;
/** Retry interval when a MC queue is full. */
constexpr Tick mcRetryInterval = 4;
/** Link occupancy in cycles for one 64B transfer. */
constexpr Tick l2l3Occupancy = 2;   // 32B/cycle (Table 1)

} // namespace

void
DirtyDataTracker::applyStore(Addr addr, unsigned size, std::uint64_t value)
{
    const Addr block = blockAlign(addr);
    if (blockAlign(addr + size - 1) != block)
        panic("DirtyDataTracker: store crosses a cache block");
    auto &bytes = entry(block);
    std::memcpy(bytes.data() + (addr - block), &value, size);
}

std::array<std::uint8_t, blockSize>
DirtyDataTracker::snapshot(Addr block) const
{
    auto it = _blocks.find(block);
    if (it != _blocks.end())
        return it->second;
    std::array<std::uint8_t, blockSize> bytes{};
    _nvm.read(block, bytes.data(), bytes.size());
    return bytes;
}

std::array<std::uint8_t, blockSize> &
DirtyDataTracker::entry(Addr block)
{
    auto it = _blocks.find(block);
    if (it == _blocks.end()) {
        std::array<std::uint8_t, blockSize> bytes{};
        _nvm.read(block, bytes.data(), bytes.size());
        it = _blocks.emplace(block, bytes).first;
    }
    return it->second;
}

CacheHierarchy::CacheHierarchy(Simulator &sim, const SystemConfig &cfg,
                               MemCtrl &mc, const MemoryImage &nvm)
    : _sim(sim), _cfg(cfg), _mc(mc), _tracker(nvm),
      _mshrs(cfg.cores), _l2l3Links(cfg.cores),
      _loads(sim.statsRegistry(), "cache.loads", "loads issued"),
      _stores(sim.statsRegistry(), "cache.stores", "stores released"),
      _flushes(sim.statsRegistry(), "cache.flushes", "clwb operations"),
      _flushesDirty(sim.statsRegistry(), "cache.flushesDirty",
                    "clwb operations that wrote back data"),
      _remoteTransfers(sim.statsRegistry(), "cache.remoteTransfers",
                       "cross-core dirty transfers"),
      _mshrRejects(sim.statsRegistry(), "cache.mshrRejects",
                   "requests rejected for lack of MSHRs")
{
    auto &stats = sim.statsRegistry();
    for (unsigned c = 0; c < cfg.cores; ++c) {
        _l1.push_back(std::make_unique<CacheArray>(
            cfg.caches.l1d, stats, "cache.l1d" + std::to_string(c)));
        _l2.push_back(std::make_unique<CacheArray>(
            cfg.caches.l2, stats, "cache.l2_" + std::to_string(c)));
    }
    _l3 = std::make_unique<CacheArray>(cfg.caches.l3, stats, "cache.l3");
}

Tick
CacheHierarchy::privatePathLatency(CoreId core) const
{
    return _l1[core]->latency() + _l2[core]->latency();
}

Tick
CacheHierarchy::handleCoherence(CoreId core, Addr block, bool exclusive,
                                bool &fill_dirty)
{
    DirEntry &dir = _directory[block];
    Tick penalty = 0;
    fill_dirty = false;

    if (dir.owner >= 0 && dir.owner != static_cast<int>(core)) {
        // Another core may hold the line modified.
        const auto owner = static_cast<CoreId>(dir.owner);
        bool was_dirty = _l1[owner]->invalidate(block);
        was_dirty |= _l2[owner]->invalidate(block);
        if (was_dirty) {
            ++_remoteTransfers;
            penalty = remotePenalty;
            if (exclusive) {
                // Dirty ownership migrates with the line.
                fill_dirty = true;
            } else {
                // Downgrade: the shared L3 absorbs the dirty copy.
                insertWithVictims(core, block, false);
                if (auto victim = _l3->insert(block, true))
                    handleL3Victim(*victim);
            }
        }
        dir.owner = -1;
    }

    if (exclusive) {
        dir.owner = static_cast<int>(core);
        dir.sharers = 1u << core;
    } else {
        dir.sharers |= 1u << core;
    }
    return penalty;
}

void
CacheHierarchy::handleL3Victim(const CacheArray::Victim &victim)
{
    if (!victim.dirty)
        return;
    WriteRequest req;
    req.addr = victim.block;
    req.kind = WriteKind::Data;
    req.core = 0;
    req.txId = 0;
    req.data = _tracker.snapshot(victim.block);
    ++_pendingEvictions;
    queueMcWrite(std::move(req),
                 [this]() { --_pendingEvictions; },
                 true);
}

void
CacheHierarchy::insertWithVictims(CoreId core, Addr block, bool dirty)
{
    // Fill L1; dirty victims ripple into L2, then L3, then memory.
    if (auto v1 = _l1[core]->insert(block, dirty)) {
        if (auto v2 = _l2[core]->insert(v1->block, v1->dirty)) {
            if (v2->dirty) {
                if (auto v3 = _l3->insert(v2->block, true))
                    handleL3Victim(*v3);
            }
        } else if (v1->dirty) {
            _l2[core]->setDirty(v1->block);
        }
    }
}

void
CacheHierarchy::completeMshr(CoreId core, Addr block)
{
    auto it = _mshrs[core].find(block);
    if (it == _mshrs[core].end())
        panic("CacheHierarchy: MSHR completion for absent entry");
    auto callbacks = std::move(it->second.callbacks);
    _mshrs[core].erase(it);
    for (auto &cb : callbacks) {
        if (cb)
            cb();
    }
}

void
CacheHierarchy::finishFill(CoreId core, Addr block, bool exclusive,
                           bool fill_dirty, Tick latency)
{
    (void)exclusive;
    insertWithVictims(core, block, fill_dirty);
    _sim.schedule(latency, [this, core, block]() {
        completeMshr(core, block);
    });
}

void
CacheHierarchy::fillPath(CoreId core, Addr block, bool exclusive)
{
    bool fill_dirty = false;
    const Tick penalty =
        handleCoherence(core, block, exclusive, fill_dirty);

    const Tick l1_lat = _l1[core]->latency();
    const Tick l2_lat = _l2[core]->latency();
    const Tick l3_lat = _l3->latency();

    if (_l2[core]->probe(block)) {
        _l2[core]->noteHit();
        _l2[core]->touch(block);
        finishFill(core, block, exclusive, fill_dirty,
                   l1_lat + l2_lat + penalty);
        return;
    }
    _l2[core]->noteMiss();

    if (_l3->probe(block)) {
        _l3->noteHit();
        _l3->touch(block);
        const Tick start =
            _l2l3Links[core].acquire(_sim.now(), l2l3Occupancy);
        finishFill(core, block, exclusive, fill_dirty,
                   (start - _sim.now()) + l1_lat + l2_lat + l3_lat +
                       penalty);
        return;
    }
    _l3->noteMiss();

    const Tick path = l1_lat + l2_lat + l3_lat + penalty;
    _sim.schedule(path, [this, core, block, exclusive, fill_dirty]() {
        queueMcRead(block, [this, core, block, exclusive, fill_dirty]() {
            if (auto victim = _l3->insert(block, false))
                handleL3Victim(*victim);
            finishFill(core, block, exclusive, fill_dirty,
                       mcAckLatency + _l2[core]->latency() +
                           _l1[core]->latency());
        });
    });
}

void
CacheHierarchy::queueMcRead(Addr block, std::function<void()> on_data)
{
    if (!_mc.canAcceptRead()) {
        _sim.schedule(mcRetryInterval,
                      [this, block, on_data = std::move(on_data)]() {
                          queueMcRead(block, std::move(on_data));
                      });
        return;
    }
    const Tick start = _l3McLink.acquire(_sim.now(), 4);
    _sim.schedule(start - _sim.now(),
                  [this, block, on_data = std::move(on_data)]() mutable {
                      if (_mc.canAcceptRead()) {
                          _mc.read(block, std::move(on_data));
                      } else {
                          queueMcRead(block, std::move(on_data));
                      }
                  });
}

void
CacheHierarchy::queueMcWrite(WriteRequest req, std::function<void()> on_ack,
                             bool refresh_from_tracker)
{
    if (!_mc.canAcceptWrite(req.kind)) {
        _sim.schedule(mcRetryInterval,
                      [this, req = std::move(req),
                       on_ack = std::move(on_ack),
                       refresh_from_tracker]() mutable {
                          queueMcWrite(std::move(req), std::move(on_ack),
                                       refresh_from_tracker);
                      });
        return;
    }
    const Tick start = _l3McLink.acquire(_sim.now(), 4);
    _sim.schedule(
        start - _sim.now(),
        [this, req = std::move(req), on_ack = std::move(on_ack),
         refresh_from_tracker]() mutable {
            if (!_mc.canAcceptWrite(req.kind)) {
                queueMcWrite(std::move(req), std::move(on_ack),
                             refresh_from_tracker);
                return;
            }
            // Tracker-backed writes (flushes, evictions) take their
            // final snapshot at acceptance: retries must never let an
            // older snapshot be accepted after a newer one (same-block
            // writes would be reordered by write combining).
            if (refresh_from_tracker)
                req.data = _tracker.snapshot(req.addr);
            _mc.write(req);
            if (on_ack)
                _sim.schedule(mcAckLatency, std::move(on_ack));
        });
}

bool
CacheHierarchy::load(CoreId core, Addr addr, unsigned size,
                     std::function<void()> on_complete)
{
    ++_loads;
    const Addr block = blockAlign(addr);
    if (blockAlign(addr + (size ? size : 1) - 1) != block)
        panic("CacheHierarchy::load crosses a block boundary");

    CacheArray &l1 = *_l1[core];
    if (l1.probe(block)) {
        l1.noteHit();
        l1.touch(block);
        _sim.schedule(l1.latency(), std::move(on_complete));
        return true;
    }
    l1.noteMiss();

    auto &mshrs = _mshrs[core];
    if (auto it = mshrs.find(block); it != mshrs.end()) {
        it->second.callbacks.push_back(std::move(on_complete));
        return true;
    }
    if (mshrs.size() >= _cfg.caches.l1d.mshrs) {
        ++_mshrRejects;
        return false;
    }
    mshrs[block].callbacks.push_back(std::move(on_complete));
    fillPath(core, block, false);
    return true;
}

bool
CacheHierarchy::store(CoreId core, Addr addr, unsigned size,
                      std::uint64_t value, TxId tx,
                      std::function<void()> on_complete)
{
    (void)tx;
    ++_stores;
    const Addr block = blockAlign(addr);

    // Values apply to the tracker at release time: the store buffer
    // releases in program order, and a later same-address store must
    // not be overtaken by an earlier one whose fill completes late.
    _tracker.applyStore(addr, size, value);

    CacheArray &l1 = *_l1[core];
    DirEntry &dir = _directory[block];
    if (l1.probe(block) && dir.owner == static_cast<int>(core)) {
        l1.noteHit();
        l1.touch(block);
        l1.setDirty(block);
        _sim.schedule(1, std::move(on_complete));
        return true;
    }
    l1.noteMiss();

    auto apply = [this, core, block,
                  on_complete = std::move(on_complete)]() {
        // The line was filled exclusively; mark it modified.
        if (_l1[core]->probe(block))
            _l1[core]->setDirty(block);
        if (on_complete)
            on_complete();
    };

    auto &mshrs = _mshrs[core];
    if (auto it = mshrs.find(block); it != mshrs.end()) {
        // Merge into the outstanding fill and upgrade it to exclusive.
        bool fill_dirty = false;
        handleCoherence(core, block, true, fill_dirty);
        it->second.callbacks.push_back(std::move(apply));
        return true;
    }
    if (mshrs.size() >= _cfg.caches.l1d.mshrs) {
        ++_mshrRejects;
        return false;
    }
    mshrs[block].callbacks.push_back(std::move(apply));
    fillPath(core, block, true);
    return true;
}

void
CacheHierarchy::flush(CoreId core, Addr block, TxId tx,
                      std::function<void()> on_ack)
{
    ++_flushes;
    if (block != blockAlign(block))
        panic("CacheHierarchy::flush of an unaligned block");

    bool dirty = _l1[core]->clean(block);
    dirty |= _l2[core]->clean(block);

    auto dir_it = _directory.find(block);
    if (dir_it != _directory.end() && dir_it->second.owner >= 0 &&
        dir_it->second.owner != static_cast<int>(core)) {
        const auto owner = static_cast<CoreId>(dir_it->second.owner);
        dirty |= _l1[owner]->clean(block);
        dirty |= _l2[owner]->clean(block);
    }
    dirty |= _l3->clean(block);

    const Tick lookup = privatePathLatency(core) + _l3->latency();
    if (!dirty) {
        if (on_ack)
            _sim.schedule(lookup, std::move(on_ack));
        return;
    }

    ++_flushesDirty;
    WriteRequest req;
    req.addr = block;
    req.kind = WriteKind::Data;
    req.core = core;
    req.txId = tx;
    req.data = _tracker.snapshot(block);
    _sim.schedule(lookup,
                  [this, req = std::move(req),
                   on_ack = std::move(on_ack)]() mutable {
                      queueMcWrite(std::move(req), std::move(on_ack),
                                   true);
                  });
}

void
CacheHierarchy::sendLogWrite(const WriteRequest &req,
                             std::function<void()> on_ack)
{
    _sim.schedule(uncacheableLatency,
                  [this, req, on_ack = std::move(on_ack)]() mutable {
                      queueMcWrite(std::move(req), std::move(on_ack));
                  });
}

} // namespace proteus
