/**
 * @file
 * A set-associative, write-back tag array with true-LRU replacement.
 * Timing-only: data contents live in the hierarchy's DirtyDataTracker.
 */

#ifndef PROTEUS_CACHE_CACHE_ARRAY_HH
#define PROTEUS_CACHE_CACHE_ARRAY_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

/** Tags + state of one cache level. */
class CacheArray
{
  public:
    CacheArray(const CacheConfig &cfg, stats::StatRegistry &stats,
               const std::string &name);

    /** An evicted line. */
    struct Victim
    {
        Addr block;
        bool dirty;
    };

    /** @return true if @p block is present (no LRU update). */
    bool probe(Addr block) const;

    /** Update LRU for @p block (must be present). */
    void touch(Addr block);

    bool isDirty(Addr block) const;
    void setDirty(Addr block);

    /**
     * Insert @p block (touching it), evicting the LRU line of the set
     * if needed. @return the victim if one was evicted.
     */
    std::optional<Victim> insert(Addr block, bool dirty);

    /** Remove @p block if present. @return true if it was dirty. */
    bool invalidate(Addr block);

    /** Clear the dirty bit but keep the line (clwb semantics).
     *  @return true if the line was present and dirty. */
    bool clean(Addr block);

    unsigned latency() const { return _latency; }
    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(_hits.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(_misses.value());
    }

    /** Stat helpers called by the hierarchy. */
    void noteHit() { ++_hits; }
    void noteMiss() { ++_misses; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr block = invalidAddr;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr block) const;
    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;

    unsigned _ways;
    unsigned _latency;
    std::size_t _sets;
    std::uint64_t _useCounter = 0;
    std::vector<Line> _lines;   ///< _sets x _ways, row-major

    stats::Scalar _hits;
    stats::Scalar _misses;
    stats::Scalar _writebacks;
};

} // namespace proteus

#endif // PROTEUS_CACHE_CACHE_ARRAY_HH
