/**
 * @file
 * The three-level cache hierarchy of Table 1: private L1D and L2 per
 * core, a shared L3 with a directory for inter-core transfers, and a
 * bandwidth-limited link to the memory controller.
 *
 * The caches are timing-first: tags and LRU state are exact, while the
 * *values* of dirty lines are carried by the DirtyDataTracker so that a
 * block's precise contents accompany every write that reaches the
 * memory controller (that is what makes crash snapshots exact). Tag
 * state is updated at request time; fill completion is modeled as pure
 * latency (documented substitution in DESIGN.md).
 */

#ifndef PROTEUS_CACHE_HIERARCHY_HH
#define PROTEUS_CACHE_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache_array.hh"
#include "heap/memory_image.hh"
#include "memctrl/mem_ctrl.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace proteus {

/** Tracks the exact byte contents of blocks that have been stored to. */
class DirtyDataTracker
{
  public:
    explicit DirtyDataTracker(const MemoryImage &nvm) : _nvm(nvm) {}

    /** Apply a store's value (up to 8 bytes, no block crossing). */
    void applyStore(Addr addr, unsigned size, std::uint64_t value);

    /** @return the current 64B contents of @p block. */
    std::array<std::uint8_t, blockSize> snapshot(Addr block) const;

  private:
    std::array<std::uint8_t, blockSize> &entry(Addr block);

    const MemoryImage &_nvm;
    std::unordered_map<Addr, std::array<std::uint8_t, blockSize>> _blocks;
};

/** A serializing transfer resource (bus/link) with fixed occupancy. */
struct Link
{
    Tick freeAt = 0;

    /** Reserve the link at or after @p now for @p occupancy cycles;
     *  @return the transfer start tick. */
    Tick
    acquire(Tick now, Tick occupancy)
    {
        const Tick start = freeAt > now ? freeAt : now;
        freeAt = start + occupancy;
        return start;
    }
};

/** The multicore cache hierarchy in front of the memory controller. */
class CacheHierarchy
{
  public:
    CacheHierarchy(Simulator &sim, const SystemConfig &cfg, MemCtrl &mc,
                   const MemoryImage &nvm);

    /**
     * Issue a load. @return false if the core's MSHRs are full (the
     * caller must retry); otherwise @p on_complete fires when data is
     * available.
     */
    bool load(CoreId core, Addr addr, unsigned size,
              std::function<void()> on_complete);

    /**
     * Issue a store (release from the store buffer). The value is
     * applied to the dirty-data tracker when the line becomes writable;
     * @p on_complete fires at that point. @return false if MSHRs are
     * full.
     */
    bool store(CoreId core, Addr addr, unsigned size, std::uint64_t value,
               TxId tx, std::function<void()> on_complete);

    /**
     * clwb: write the block back to the memory controller if dirty
     * anywhere in the hierarchy, retaining the line. @p on_ack fires
     * when the MC accepts the write (or after the lookup if clean).
     * Retries internally while the WPQ is full.
     */
    void flush(CoreId core, Addr block, TxId tx,
               std::function<void()> on_ack);

    /**
     * Uncacheable log-flush path straight to the memory controller
     * (Section 4.2): no write-allocate, no cache pollution. Retries
     * internally while the target queue is full; @p on_ack fires when
     * the MC acknowledges receipt.
     */
    void sendLogWrite(const WriteRequest &req,
                      std::function<void()> on_ack);

    DirtyDataTracker &tracker() { return _tracker; }

    /** Dirty L3 evictions created but not yet accepted by the MC.
     *  Persist barriers must wait for these: a clwb that finds its
     *  block already evicted acks immediately, so the eviction's
     *  write-back is the only carrier of that data. */
    unsigned pendingEvictionWrites() const
    {
        return _pendingEvictions;
    }

    CacheArray &l1(CoreId core) { return *_l1[core]; }
    CacheArray &l2(CoreId core) { return *_l2[core]; }
    CacheArray &l3() { return *_l3; }

  private:
    struct DirEntry
    {
        int owner = -1;             ///< core that may hold the line dirty
        std::uint32_t sharers = 0;
    };

    struct Mshr
    {
        std::vector<std::function<void()>> callbacks;
    };

    Tick privatePathLatency(CoreId core) const;
    Tick handleCoherence(CoreId core, Addr block, bool exclusive,
                         bool &fill_dirty);
    void fillPath(CoreId core, Addr block, bool exclusive);
    void finishFill(CoreId core, Addr block, bool exclusive,
                    bool fill_dirty, Tick latency);
    void insertWithVictims(CoreId core, Addr block, bool dirty);
    void handleL3Victim(const CacheArray::Victim &victim);
    void completeMshr(CoreId core, Addr block);
    void queueMcWrite(WriteRequest req, std::function<void()> on_ack,
                      bool refresh_from_tracker = false);
    void queueMcRead(Addr block, std::function<void()> on_data);

    Simulator &_sim;
    SystemConfig _cfg;
    MemCtrl &_mc;
    DirtyDataTracker _tracker;

    std::vector<std::unique_ptr<CacheArray>> _l1;
    std::vector<std::unique_ptr<CacheArray>> _l2;
    std::unique_ptr<CacheArray> _l3;

    /** Block -> coherence state; looked up on every load/store/flush,
     *  so hashed rather than tree-ordered. */
    std::unordered_map<Addr, DirEntry> _directory;
    std::vector<std::unordered_map<Addr, Mshr>> _mshrs;

    std::vector<Link> _l2l3Links;   ///< per-core private path
    Link _l3McLink;                 ///< shared, 16B/cycle (Table 1)
    unsigned _pendingEvictions = 0;

    stats::Scalar _loads;
    stats::Scalar _stores;
    stats::Scalar _flushes;
    stats::Scalar _flushesDirty;
    stats::Scalar _remoteTransfers;
    stats::Scalar _mshrRejects;
};

} // namespace proteus

#endif // PROTEUS_CACHE_HIERARCHY_HH
