/**
 * @file
 * The micro-op ISA executed by the timing cores.
 *
 * Traces are pre-decoded sequences of these micro-ops, produced by the
 * scheme-aware trace codegen (src/trace). The set covers ordinary integer
 * and memory operations, the Intel PMEM persistence instructions (clwb,
 * sfence, mfence, pcommit), the durable-transaction markers, the lock
 * operations used to serialize concurrent transactions, and the two new
 * Proteus instructions: log-load and log-flush (Section 3.2).
 */

#ifndef PROTEUS_ISA_MICRO_OP_HH
#define PROTEUS_ISA_MICRO_OP_HH

#include <cstdint>

#include "sim/types.hh"

namespace proteus {

/** Operation kinds understood by the out-of-order core. */
enum class Op : std::uint8_t
{
    Nop,
    IntAlu,      ///< 1-cycle integer operation
    IntMul,      ///< 3-cycle integer multiply
    Load,        ///< memory load (up to 8 bytes)
    Store,       ///< memory store (up to 8 bytes, value in data)
    Branch,      ///< conditional branch, resolved at execute
    ClWb,        ///< flush dirty block to the WPQ, line retained
    SFence,      ///< store fence extended for PMEM (Section 2.1)
    MFence,      ///< full fence; treated like SFence plus load ordering
    PCommit,     ///< drain the WPQ to NVMM (deprecated; PMEM+pcommit only)
    LogLoad,     ///< Proteus: load 32B granule into a log register
    LogFlush,    ///< Proteus: flush log register to the log area
    TxBegin,     ///< durable transaction start (txId in data)
    TxEnd,       ///< durable transaction end: durability point
    LockAcquire, ///< timing-level lock acquire on addr
    LockRelease, ///< timing-level lock release on addr
    LogSave,     ///< context switch support: save tx state, drain LPQ
};

/** @return a printable mnemonic. */
const char *toString(Op op);

/** Sentinel register index: "no register". */
constexpr std::int16_t noReg = -1;

/** Sentinel payload index: "no log payload attached". */
constexpr std::uint32_t noPayload = 0xffffffffu;

/** Number of architectural (logical) integer registers in traces. */
constexpr unsigned numArchRegs = 32;

/**
 * One pre-decoded micro-op.
 *
 * Stores carry their value so the persistence tracker can reconstruct the
 * exact NVM image when a write becomes durable; log-flushes reference a
 * 40-byte payload captured at codegen time (Trace::logPayload).
 */
struct MicroOp
{
    Op op = Op::Nop;
    std::int16_t src0 = noReg;
    std::int16_t src1 = noReg;
    std::int16_t dst = noReg;
    std::uint8_t size = 0;          ///< memory access size in bytes
    bool taken = false;             ///< branch outcome (trace = taken path)
    bool persistent = false;        ///< store targets the persistent heap
    std::uint32_t staticPc = 0;     ///< static code location (predictor)
    std::uint32_t payload = noPayload;
    Addr addr = invalidAddr;
    std::uint64_t data = 0;         ///< store value / txId for TxBegin

    bool isLoad() const { return op == Op::Load; }
    bool isStore() const { return op == Op::Store; }
    bool
    isMem() const
    {
        return op == Op::Load || op == Op::Store || op == Op::LogLoad ||
               op == Op::LogFlush || op == Op::ClWb ||
               op == Op::LockAcquire || op == Op::LockRelease;
    }
    bool
    isFence() const
    {
        return op == Op::SFence || op == Op::MFence || op == Op::PCommit;
    }
};

/**
 * A 40-byte Proteus log entry as held in a log register: 32 bytes of
 * original data plus the log-from address (Section 3.2). The transaction
 * id completes the metadata written to the log area (Section 4.3).
 */
struct LogPayload
{
    std::uint8_t bytes[logDataSize] = {};
    Addr fromAddr = invalidAddr;
    TxId txId = 0;
};

} // namespace proteus

#endif // PROTEUS_ISA_MICRO_OP_HH
