/**
 * @file
 * A per-thread instruction trace: the unit of work a timing core executes.
 */

#ifndef PROTEUS_ISA_TRACE_HH
#define PROTEUS_ISA_TRACE_HH

#include <cstddef>
#include <vector>

#include "micro_op.hh"

namespace proteus {

/** A pre-decoded per-thread micro-op stream plus its log payload table. */
class Trace
{
  public:
    /** Append a micro-op; @return its index. */
    std::size_t
    push(const MicroOp &op)
    {
        _ops.push_back(op);
        return _ops.size() - 1;
    }

    /** Register a log payload; @return its index for MicroOp::payload. */
    std::uint32_t
    addPayload(const LogPayload &payload)
    {
        _payloads.push_back(payload);
        return static_cast<std::uint32_t>(_payloads.size() - 1);
    }

    const MicroOp &op(std::size_t i) const { return _ops[i]; }
    MicroOp &op(std::size_t i) { return _ops[i]; }
    const LogPayload &logPayload(std::uint32_t i) const
    {
        return _payloads[i];
    }

    std::size_t size() const { return _ops.size(); }
    bool empty() const { return _ops.empty(); }

    /** Number of registered log payloads (serialization, tests). */
    std::size_t payloadCount() const { return _payloads.size(); }

    /** Pre-size the containers (deserialization fast path). */
    void
    reserve(std::size_t ops, std::size_t payloads)
    {
        _ops.reserve(ops);
        _payloads.reserve(payloads);
    }

    /** Count micro-ops of one kind (used by tests and stats). */
    std::size_t countOps(Op kind) const;

  private:
    std::vector<MicroOp> _ops;
    std::vector<LogPayload> _payloads;
};

} // namespace proteus

#endif // PROTEUS_ISA_TRACE_HH
