#include "micro_op.hh"

namespace proteus {

const char *
toString(Op op)
{
    switch (op) {
      case Op::Nop:         return "nop";
      case Op::IntAlu:      return "alu";
      case Op::IntMul:      return "mul";
      case Op::Load:        return "ld";
      case Op::Store:       return "st";
      case Op::Branch:      return "br";
      case Op::ClWb:        return "clwb";
      case Op::SFence:      return "sfence";
      case Op::MFence:      return "mfence";
      case Op::PCommit:     return "pcommit";
      case Op::LogLoad:     return "log-load";
      case Op::LogFlush:    return "log-flush";
      case Op::TxBegin:     return "tx-begin";
      case Op::TxEnd:       return "tx-end";
      case Op::LockAcquire: return "lock";
      case Op::LockRelease: return "unlock";
      case Op::LogSave:     return "log-save";
    }
    return "?";
}

} // namespace proteus
