#include "trace.hh"

#include <algorithm>

namespace proteus {

std::size_t
Trace::countOps(Op kind) const
{
    return static_cast<std::size_t>(
        std::count_if(_ops.begin(), _ops.end(),
                      [kind](const MicroOp &m) { return m.op == kind; }));
}

} // namespace proteus
