/**
 * @file
 * The Log Lookup Table (Section 4.2).
 *
 * A small set-associative table of recent log-from addresses within the
 * current transaction. A hit means the 32-byte granule was already
 * logged this transaction, so the log-load / log-flush pair completes
 * immediately and no log entry is created. Cleared on tx-end and on
 * context switch so stale entries can never suppress a needed log.
 */

#ifndef PROTEUS_LOGGING_LLT_HH
#define PROTEUS_LOGGING_LLT_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

/** Set-associative LRU table of logged 32B granule addresses. */
class LogLookupTable
{
  public:
    LogLookupTable(unsigned entries, unsigned ways,
                   stats::StatRegistry &stats, const std::string &name);

    /**
     * Look up @p granule (32B-aligned log-from address) and insert it on
     * a miss, evicting the LRU way if needed.
     * @return true on hit (already logged this transaction).
     */
    bool lookupInsert(Addr granule);

    /** Clear all entries (tx-end / context switch, Section 4.2). */
    void clear();

    double missRate() const;
    std::uint64_t lookups() const
    {
        return static_cast<std::uint64_t>(_lookups.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(_misses.value());
    }

  private:
    struct Way
    {
        bool valid = false;
        Addr granule = invalidAddr;
        std::uint64_t lastUse = 0;
    };

    unsigned _sets;
    unsigned _ways;
    std::uint64_t _useCounter = 0;
    std::vector<Way> _table;    ///< _sets x _ways, row-major

    stats::Scalar _lookups;
    stats::Scalar _misses;
    stats::Scalar _clears;
};

} // namespace proteus

#endif // PROTEUS_LOGGING_LLT_HH
