/**
 * @file
 * Per-core transaction registers (Figure 5): log-start, log-end, curlog,
 * and txID, plus the log-to address assignment that must happen in
 * program order (Section 4.2). The log area is a circular buffer; if one
 * transaction needs more entries than the area holds, the processor
 * raises an exception (Section 4.1) — modeled as a FatalError.
 */

#ifndef PROTEUS_LOGGING_TX_CONTEXT_HH
#define PROTEUS_LOGGING_TX_CONTEXT_HH

#include <cstdint>

#include "sim/types.hh"

namespace proteus {

/** The architectural logging registers of one hardware thread. */
class TxContext
{
  public:
    /** Bind the software-allocated circular log area (VA logging). */
    void bindLogArea(Addr start, Addr end);

    /** tx-begin: set the live transaction id. */
    void beginTx(TxId tx);

    /** tx-end: clear the live transaction id. */
    void endTx();

    bool inTx() const { return _txId != 0; }
    TxId txId() const { return _txId; }
    Addr logStart() const { return _logStart; }
    Addr logEnd() const { return _logEnd; }
    Addr curlog() const { return _curlog; }

    /**
     * Assign the next log-to address (auto-increment addressing mode of
     * Figure 4), wrapping circularly; throws FatalError if the current
     * transaction overflows the whole area.
     */
    Addr nextLogTo();

    /** Program-order sequence within the current transaction. */
    std::uint64_t nextSeq() { return _seqInTx++; }

    /** Context-switch support: capture / restore all registers. */
    struct Saved
    {
        Addr logStart, logEnd, curlog;
        TxId txId;
        std::uint64_t seqInTx, entriesThisTx;
    };
    Saved save() const;
    void restore(const Saved &s);

  private:
    Addr _logStart = invalidAddr;
    Addr _logEnd = invalidAddr;
    Addr _curlog = invalidAddr;
    TxId _txId = 0;
    std::uint64_t _seqInTx = 0;
    std::uint64_t _entriesThisTx = 0;
};

} // namespace proteus

#endif // PROTEUS_LOGGING_TX_CONTEXT_HH
