#include "log_queue.hh"

#include "sim/logging.hh"

namespace proteus {

LogQueue::LogQueue(unsigned entries, stats::StatRegistry &stats,
                   const std::string &name)
    : _capacity(entries), _entries(entries),
      _allocations(stats, name + ".allocations", "LogQ entries allocated"),
      _peak(stats, name + ".peakOccupancy", "max simultaneous entries")
{
    if (entries == 0)
        fatal("LogQueue: need at least one entry");
    _freeList.reserve(entries);
    for (unsigned i = entries; i-- > 0;)
        _freeList.push_back(i);
}

LogQueue::EntryId
LogQueue::allocate(std::uint64_t seq, Addr from_granule, Addr log_to,
                   const LogRecord &record)
{
    if (_freeList.empty())
        panic("LogQueue::allocate on a full queue");
    const EntryId id = _freeList.back();
    _freeList.pop_back();

    Entry &e = _entries[id];
    e.live = true;
    e.seq = seq;
    e.fromGranule = logAlign(from_granule);
    e.logTo = log_to;
    e.record = record;

    ++_allocations;
    if (occupancy() > _peak.value())
        _peak.set(occupancy());
    return id;
}

void
LogQueue::deallocate(EntryId id)
{
    if (id >= _capacity || !_entries[id].live)
        panic("LogQueue::deallocate of a free entry");
    _entries[id].live = false;
    _freeList.push_back(id);
}

bool
LogQueue::pendingOlderFor(Addr addr, std::uint64_t seq) const
{
    const Addr granule = logAlign(addr);
    for (const Entry &e : _entries) {
        if (e.live && e.seq <= seq && e.fromGranule == granule)
            return true;
    }
    return false;
}

bool
LogQueue::emptyForTx(TxId tx) const
{
    for (const Entry &e : _entries) {
        if (e.live && e.record.txId == tx)
            return false;
    }
    return true;
}

const LogQueue::Entry &
LogQueue::liveEntry(EntryId id) const
{
    if (id >= _capacity || !_entries[id].live)
        panic("LogQueue: access to a free entry");
    return _entries[id];
}

const LogRecord &
LogQueue::record(EntryId id) const
{
    return liveEntry(id).record;
}

Addr
LogQueue::logTo(EntryId id) const
{
    return liveEntry(id).logTo;
}

} // namespace proteus
