/**
 * @file
 * The on-NVM undo log entry format (Section 4.1).
 *
 * One entry occupies exactly one cache block (64B): 32 bytes of original
 * data plus metadata — the log-from address, the transaction id, a
 * program-order sequence number (recovery must use the *earliest* entry
 * per address, Section 4.2), and flags. The same format is used by the
 * software (PMEM) codegen, by ATOM, and by Proteus so that one recovery
 * implementation can parse all three.
 */

#ifndef PROTEUS_LOGGING_LOG_RECORD_HH
#define PROTEUS_LOGGING_LOG_RECORD_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace proteus {

/** A fully materialized 64-byte undo log entry. */
struct LogRecord
{
    static constexpr std::uint32_t magicValue = 0x50524f54; // "PROT"

    /** Entry flags. */
    enum Flags : std::uint32_t
    {
        flagValid = 1u << 0,    ///< entry contains a live log
        flagTxEnd = 1u << 1,    ///< last entry of a committed transaction
    };

    std::array<std::uint8_t, logDataSize> data{};
    Addr fromAddr = invalidAddr;
    TxId txId = 0;
    std::uint64_t seq = 0;
    std::uint32_t flags = 0;
    std::uint32_t magic = 0;

    bool valid() const
    {
        return magic == magicValue && (flags & flagValid);
    }
    bool committed() const { return flags & flagTxEnd; }

    /** Serialize into a 64-byte block image. */
    std::array<std::uint8_t, logEntrySize> toBytes() const;

    /** Parse from a 64-byte block image. */
    static LogRecord fromBytes(const std::uint8_t *bytes);
};

static_assert(logEntrySize ==
              logDataSize + sizeof(Addr) + sizeof(TxId) +
              sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t),
              "LogRecord must pack into one cache block");

} // namespace proteus

#endif // PROTEUS_LOGGING_LOG_RECORD_HH
