#include "tx_context.hh"

#include "sim/logging.hh"

namespace proteus {

void
TxContext::bindLogArea(Addr start, Addr end)
{
    if (end <= start || (end - start) % logEntrySize != 0)
        fatal("TxContext: log area must be a multiple of ", logEntrySize,
              " bytes");
    _logStart = start;
    _logEnd = end;
    _curlog = start;
}

void
TxContext::beginTx(TxId tx)
{
    if (tx == 0)
        panic("TxContext: transaction id 0 is reserved");
    if (_txId != 0)
        panic("TxContext: nested durable transactions are not supported");
    _txId = tx;
    _seqInTx = 0;
    _entriesThisTx = 0;
}

void
TxContext::endTx()
{
    if (_txId == 0)
        panic("TxContext: tx-end outside a transaction");
    _txId = 0;
}

Addr
TxContext::nextLogTo()
{
    if (_curlog == invalidAddr)
        panic("TxContext: log area not bound");
    const std::uint64_t capacity = (_logEnd - _logStart) / logEntrySize;
    if (_entriesThisTx >= capacity)
        fatal("TxContext: transaction overflowed the log area (",
              capacity, " entries); the processor raises an exception");
    const Addr slot = _curlog;
    _curlog += logEntrySize;
    if (_curlog >= _logEnd)
        _curlog = _logStart;
    ++_entriesThisTx;
    return slot;
}

TxContext::Saved
TxContext::save() const
{
    return Saved{_logStart, _logEnd, _curlog, _txId, _seqInTx,
                 _entriesThisTx};
}

void
TxContext::restore(const Saved &s)
{
    _logStart = s.logStart;
    _logEnd = s.logEnd;
    _curlog = s.curlog;
    _txId = s.txId;
    _seqInTx = s.seqInTx;
    _entriesThisTx = s.entriesThisTx;
}

} // namespace proteus
