/**
 * @file
 * The core-side LogQ (Section 4.2).
 *
 * One entry tracks each in-flight log-flush: the log-from address, the
 * log-to address (assigned in program order so recovery can trust entry
 * order), and the 64B record to be flushed. Entries are deallocated when
 * the memory controller acknowledges receipt. The LogQ also answers the
 * ordering query that keeps a store in the store buffer until the log
 * entry covering its address is durable.
 */

#ifndef PROTEUS_LOGGING_LOG_QUEUE_HH
#define PROTEUS_LOGGING_LOG_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "log_record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

/** Bookkeeping for concurrent, out-of-order log flushes. */
class LogQueue
{
  public:
    using EntryId = std::uint32_t;
    static constexpr EntryId invalidEntry = 0xffffffffu;

    LogQueue(unsigned entries, stats::StatRegistry &stats,
             const std::string &name);

    bool full() const { return _freeList.empty(); }
    unsigned occupancy() const
    {
        return _capacity - static_cast<unsigned>(_freeList.size());
    }
    unsigned capacity() const { return _capacity; }

    /**
     * Allocate an entry at log-flush dispatch. @p seq is the global
     * program-order sequence of the log-flush; @p log_to was assigned in
     * program order by the tx context.
     */
    EntryId allocate(std::uint64_t seq, Addr from_granule, Addr log_to,
                     const LogRecord &record);

    /** MC acknowledged receipt; entry is recycled. */
    void deallocate(EntryId id);

    /**
     * @return true if any live entry older than @p seq covers the 32B
     * granule of @p addr — the store must stay in the store buffer
     * (Section 4.2). Also true for the store's own log entry.
     */
    bool pendingOlderFor(Addr addr, std::uint64_t seq) const;

    /** @return true if no live entries belong to transaction @p tx. */
    bool emptyForTx(TxId tx) const;

    bool empty() const { return occupancy() == 0; }

    /** Access a live entry (panics if the slot is free). */
    const LogRecord &record(EntryId id) const;
    Addr logTo(EntryId id) const;

    /** Peak-occupancy stat for the Figure 11 sweep analysis. */
    double peakOccupancy() const { return _peak.value(); }

  private:
    struct Entry
    {
        bool live = false;
        std::uint64_t seq = 0;
        Addr fromGranule = invalidAddr;
        Addr logTo = invalidAddr;
        LogRecord record;
    };

    const Entry &liveEntry(EntryId id) const;

    unsigned _capacity;
    std::vector<Entry> _entries;
    std::vector<EntryId> _freeList;

    stats::Scalar _allocations;
    stats::Scalar _peak;
};

} // namespace proteus

#endif // PROTEUS_LOGGING_LOG_QUEUE_HH
