#include "llt.hh"

#include "sim/logging.hh"

namespace proteus {

LogLookupTable::LogLookupTable(unsigned entries, unsigned ways,
                               stats::StatRegistry &stats,
                               const std::string &name)
    : _sets(ways ? entries / ways : 0), _ways(ways),
      _lookups(stats, name + ".lookups", "LLT lookups"),
      _misses(stats, name + ".misses", "LLT misses"),
      _clears(stats, name + ".clears", "LLT clears (tx-end/ctx switch)")
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        fatal("LogLookupTable: entries must be a multiple of ways");
    _table.resize(static_cast<std::size_t>(_sets) * _ways);
}

bool
LogLookupTable::lookupInsert(Addr granule)
{
    ++_lookups;
    const std::size_t set =
        static_cast<std::size_t>((granule / logDataSize) % _sets);
    Way *row = &_table[set * _ways];

    Way *lru = &row[0];
    for (unsigned w = 0; w < _ways; ++w) {
        if (row[w].valid && row[w].granule == granule) {
            row[w].lastUse = ++_useCounter;
            return true;
        }
        if (!row[w].valid) {
            lru = &row[w];
        } else if (lru->valid && row[w].lastUse < lru->lastUse) {
            lru = &row[w];
        }
    }

    ++_misses;
    lru->valid = true;
    lru->granule = granule;
    lru->lastUse = ++_useCounter;
    return false;
}

void
LogLookupTable::clear()
{
    ++_clears;
    for (Way &w : _table)
        w.valid = false;
}

double
LogLookupTable::missRate() const
{
    const double lookups = _lookups.value();
    return lookups > 0 ? _misses.value() / lookups : 0.0;
}

} // namespace proteus
