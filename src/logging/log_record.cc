#include "log_record.hh"

namespace proteus {

namespace {

template <typename T>
void
put(std::uint8_t *dst, std::size_t &off, const T &v)
{
    std::memcpy(dst + off, &v, sizeof(T));
    off += sizeof(T);
}

template <typename T>
void
get(const std::uint8_t *src, std::size_t &off, T &v)
{
    std::memcpy(&v, src + off, sizeof(T));
    off += sizeof(T);
}

} // namespace

std::array<std::uint8_t, logEntrySize>
LogRecord::toBytes() const
{
    std::array<std::uint8_t, logEntrySize> out{};
    std::size_t off = 0;
    std::memcpy(out.data(), data.data(), logDataSize);
    off = logDataSize;
    put(out.data(), off, fromAddr);
    put(out.data(), off, txId);
    put(out.data(), off, seq);
    put(out.data(), off, flags);
    put(out.data(), off, magic);
    return out;
}

LogRecord
LogRecord::fromBytes(const std::uint8_t *bytes)
{
    LogRecord rec;
    std::memcpy(rec.data.data(), bytes, logDataSize);
    std::size_t off = logDataSize;
    get(bytes, off, rec.fromAddr);
    get(bytes, off, rec.txId);
    get(bytes, off, rec.seq);
    get(bytes, off, rec.flags);
    get(bytes, off, rec.magic);
    return rec;
}

} // namespace proteus
