/**
 * @file
 * A replayable recording of the program-level write stream a
 * TraceBuilder reports through TraceWriteObserver.
 *
 * The history captures, in the global round-robin recording order, the
 * same tx-begin / tx-end / store events a live observer (the crash
 * oracle) would see, with pre- and post-values resolved at record time.
 * Replaying the history into a fresh observer is therefore equivalent
 * to having attached that observer during trace generation — which is
 * what lets a cached or deserialized TraceBundle feed a CommitOracle
 * without re-executing the workload.
 */

#ifndef PROTEUS_TRACE_WRITE_HISTORY_HH
#define PROTEUS_TRACE_WRITE_HISTORY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "trace/trace_builder.hh"

namespace proteus {

/** One recorded observer callback. */
struct WriteEvent
{
    enum class Kind : std::uint8_t
    {
        TxBegin,
        TxEnd,
        Store,
    };

    Kind kind = Kind::Store;
    ObservedWrite writeKind = ObservedWrite::Logged;    ///< Store only
    CoreId thread = 0;
    std::uint8_t size = 0;          ///< Store only
    TxId tx = 0;
    Addr addr = invalidAddr;        ///< Store only
    std::uint64_t before = 0;       ///< Store only
    std::uint64_t after = 0;        ///< Store only

    bool operator==(const WriteEvent &) const = default;
};

/** Records the observer stream; replayable any number of times. */
class WriteHistory : public TraceWriteObserver
{
  public:
    void onTxBegin(CoreId thread, TxId tx) override;
    void onTxEnd(CoreId thread, TxId tx) override;
    void onStore(CoreId thread, TxId tx, Addr addr, unsigned size,
                 std::uint64_t before, std::uint64_t after,
                 ObservedWrite kind) override;

    /** Deliver every recorded event, in order, to @p obs. */
    void replayTo(TraceWriteObserver &obs) const;

    const std::vector<WriteEvent> &events() const { return _events; }
    std::vector<WriteEvent> &events() { return _events; }
    bool empty() const { return _events.empty(); }

  private:
    std::vector<WriteEvent> _events;
};

/** Fans one observer stream out to several observers (any may be null). */
class TeeWriteObserver : public TraceWriteObserver
{
  public:
    TeeWriteObserver(TraceWriteObserver *a, TraceWriteObserver *b)
        : _a(a), _b(b)
    {
    }

    void
    onTxBegin(CoreId thread, TxId tx) override
    {
        if (_a)
            _a->onTxBegin(thread, tx);
        if (_b)
            _b->onTxBegin(thread, tx);
    }

    void
    onTxEnd(CoreId thread, TxId tx) override
    {
        if (_a)
            _a->onTxEnd(thread, tx);
        if (_b)
            _b->onTxEnd(thread, tx);
    }

    void
    onStore(CoreId thread, TxId tx, Addr addr, unsigned size,
            std::uint64_t before, std::uint64_t after,
            ObservedWrite kind) override
    {
        if (_a)
            _a->onStore(thread, tx, addr, size, before, after, kind);
        if (_b)
            _b->onStore(thread, tx, addr, size, before, after, kind);
    }

  private:
    TraceWriteObserver *_a;
    TraceWriteObserver *_b;
};

} // namespace proteus

#endif // PROTEUS_TRACE_WRITE_HISTORY_HH
