#include "trace_builder.hh"

#include "logging/log_record.hh"
#include "sim/logging.hh"

namespace proteus {

TraceBuilder::TraceBuilder(PersistentHeap &heap, LogScheme scheme,
                           CoreId thread)
    : _heap(heap), _scheme(scheme), _thread(thread)
{
    // The Figure 2 logFlag word lives in the persistent region so that
    // recovery can read it after a crash.
    _logFlagAddr = heap.alloc(blockSize, blockSize);
    heap.write<std::uint64_t>(_logFlagAddr, 0);
}

TxId
TraceBuilder::baseTxId() const
{
    return (static_cast<TxId>(_thread) + 1) << 40;
}

void
TraceBuilder::setLogArea(Addr start, Addr end)
{
    if (end <= start || start % logEntrySize != 0)
        fatal("TraceBuilder: bad log area");
    _logStart = start;
    _logEnd = end;
    _logCursor = start;
}

std::int16_t
TraceBuilder::nextValueReg()
{
    const std::int16_t reg = firstValueReg + _valueRegCursor;
    _valueRegCursor =
        static_cast<std::int16_t>((_valueRegCursor + 1) % numValueRegs);
    return reg;
}

std::int16_t
TraceBuilder::nextLogReg()
{
    const std::int16_t reg = firstLogReg + _logRegCursor;
    _logRegCursor = static_cast<std::int16_t>((_logRegCursor + 1) % 8);
    return reg;
}

void
TraceBuilder::emit(MicroOp mop)
{
    _trace.push(mop);
}

void
TraceBuilder::emitLoad(Addr addr, unsigned size, std::int16_t dst,
                       std::int16_t addr_reg)
{
    MicroOp mop;
    mop.op = Op::Load;
    mop.addr = addr;
    mop.size = static_cast<std::uint8_t>(size);
    mop.dst = dst;
    mop.src0 = addr_reg;
    emit(mop);
}

void
TraceBuilder::emitStoreOp(Addr addr, unsigned size, std::uint64_t value,
                          std::int16_t dep_reg)
{
    if (size == 0 || size > 8)
        panic("TraceBuilder: store size must be 1..8 bytes");
    if (blockAlign(addr) != blockAlign(addr + size - 1))
        panic("TraceBuilder: store crosses a cache block");
    MicroOp mop;
    mop.op = Op::Store;
    mop.addr = addr;
    mop.size = static_cast<std::uint8_t>(size);
    mop.data = value;
    mop.src0 = dep_reg;
    mop.persistent = PersistentHeap::isPersistent(addr);
    emit(mop);
}

void
TraceBuilder::emitClwb(Addr block)
{
    MicroOp mop;
    mop.op = Op::ClWb;
    mop.addr = blockAlign(block);
    emit(mop);
}

void
TraceBuilder::emitSFence()
{
    MicroOp mop;
    mop.op = Op::SFence;
    emit(mop);
}

void
TraceBuilder::emitPersistBarrier()
{
    emitSFence();
    if (_scheme == LogScheme::PMEMPCommit) {
        MicroOp mop;
        mop.op = Op::PCommit;
        emit(mop);
        emitSFence();
    }
}

Value
TraceBuilder::load(Addr addr, unsigned size, Value addr_dep)
{
    if (size == 0 || size > 8)
        panic("TraceBuilder: load size must be 1..8 bytes");
    std::uint64_t v = 0;
    _heap.readBytes(addr, &v, size);
    if (_collecting) {
        _touchSet->readGranules.insert(logAlign(addr));
        return Value{v, noReg};
    }
    if (!_recording)
        return Value{v, noReg};
    const std::int16_t dst = nextValueReg();
    emitLoad(addr, size, dst, addr_dep.reg);
    return Value{v, dst};
}

Value
TraceBuilder::alu(Value a, Value b)
{
    if (!_recording)
        return Value{a.v + b.v, noReg};
    MicroOp mop;
    mop.op = Op::IntAlu;
    mop.src0 = a.reg;
    mop.src1 = b.reg;
    mop.dst = nextValueReg();
    emit(mop);
    return Value{a.v + b.v, mop.dst};
}

Value
TraceBuilder::mul(Value a, Value b)
{
    if (!_recording)
        return Value{a.v * b.v, noReg};
    MicroOp mop;
    mop.op = Op::IntMul;
    mop.src0 = a.reg;
    mop.src1 = b.reg;
    mop.dst = nextValueReg();
    emit(mop);
    return Value{a.v * b.v, mop.dst};
}

void
TraceBuilder::work(unsigned n)
{
    if (!_recording)
        return;
    Value chains[4] = {};
    for (unsigned i = 0; i < n; ++i)
        chains[i % 4] = alu(chains[i % 4]);
}

void
TraceBuilder::workChase(unsigned n)
{
    if (!_recording)
        return;
    if (_scratch == invalidAddr) {
        _scratch = _heap.allocVolatile(scratchBytes, blockSize);
    }
    Value prev{};
    for (unsigned i = 0; i < n; ++i) {
        const Addr addr =
            _scratch + (_scratchCursor % (scratchBytes / 8)) * 8;
        ++_scratchCursor;
        prev = load(addr, 8, prev);
    }
}

void
TraceBuilder::workChaseCold(unsigned n)
{
    if (!_recording)
        return;
    const Addr arena = _heap.chaseArena();
    const std::uint64_t blocks =
        PersistentHeap::chaseArenaBytes / blockSize;
    Value prev{};
    for (unsigned i = 0; i < n; ++i) {
        // A large coprime stride scatters accesses across the arena so
        // they stay cold in every cache level.
        _coldCursor = (_coldCursor + 1299827 + _thread * 131) % blocks;
        prev = load(arena + _coldCursor * blockSize, 8, prev);
    }
}

void
TraceBuilder::branch(std::uint32_t site, bool taken, Value dep)
{
    if (!_recording)
        return;
    MicroOp mop;
    mop.op = Op::Branch;
    mop.staticPc = site;
    mop.taken = taken;
    mop.src0 = dep.reg;
    emit(mop);
}

void
TraceBuilder::lockAcquire(Addr lock_addr, std::uint64_t ticket)
{
    if (!_recording)
        return;
    MicroOp mop;
    mop.op = Op::LockAcquire;
    mop.addr = lock_addr;
    mop.data = ticket;
    emit(mop);
}

void
TraceBuilder::lockRelease(Addr lock_addr)
{
    if (!_recording)
        return;
    MicroOp mop;
    mop.op = Op::LockRelease;
    mop.addr = lock_addr;
    emit(mop);
}

TxId
TraceBuilder::beginTx()
{
    if (_inTx)
        panic("TraceBuilder: nested transaction");
    _inTx = true;
    _currentTx = baseTxId() + (++_txCounter);
    _swSeqInTx = 0;
    _swFlagSet = false;
    _swLoggedGranules.clear();
    _dirtyBlocks.clear();
    if (_logStart != invalidAddr)
        _logCursor = _logStart;     // software log overwritten per tx

    if (_recording) {
        if (_writeObserver)
            _writeObserver->onTxBegin(_thread, _currentTx);
        MicroOp mop;
        mop.op = Op::TxBegin;
        mop.data = _currentTx;
        emit(mop);
    }
    return _currentTx;
}

void
TraceBuilder::notifyWrite(Addr addr, unsigned size, std::uint64_t value,
                          ObservedWrite kind)
{
    if (!_writeObserver)
        return;
    std::uint64_t before = 0;
    _heap.readBytes(addr, &before, size);
    _writeObserver->onStore(_thread, _inTx ? _currentTx : 0, addr, size,
                            before, value, kind);
}

Addr
TraceBuilder::swNextLogSlot()
{
    if (_logCursor == invalidAddr)
        fatal("TraceBuilder: software logging requires a log area");
    const std::uint64_t capacity = (_logEnd - _logStart) / logEntrySize;
    if (_swSeqInTx >= capacity)
        fatal("TraceBuilder: transaction overflowed the software log");
    const Addr slot = _logCursor;
    _logCursor += logEntrySize;
    if (_logCursor >= _logEnd)
        _logCursor = _logStart;
    return slot;
}

void
TraceBuilder::swEmitLogEntry(Addr granule)
{
    const Addr slot = swNextLogSlot();

    // Copy loop: load the original 32B granule...
    std::int16_t regs[4];
    for (unsigned i = 0; i < 4; ++i) {
        regs[i] = nextValueReg();
        emitLoad(granule + i * 8, 8, regs[i], noReg);
    }
    // ...store it into the log entry together with its metadata...
    for (unsigned i = 0; i < 4; ++i) {
        std::uint64_t chunk = _heap.read<std::uint64_t>(granule + i * 8);
        MicroOp mop;
        mop.op = Op::Store;
        mop.addr = slot + i * 8;
        mop.size = 8;
        mop.data = chunk;
        mop.src0 = regs[i];
        mop.persistent = true;
        emit(mop);
    }
    emitStoreOp(slot + 32, 8, granule, noReg);          // fromAddr
    emitStoreOp(slot + 40, 8, _currentTx, noReg);       // txId
    emitStoreOp(slot + 48, 8, _swSeqInTx++, noReg);     // seq
    const std::uint64_t tail =
        static_cast<std::uint64_t>(LogRecord::flagValid) |
        (static_cast<std::uint64_t>(LogRecord::magicValue) << 32);
    emitStoreOp(slot + 56, 8, tail, noReg);             // flags+magic

    // Mirror the entry into the functional heap (the program wrote it).
    std::uint8_t entry_bytes[logDataSize];
    _heap.readBytes(granule, entry_bytes, logDataSize);
    _heap.writeBytes(slot, entry_bytes, logDataSize);
    _heap.write<std::uint64_t>(slot + 32, granule);
    _heap.write<std::uint64_t>(slot + 40, _currentTx);
    _heap.write<std::uint64_t>(slot + 48, _swSeqInTx - 1);
    _heap.write<std::uint64_t>(slot + 56, tail);

    // ...and schedule the entry's block for the step-1 persist.
    emitClwb(slot);
}

void
TraceBuilder::declareLogged(Addr addr, unsigned size)
{
    if (!_inTx)
        panic("TraceBuilder::declareLogged outside a transaction");
    if (_scheme != LogScheme::PMEM && _scheme != LogScheme::PMEMPCommit)
        return;     // hardware schemes log dynamically
    if (!_recording) {
        return;
    }
    if (_swFlagSet)
        panic("TraceBuilder: undo log declared after the first store "
              "(violates Figure 2 step order)");

    const Addr first = logAlign(addr);
    const Addr last = logAlign(addr + (size ? size : 1) - 1);
    for (Addr g = first; g <= last; g += logDataSize) {
        if (_swLoggedGranules.insert(g).second)
            swEmitLogEntry(g);
    }
}

void
TraceBuilder::swOpenTxIfNeeded()
{
    if (_swFlagSet)
        return;
    _swFlagSet = true;
    // Close step 1: persist all log entries written so far.
    emitPersistBarrier();
    // Step 2: set the logFlag and persist it.
    emitStoreOp(_logFlagAddr, 8, _currentTx, noReg);
    emitClwb(_logFlagAddr);
    emitPersistBarrier();
}

void
TraceBuilder::recordUndo(Addr addr, unsigned size)
{
    std::array<std::uint8_t, 8> old{};
    _heap.readBytes(addr, old.data(), size);
    _undoLog.emplace_back(addr, old);
    _touchSet->writtenGranules.insert(logAlign(addr));
    if (size > 0 &&
        logAlign(addr + size - 1) != logAlign(addr)) {
        _touchSet->writtenGranules.insert(logAlign(addr + size - 1));
    }
}

TraceBuilder::TouchSet
TraceBuilder::collectTouched(const std::function<void()> &fn)
{
    if (_collecting)
        panic("TraceBuilder: nested collectTouched");
    TouchSet result;
    const bool was_recording = _recording;
    _recording = false;
    _collecting = true;
    _touchSet = &result;
    _undoLog.clear();

    fn();

    // Roll the heap back to its pre-mutation state.
    for (auto it = _undoLog.rbegin(); it != _undoLog.rend(); ++it)
        _heap.writeBytes(it->first, it->second.data(), 8);
    _undoLog.clear();
    _touchSet = nullptr;
    _collecting = false;
    _recording = was_recording;
    return result;
}

void
TraceBuilder::store(Addr addr, unsigned size, std::uint64_t value,
                    Value dep)
{
    if (!_inTx)
        panic("TraceBuilder::store outside a transaction; "
              "use storeRaw for non-transactional stores");
    if (_collecting) {
        recordUndo(addr, 8);
        _heap.writeBytes(addr, &value, size);
        return;
    }

    if (_recording) {
        switch (_scheme) {
          case LogScheme::PMEM:
          case LogScheme::PMEMPCommit:
            if (_swLoggedGranules.count(logAlign(addr)) == 0)
                panic("TraceBuilder: store to an undeclared undo-log "
                      "region (software logging would be unsafe)");
            swOpenTxIfNeeded();
            emitStoreOp(addr, size, value, dep.reg);
            _dirtyBlocks.insert(blockAlign(addr));
            break;
          case LogScheme::PMEMNoLog:
            emitStoreOp(addr, size, value, dep.reg);
            _dirtyBlocks.insert(blockAlign(addr));
            break;
          case LogScheme::ATOM:
            emitStoreOp(addr, size, value, dep.reg);
            break;
          case LogScheme::Proteus:
          case LogScheme::ProteusNoLWR: {
            // Figure 4: log-load LRn, X; log-flush LRn, (LTA)+; st X.
            const Addr granule = logAlign(addr);
            LogPayload payload;
            _heap.readBytes(granule, payload.bytes, logDataSize);
            payload.fromAddr = granule;
            payload.txId = _currentTx;
            const std::uint32_t pid = _trace.addPayload(payload);

            const std::int16_t lr = nextLogReg();
            MicroOp ll;
            ll.op = Op::LogLoad;
            ll.addr = granule;
            ll.size = logDataSize;
            ll.dst = lr;
            emit(ll);

            MicroOp lf;
            lf.op = Op::LogFlush;
            lf.addr = granule;
            lf.src0 = lr;
            lf.payload = pid;
            emit(lf);

            emitStoreOp(addr, size, value, dep.reg);
            break;
          }
        }
        notifyWrite(addr, size, value,
                    _scheme != LogScheme::PMEMNoLog
                        ? ObservedWrite::Logged
                        : ObservedWrite::Unlogged);
    }

    _heap.writeBytes(addr, &value, size);
}

void
TraceBuilder::storeInit(Addr addr, unsigned size, std::uint64_t value,
                        Value dep)
{
    if (!_inTx)
        panic("TraceBuilder::storeInit outside a transaction");
    if (_recording &&
        (_scheme == LogScheme::PMEM ||
         _scheme == LogScheme::PMEMPCommit)) {
        // Fresh allocation: no undo entry needed, but the data must
        // still persist by commit (Figure 2 step 3).
        swOpenTxIfNeeded();
        emitStoreOp(addr, size, value, dep.reg);
        _dirtyBlocks.insert(blockAlign(addr));
        notifyWrite(addr, size, value, ObservedWrite::Unlogged);
        _heap.writeBytes(addr, &value, size);
        return;
    }
    store(addr, size, value, dep);
}

void
TraceBuilder::storeRaw(Addr addr, unsigned size, std::uint64_t value,
                       Value dep)
{
    if (_collecting) {
        recordUndo(addr, size);
        _heap.writeBytes(addr, &value, size);
        return;
    }
    if (_recording) {
        emitStoreOp(addr, size, value, dep.reg);
        notifyWrite(addr, size, value, ObservedWrite::Raw);
    }
    _heap.writeBytes(addr, &value, size);
}

void
TraceBuilder::endTx()
{
    if (!_inTx)
        panic("TraceBuilder::endTx outside a transaction");

    if (_recording) {
        switch (_scheme) {
          case LogScheme::PMEM:
          case LogScheme::PMEMPCommit:
            if (_swFlagSet) {
                // Step 3: persist the data updates.
                for (Addr block : _dirtyBlocks)
                    emitClwb(block);
                emitPersistBarrier();
                // Step 4: clear the logFlag and persist it.
                emitStoreOp(_logFlagAddr, 8, 0, noReg);
                emitClwb(_logFlagAddr);
                emitPersistBarrier();
            }
            break;
          case LogScheme::PMEMNoLog:
            for (Addr block : _dirtyBlocks)
                emitClwb(block);
            emitPersistBarrier();
            break;
          case LogScheme::ATOM:
          case LogScheme::Proteus:
          case LogScheme::ProteusNoLWR:
            break;      // tx-end hardware handles durability
        }

        MicroOp mop;
        mop.op = Op::TxEnd;
        mop.data = _currentTx;
        emit(mop);
        if (_writeObserver)
            _writeObserver->onTxEnd(_thread, _currentTx);
    }
    _inTx = false;
    _currentTx = 0;
}

} // namespace proteus
