#include "write_history.hh"

namespace proteus {

void
WriteHistory::onTxBegin(CoreId thread, TxId tx)
{
    WriteEvent e;
    e.kind = WriteEvent::Kind::TxBegin;
    e.thread = thread;
    e.tx = tx;
    _events.push_back(e);
}

void
WriteHistory::onTxEnd(CoreId thread, TxId tx)
{
    WriteEvent e;
    e.kind = WriteEvent::Kind::TxEnd;
    e.thread = thread;
    e.tx = tx;
    _events.push_back(e);
}

void
WriteHistory::onStore(CoreId thread, TxId tx, Addr addr, unsigned size,
                      std::uint64_t before, std::uint64_t after,
                      ObservedWrite kind)
{
    WriteEvent e;
    e.kind = WriteEvent::Kind::Store;
    e.writeKind = kind;
    e.thread = thread;
    e.size = static_cast<std::uint8_t>(size);
    e.tx = tx;
    e.addr = addr;
    e.before = before;
    e.after = after;
    _events.push_back(e);
}

void
WriteHistory::replayTo(TraceWriteObserver &obs) const
{
    for (const WriteEvent &e : _events) {
        switch (e.kind) {
          case WriteEvent::Kind::TxBegin:
            obs.onTxBegin(e.thread, e.tx);
            break;
          case WriteEvent::Kind::TxEnd:
            obs.onTxEnd(e.thread, e.tx);
            break;
          case WriteEvent::Kind::Store:
            obs.onStore(e.thread, e.tx, e.addr, e.size, e.before,
                        e.after, e.writeKind);
            break;
        }
    }
}

} // namespace proteus
