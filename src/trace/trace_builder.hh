/**
 * @file
 * Scheme-aware trace codegen: the "compiler" of the paper.
 *
 * Workloads execute functionally against the PersistentHeap through this
 * builder; every access is simultaneously applied to the heap and
 * recorded as micro-ops, expanded per logging scheme:
 *
 *  - PMEM / PMEM+pcommit (Figure 2): declared undo-log regions are
 *    copied to the software log with loads/stores and persisted with
 *    clwb+sfence (step 1); a logFlag store marks the transaction live
 *    (step 2); data stores are followed by per-block clwb and sfence at
 *    commit (step 3); the flag is cleared and persisted (step 4). The
 *    pcommit variant adds pcommit+sfence after every persist point.
 *  - PMEM+nolog: data stores with clwb+sfence only (the ideal case).
 *  - ATOM: plain stores inside tx-begin/tx-end; hardware logs.
 *  - Proteus (Figure 4): each store expands to log-load LRn, addr;
 *    log-flush LRn, (LTA)+; st addr. The 32-byte pre-store granule is
 *    captured into the log payload exactly as the hardware log-load
 *    would read it.
 *
 * Dependency realism: load() returns a Value carrying the logical
 * register that holds the result; passing it as the address dependency
 * of a subsequent access creates the pointer-chasing chains the timing
 * core honors through renaming.
 */

#ifndef PROTEUS_TRACE_TRACE_BUILDER_HH
#define PROTEUS_TRACE_TRACE_BUILDER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "heap/persistent_heap.hh"
#include "isa/trace.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace proteus {

/** A functional value paired with the register that will hold it. */
struct Value
{
    std::uint64_t v = 0;
    std::int16_t reg = noReg;
};

/**
 * How a recorded write relates to the active scheme's failure-safety
 * machinery — what the crash-consistency oracle may assume about it.
 */
enum class ObservedWrite
{
    /** Undo-logged: rolled back if the transaction does not commit. */
    Logged,
    /**
     * Not undo-logged but persisted by commit (storeInit under software
     * logging, every store under pmem+nolog): an uncommitted
     * transaction leaves it in an unpredictable state.
     */
    Unlogged,
    /** storeRaw: neither logged nor ordered by any persist barrier. */
    Raw,
};

/**
 * Observer of the program-level writes a TraceBuilder records. The
 * crash-consistency oracle implements this to learn, in the global
 * round-robin recording order (= the functional serialization), which
 * transaction wrote which bytes, the pre- and post-write values, and
 * how the active scheme treats the write (ObservedWrite). Callbacks
 * fire only while recording, never during the conservative-logging dry
 * run, and never for replayOps.
 */
class TraceWriteObserver
{
  public:
    virtual ~TraceWriteObserver() = default;

    /** A durable transaction was opened on @p thread. */
    virtual void onTxBegin(CoreId thread, TxId tx) = 0;

    /** The transaction's commit sequence was recorded. */
    virtual void onTxEnd(CoreId thread, TxId tx) = 0;

    /**
     * @p size bytes at @p addr changed from @p before to @p after.
     * @p tx is 0 for writes outside any transaction.
     */
    virtual void onStore(CoreId thread, TxId tx, Addr addr,
                         unsigned size, std::uint64_t before,
                         std::uint64_t after, ObservedWrite kind) = 0;
};

/** Records one thread's micro-op trace while executing functionally. */
class TraceBuilder
{
  public:
    TraceBuilder(PersistentHeap &heap, LogScheme scheme, CoreId thread);

    /** Bind the software-managed circular log area (Section 4.1). */
    void setLogArea(Addr start, Addr end);
    Addr logAreaStart() const { return _logStart; }
    Addr logAreaEnd() const { return _logEnd; }
    /** Per-thread logFlag word used by the Figure 2 protocol. */
    Addr logFlagAddr() const { return _logFlagAddr; }

    /** While false, accesses update the heap without recording
     *  (functional warmup of the paper's InitOps). */
    void setRecording(bool on) { _recording = on; }
    bool recording() const { return _recording; }

    /** Attach a write observer (crash oracle); nullptr detaches. */
    void setWriteObserver(TraceWriteObserver *obs)
    {
        _writeObserver = obs;
    }

    /// @name Program-level operations
    /// @{
    /** Load @p size bytes; @p addr_dep threads a pointer-chase chain. */
    Value load(Addr addr, unsigned size, Value addr_dep = {});

    /** Transactional persistent store, expanded per scheme. */
    void store(Addr addr, unsigned size, std::uint64_t value,
               Value dep = {});

    /**
     * Store that initializes freshly allocated memory. Software undo
     * logging skips it (the paper assumes failure-safe allocation, so
     * unreachable new nodes need no undo entry); hardware schemes still
     * log it because the hardware cannot distinguish fresh memory.
     */
    void storeInit(Addr addr, unsigned size, std::uint64_t value,
                   Value dep = {});

    /** Plain store with no logging expansion (volatile or metadata). */
    void storeRaw(Addr addr, unsigned size, std::uint64_t value,
                  Value dep = {});

    /** Integer work (key compares, pointer arithmetic). */
    Value alu(Value a = {}, Value b = {});
    Value mul(Value a = {}, Value b = {});

    /**
     * Emit @p n ALU micro-ops modeling straight-line computation
     * (allocation bookkeeping, hashing, call overhead) with moderate
     * ILP: four independent dependency chains.
     */
    void work(unsigned n);

    /**
     * Emit @p n serially dependent L1-resident loads modeling
     * pointer-heavy runtime work (allocator metadata walks, library
     * call chains). Each load's address register depends on the
     * previous load, so the chain costs roughly n x L1 latency.
     */
    void workChase(unsigned n);

    /**
     * Emit @p n serially dependent loads striding through a shared
     * arena larger than the L3: each one models a cold NVM read (the
     * dominant cost of real operations at the paper's working-set
     * sizes).
     */
    void workChaseCold(unsigned n);

    /** Conditional branch at static site @p site with outcome @p taken. */
    void branch(std::uint32_t site, bool taken, Value dep = {});

    /** @p ticket is the global grant order for this lock, assigned at
     *  trace-generation time (fair ticket lock). */
    void lockAcquire(Addr lock_addr, std::uint64_t ticket);
    void lockRelease(Addr lock_addr);
    /// @}

    /// @name Durable transactions
    /// @{
    /** Open a durable transaction; @return its id (monotonic/thread). */
    TxId beginTx();

    /**
     * Software undo logging (Figure 2 step 1): declare that the bytes
     * at [@p addr, @p addr + size) may be modified by this transaction.
     * Ignored by hardware schemes (they log dynamically). Must precede
     * the first store of the transaction.
     */
    void declareLogged(Addr addr, unsigned size);

    /** Commit: emits the scheme's persist/commit sequence + tx-end. */
    void endTx();
    /// @}

    /**
     * Discover what a mutation touches without recording it.
     *
     * Runs @p fn with recording suppressed, tracking every 32B granule
     * it reads or writes, then rolls the heap back to its prior state.
     * The caller can then emit the conservative undo-log declares of a
     * software logger ("log all nodes that could be modified") before
     * re-running @p fn for real. @p fn must be deterministic, must not
     * allocate or free heap memory, and must not begin/end
     * transactions.
     */
    struct TouchSet
    {
        std::set<Addr> readGranules;
        std::set<Addr> writtenGranules;
    };
    TouchSet collectTouched(const std::function<void()> &fn);

    /** Number of transactions begun (committed or recorded). */
    std::uint64_t txCount() const { return _txCounter; }

    const Trace &trace() const { return _trace; }
    Trace takeTrace() { return std::move(_trace); }

    PersistentHeap &heap() { return _heap; }

    /** First txId this thread uses (txIds are monotonic per thread). */
    TxId baseTxId() const;

  private:
    std::int16_t nextValueReg();
    std::int16_t nextLogReg();
    void emit(MicroOp mop);
    void emitLoad(Addr addr, unsigned size, std::int16_t dst,
                  std::int16_t addr_reg);
    void emitStoreOp(Addr addr, unsigned size, std::uint64_t value,
                     std::int16_t dep_reg);
    void emitClwb(Addr block);
    void emitSFence();
    void emitPersistBarrier();  ///< sfence [+ pcommit + sfence]
    void swEmitLogEntry(Addr granule);
    void recordUndo(Addr addr, unsigned size);
    void swOpenTxIfNeeded();    ///< Figure 2 steps 1-2 closing
    Addr swNextLogSlot();

    /** Read the pre-image and notify the attached write observer. */
    void notifyWrite(Addr addr, unsigned size, std::uint64_t value,
                     ObservedWrite kind);

    PersistentHeap &_heap;
    LogScheme _scheme;
    CoreId _thread;
    Trace _trace;
    bool _recording = false;
    TraceWriteObserver *_writeObserver = nullptr;

    /** Rotating logical registers: r0..r19 values, r24..r31 LRs. */
    static constexpr std::int16_t firstValueReg = 0;
    static constexpr std::int16_t numValueRegs = 20;
    static constexpr std::int16_t firstLogReg = 24;
    std::int16_t _valueRegCursor = 0;
    std::int16_t _logRegCursor = 0;

    static constexpr std::uint64_t scratchBytes = 4096;
    Addr _scratch = invalidAddr;
    std::uint64_t _scratchCursor = 0;
    std::uint64_t _coldCursor = 0;

    Addr _logStart = invalidAddr;
    Addr _logEnd = invalidAddr;
    Addr _logCursor = invalidAddr;
    Addr _logFlagAddr = invalidAddr;

    /// @name Per-transaction state
    /// @{
    bool _inTx = false;
    bool _collecting = false;
    TouchSet *_touchSet = nullptr;
    std::vector<std::pair<Addr, std::array<std::uint8_t, 8>>> _undoLog;
    TxId _currentTx = 0;
    std::uint64_t _txCounter = 0;
    std::uint64_t _swSeqInTx = 0;
    bool _swFlagSet = false;        ///< Figure 2 step 2 done
    std::set<Addr> _swLoggedGranules;
    std::set<Addr> _dirtyBlocks;    ///< for step-3 clwbs
    /// @}
};

} // namespace proteus

#endif // PROTEUS_TRACE_TRACE_BUILDER_HH
