/**
 * @file
 * The .ptrace binary trace-snapshot format: a versioned, endian-stable,
 * CRC-checked serialization of a TraceBundle, so expensive traces can
 * be recorded once (tools/proteus-trace record) and replayed across
 * sessions and CI runs.
 *
 * Layout (every integer little-endian regardless of host):
 *
 *   header:   magic "PTRC" (u32), version (u32), byte-order mark
 *             0x01020304 (u32), section count (u32)
 *   section:  tag (u32 fourcc), payload size (u64), CRC-32 of the
 *             payload (u32), payload bytes
 *
 * Sections, in file order:
 *   META  workload kind, scheme, params, linked-list options, and
 *         (v2) the generated workload's canonical spec string
 *   THRD  one per thread: log-area bounds, micro-ops, log payloads
 *   VIMG  volatile heap image (sparse 4 KiB pages, sorted)
 *   NIMG  NVM heap image (the post-setup durable state)
 *   ALOC  heap allocator state (frontiers, free bins, log frontier)
 *   LOCK  lock map: lock address -> LockAcquire count, from the traces
 *   HIST  optional: the replayable TraceWriteObserver event stream
 *
 * Loading validates the header, every section's size and CRC, and all
 * internal references (payload indices, section presence, lock-map
 * consistency against the deserialized traces). Corrupt or truncated
 * input of any shape throws FatalError — it must never crash the
 * process, which the fuzz tests assert byte-flip by byte-flip.
 *
 * Loaded bundles carry no Workload object (Workload state is not
 * serializable); they can drive FullSystem runs, benches, and stats
 * regression, but not workload-level invariant checks.
 */

#ifndef PROTEUS_HARNESS_TRACE_IO_HH
#define PROTEUS_HARNESS_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace_bundle.hh"

namespace proteus {

/** Current .ptrace format version. Version 2 appended the generated
 *  workload's canonical spec string to META (empty for other kinds). */
constexpr std::uint32_t ptraceVersion = 2;

/** Save @p bundle to @p path; throws FatalError on I/O failure. */
void saveTraceBundle(const TraceBundle &bundle, const std::string &path);

/**
 * Load a bundle from @p path. Throws FatalError on corrupt, truncated,
 * version-mismatched, or internally inconsistent input. The returned
 * bundle has no workload object (hasWorkload() is false downstream).
 */
std::shared_ptr<const TraceBundle>
loadTraceBundle(const std::string &path);

/** Parsed summary of one section, for `proteus-trace info`. */
struct PtraceSectionInfo
{
    std::string tag;            ///< fourcc, e.g. "THRD"
    std::uint64_t bytes = 0;    ///< payload size
    std::uint32_t crc = 0;      ///< stored CRC-32
    bool crcOk = false;         ///< recomputed CRC matches
};

/** Whole-file summary: header plus per-section stats. */
struct PtraceFileInfo
{
    std::uint32_t version = 0;
    TraceBundleKey key;
    std::vector<PtraceSectionInfo> sections;
    std::uint64_t totalOps = 0;
    std::uint64_t totalPayloads = 0;
    std::uint64_t totalTxs = 0;
    std::uint64_t historyEvents = 0;
    std::uint64_t volatilePages = 0;
    std::uint64_t nvmPages = 0;
    std::uint64_t lockCount = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * Inspect @p path without fully materializing the bundle: header and
 * section table are parsed, CRCs recomputed, counters decoded. Throws
 * FatalError when even the header/section table cannot be parsed.
 */
PtraceFileInfo inspectTraceFile(const std::string &path);

/**
 * Deep verification for `proteus-trace verify`: CRC-check every
 * section, load the bundle, and cross-check internal consistency
 * (payload references, lock map vs. traces, log-area sanity).
 * @return list of problems; empty means the file is sound.
 */
std::vector<std::string> verifyTraceFile(const std::string &path);

/** CRC-32 (IEEE 802.3) of @p n bytes — exposed for tests. */
std::uint32_t crc32(const void *data, std::size_t n);

} // namespace proteus

#endif // PROTEUS_HARNESS_TRACE_IO_HH
