#include "trace_cache.hh"

namespace proteus {

std::shared_ptr<const TraceBundle>
TraceCache::get(const TraceBundleKey &key, bool want_history)
{
    {
        Future future;
        std::promise<std::shared_ptr<const TraceBundle>> promise;
        bool builder = false;
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            auto it = _entries.find(key);
            if (it == _entries.end()) {
                builder = true;
                ++_misses;
                future = promise.get_future().share();
                _entries.emplace(key, future);
            } else {
                future = it->second;
            }
        }

        if (builder) {
            // Build outside the lock so concurrent lookups of other
            // keys proceed; same-key lookups block on the future.
            try {
                promise.set_value(
                    TraceBundle::build(key, nullptr, want_history));
            } catch (...) {
                promise.set_exception(std::current_exception());
                const std::lock_guard<std::mutex> lock(_mutex);
                _entries.erase(key);
                throw;
            }
            return future.get();
        }

        std::shared_ptr<const TraceBundle> bundle = future.get();
        if (want_history && !bundle->history) {
            // Rare upgrade: a plain bundle exists but the caller needs
            // the write history. Rebuild with history and replace.
            auto upgraded = TraceBundle::build(key, nullptr, true);
            const std::lock_guard<std::mutex> lock(_mutex);
            std::promise<std::shared_ptr<const TraceBundle>> done;
            done.set_value(upgraded);
            _entries[key] = done.get_future().share();
            ++_misses;
            return upgraded;
        }
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            ++_hits;
        }
        return bundle;
    }
}

void
TraceCache::clear()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
}

std::size_t
TraceCache::size() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

} // namespace proteus
