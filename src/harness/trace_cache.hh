/**
 * @file
 * Process-wide cache of TraceBundles keyed by TraceBundleKey.
 *
 * A crashtest sweep (hundreds of crash points per scheme) or a
 * bench::runMatrix batch constructs many FullSystems whose traces are
 * identical; the cache builds each distinct bundle exactly once —
 * including under concurrent lookups from the parallel runner's worker
 * threads, where the first requester builds while the others block on a
 * shared future — and hands out shared immutable references.
 *
 * Cached and uncached runs are bit-identical: both paths execute the
 * same TraceBundle::build and the same FullSystem wiring; the only
 * difference is how many times the functional workload executes.
 */

#ifndef PROTEUS_HARNESS_TRACE_CACHE_HH
#define PROTEUS_HARNESS_TRACE_CACHE_HH

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "trace_bundle.hh"

namespace proteus {

/** Build-once, share-everywhere store of immutable trace bundles. */
class TraceCache
{
  public:
    /**
     * The bundle for @p key, building it on first request.
     * @p want_history: the caller needs the replayable WriteHistory
     * (crash testing); a cached bundle without one is rebuilt once
     * with history and replaces the old entry. Thread-safe.
     */
    std::shared_ptr<const TraceBundle> get(const TraceBundleKey &key,
                                           bool want_history = false);

    /** Drop every cached bundle (tests, memory pressure). */
    void clear();

    /// @name Statistics
    /// @{
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::size_t size() const;
    /// @}

    /** The process-wide instance used by the harness entry points. */
    static TraceCache &global();

  private:
    struct KeyHash
    {
        std::size_t operator()(const TraceBundleKey &k) const
        {
            return k.hash();
        }
    };

    using Future = std::shared_future<std::shared_ptr<const TraceBundle>>;

    mutable std::mutex _mutex;
    std::unordered_map<TraceBundleKey, Future, KeyHash> _entries;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace proteus

#endif // PROTEUS_HARNESS_TRACE_CACHE_HH
