/**
 * @file
 * Experiment-harness helpers shared by the bench binaries: running one
 * (scheme x workload) configuration, speedup/geomean math, and the
 * fixed-width table printing used to reproduce the paper's figures.
 */

#ifndef PROTEUS_HARNESS_EXPERIMENTS_HH
#define PROTEUS_HARNESS_EXPERIMENTS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "faults/fault_config.hh"
#include "obs/tx_stats_io.hh"
#include "system.hh"

namespace proteus {

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    unsigned scale = 200;       ///< divide Table 2 SimOps
    unsigned initScale = 1;     ///< divide Table 2 InitOps (footprint)
    unsigned threads = 4;
    unsigned jobs = 0;          ///< host worker threads; 0 = all cores
    std::uint64_t seed = 1;
    bool dram = false;          ///< use the Section 7.2 DRAM config
    std::string jsonPath;       ///< write per-run JSON rows ("" = off)
    bool traceCache = true;     ///< share TraceBundles across runs
    bool cycleSkip = true;      ///< --no-cycle-skip to force per-cycle
    std::vector<std::string> overrides;

    /// @name Observability (see ObservabilityConfig)
    /// @{
    Tick statsInterval = 0;     ///< --stats-interval N (0 = off)
    std::string statsOut;       ///< --stats-out FILE
    std::string traceEvents;    ///< --trace-events FILE
    std::string traceCategories = "all";    ///< --trace-categories spec
    std::string txStats;        ///< --tx-stats FILE (flight recorder)
    std::uint64_t txSlowest = 8;    ///< --tx-slowest K timelines
    /// @}

    /// @name Generated workload (WorkloadKind::Generated)
    /// @{
    std::string wlSpec;         ///< --wl-spec k=v,... (inline spec)
    std::string wlSpecFile;     ///< --wl-spec-file FILE (base spec)
    /// @}

    /** NVM media fault injection (--faults SPEC / --fault-seed N);
     *  disabled by default, in which case every output stays
     *  bit-identical to a faultless build. */
    faults::FaultConfig faults;

    /// @name Persistency-order checking (src/analysis)
    /// @{
    bool check = false;     ///< --check: arm the online order checker
    long checkMutate = -1;  ///< --check-mutate N: campaign seed (-1 off)
    /// @}

    /** Parse argv; recognizes --scale N, --threads N, --jobs N,
     *  --seed N, --dram, --json FILE, --set key=value,
     *  --no-trace-cache, --no-cycle-skip,
     *  --stats-interval N, --stats-out FILE,
     *  --trace-events FILE, --trace-categories LIST,
     *  --tx-stats FILE, --tx-slowest K,
     *  --faults SPEC, --fault-seed N, --check, --check-mutate N,
     *  --wl-spec k=v,... and --wl-spec-file FILE.
     *  Validates numeric ranges (scale, init-scale, threads) before
     *  returning. Exits on --help. */
    static BenchOptions parse(int argc, char **argv);

    /** Baseline config with the options applied. */
    SystemConfig makeConfig() const;

    /** The generated-workload spec: the spec file (if any) with the
     *  inline --wl-spec applied on top. Defaults when neither is set. */
    wlgen::GenSpec genSpec() const;
};

/** Run one (scheme, workload) pair to completion. When cfg.obs.txStats
 *  names a file and the run produced a flight-recorder summary, the
 *  single-run tx-stats file is written here; batches clear the per-job
 *  path and combine rows instead (see ParallelRunner). */
RunResult runExperiment(SystemConfig cfg, LogScheme scheme,
                        WorkloadKind kind, const BenchOptions &opts,
                        const WorkloadExtras &extras = {});

/** Bind a run's flight-recorder summary to its identity for
 *  serialization (no-op row with a default summary if the recorder
 *  did not run). */
obs::TxStatsRow makeTxStatsRow(const BenchOptions &opts, LogScheme scheme,
                               WorkloadKind kind, const RunResult &result);

/** Geometric mean of @p values (which must be positive). */
double geomean(const std::vector<double> &values);

/** One machine-readable result row for --json output. */
struct JsonResultRow
{
    std::string scheme;
    std::string workload;
    RunResult result;
    double wallMs = 0;      ///< host wall-clock of the whole run
};

/**
 * Write @p rows as a JSON array to @p path so perf trajectories can be
 * tracked across commits. Throws FatalError if the file cannot be
 * written.
 */
void writeJsonResults(const std::string &path,
                      const std::vector<JsonResultRow> &rows);

/** Fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> columns);

    void printHeader(std::ostream &os) const;
    void printRow(std::ostream &os,
                  const std::vector<std::string> &cells) const;

    /** Format a double with @p precision decimals. */
    static std::string fmt(double v, int precision = 2);

  private:
    std::vector<std::string> _columns;
};

} // namespace proteus

#endif // PROTEUS_HARNESS_EXPERIMENTS_HH
