/**
 * @file
 * A fixed-size thread pool that runs batches of independent simulation
 * jobs — one FullSystem per (SystemConfig, LogScheme, WorkloadKind)
 * triple — concurrently.
 *
 * Every FullSystem is a self-contained deterministic machine (its own
 * Simulator, stats registry, heap, and per-thread RNGs seeded from the
 * job's config), so a batch is embarrassingly parallel. Results land in
 * submission order regardless of completion order, which makes a run at
 * --jobs N bit-identical to --jobs 1.
 */

#ifndef PROTEUS_HARNESS_PARALLEL_RUNNER_HH
#define PROTEUS_HARNESS_PARALLEL_RUNNER_HH

#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "experiments.hh"
#include "system.hh"

namespace proteus {

/**
 * Derive the per-job output path used for multi-job batches: inserts
 * ".job<index>" before the extension ("out/iv.json", 2 ->
 * "out/iv.job2.json"). Empty paths stay empty.
 */
std::string perJobPath(const std::string &path, std::size_t index);

/** One independent simulation to run. */
struct SimJob
{
    SystemConfig cfg;
    LogScheme scheme;
    WorkloadKind kind;
    WorkloadExtras extras{};
    std::string label;          ///< progress text, e.g. "Proteus / QE"
};

/** Outcome of one job: simulated counters plus host wall-clock. */
struct SimJobResult
{
    RunResult result;
    double wallMs = 0;
};

/**
 * Serializes progress lines from concurrent jobs so per-job start and
 * finish messages never interleave mid-line. When armed via
 * beginBatch, the per-job lines also carry jobs-in-flight counts and a
 * wall-clock ETA extrapolated from finished jobs' wallMs.
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::ostream &os);

    /** Print @p text plus a newline, atomically. */
    void line(const std::string &text);

    /** Arm batch tracking: @p total jobs over @p workers threads. */
    void beginBatch(std::size_t total, unsigned workers);
    /** Emit the "running LABEL..." line (with in-flight count). */
    void jobStarted(const std::string &label);
    /** Emit the "done LABEL (N ms)" line (with progress and ETA). */
    void jobFinished(const std::string &label, double wall_ms);

  private:
    std::mutex _mutex;
    std::ostream &_os;
    std::size_t _total = 0;
    std::size_t _done = 0;
    std::size_t _inFlight = 0;
    unsigned _workers = 1;
    double _wallMsSum = 0;
};

/** Fixed-size thread pool for batches of simulation jobs. */
class ParallelRunner
{
  public:
    /**
     * One arbitrary unit of pool work (crash sweeps, custom batches).
     * The closure owns its own result storage — tasks claimed from the
     * shared counter write to submission-indexed slots, so batches stay
     * bit-identical at any worker count.
     */
    struct Task
    {
        std::string label;          ///< progress text
        std::function<void()> fn;
    };

    /** @p jobs worker threads; 0 means hardware_concurrency. */
    explicit ParallelRunner(unsigned jobs);

    /** Worker threads a batch may use. */
    unsigned workers() const { return _workers; }

    /**
     * Run @p batch to completion and return per-job results in
     * submission order. @p opts supplies the workload parameters shared
     * by every job (threads, scale, seed). The first job exception (in
     * submission order) is rethrown after the batch drains.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &batch,
                                  const BenchOptions &opts,
                                  ProgressReporter *progress = nullptr);

    /**
     * Run @p tasks on the pool and return each task's host wall-clock
     * in milliseconds, indexed by submission order. The first task
     * exception (in submission order) is rethrown after the batch
     * drains.
     */
    std::vector<double> runTasks(const std::vector<Task> &tasks,
                                 ProgressReporter *progress = nullptr);

  private:
    unsigned _workers;
};

} // namespace proteus

#endif // PROTEUS_HARNESS_PARALLEL_RUNNER_HH
