/**
 * @file
 * A fixed-size thread pool that runs batches of independent simulation
 * jobs — one FullSystem per (SystemConfig, LogScheme, WorkloadKind)
 * triple — concurrently.
 *
 * Every FullSystem is a self-contained deterministic machine (its own
 * Simulator, stats registry, heap, and per-thread RNGs seeded from the
 * job's config), so a batch is embarrassingly parallel. Results land in
 * submission order regardless of completion order, which makes a run at
 * --jobs N bit-identical to --jobs 1.
 */

#ifndef PROTEUS_HARNESS_PARALLEL_RUNNER_HH
#define PROTEUS_HARNESS_PARALLEL_RUNNER_HH

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "experiments.hh"
#include "system.hh"

namespace proteus {

/** One independent simulation to run. */
struct SimJob
{
    SystemConfig cfg;
    LogScheme scheme;
    WorkloadKind kind;
    LinkedListOptions llOpts{};
    std::string label;          ///< progress text, e.g. "Proteus / QE"
};

/** Outcome of one job: simulated counters plus host wall-clock. */
struct SimJobResult
{
    RunResult result;
    double wallMs = 0;
};

/**
 * Serializes progress lines from concurrent jobs so per-job start and
 * finish messages never interleave mid-line.
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::ostream &os);

    /** Print @p text plus a newline, atomically. */
    void line(const std::string &text);

  private:
    std::mutex _mutex;
    std::ostream &_os;
};

/** Fixed-size thread pool for batches of simulation jobs. */
class ParallelRunner
{
  public:
    /** @p jobs worker threads; 0 means hardware_concurrency. */
    explicit ParallelRunner(unsigned jobs);

    /** Worker threads a batch may use. */
    unsigned workers() const { return _workers; }

    /**
     * Run @p batch to completion and return per-job results in
     * submission order. @p opts supplies the workload parameters shared
     * by every job (threads, scale, seed). The first job exception (in
     * submission order) is rethrown after the batch drains.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &batch,
                                  const BenchOptions &opts,
                                  ProgressReporter *progress = nullptr);

  private:
    unsigned _workers;
};

} // namespace proteus

#endif // PROTEUS_HARNESS_PARALLEL_RUNNER_HH
