/**
 * @file
 * Harness entry points for the persistency-order checker: run one
 * (scheme, workload) pair with the checker armed, batch sweeps over
 * the scheme matrix, the seeded mutation campaign that proves every
 * armed rule fires, and the crashtest-style text / deterministic JSON
 * reports consumed by tools/proteus-check, the --check bench flag, and
 * the CI smoke step.
 *
 * Reports never include host wall-clock, and batch rows land in
 * submission order, so --jobs N output is byte-identical to --jobs 1.
 */

#ifndef PROTEUS_HARNESS_CHECK_RUNNER_HH
#define PROTEUS_HARNESS_CHECK_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/persist_checker.hh"
#include "analysis/rules.hh"
#include "harness/parallel_runner.hh"

namespace proteus {

/** One checked run: the machine's counters plus the verdict. */
struct CheckRow
{
    LogScheme scheme = LogScheme::Proteus;
    WorkloadKind kind = WorkloadKind::Queue;
    RunResult run;
    analysis::CheckOutcome outcome;
};

/** One mutation-campaign entry: did the targeted rule catch its own
 *  injected violation? */
struct MutationRow
{
    analysis::Rule rule = analysis::Rule::LogBeforeData;
    bool fired = false;             ///< the targeted rule reported >= 1
    std::uint64_t violations = 0;   ///< violations charged to the rule
    std::uint64_t mutations = 0;    ///< edges the mutator perturbed
};

/** The one-command repro line carried into every violation report. */
std::string checkReproLine(LogScheme scheme, WorkloadKind kind,
                           const BenchOptions &opts);

/** Run one (scheme, workload) pair with the checker armed. Builds the
 *  trace bundle with the write history so the software schemes arm
 *  LogBeforeData too. */
CheckRow runCheck(LogScheme scheme, WorkloadKind kind,
                  const BenchOptions &opts,
                  const WorkloadExtras &extras = {});

/** Check a prebuilt bundle (the proteus-check replay path; .ptrace
 *  bundles carry their scheme in the key). @p repro is the repro line
 *  for reports ("" = derive nothing). */
CheckRow runCheckOnBundle(std::shared_ptr<const TraceBundle> bundle,
                          const BenchOptions &opts, std::string repro);

/** Run every (scheme x workload) pair on the pool; rows land in
 *  submission order (schemes outer, workloads inner). */
std::vector<CheckRow> runCheckBatch(
    const std::vector<LogScheme> &schemes,
    const std::vector<WorkloadKind> &kinds, const BenchOptions &opts,
    ProgressReporter *progress = nullptr);

/**
 * The `--check-mutate` campaign: for every rule armed for @p scheme,
 * re-run the workload with a StreamMutator injecting that rule's
 * violation (k-th qualifying edge, k seeded by @p mutate_seed) and
 * record whether the rule fired. A row with fired=false means the
 * checker silently missed an injected protocol violation — the CI gate
 * fails on it.
 */
std::vector<MutationRow> runMutationCampaign(
    LogScheme scheme, WorkloadKind kind, const BenchOptions &opts,
    std::uint64_t mutate_seed, ProgressReporter *progress = nullptr);

/// @name Reports
/// @{

/** Crashtest-style text report for one checked run: per-rule table
 *  plus a minimal block per retained violation. */
std::string formatCheckReport(const CheckRow &row);

/** Text table for one mutation campaign. */
std::string formatMutationReport(LogScheme scheme, WorkloadKind kind,
                                 const std::vector<MutationRow> &rows);

/** Deterministic JSON (no wall-clock) for checked runs / campaigns. */
std::string checkRowsJson(const std::vector<CheckRow> &rows);
std::string mutationRowsJson(LogScheme scheme, WorkloadKind kind,
                             std::uint64_t mutate_seed,
                             const std::vector<MutationRow> &rows);

/** Write @p json to @p path; FatalError when the file cannot be
 *  written. */
void writeJsonFile(const std::string &path, const std::string &json);

/// @}

/** True when every run passed (no violations anywhere). */
bool allPass(const std::vector<CheckRow> &rows);
/** True when every armed rule caught its injected violation. */
bool allFired(const std::vector<MutationRow> &rows);

} // namespace proteus

#endif // PROTEUS_HARNESS_CHECK_RUNNER_HH
