#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

namespace proteus {

ProgressReporter::ProgressReporter(std::ostream &os) : _os(os)
{
}

void
ProgressReporter::line(const std::string &text)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _os << text << "\n";
}

ParallelRunner::ParallelRunner(unsigned jobs) : _workers(jobs)
{
    if (_workers == 0) {
        _workers = std::thread::hardware_concurrency();
        if (_workers == 0)
            _workers = 1;
    }
}

std::vector<SimJobResult>
ParallelRunner::run(const std::vector<SimJob> &batch,
                    const BenchOptions &opts, ProgressReporter *progress)
{
    std::vector<SimJobResult> results(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());

    // Jobs are claimed from a shared counter; results are written to
    // the claimed index, so ordering is submission order no matter
    // which worker finishes first.
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                return;
            const SimJob &job = batch[i];
            if (progress)
                progress->line("  running " + job.label + "...");
            const auto start = std::chrono::steady_clock::now();
            try {
                results[i].result = runExperiment(
                    job.cfg, job.scheme, job.kind, opts, job.llOpts);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            results[i].wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (progress) {
                std::ostringstream os;
                os << "  done    " << job.label << " ("
                   << static_cast<std::uint64_t>(results[i].wallMs)
                   << " ms)";
                progress->line(os.str());
            }
        }
    };

    const std::size_t pool =
        std::min<std::size_t>(_workers, batch.size());
    if (pool <= 1) {
        // Sequential fast path: no thread overhead at --jobs 1 or for
        // single-job batches.
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(work);
        for (std::thread &t : threads)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace proteus
