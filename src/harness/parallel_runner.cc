#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

namespace proteus {

std::string
perJobPath(const std::string &path, std::size_t index)
{
    if (path.empty())
        return path;
    const std::string tag = ".job" + std::to_string(index);
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

ProgressReporter::ProgressReporter(std::ostream &os) : _os(os)
{
}

void
ProgressReporter::line(const std::string &text)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _os << text << "\n";
}

void
ProgressReporter::beginBatch(std::size_t total, unsigned workers)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _total = total;
    _done = 0;
    _inFlight = 0;
    _workers = workers ? workers : 1;
    _wallMsSum = 0;
}

void
ProgressReporter::jobStarted(const std::string &label)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    ++_inFlight;
    _os << "  running " << label << "... [" << _inFlight
        << " in flight]\n";
}

void
ProgressReporter::jobFinished(const std::string &label, double wall_ms)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    --_inFlight;
    ++_done;
    _wallMsSum += wall_ms;
    _os << "  done    " << label << " ("
        << static_cast<std::uint64_t>(wall_ms) << " ms) [" << _done
        << "/" << _total;
    if (_done < _total) {
        // ETA: mean job cost so far, spread over the worker pool.
        const double avg = _wallMsSum / static_cast<double>(_done);
        const double remaining =
            avg * static_cast<double>(_total - _done) / _workers;
        _os << ", eta ~" << static_cast<std::uint64_t>(remaining)
            << " ms";
    }
    _os << "]\n";
}

ParallelRunner::ParallelRunner(unsigned jobs) : _workers(jobs)
{
    if (_workers == 0) {
        _workers = std::thread::hardware_concurrency();
        if (_workers == 0)
            _workers = 1;
    }
}

std::vector<SimJobResult>
ParallelRunner::run(const std::vector<SimJob> &batch,
                    const BenchOptions &opts, ProgressReporter *progress)
{
    std::vector<SimJobResult> results(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());

    const std::size_t pool =
        std::min<std::size_t>(_workers, batch.size());
    if (progress)
        progress->beginBatch(batch.size(),
                             static_cast<unsigned>(pool ? pool : 1));

    // Jobs are claimed from a shared counter; results are written to
    // the claimed index, so ordering is submission order no matter
    // which worker finishes first.
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                return;
            SimJob job = batch[i];
            if (batch.size() > 1) {
                // Observability outputs must not collide across jobs:
                // derive a per-job file name from the submission index
                // (deterministic, so --jobs N matches --jobs 1).
                job.cfg.obs.statsOut =
                    perJobPath(job.cfg.obs.statsOut, i);
                job.cfg.obs.traceEvents =
                    perJobPath(job.cfg.obs.traceEvents, i);
            }
            if (progress)
                progress->jobStarted(job.label);
            const auto start = std::chrono::steady_clock::now();
            try {
                results[i].result = runExperiment(
                    job.cfg, job.scheme, job.kind, opts, job.llOpts);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            results[i].wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (progress)
                progress->jobFinished(job.label, results[i].wallMs);
        }
    };
    if (pool <= 1) {
        // Sequential fast path: no thread overhead at --jobs 1 or for
        // single-job batches.
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(work);
        for (std::thread &t : threads)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace proteus
