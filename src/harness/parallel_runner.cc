#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>

namespace proteus {

std::string
perJobPath(const std::string &path, std::size_t index)
{
    if (path.empty())
        return path;
    const std::string tag = ".job" + std::to_string(index);
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

ProgressReporter::ProgressReporter(std::ostream &os) : _os(os)
{
}

void
ProgressReporter::line(const std::string &text)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _os << text << "\n";
}

void
ProgressReporter::beginBatch(std::size_t total, unsigned workers)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _total = total;
    _done = 0;
    _inFlight = 0;
    _workers = workers ? workers : 1;
    _wallMsSum = 0;
}

void
ProgressReporter::jobStarted(const std::string &label)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    ++_inFlight;
    _os << "  running " << label << "... [" << _inFlight
        << " in flight]\n";
}

void
ProgressReporter::jobFinished(const std::string &label, double wall_ms)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    --_inFlight;
    ++_done;
    _wallMsSum += wall_ms;
    _os << "  done    " << label << " ("
        << static_cast<std::uint64_t>(wall_ms) << " ms) [" << _done
        << "/" << _total;
    if (_done < _total) {
        // ETA: mean job cost so far, spread over the worker pool.
        const double avg = _wallMsSum / static_cast<double>(_done);
        const double remaining =
            avg * static_cast<double>(_total - _done) / _workers;
        _os << ", eta ~" << static_cast<std::uint64_t>(remaining)
            << " ms";
    }
    _os << "]\n";
}

ParallelRunner::ParallelRunner(unsigned jobs) : _workers(jobs)
{
    if (_workers == 0) {
        _workers = std::thread::hardware_concurrency();
        if (_workers == 0)
            _workers = 1;
    }
}

std::vector<double>
ParallelRunner::runTasks(const std::vector<Task> &tasks,
                         ProgressReporter *progress)
{
    std::vector<double> wallMs(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());

    const std::size_t pool =
        std::min<std::size_t>(_workers, tasks.size());
    if (progress)
        progress->beginBatch(tasks.size(),
                             static_cast<unsigned>(pool ? pool : 1));

    // Tasks are claimed from a shared counter; each closure writes to
    // its own submission-indexed storage, so ordering is submission
    // order no matter which worker finishes first.
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            if (progress)
                progress->jobStarted(tasks[i].label);
            const auto start = std::chrono::steady_clock::now();
            try {
                tasks[i].fn();
            } catch (...) {
                errors[i] = std::current_exception();
            }
            wallMs[i] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
            if (progress)
                progress->jobFinished(tasks[i].label, wallMs[i]);
        }
    };
    if (pool <= 1) {
        // Sequential fast path: no thread overhead at --jobs 1 or for
        // single-task batches.
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(work);
        for (std::thread &t : threads)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return wallMs;
}

std::vector<SimJobResult>
ParallelRunner::run(const std::vector<SimJob> &batch,
                    const BenchOptions &opts, ProgressReporter *progress)
{
    std::vector<SimJobResult> results(batch.size());
    std::vector<Task> tasks;
    tasks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        tasks.push_back(Task{batch[i].label, [&, i]() {
            SimJob job = batch[i];
            if (batch.size() > 1) {
                // Observability outputs must not collide across jobs:
                // derive a per-job file name from the submission index
                // (deterministic, so --jobs N matches --jobs 1).
                job.cfg.obs.statsOut =
                    perJobPath(job.cfg.obs.statsOut, i);
                job.cfg.obs.traceEvents =
                    perJobPath(job.cfg.obs.traceEvents, i);
            }
            if (!job.cfg.obs.txStats.empty()) {
                // Keep the recorder on but suppress the per-run file:
                // runBatch combines every job's summary into ONE file
                // in submission order, so the bytes are identical at
                // any --jobs level.
                job.cfg.obs.txTrack = true;
                job.cfg.obs.txStats.clear();
            }
            results[i].result = runExperiment(job.cfg, job.scheme,
                                              job.kind, opts,
                                              job.extras);
        }});
    }
    const std::vector<double> wallMs = runTasks(tasks, progress);
    for (std::size_t i = 0; i < batch.size(); ++i)
        results[i].wallMs = wallMs[i];
    return results;
}

} // namespace proteus
