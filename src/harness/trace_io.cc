#include "trace_io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

// ---------------------------------------------------------------------
// Format constants

constexpr std::uint32_t ptraceMagic = 0x43525450u;      // "PTRC"
constexpr std::uint32_t ptraceBom = 0x01020304u;

constexpr std::uint32_t fourcc(const char (&s)[5])
{
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[0])) |
           static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[1])) << 8 |
           static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[2])) << 16 |
           static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[3])) << 24;
}

constexpr std::uint32_t tagMeta = fourcc("META");
constexpr std::uint32_t tagThread = fourcc("THRD");
constexpr std::uint32_t tagVolatileImg = fourcc("VIMG");
constexpr std::uint32_t tagNvmImg = fourcc("NIMG");
constexpr std::uint32_t tagAlloc = fourcc("ALOC");
constexpr std::uint32_t tagLocks = fourcc("LOCK");
constexpr std::uint32_t tagHistory = fourcc("HIST");

std::string
tagName(std::uint32_t tag)
{
    char s[5] = {
        static_cast<char>(tag & 0xff),
        static_cast<char>((tag >> 8) & 0xff),
        static_cast<char>((tag >> 16) & 0xff),
        static_cast<char>((tag >> 24) & 0xff),
        '\0',
    };
    for (char &c : s) {
        if (c != '\0' && (c < 0x20 || c > 0x7e))
            c = '?';
    }
    return std::string(s);
}

// Fixed serialized record sizes (byte-explicit; independent of host ABI).
constexpr std::size_t opRecordBytes = 4 + 3 * 2 + 2 * 4 + 2 * 8;
constexpr std::size_t payloadRecordBytes = logDataSize + 8 + 8;
constexpr std::size_t eventRecordBytes = 1 + 1 + 4 + 1 + 8 + 8 + 8 + 8;
constexpr std::size_t pageRecordBytes = 8 + MemoryImage::pageBytes;

// ---------------------------------------------------------------------
// Little-endian writer over a growable byte buffer

class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        _bytes.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i16(std::int16_t v)
    {
        u16(static_cast<std::uint16_t>(v));
    }

    void
    raw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        _bytes.insert(_bytes.end(), p, p + n);
    }

    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

  private:
    std::vector<std::uint8_t> _bytes;
};

// ---------------------------------------------------------------------
// Bounds-checked little-endian reader; every overrun is a FatalError

class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t n,
           const std::string &what)
        : _data(data), _size(n), _what(what)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return _data[_pos++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (u8() << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | static_cast<std::uint32_t>(u16()) << 16;
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | static_cast<std::uint64_t>(u32()) << 32;
    }

    std::int16_t
    i16()
    {
        return static_cast<std::int16_t>(u16());
    }

    void
    raw(void *out, std::size_t n)
    {
        need(n);
        std::memcpy(out, _data + _pos, n);
        _pos += n;
    }

    const std::uint8_t *
    view(std::size_t n)
    {
        need(n);
        const std::uint8_t *p = _data + _pos;
        _pos += n;
        return p;
    }

    /** Validate that @p count records of @p record_bytes each fit in
     *  the remaining input before any allocation sized by count. */
    void
    needRecords(std::uint64_t count, std::size_t record_bytes,
                const char *kind)
    {
        if (count > remaining() / record_bytes) {
            fatal("ptrace: ", _what, ": ", kind, " count ", count,
                  " exceeds the section's remaining ", remaining(),
                  " bytes");
        }
    }

    std::size_t remaining() const { return _size - _pos; }
    std::size_t pos() const { return _pos; }

    void
    expectEnd() const
    {
        if (_pos != _size) {
            fatal("ptrace: ", _what, ": ", _size - _pos,
                  " trailing bytes after the last field");
        }
    }

  private:
    void
    need(std::size_t n) const
    {
        if (n > _size - _pos) {
            fatal("ptrace: ", _what, ": truncated (need ", n,
                  " bytes at offset ", _pos, ", have ", _size - _pos,
                  ")");
        }
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    std::string _what;
};

// ---------------------------------------------------------------------
// Section payload serializers

struct MetaFields
{
    std::uint32_t kind = 0;
    std::uint32_t scheme = 0;
    std::uint32_t threads = 0;
    std::uint32_t scale = 0;
    std::uint32_t initScale = 0;
    std::uint64_t seed = 0;
    std::uint64_t logAreaBytes = 0;
    std::uint32_t elementsPerNode = 0;
    std::uint32_t threadSections = 0;
    std::uint8_t hasHistory = 0;
    std::string spec;       ///< canonical GenSpec; empty unless gen
};

constexpr std::uint32_t maxSpecBytes = 4096;

void
writeMeta(Writer &w, const TraceBundle &b)
{
    w.u32(static_cast<std::uint32_t>(b.key.kind));
    w.u32(static_cast<std::uint32_t>(b.key.scheme));
    w.u32(b.key.params.threads);
    w.u32(b.key.params.scale);
    w.u32(b.key.params.initScale);
    w.u64(b.key.params.seed);
    w.u64(b.key.params.logAreaBytes);
    w.u32(b.key.llOpts.elementsPerNode);
    w.u32(static_cast<std::uint32_t>(b.threads.size()));
    w.u8(b.history ? 1 : 0);
    const std::string spec = b.key.kind == WorkloadKind::Generated
                                 ? b.key.gen.canonical()
                                 : std::string();
    w.u32(static_cast<std::uint32_t>(spec.size()));
    w.raw(spec.data(), spec.size());
}

MetaFields
readMeta(Reader &r)
{
    MetaFields m;
    m.kind = r.u32();
    m.scheme = r.u32();
    m.threads = r.u32();
    m.scale = r.u32();
    m.initScale = r.u32();
    m.seed = r.u64();
    m.logAreaBytes = r.u64();
    m.elementsPerNode = r.u32();
    m.threadSections = r.u32();
    m.hasHistory = r.u8();
    const std::uint32_t spec_len = r.u32();
    if (spec_len > maxSpecBytes)
        fatal("ptrace: META: spec length ", spec_len,
              " exceeds the ", maxSpecBytes, "-byte cap");
    const std::uint8_t *spec_bytes = r.view(spec_len);
    m.spec.assign(reinterpret_cast<const char *>(spec_bytes), spec_len);
    r.expectEnd();
    if (m.kind > static_cast<std::uint32_t>(WorkloadKind::Generated))
        fatal("ptrace: META: workload kind ", m.kind, " out of range");
    if (m.kind == static_cast<std::uint32_t>(WorkloadKind::Generated)) {
        if (m.spec.empty())
            fatal("ptrace: META: generated workload without a spec");
    } else if (!m.spec.empty()) {
        fatal("ptrace: META: spec string on a non-generated workload");
    }
    if (m.scheme > static_cast<std::uint32_t>(LogScheme::ProteusNoLWR))
        fatal("ptrace: META: log scheme ", m.scheme, " out of range");
    if (m.threads == 0 || m.threadSections != m.threads) {
        fatal("ptrace: META: thread count ", m.threads,
              " inconsistent with ", m.threadSections,
              " thread sections");
    }
    if (m.hasHistory > 1)
        fatal("ptrace: META: hasHistory flag ", m.hasHistory,
              " is not 0/1");
    return m;
}

void
writeThread(Writer &w, const TraceBundle::ThreadTrace &tt)
{
    w.u64(tt.logStart);
    w.u64(tt.logEnd);
    w.u64(tt.logFlag);
    w.u64(tt.txCount);
    w.u64(tt.trace.size());
    w.u64(tt.trace.payloadCount());
    for (std::size_t i = 0; i < tt.trace.size(); ++i) {
        const MicroOp &op = tt.trace.op(i);
        w.u8(static_cast<std::uint8_t>(op.op));
        w.u8(op.size);
        w.u8(op.taken ? 1 : 0);
        w.u8(op.persistent ? 1 : 0);
        w.i16(op.src0);
        w.i16(op.src1);
        w.i16(op.dst);
        w.u32(op.staticPc);
        w.u32(op.payload);
        w.u64(op.addr);
        w.u64(op.data);
    }
    for (std::size_t i = 0; i < tt.trace.payloadCount(); ++i) {
        const LogPayload &p =
            tt.trace.logPayload(static_cast<std::uint32_t>(i));
        w.raw(p.bytes, logDataSize);
        w.u64(p.fromAddr);
        w.u64(p.txId);
    }
}

TraceBundle::ThreadTrace
readThread(Reader &r)
{
    TraceBundle::ThreadTrace tt;
    tt.logStart = r.u64();
    tt.logEnd = r.u64();
    tt.logFlag = r.u64();
    tt.txCount = r.u64();
    const std::uint64_t op_count = r.u64();
    const std::uint64_t payload_count = r.u64();
    r.needRecords(op_count, opRecordBytes, "micro-op");
    if (payload_count >= noPayload) {
        fatal("ptrace: THRD: payload count ", payload_count,
              " exceeds the payload index space");
    }
    tt.trace.reserve(op_count, payload_count);
    for (std::uint64_t i = 0; i < op_count; ++i) {
        MicroOp op;
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(Op::LogSave))
            fatal("ptrace: THRD: micro-op kind ", unsigned(kind),
                  " out of range at op ", i);
        op.op = static_cast<Op>(kind);
        op.size = r.u8();
        op.taken = r.u8() != 0;
        op.persistent = r.u8() != 0;
        op.src0 = r.i16();
        op.src1 = r.i16();
        op.dst = r.i16();
        op.staticPc = r.u32();
        op.payload = r.u32();
        op.addr = r.u64();
        op.data = r.u64();
        if (op.payload != noPayload && op.payload >= payload_count) {
            fatal("ptrace: THRD: op ", i, " references payload ",
                  op.payload, " of ", payload_count);
        }
        tt.trace.push(op);
    }
    r.needRecords(payload_count, payloadRecordBytes, "log payload");
    for (std::uint64_t i = 0; i < payload_count; ++i) {
        LogPayload p;
        r.raw(p.bytes, logDataSize);
        p.fromAddr = r.u64();
        p.txId = r.u64();
        tt.trace.addPayload(p);
    }
    r.expectEnd();
    return tt;
}

void
writeImage(Writer &w, const MemoryImage &img)
{
    const std::vector<Addr> pages = img.pageIndices();
    w.u64(pages.size());
    for (Addr pi : pages) {
        w.u64(pi);
        w.raw(img.pageData(pi), MemoryImage::pageBytes);
    }
}

MemoryImage
readImage(Reader &r)
{
    MemoryImage img;
    const std::uint64_t count = r.u64();
    r.needRecords(count, pageRecordBytes, "page");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr pi = r.u64();
        if (i > 0 && pi <= prev) {
            fatal("ptrace: image: page indices not strictly "
                  "ascending at page ", i);
        }
        if (pi > (invalidAddr >> MemoryImage::pageBits))
            fatal("ptrace: image: page index ", pi, " out of range");
        prev = pi;
        const std::uint8_t *bytes = r.view(MemoryImage::pageBytes);
        img.write(pi << MemoryImage::pageBits, bytes,
                  MemoryImage::pageBytes);
    }
    r.expectEnd();
    return img;
}

void
writeAllocatorState(Writer &w, const RegionAllocator::State &s)
{
    w.u64(s.next);
    w.u64(s.liveBytes);
    w.u64(s.freeBins.size());
    for (const auto &[size, addrs] : s.freeBins) {
        w.u64(size);
        w.u64(addrs.size());
        for (Addr a : addrs)
            w.u64(a);
    }
}

RegionAllocator::State
readAllocatorState(Reader &r)
{
    RegionAllocator::State s;
    s.next = r.u64();
    s.liveBytes = r.u64();
    const std::uint64_t bins = r.u64();
    r.needRecords(bins, 16, "free bin");
    s.freeBins.reserve(bins);
    for (std::uint64_t i = 0; i < bins; ++i) {
        const std::uint64_t size = r.u64();
        const std::uint64_t count = r.u64();
        r.needRecords(count, 8, "free-bin address");
        std::vector<Addr> addrs;
        addrs.reserve(count);
        for (std::uint64_t j = 0; j < count; ++j)
            addrs.push_back(r.u64());
        s.freeBins.emplace_back(static_cast<std::size_t>(size),
                                std::move(addrs));
    }
    return s;
}

void
writeAlloc(Writer &w, const PersistentHeap::AllocState &s)
{
    writeAllocatorState(w, s.volatileAlloc);
    writeAllocatorState(w, s.persistentAlloc);
    w.u64(s.nextLogArea);
    w.u64(s.chaseArena);
}

PersistentHeap::AllocState
readAlloc(Reader &r)
{
    PersistentHeap::AllocState s;
    s.volatileAlloc = readAllocatorState(r);
    s.persistentAlloc = readAllocatorState(r);
    s.nextLogArea = r.u64();
    s.chaseArena = r.u64();
    r.expectEnd();
    return s;
}

void
writeLocks(Writer &w, const std::map<Addr, std::uint64_t> &locks)
{
    w.u64(locks.size());
    for (const auto &[addr, count] : locks) {
        w.u64(addr);
        w.u64(count);
    }
}

std::map<Addr, std::uint64_t>
readLocks(Reader &r)
{
    std::map<Addr, std::uint64_t> locks;
    const std::uint64_t count = r.u64();
    r.needRecords(count, 16, "lock entry");
    Addr prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr addr = r.u64();
        if (i > 0 && addr <= prev)
            fatal("ptrace: LOCK: addresses not strictly ascending");
        prev = addr;
        locks[addr] = r.u64();
    }
    r.expectEnd();
    return locks;
}

void
writeHistory(Writer &w, const WriteHistory &h)
{
    w.u64(h.events().size());
    for (const WriteEvent &e : h.events()) {
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u8(static_cast<std::uint8_t>(e.writeKind));
        w.u32(e.thread);
        w.u8(e.size);
        w.u64(e.tx);
        w.u64(e.addr);
        w.u64(e.before);
        w.u64(e.after);
    }
}

std::shared_ptr<WriteHistory>
readHistory(Reader &r)
{
    auto h = std::make_shared<WriteHistory>();
    const std::uint64_t count = r.u64();
    r.needRecords(count, eventRecordBytes, "write event");
    h->events().reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        WriteEvent e;
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(WriteEvent::Kind::Store))
            fatal("ptrace: HIST: event kind ", unsigned(kind),
                  " out of range at event ", i);
        e.kind = static_cast<WriteEvent::Kind>(kind);
        const std::uint8_t wk = r.u8();
        if (wk > static_cast<std::uint8_t>(ObservedWrite::Raw))
            fatal("ptrace: HIST: write kind ", unsigned(wk),
                  " out of range at event ", i);
        e.writeKind = static_cast<ObservedWrite>(wk);
        e.thread = r.u32();
        e.size = r.u8();
        e.tx = r.u64();
        e.addr = r.u64();
        e.before = r.u64();
        e.after = r.u64();
        h->events().push_back(e);
    }
    r.expectEnd();
    return h;
}

// ---------------------------------------------------------------------
// File-level framing

struct RawSection
{
    std::uint32_t tag = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    const std::uint8_t *payload = nullptr;
};

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("ptrace: cannot open ", path, " for reading");
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof())
        fatal("ptrace: I/O error reading ", path);
    const std::string &s = ss.str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/** Parse header + section table; CRCs are not checked here. */
std::vector<RawSection>
parseSections(const std::vector<std::uint8_t> &bytes,
              std::uint32_t *version_out = nullptr)
{
    Reader r(bytes.data(), bytes.size(), "header");
    const std::uint32_t magic = r.u32();
    if (magic != ptraceMagic)
        fatal("ptrace: bad magic ", magic, " (not a .ptrace file)");
    const std::uint32_t version = r.u32();
    if (version != ptraceVersion) {
        fatal("ptrace: unsupported format version ", version,
              " (this build reads version ", ptraceVersion, ")");
    }
    const std::uint32_t bom = r.u32();
    if (bom != ptraceBom)
        fatal("ptrace: byte-order mark mismatch (corrupt header)");
    const std::uint32_t section_count = r.u32();
    if (version_out)
        *version_out = version;

    std::vector<RawSection> sections;
    for (std::uint32_t i = 0; i < section_count; ++i) {
        RawSection s;
        s.tag = r.u32();
        s.size = r.u64();
        s.crc = r.u32();
        if (s.size > r.remaining()) {
            fatal("ptrace: section ", tagName(s.tag), " claims ",
                  s.size, " bytes but only ", r.remaining(),
                  " remain in the file");
        }
        s.payload = r.view(static_cast<std::size_t>(s.size));
        sections.push_back(s);
    }
    r.expectEnd();
    return sections;
}

void
checkCrc(const RawSection &s)
{
    const std::uint32_t actual =
        crc32(s.payload, static_cast<std::size_t>(s.size));
    if (actual != s.crc) {
        fatal("ptrace: section ", tagName(s.tag),
              " CRC mismatch (stored ", s.crc, ", computed ", actual,
              ")");
    }
}

Reader
sectionReader(const RawSection &s)
{
    return Reader(s.payload, static_cast<std::size_t>(s.size),
                  tagName(s.tag));
}

} // namespace

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, table-driven)

std::uint32_t
crc32(const void *data, std::size_t n)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------
// Save

void
saveTraceBundle(const TraceBundle &bundle, const std::string &path)
{
    if (!bundle.heap)
        fatal("ptrace: cannot save a bundle without a heap");

    std::vector<std::pair<std::uint32_t, Writer>> sections;

    {
        Writer w;
        writeMeta(w, bundle);
        sections.emplace_back(tagMeta, std::move(w));
    }
    for (const TraceBundle::ThreadTrace &tt : bundle.threads) {
        Writer w;
        writeThread(w, tt);
        sections.emplace_back(tagThread, std::move(w));
    }
    {
        Writer w;
        writeImage(w, bundle.heap->volatileImage());
        sections.emplace_back(tagVolatileImg, std::move(w));
    }
    {
        Writer w;
        writeImage(w, bundle.heap->nvmImage());
        sections.emplace_back(tagNvmImg, std::move(w));
    }
    {
        Writer w;
        writeAlloc(w, bundle.heap->allocState());
        sections.emplace_back(tagAlloc, std::move(w));
    }
    {
        Writer w;
        writeLocks(w, bundle.lockMap);
        sections.emplace_back(tagLocks, std::move(w));
    }
    if (bundle.history) {
        Writer w;
        writeHistory(w, *bundle.history);
        sections.emplace_back(tagHistory, std::move(w));
    }

    Writer file;
    file.u32(ptraceMagic);
    file.u32(ptraceVersion);
    file.u32(ptraceBom);
    file.u32(static_cast<std::uint32_t>(sections.size()));
    for (const auto &[tag, w] : sections) {
        file.u32(tag);
        file.u64(w.bytes().size());
        file.u32(crc32(w.bytes().data(), w.bytes().size()));
        file.raw(w.bytes().data(), w.bytes().size());
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("ptrace: cannot open ", path, " for writing");
    out.write(reinterpret_cast<const char *>(file.bytes().data()),
              static_cast<std::streamsize>(file.bytes().size()));
    out.flush();
    if (!out.good())
        fatal("ptrace: I/O error writing ", path);
}

// ---------------------------------------------------------------------
// Load

std::shared_ptr<const TraceBundle>
loadTraceBundle(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = readFile(path);
    const std::vector<RawSection> sections = parseSections(bytes);
    for (const RawSection &s : sections)
        checkCrc(s);

    auto bundle = std::make_shared<TraceBundle>();
    bool have_meta = false;
    bool have_vimg = false;
    bool have_nimg = false;
    bool have_alloc = false;
    bool have_locks = false;
    MetaFields meta;
    MemoryImage volatile_img;
    MemoryImage nvm_img;
    PersistentHeap::AllocState alloc;

    for (const RawSection &s : sections) {
        Reader r = sectionReader(s);
        if (s.tag == tagMeta) {
            if (have_meta)
                fatal("ptrace: duplicate META section");
            meta = readMeta(r);
            have_meta = true;
        } else if (s.tag == tagThread) {
            if (!have_meta)
                fatal("ptrace: THRD section before META");
            if (bundle->threads.size() >= meta.threads)
                fatal("ptrace: more THRD sections than META declares");
            bundle->threads.push_back(readThread(r));
        } else if (s.tag == tagVolatileImg) {
            if (have_vimg)
                fatal("ptrace: duplicate VIMG section");
            volatile_img = readImage(r);
            have_vimg = true;
        } else if (s.tag == tagNvmImg) {
            if (have_nimg)
                fatal("ptrace: duplicate NIMG section");
            nvm_img = readImage(r);
            have_nimg = true;
        } else if (s.tag == tagAlloc) {
            if (have_alloc)
                fatal("ptrace: duplicate ALOC section");
            alloc = readAlloc(r);
            have_alloc = true;
        } else if (s.tag == tagLocks) {
            if (have_locks)
                fatal("ptrace: duplicate LOCK section");
            bundle->lockMap = readLocks(r);
            have_locks = true;
        } else if (s.tag == tagHistory) {
            if (bundle->history)
                fatal("ptrace: duplicate HIST section");
            bundle->history = readHistory(r);
        } else {
            fatal("ptrace: unknown section tag ", tagName(s.tag));
        }
    }

    if (!have_meta)
        fatal("ptrace: missing META section");
    if (bundle->threads.size() != meta.threads) {
        fatal("ptrace: META declares ", meta.threads,
              " threads but the file holds ", bundle->threads.size(),
              " THRD sections");
    }
    if (!have_vimg || !have_nimg)
        fatal("ptrace: missing heap image section");
    if (!have_alloc)
        fatal("ptrace: missing ALOC section");
    if (!have_locks)
        fatal("ptrace: missing LOCK section");
    if (meta.hasHistory != (bundle->history ? 1 : 0))
        fatal("ptrace: META hasHistory flag disagrees with the file");

    bundle->key.kind = static_cast<WorkloadKind>(meta.kind);
    bundle->key.scheme = static_cast<LogScheme>(meta.scheme);
    bundle->key.params.threads = meta.threads;
    bundle->key.params.scale = meta.scale;
    bundle->key.params.initScale = meta.initScale;
    bundle->key.params.seed = meta.seed;
    bundle->key.params.logAreaBytes = meta.logAreaBytes;
    bundle->key.llOpts.elementsPerNode = meta.elementsPerNode;
    // parse() validates the spec and throws FatalError on garbage —
    // the fuzz tests flip these bytes too.
    if (bundle->key.kind == WorkloadKind::Generated)
        bundle->key.gen = wlgen::GenSpec::parse(meta.spec);

    bundle->heap = std::make_shared<PersistentHeap>();
    bundle->heap->volatileImage() = std::move(volatile_img);
    bundle->heap->nvmImage() = std::move(nvm_img);
    // restoreAllocState validates region-frontier invariants and fatals
    // on inconsistent input.
    bundle->heap->restoreAllocState(alloc);

    // Cross-check the stored lock map against the traces: a cheap
    // end-to-end integrity test over the deserialized micro-ops.
    std::map<Addr, std::uint64_t> expect = bundle->lockMap;
    bundle->computeLockMap();
    if (bundle->lockMap != expect)
        fatal("ptrace: LOCK section disagrees with the traces");

    // bundle->workload stays null: file-loaded bundles run and measure
    // but cannot invariant-check (FullSystem::hasWorkload()).
    return bundle;
}

// ---------------------------------------------------------------------
// Info / verify

PtraceFileInfo
inspectTraceFile(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = readFile(path);
    PtraceFileInfo info;
    info.fileBytes = bytes.size();
    const std::vector<RawSection> sections =
        parseSections(bytes, &info.version);

    for (const RawSection &s : sections) {
        PtraceSectionInfo si;
        si.tag = tagName(s.tag);
        si.bytes = s.size;
        si.crc = s.crc;
        si.crcOk =
            crc32(s.payload, static_cast<std::size_t>(s.size)) == s.crc;
        info.sections.push_back(si);

        // Counters decode from the section prefixes only; a damaged
        // payload can at worst leave them zero (crcOk already says so).
        try {
            Reader r = sectionReader(s);
            if (s.tag == tagMeta) {
                const MetaFields m = readMeta(r);
                info.key.kind = static_cast<WorkloadKind>(m.kind);
                info.key.scheme = static_cast<LogScheme>(m.scheme);
                info.key.params.threads = m.threads;
                info.key.params.scale = m.scale;
                info.key.params.initScale = m.initScale;
                info.key.params.seed = m.seed;
                info.key.params.logAreaBytes = m.logAreaBytes;
                info.key.llOpts.elementsPerNode = m.elementsPerNode;
                if (info.key.kind == WorkloadKind::Generated)
                    info.key.gen = wlgen::GenSpec::parse(m.spec);
            } else if (s.tag == tagThread) {
                r.u64();    // logStart
                r.u64();    // logEnd
                r.u64();    // logFlag
                info.totalTxs += r.u64();
                info.totalOps += r.u64();
                info.totalPayloads += r.u64();
            } else if (s.tag == tagVolatileImg) {
                info.volatilePages = r.u64();
            } else if (s.tag == tagNvmImg) {
                info.nvmPages = r.u64();
            } else if (s.tag == tagLocks) {
                info.lockCount = r.u64();
            } else if (s.tag == tagHistory) {
                info.historyEvents = r.u64();
            }
        } catch (const FatalError &) {
            // Prefix unreadable; counters stay zero for this section.
        }
    }
    return info;
}

std::vector<std::string>
verifyTraceFile(const std::string &path)
{
    std::vector<std::string> problems;

    PtraceFileInfo info;
    try {
        info = inspectTraceFile(path);
    } catch (const FatalError &e) {
        problems.push_back(e.what());
        return problems;
    }
    for (const PtraceSectionInfo &s : info.sections) {
        if (!s.crcOk) {
            problems.push_back("section " + s.tag +
                               " fails its CRC check");
        }
    }
    if (!problems.empty())
        return problems;

    // CRCs pass; now do the full semantic load, which cross-checks
    // payload references, section presence, allocator invariants, and
    // the lock map against the traces.
    std::shared_ptr<const TraceBundle> bundle;
    try {
        bundle = loadTraceBundle(path);
    } catch (const FatalError &e) {
        problems.push_back(e.what());
        return problems;
    }

    // Log-area sanity: every thread's circular log must lie inside the
    // heap's log region, and areas must not overlap.
    std::vector<std::pair<Addr, Addr>> areas;
    for (std::size_t t = 0; t < bundle->threads.size(); ++t) {
        const TraceBundle::ThreadTrace &tt = bundle->threads[t];
        if (tt.logStart == invalidAddr)
            continue;   // schemes without per-thread software logs
        if (tt.logStart >= tt.logEnd ||
            tt.logStart < PersistentHeap::logBase ||
            tt.logEnd > PersistentHeap::logLimit) {
            problems.push_back("thread " + std::to_string(t) +
                               " log area out of the log region");
            continue;
        }
        areas.emplace_back(tt.logStart, tt.logEnd);
    }
    std::sort(areas.begin(), areas.end());
    for (std::size_t i = 1; i < areas.size(); ++i) {
        if (areas[i].first < areas[i - 1].second)
            problems.push_back("thread log areas overlap");
    }

    return problems;
}

} // namespace proteus
