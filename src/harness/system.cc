#include "system.hh"

#include "sim/logging.hh"

namespace proteus {

FullSystem::FullSystem(const SystemConfig &cfg, WorkloadKind kind,
                       const WorkloadParams &params,
                       const LinkedListOptions &ll_opts,
                       TraceWriteObserver *trace_observer)
    : _cfg(cfg)
{
    if (params.threads > cfg.cores)
        fatal("FullSystem: workload threads exceed core count");
    _cfg.cores = params.threads;    // one trace per core

    _sim = std::make_unique<Simulator>();
    _heap = std::make_unique<PersistentHeap>();

    // Attach the trace sink before any timing component is built so
    // component constructors can define their tracks.
    if (!_cfg.obs.traceEvents.empty()) {
        _traceSink = std::make_unique<TraceEventSink>(
            _cfg.obs.traceEvents, _cfg.obs.traceCategories,
            static_cast<std::size_t>(_cfg.obs.traceRingEntries));
        _sim->setTraceSink(_traceSink.get());
    }

    // Functional phase: populate (InitOps), fast-forward, record.
    _workload =
        makeWorkload(kind, *_heap, _cfg.logging.scheme, params, ll_opts);
    _workload->setup();
    _heap->syncNvmToVolatile();
    if (trace_observer) {
        for (unsigned t = 0; t < params.threads; ++t)
            _workload->builder(t).setWriteObserver(trace_observer);
    }
    _workload->generateTraces();
    if (trace_observer) {
        for (unsigned t = 0; t < params.threads; ++t)
            _workload->builder(t).setWriteObserver(nullptr);
    }

    // Timing phase wiring. Registration order defines intra-cycle
    // evaluation: memory first, then cores.
    _mc = std::make_unique<MemCtrl>(*_sim, _cfg, _heap->nvmImage());
    _caches = std::make_unique<CacheHierarchy>(*_sim, _cfg, *_mc,
                                               _heap->nvmImage());
    _locks = std::make_unique<LockManager>(*_sim);

    _sim->addTicked(_mc.get());
    for (unsigned t = 0; t < params.threads; ++t) {
        _cores.push_back(std::make_unique<Core>(
            *_sim, _cfg, static_cast<CoreId>(t), _workload->trace(t),
            *_caches, *_mc, *_locks));
        TraceBuilder &tb = _workload->builder(t);
        _cores.back()->bindLogArea(tb.logAreaStart(), tb.logAreaEnd());
        if (_cfg.logging.scheme == LogScheme::ATOM) {
            const Addr area =
                _heap->allocLogArea(_cfg.logging.logAreaBytes);
            const Addr end = area + _cfg.logging.logAreaBytes;
            _mc->bindAtomLogArea(static_cast<CoreId>(t), area, end);
            _atomAreas.emplace_back(area, end);
        } else {
            _atomAreas.emplace_back(invalidAddr, invalidAddr);
        }
        _sim->addTicked(_cores.back().get());
    }

    if (_cfg.obs.statsInterval > 0) {
        _sampler = std::make_unique<IntervalStatsSampler>(
            *_sim, _cfg.obs.statsInterval, _cfg.obs.statsOut);
        _sampler->start();
    }
}

FullSystem::~FullSystem()
{
    finishObservability();
}

void
FullSystem::finishObservability()
{
    if (_sampler)
        _sampler->finish();
    if (_traceSink) {
        for (auto &core : _cores)
            core->finalizeTrace();
        _traceSink->flush();
    }
}

bool
FullSystem::done() const
{
    for (const auto &core : _cores) {
        if (!core->done())
            return false;
    }
    return true;
}

RunResult
FullSystem::snapshotResult() const
{
    RunResult r;
    r.finished = done();
    r.cycles = _sim->now();
    r.nvmWrites = _mc->nvmWrites();
    r.nvmReads = _mc->nvmReads();
    r.logWritesDropped = _mc->droppedLogWrites();
    std::uint64_t llt_lookups = 0;
    std::uint64_t llt_misses = 0;
    for (const auto &core : _cores) {
        r.retiredOps += core->retiredOps();
        r.frontendStallCycles += core->frontendStallCycles();
        r.committedTxs += core->committedTxs().size();
        r.cpi += core->cpiStack();
        llt_lookups += core->llt().lookups();
        llt_misses += core->llt().misses();
    }
    r.lltMissRate = llt_lookups
        ? static_cast<double>(llt_misses) / llt_lookups
        : 0.0;
    return r;
}

RunResult
FullSystem::run(Tick max_cycles)
{
    const bool ok = _sim->runUntil([this]() { return done(); },
                                   max_cycles);
    RunResult r = snapshotResult();
    r.finished = ok;
    if (!ok)
        warn("FullSystem: simulation hit the cycle limit before the "
             "traces drained");
    finishObservability();
    return r;
}

void
FullSystem::runFor(Tick cycles)
{
    _sim->run(cycles);
}

void
FullSystem::crashNow()
{
    _sim->events().clear();
}

MemoryImage
FullSystem::crashImage() const
{
    return crashImage(_cfg.memCtrl.adr);
}

MemoryImage
FullSystem::crashImage(bool with_adr) const
{
    MemoryImage image = _heap->nvmImage();
    if (with_adr)
        _mc->applyBatteryDrain(image);
    return image;
}

} // namespace proteus
