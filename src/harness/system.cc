#include "system.hh"

#include "sim/logging.hh"

namespace proteus {

FullSystem::FullSystem(const SystemConfig &cfg, WorkloadKind kind,
                       const WorkloadParams &params,
                       const WorkloadExtras &extras,
                       TraceWriteObserver *trace_observer)
    : _cfg(cfg)
{
    if (params.threads > cfg.cores)
        fatal("FullSystem: workload threads exceed core count");
    _cfg.cores = params.threads;    // one trace per core

    TraceBundleKey key;
    key.kind = kind;
    key.scheme = _cfg.logging.scheme;
    key.params = params;
    key.llOpts = extras.ll;
    key.gen = extras.gen;
    // The checker needs the write history to classify store kinds for
    // the software schemes' LogBeforeData rule.
    auto bundle = TraceBundle::build(key, trace_observer,
                                     /*want_history=*/cfg.analysis.check);

    // The bundle is private to this system, so its heap can be mutated
    // in place — exactly the pre-bundle behavior, with no image copy.
    _heap = bundle->heap;
    _bundle = std::move(bundle);
    wire();
}

FullSystem::FullSystem(const SystemConfig &cfg,
                       std::shared_ptr<const TraceBundle> bundle)
    : _cfg(cfg)
{
    if (!bundle)
        fatal("FullSystem: null trace bundle");
    if (bundle->key.scheme != _cfg.logging.scheme)
        fatal("FullSystem: bundle scheme ", toString(bundle->key.scheme),
              " does not match config scheme ",
              toString(_cfg.logging.scheme));
    const unsigned threads = bundle->key.params.threads;
    if (threads > _cfg.cores)
        fatal("FullSystem: bundle threads exceed core count");
    _cfg.cores = threads;           // one trace per core

    // Shared bundle: this machine needs its own mutable heap (timing
    // applies durable writes to the NVM image), so copy the bundle's.
    _heap = std::make_shared<PersistentHeap>(*bundle->heap);
    _bundle = std::move(bundle);
    wire();
}

void
FullSystem::wire()
{
    _sim = std::make_unique<Simulator>();
    _sim->setCycleSkip(_cfg.cycleSkip);

    // Attach the trace sink before any timing component is built so
    // component constructors can define their tracks.
    if (!_cfg.obs.traceEvents.empty()) {
        _traceSink = std::make_unique<TraceEventSink>(
            _cfg.obs.traceEvents, _cfg.obs.traceCategories,
            static_cast<std::size_t>(_cfg.obs.traceRingEntries));
        _sim->setTraceSink(_traceSink.get());
    }

    // Timing phase wiring. Registration order defines intra-cycle
    // evaluation: memory first, then cores.
    _mc = std::make_unique<MemCtrl>(*_sim, _cfg, _heap->nvmImage());
    _caches = std::make_unique<CacheHierarchy>(*_sim, _cfg, *_mc,
                                               _heap->nvmImage());
    _locks = std::make_unique<LockManager>(*_sim);

    _sim->addTicked(_mc.get());
    for (unsigned t = 0; t < _cfg.cores; ++t) {
        const TraceBundle::ThreadTrace &tt = _bundle->threads[t];
        _cores.push_back(std::make_unique<Core>(
            *_sim, _cfg, static_cast<CoreId>(t), tt.trace, *_caches,
            *_mc, *_locks));
        _cores.back()->bindLogArea(tt.logStart, tt.logEnd);
        if (_cfg.logging.scheme == LogScheme::ATOM) {
            const Addr area =
                _heap->allocLogArea(_cfg.logging.logAreaBytes);
            const Addr end = area + _cfg.logging.logAreaBytes;
            _mc->bindAtomLogArea(static_cast<CoreId>(t), area, end);
            _atomAreas.emplace_back(area, end);
        } else {
            _atomAreas.emplace_back(invalidAddr, invalidAddr);
        }
        _sim->addTicked(_cores.back().get());
    }

    if (_cfg.obs.statsInterval > 0) {
        _sampler = std::make_unique<IntervalStatsSampler>(
            *_sim, _cfg.obs.statsInterval, _cfg.obs.statsOut);
        _sampler->start();
    }

    // The transaction flight recorder observes every core and the MC.
    // File output (when obs.txStats is set) is written by the caller
    // (runExperiment / runBatch) so batches can combine rows into one
    // deterministic file.
    if (!_cfg.obs.txStats.empty() || _cfg.obs.txTrack) {
        _txTracker = std::make_unique<obs::TxTracker>(
            _sim->statsRegistry(), _cfg.cores,
            static_cast<unsigned>(_cfg.obs.txSlowest));
        _mc->setTxObserver(_txTracker.get());
        for (auto &core : _cores)
            core->setTxObserver(_txTracker.get());
    }

    // The persistency-order checker taps both the flight-recorder
    // stream (shared with the tracker through a fanout) and the
    // persist-edge stream. In mutation mode a StreamMutator interposes
    // on both so the checker must catch the injected violation.
    if (_cfg.analysis.check) {
        _checker = std::make_unique<analysis::PersistChecker>(
            _cfg.logging.scheme, _cfg.memCtrl.adr, _cfg.analysis.repro);
        for (unsigned t = 0; t < _cfg.cores; ++t) {
            const TraceBundle::ThreadTrace &tt = _bundle->threads[t];
            _checker->addLogArea(tt.logStart, tt.logEnd,
                                 static_cast<CoreId>(t));
            _checker->addLogArea(_atomAreas[t].first,
                                 _atomAreas[t].second,
                                 static_cast<CoreId>(t));
        }
        if (_bundle->history)
            _checker->bindWriteHistory(*_bundle->history);

        obs::TxObserver *tx_obs = _checker.get();
        analysis::PersistSink *sink = _checker.get();
        if (_cfg.analysis.mutateRule >= 0 &&
            static_cast<unsigned>(_cfg.analysis.mutateRule) <
                analysis::numRules) {
            _mutator = std::make_unique<analysis::StreamMutator>(
                static_cast<analysis::Rule>(_cfg.analysis.mutateRule),
                _cfg.analysis.mutateSeed, *_checker);
            for (unsigned t = 0; t < _cfg.cores; ++t) {
                const TraceBundle::ThreadTrace &tt = _bundle->threads[t];
                _mutator->addLogArea(tt.logStart, tt.logEnd);
                _mutator->addLogArea(_atomAreas[t].first,
                                     _atomAreas[t].second);
            }
            tx_obs = _mutator.get();
            sink = _mutator.get();
        }
        if (_txTracker) {
            _obsFanout = std::make_unique<obs::TxObserverFanout>(
                _txTracker.get(), tx_obs);
            tx_obs = _obsFanout.get();
        }
        _mc->setTxObserver(tx_obs);
        for (auto &core : _cores)
            core->setTxObserver(tx_obs);
        _mc->setPersistSink(sink);
        for (auto &core : _cores)
            core->setPersistSink(sink);
    }
}

FullSystem::~FullSystem()
{
    finishObservability();
}

Workload &
FullSystem::workload()
{
    if (!_bundle->workload)
        fatal("FullSystem: this system runs a trace bundle loaded from "
              "a file; no workload object is available");
    return *_bundle->workload;
}

void
FullSystem::finishObservability()
{
    if (_sampler)
        _sampler->finish();
    if (_txTracker)
        _txTracker->finish();
    if (_traceSink) {
        for (auto &core : _cores)
            core->finalizeTrace();
        _traceSink->flush();
    }
}

bool
FullSystem::done() const
{
    for (const auto &core : _cores) {
        if (!core->done())
            return false;
    }
    return true;
}

RunResult
FullSystem::snapshotResult() const
{
    RunResult r;
    r.finished = done();
    r.cycles = _sim->now();
    r.nvmWrites = _mc->nvmWrites();
    r.nvmReads = _mc->nvmReads();
    r.logWritesDropped = _mc->droppedLogWrites();
    std::uint64_t llt_lookups = 0;
    std::uint64_t llt_misses = 0;
    for (const auto &core : _cores) {
        r.retiredOps += core->retiredOps();
        r.frontendStallCycles += core->frontendStallCycles();
        r.committedTxs += core->committedTxs().size();
        r.cpi += core->cpiStack();
        llt_lookups += core->llt().lookups();
        llt_misses += core->llt().misses();
    }
    r.lltMissRate = llt_lookups
        ? static_cast<double>(llt_misses) / llt_lookups
        : 0.0;
    if (const faults::FaultModel *fm = _mc->faultModel())
        r.faultStats = fm->summary(_heap->nvmImage());
    return r;
}

RunResult
FullSystem::run(Tick max_cycles)
{
    const bool ok = _sim->runUntil([this]() { return done(); },
                                   max_cycles);
    RunResult r = snapshotResult();
    r.finished = ok;
    if (!ok)
        warn("FullSystem: simulation hit the cycle limit before the "
             "traces drained");
    if (_txTracker) {
        r.txStats = std::make_shared<obs::TxStatsSummary>(
            _txTracker->summary());
    }
    if (_checker) {
        r.check = std::make_shared<analysis::CheckOutcome>(
            _checker->outcome());
    }
    finishObservability();
    return r;
}

void
FullSystem::runFor(Tick cycles)
{
    _sim->run(cycles);
}

void
FullSystem::crashNow()
{
    _sim->events().clear();
}

MemoryImage
FullSystem::crashImage() const
{
    return crashImage(_cfg.memCtrl.adr);
}

MemoryImage
FullSystem::crashImage(bool with_adr) const
{
    MemoryImage image = _heap->nvmImage();
    if (with_adr)
        _mc->applyBatteryDrain(image);
    return image;
}

} // namespace proteus
