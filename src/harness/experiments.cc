#include "experiments.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "harness/check_runner.hh"
#include "harness/trace_cache.hh"
#include "sim/logging.hh"

namespace proteus {

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--init-scale") {
            opts.initScale = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--json") {
            opts.jsonPath = next();
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--dram") {
            opts.dram = true;
        } else if (arg == "--no-trace-cache") {
            opts.traceCache = false;
        } else if (arg == "--no-cycle-skip") {
            opts.cycleSkip = false;
        } else if (arg == "--set") {
            opts.overrides.push_back(next());
        } else if (arg == "--stats-interval") {
            opts.statsInterval = std::stoull(next());
        } else if (arg == "--stats-out") {
            opts.statsOut = next();
        } else if (arg == "--trace-events") {
            opts.traceEvents = next();
        } else if (arg == "--trace-categories") {
            opts.traceCategories = next();
        } else if (arg == "--tx-stats") {
            opts.txStats = next();
        } else if (arg == "--tx-slowest") {
            opts.txSlowest = std::stoull(next());
        } else if (arg == "--faults") {
            opts.faults = faults::parseFaultSpec(next(), opts.faults);
        } else if (arg == "--fault-seed") {
            opts.faults.seed = std::stoull(next());
        } else if (arg == "--check") {
            opts.check = true;
        } else if (arg == "--check-mutate") {
            opts.check = true;
            opts.checkMutate = std::stol(next());
        } else if (arg == "--wl-spec") {
            opts.wlSpec = next();
        } else if (arg == "--wl-spec-file") {
            opts.wlSpecFile = next();
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "options:\n"
                << "  --scale N      divide Table 2 SimOps by N "
                << "(default 200; 1 = paper size)\n"
                << "  --init-scale N divide Table 2 InitOps "
                << "(working-set size; default 1 = paper)\n"
                << "  --threads N    simulated cores (default 4)\n"
                << "  --jobs N       host threads for batch runs "
                << "(default: all cores)\n"
                << "  --seed N       workload RNG seed\n"
                << "  --dram         DRAM timing (Section 7.2)\n"
                << "  --json FILE    write per-run results as JSON "
                << "rows\n"
                << "  --set k=v      config override, e.g. "
                << "logging.logQEntries=8\n"
                << "  --no-trace-cache  rebuild traces per run instead "
                << "of sharing cached bundles\n"
                << "  --no-cycle-skip   tick every cycle instead of "
                << "skipping quiescent spans (same results, slower)\n"
                << "  --stats-interval N  sample scalar-stat deltas "
                << "every N cycles\n"
                << "  --stats-out FILE    interval time series "
                << "(.json or .csv)\n"
                << "  --trace-events FILE Chrome Trace Event JSON "
                << "(load in Perfetto)\n"
                << "  --trace-categories LIST  comma list of "
                << "cpu,memctrl,log,lock,all (default all)\n"
                << "  --tx-stats FILE     transaction flight-recorder "
                << "summary (.json or .csv)\n"
                << "  --tx-slowest K      retain full timelines for the "
                << "K slowest transactions (default 8)\n"
                << "  --faults SPEC       NVM media fault injection, "
                << "e.g. torn=0.01,readflip=1e-4,\n"
                << "                      endurance=1000,detect=8,"
                << "correct=1 (default: off)\n"
                << "  --fault-seed N      fault-draw seed (default 1)\n"
                << "  --check             arm the persistency-order "
                << "checker; any ordering\n"
                << "                      violation fails the run "
                << "(see proteus-check)\n"
                << "  --check-mutate N    seeded mutation campaign: "
                << "every armed rule must\n"
                << "                      catch one injected violation "
                << "(implies --check)\n"
                << "  --wl-spec k=v,...   generated-workload spec "
                << "(see proteus-sim --list-workloads)\n"
                << "  --wl-spec-file FILE base spec file; --wl-spec "
                << "overrides on top\n";
            std::exit(0);
        } else {
            fatal("unknown argument: ", arg);
        }
    }
    // Catch nonsense at the CLI boundary: a zero divisor or an
    // impossible thread count would otherwise surface as a confusing
    // failure deep inside workload construction.
    if (opts.scale == 0)
        fatal("--scale must be >= 1");
    if (opts.initScale == 0)
        fatal("--init-scale must be >= 1");
    if (opts.threads == 0 || opts.threads > 32)
        fatal("--threads must be in [1, 32] (got ", opts.threads, ")");
    if (!opts.wlSpec.empty() || !opts.wlSpecFile.empty())
        opts.genSpec();     // validate eagerly, fail fast
    return opts;
}

wlgen::GenSpec
BenchOptions::genSpec() const
{
    wlgen::GenSpec spec;
    if (!wlSpecFile.empty())
        spec = wlgen::GenSpec::parseFile(wlSpecFile);
    if (!wlSpec.empty())
        spec = wlgen::GenSpec::parse(wlSpec, spec);
    return spec;
}

SystemConfig
BenchOptions::makeConfig() const
{
    SystemConfig cfg = dram ? dramConfig() : baselineConfig();
    cfg.seed = seed;
    cfg.cycleSkip = cycleSkip;
    if (statsInterval > 0 && statsOut.empty())
        fatal("--stats-interval requires --stats-out FILE");
    cfg.obs.statsInterval = statsInterval;
    cfg.obs.statsOut = statsOut;
    cfg.obs.traceEvents = traceEvents;
    if (!traceEvents.empty())
        cfg.obs.traceCategories =
            TraceEventSink::parseCategories(traceCategories);
    cfg.obs.txStats = txStats;
    cfg.obs.txSlowest = txSlowest;
    cfg.faults = faults;
    for (const std::string &o : overrides)
        cfg.applyOverride(o);
    return cfg;
}

obs::TxStatsRow
makeTxStatsRow(const BenchOptions &opts, LogScheme scheme,
               WorkloadKind kind, const RunResult &result)
{
    obs::TxStatsRow row;
    row.scheme = toString(scheme);
    row.workload = toString(kind);
    row.threads = opts.threads;
    row.scale = opts.scale;
    row.initScale = opts.initScale;
    row.seed = opts.seed;
    row.cycles = result.cycles;
    // Bucket order mirrors obs::TxSlot (and CommitBucket).
    row.cpi = {result.cpi.base,          result.cpi.robFull,
               result.cpi.iqLsqFull,     result.cpi.branchRedirect,
               result.cpi.persistStall,  result.cpi.wpqBackpressure,
               result.cpi.lockWait};
    if (result.txStats)
        row.summary = *result.txStats;
    row.faults = result.faultStats;
    return row;
}

RunResult
runExperiment(SystemConfig cfg, LogScheme scheme, WorkloadKind kind,
              const BenchOptions &opts,
              const WorkloadExtras &extras)
{
    cfg.logging.scheme = scheme;
    // PMEM+pcommit models the pre-ADR persistency domain.
    cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;
    if (opts.check) {
        cfg.analysis.check = true;
        cfg.analysis.repro = checkReproLine(scheme, kind, opts);
    }

    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.initScale = opts.initScale;
    params.seed = opts.seed;
    params.logAreaBytes = cfg.logging.logAreaBytes;

    RunResult result;
    if (opts.traceCache) {
        TraceBundleKey key;
        key.kind = kind;
        key.scheme = scheme;
        key.params = params;
        key.llOpts = extras.ll;
        key.gen = extras.gen;
        // Checked runs need the write history so the software schemes
        // arm LogBeforeData too (undo-logged vs. storeInit stores).
        FullSystem system(
            cfg, TraceCache::global().get(key,
                                          /*want_history=*/opts.check));
        result = system.run();
    } else {
        FullSystem system(cfg, kind, params, extras);
        result = system.run();
    }
    if (opts.check && result.check && !result.check->pass()) {
        CheckRow row;
        row.scheme = scheme;
        row.kind = kind;
        row.run = result;
        row.outcome = *result.check;
        std::cerr << formatCheckReport(row);
        fatal("persistency-order check failed under ", toString(scheme),
              " / ", toString(kind), ": ",
              result.check->totalViolations, " violation(s)");
    }
    // Single-run tx-stats file. Batches route through the parallel
    // runner, which clears the per-job path and lets runBatch combine
    // every row into one file in submission order.
    if (!cfg.obs.txStats.empty() && result.txStats) {
        obs::writeTxStatsFile(
            cfg.obs.txStats,
            {makeTxStatsRow(opts, scheme, kind, result)});
    }
    return result;
}

void
writeJsonResults(const std::string &path,
                 const std::vector<JsonResultRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open --json output file: ", path);
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const JsonResultRow &row = rows[i];
        const RunResult &r = row.result;
        os << "  {\"scheme\": \"" << row.scheme << "\""
           << ", \"workload\": \"" << row.workload << "\""
           << ", \"finished\": " << (r.finished ? "true" : "false")
           << ", \"cycles\": " << r.cycles
           << ", \"retiredOps\": " << r.retiredOps
           << ", \"nvmWrites\": " << r.nvmWrites
           << ", \"nvmReads\": " << r.nvmReads
           << ", \"committedTxs\": " << r.committedTxs
           << ", \"logWritesDropped\": " << r.logWritesDropped
           << ", \"cpi\": {"
           << "\"base\": " << r.cpi.base
           << ", \"robFull\": " << r.cpi.robFull
           << ", \"iqLsqFull\": " << r.cpi.iqLsqFull
           << ", \"branchRedirect\": " << r.cpi.branchRedirect
           << ", \"persistStall\": " << r.cpi.persistStall
           << ", \"wpqBackpressure\": " << r.cpi.wpqBackpressure
           << ", \"lockWait\": " << r.cpi.lockWait << "}";
        // The faults block appears only when injection ran so default
        // rows stay byte-identical to a faultless build.
        if (r.faultStats.enabled) {
            const auto &f = r.faultStats;
            os << ", \"faults\": {"
               << "\"tornWrites\": " << f.tornWrites
               << ", \"wornWrites\": " << f.wornWrites
               << ", \"readFaults\": " << f.readFaults
               << ", \"eccCorrected\": " << f.eccCorrected
               << ", \"eccDetected\": " << f.eccDetected
               << ", \"silentFaults\": " << f.silentFaults
               << ", \"readRetries\": " << f.readRetries
               << ", \"retryBackoffCycles\": " << f.retryBackoffCycles
               << ", \"retriesExhausted\": " << f.retriesExhausted
               << ", \"poisonedLines\": " << f.poisonedLines << "}";
        }
        os << ", \"wall_ms\": " << std::fixed << std::setprecision(1)
           << row.wallMs << std::defaultfloat << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
    if (!os.flush())
        fatal("failed writing --json output file: ", path);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values) {
        if (v <= 0)
            panic("geomean of a non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
}

void
TablePrinter::printHeader(std::ostream &os) const
{
    for (std::size_t i = 0; i < _columns.size(); ++i)
        os << std::left << std::setw(i == 0 ? 16 : 12) << _columns[i];
    os << "\n";
    for (std::size_t i = 0; i < _columns.size(); ++i)
        os << std::left << std::setw(i == 0 ? 16 : 12)
           << std::string(std::min<std::size_t>(_columns[i].size(), 11),
                          '-');
    os << "\n";
}

void
TablePrinter::printRow(std::ostream &os,
                       const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size(); ++i)
        os << std::left << std::setw(i == 0 ? 16 : 12) << cells[i];
    os << "\n";
}

std::string
TablePrinter::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace proteus
