/**
 * @file
 * FullSystem: one complete simulated machine — workload, traces,
 * cores, caches, memory controller, NVM — wired per a SystemConfig.
 * This is the top-level object examples, tests, and benches drive.
 *
 * Trace state (per-thread micro-op streams, the initial heap image,
 * log-area bounds) lives in a TraceBundle. The classic constructor
 * builds a private bundle by executing the workload functionally; the
 * bundle constructor wires the machine from a prebuilt shared bundle
 * (TraceCache or a .ptrace file) without re-executing anything —
 * results are bit-identical either way because both paths run the same
 * wiring code over the same bundle contents.
 */

#ifndef PROTEUS_HARNESS_SYSTEM_HH
#define PROTEUS_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "analysis/persist_checker.hh"
#include "analysis/stream_mutator.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/lock_manager.hh"
#include "harness/trace_bundle.hh"
#include "heap/persistent_heap.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/tx_tracker.hh"
#include "sim/config.hh"
#include "sim/interval_stats.hh"
#include "sim/simulator.hh"
#include "sim/trace_events.hh"
#include "workloads/workload.hh"

namespace proteus {

/** Aggregate results of one simulation run. */
struct RunResult
{
    bool finished = false;      ///< all traces drained before the limit
    Tick cycles = 0;
    std::uint64_t retiredOps = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmReads = 0;
    std::uint64_t frontendStallCycles = 0;
    std::uint64_t committedTxs = 0;
    std::uint64_t logWritesDropped = 0;
    double lltMissRate = 0;     ///< aggregate over all cores
    CpiStack cpi;               ///< commit-slot cycles, summed over cores
    /** Flight-recorder summary (null unless the tx recorder ran);
     *  shared_ptr keeps RunResult cheap to copy through the runner. */
    std::shared_ptr<obs::TxStatsSummary> txStats;
    /** Media fault/ECC/retry counters (enabled=false when fault
     *  injection is off, and then omitted from every serialization). */
    faults::FaultStatsSummary faultStats;
    /** Persistency-order checker verdict (null unless analysis.check). */
    std::shared_ptr<analysis::CheckOutcome> check;
};

/** A fully wired simulated machine executing one workload. */
class FullSystem
{
  public:
    /**
     * Build the trace state privately and wire the machine (the
     * classic path). @p trace_observer, when set, watches every
     * transactional write as the workload's traces are recorded (the
     * crash oracle hook); it must outlive trace generation but is not
     * retained afterwards.
     */
    FullSystem(const SystemConfig &cfg, WorkloadKind kind,
               const WorkloadParams &params,
               const WorkloadExtras &extras = {},
               TraceWriteObserver *trace_observer = nullptr);

    /**
     * Wire the machine from a prebuilt bundle (TraceCache::get or
     * loadTraceBundle). The bundle stays immutable: this system gets a
     * private copy of the heap images, so any number of systems —
     * across schemes' timing configs, crash points, or parallel-runner
     * workers — can share one bundle. cfg.logging.scheme must match
     * the bundle's scheme.
     */
    FullSystem(const SystemConfig &cfg,
               std::shared_ptr<const TraceBundle> bundle);

    ~FullSystem();

    /** Run until every core drains (or @p max_cycles elapse). */
    RunResult run(Tick max_cycles = 2'000'000'000ull);

    /** Run exactly @p cycles more cycles (crash-injection stepping). */
    void runFor(Tick cycles);

    /** @return true once every core has drained its trace. */
    bool done() const;

    /** Collect the current aggregate counters. */
    RunResult snapshotResult() const;

    /**
     * The crash image: NVM contents plus, under ADR, the battery-backed
     * WPQ/LPQ contents (Section 2.1). The parameterless form follows
     * the configured persistency-domain boundary; the explicit form
     * materializes either semantics (crash injection compares both).
     */
    MemoryImage crashImage() const;
    MemoryImage crashImage(bool with_adr) const;

    /**
     * Destructive crash: drop every pending event so the machine can
     * make no further progress (power is gone; in-flight NVM accesses,
     * fills, and log writes never complete). Snapshot the crash image
     * before or after — crashImage() itself is non-destructive.
     */
    void crashNow();

    Simulator &sim() { return *_sim; }
    PersistentHeap &heap() { return *_heap; }

    /** The shared trace state this machine executes. */
    const TraceBundle &bundle() const { return *_bundle; }

    /** @return false for bundles loaded from a .ptrace file, which
     *  carry no Workload object (workload() would fatal). */
    bool hasWorkload() const { return _bundle->workload != nullptr; }
    Workload &workload();

    MemCtrl &mc() { return *_mc; }
    CacheHierarchy &caches() { return *_caches; }
    Core &core(unsigned i) { return *_cores[i]; }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(_cores.size());
    }
    const SystemConfig &config() const { return _cfg; }
    /** Trace sink (null unless obs.traceEvents is set). */
    TraceEventSink *traceSink() { return _traceSink.get(); }
    /** Interval sampler (null unless obs.statsInterval > 0). */
    IntervalStatsSampler *sampler() { return _sampler.get(); }
    /** Transaction flight recorder (null unless obs.txStats/txTrack). */
    obs::TxTracker *txTracker() { return _txTracker.get(); }
    /** Persistency-order checker (null unless analysis.check). */
    analysis::PersistChecker *checker() { return _checker.get(); }
    /** Stream mutator (null unless analysis.mutateRule targets one). */
    analysis::StreamMutator *mutator() { return _mutator.get(); }

    /** Flush observability outputs (idempotent; run() also does this). */
    void finishObservability();

    /** ATOM per-core log area bounds (commit record + entries). */
    std::pair<Addr, Addr> atomLogArea(unsigned core) const
    {
        return _atomAreas[core];
    }

  private:
    /** Build every timing component from _cfg, _heap, and _bundle. */
    void wire();

    SystemConfig _cfg;
    std::shared_ptr<const TraceBundle> _bundle;
    std::shared_ptr<PersistentHeap> _heap;  ///< this machine's mutable heap
    std::unique_ptr<Simulator> _sim;
    std::unique_ptr<TraceEventSink> _traceSink;
    std::unique_ptr<IntervalStatsSampler> _sampler;
    std::unique_ptr<obs::TxTracker> _txTracker;
    std::unique_ptr<analysis::PersistChecker> _checker;
    std::unique_ptr<analysis::StreamMutator> _mutator;
    std::unique_ptr<obs::TxObserverFanout> _obsFanout;
    std::unique_ptr<MemCtrl> _mc;
    std::unique_ptr<CacheHierarchy> _caches;
    std::unique_ptr<LockManager> _locks;
    std::vector<std::unique_ptr<Core>> _cores;
    std::vector<std::pair<Addr, Addr>> _atomAreas;
};

} // namespace proteus

#endif // PROTEUS_HARNESS_SYSTEM_HH
