#include "check_runner.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "harness/trace_cache.hh"
#include "sim/logging.hh"

namespace proteus {

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec << std::setfill(' ');
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

std::string
hex(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

WorkloadParams
paramsFor(const BenchOptions &opts, const SystemConfig &cfg)
{
    WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;
    params.initScale = opts.initScale;
    params.seed = opts.seed;
    params.logAreaBytes = cfg.logging.logAreaBytes;
    return params;
}

/** Shared core of runCheck / the mutation campaign. @p mutations_out,
 *  when set, receives the mutator's applied-perturbation count. */
CheckRow
runCheckImpl(LogScheme scheme, WorkloadKind kind,
             const BenchOptions &opts, const WorkloadExtras &extras,
             int mutate_rule, std::uint64_t mutate_seed,
             std::uint64_t *mutations_out)
{
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = scheme;
    // PMEM+pcommit models the pre-ADR persistency domain.
    cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;
    cfg.analysis.check = true;
    cfg.analysis.mutateRule = mutate_rule;
    cfg.analysis.mutateSeed = mutate_seed;
    cfg.analysis.repro = checkReproLine(scheme, kind, opts);
    // Checked runs never write per-run observability files: batches
    // would race on one path, and verdicts must not depend on it.
    cfg.obs.txStats.clear();
    cfg.obs.statsInterval = 0;
    cfg.obs.traceEvents.clear();

    const WorkloadParams params = paramsFor(opts, cfg);
    TraceBundleKey key;
    key.kind = kind;
    key.scheme = scheme;
    key.params = params;
    key.llOpts = extras.ll;
    key.gen = extras.gen;

    // The write history distinguishes undo-logged stores from
    // fresh-allocation stores, arming LogBeforeData for the software
    // schemes; always record it on the checking path.
    std::shared_ptr<const TraceBundle> bundle = opts.traceCache
        ? TraceCache::global().get(key, /*want_history=*/true)
        : std::shared_ptr<const TraceBundle>(
              TraceBundle::build(key, nullptr, /*want_history=*/true));

    FullSystem system(cfg, bundle);
    CheckRow row;
    row.scheme = scheme;
    row.kind = kind;
    row.run = system.run();
    if (row.run.check)
        row.outcome = *row.run.check;
    if (mutations_out) {
        *mutations_out =
            system.mutator() ? system.mutator()->mutations() : 0;
    }
    return row;
}

} // namespace

std::string
checkReproLine(LogScheme scheme, WorkloadKind kind,
               const BenchOptions &opts)
{
    std::ostringstream os;
    os << "proteus-check run " << toString(kind)
       << " --scheme " << toString(scheme)
       << " --seed " << opts.seed
       << " --threads " << opts.threads
       << " --scale " << opts.scale
       << " --init-scale " << opts.initScale;
    if (opts.dram)
        os << " --dram";
    // Cycle skipping and --jobs are result-invariant by design, so the
    // repro line omits them — and check JSON stays byte-identical
    // across both settings.
    return os.str();
}

CheckRow
runCheck(LogScheme scheme, WorkloadKind kind, const BenchOptions &opts,
         const WorkloadExtras &extras)
{
    return runCheckImpl(scheme, kind, opts, extras, /*mutate_rule=*/-1,
                        /*mutate_seed=*/1, nullptr);
}

CheckRow
runCheckOnBundle(std::shared_ptr<const TraceBundle> bundle,
                 const BenchOptions &opts, std::string repro)
{
    if (!bundle)
        fatal("runCheckOnBundle: null trace bundle");
    SystemConfig cfg = opts.makeConfig();
    cfg.logging.scheme = bundle->key.scheme;
    cfg.memCtrl.adr = bundle->key.scheme != LogScheme::PMEMPCommit;
    cfg.analysis.check = true;
    cfg.analysis.repro = std::move(repro);
    cfg.obs.txStats.clear();
    cfg.obs.statsInterval = 0;
    cfg.obs.traceEvents.clear();

    FullSystem system(cfg, bundle);
    CheckRow row;
    row.scheme = bundle->key.scheme;
    row.kind = bundle->key.kind;
    row.run = system.run();
    if (row.run.check)
        row.outcome = *row.run.check;
    return row;
}

std::vector<CheckRow>
runCheckBatch(const std::vector<LogScheme> &schemes,
              const std::vector<WorkloadKind> &kinds,
              const BenchOptions &opts, ProgressReporter *progress)
{
    std::vector<std::pair<LogScheme, WorkloadKind>> jobs;
    for (LogScheme scheme : schemes) {
        for (WorkloadKind kind : kinds)
            jobs.emplace_back(scheme, kind);
    }
    std::vector<CheckRow> rows(jobs.size());
    std::vector<ParallelRunner::Task> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto [scheme, kind] = jobs[i];
        std::ostringstream label;
        label << "check " << toString(scheme) << " / "
              << toString(kind);
        tasks.push_back(
            {label.str(), [&rows, &opts, scheme = scheme, kind = kind,
                           i]() { rows[i] = runCheck(scheme, kind, opts); }});
    }
    ParallelRunner runner(opts.jobs);
    runner.runTasks(tasks, progress);
    return rows;
}

std::vector<MutationRow>
runMutationCampaign(LogScheme scheme, WorkloadKind kind,
                    const BenchOptions &opts, std::uint64_t mutate_seed,
                    ProgressReporter *progress)
{
    // The campaign always records the write history (runCheckImpl), so
    // arm the same rule set the checked run will see.
    const bool adr = scheme != LogScheme::PMEMPCommit;
    const auto armed =
        analysis::rulesForScheme(scheme, adr, /*have_history=*/true);
    std::vector<unsigned> targets;
    for (unsigned r = 0; r < analysis::numRules; ++r) {
        if (armed[r])
            targets.push_back(r);
    }

    std::vector<MutationRow> rows(targets.size());
    std::vector<ParallelRunner::Task> tasks;
    tasks.reserve(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const unsigned r = targets[i];
        std::ostringstream label;
        label << "mutate " << toString(static_cast<analysis::Rule>(r))
              << " on " << toString(scheme) << " / " << toString(kind);
        tasks.push_back({label.str(), [&rows, &opts, scheme, kind, r,
                                       mutate_seed, i]() {
            std::uint64_t mutations = 0;
            const CheckRow run = runCheckImpl(
                scheme, kind, opts, {}, static_cast<int>(r),
                mutate_seed, &mutations);
            MutationRow &row = rows[i];
            row.rule = static_cast<analysis::Rule>(r);
            row.violations = run.outcome.rules[r].violations;
            row.fired = row.violations > 0;
            row.mutations = mutations;
        }});
    }
    ParallelRunner runner(opts.jobs);
    runner.runTasks(tasks, progress);
    return rows;
}

std::string
formatCheckReport(const CheckRow &row)
{
    const analysis::CheckOutcome &o = row.outcome;
    std::ostringstream os;
    os << "persistency-order check: " << toString(row.scheme) << " / "
       << toString(row.kind) << "\n";
    if (!o.repro.empty())
        os << "  repro: " << o.repro << "\n";
    os << "  events: " << o.eventsSeen << "\n";
    os << "  " << std::left << std::setw(26) << "rule" << std::setw(8)
       << "armed" << std::setw(14) << "checks" << "violations\n";
    for (unsigned r = 0; r < analysis::numRules; ++r) {
        os << "  " << std::left << std::setw(26)
           << analysis::toString(static_cast<analysis::Rule>(r))
           << std::setw(8) << (o.armed[r] ? "yes" : "no")
           << std::setw(14) << o.rules[r].checks
           << o.rules[r].violations << "\n";
    }
    for (std::size_t i = 0; i < o.violations.size(); ++i) {
        const analysis::Violation &v = o.violations[i];
        os << "  VIOLATION #" << (i + 1) << "  rule="
           << analysis::toString(v.rule) << "  core=" << v.core
           << "  tx=" << v.tx << "\n"
           << "    addr=" << hex(v.addr) << "  store-ordinal="
           << v.ordinal << "  tick=" << v.tick << "\n"
           << "    missing edge: " << v.missingEdge << "\n";
        if (!v.detail.empty())
            os << "    detail: " << v.detail << "\n";
    }
    if (o.pass()) {
        os << "  PASS\n";
    } else {
        os << "  FAIL: " << o.totalViolations << " violation"
           << (o.totalViolations == 1 ? "" : "s") << " ("
           << o.violations.size() << " shown; cap "
           << analysis::reportCap << ")\n";
    }
    return os.str();
}

std::string
formatMutationReport(LogScheme scheme, WorkloadKind kind,
                     const std::vector<MutationRow> &rows)
{
    std::ostringstream os;
    os << "mutation campaign: " << toString(scheme) << " / "
       << toString(kind) << "\n";
    os << "  " << std::left << std::setw(26) << "rule" << std::setw(12)
       << "mutations" << std::setw(14) << "violations" << "verdict\n";
    for (const MutationRow &row : rows) {
        os << "  " << std::left << std::setw(26)
           << analysis::toString(row.rule) << std::setw(12)
           << row.mutations << std::setw(14) << row.violations
           << (row.fired ? "fired" : "MISSED") << "\n";
    }
    os << (allFired(rows)
               ? "  PASS: every armed rule caught its injected "
                 "violation\n"
               : "  FAIL: at least one armed rule missed its injected "
                 "violation\n");
    return os.str();
}

std::string
checkRowsJson(const std::vector<CheckRow> &rows)
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CheckRow &row = rows[i];
        const analysis::CheckOutcome &o = row.outcome;
        os << "  {\"scheme\": \"" << jsonEscape(toString(row.scheme))
           << "\", \"workload\": \"" << toString(row.kind)
           << "\", \"pass\": " << (o.pass() ? "true" : "false")
           << ", \"events\": " << o.eventsSeen
           << ", \"violations\": " << o.totalViolations
           << ", \"cycles\": " << row.run.cycles
           << ", \"committedTxs\": " << row.run.committedTxs
           << ", \"repro\": \"" << jsonEscape(o.repro) << "\""
           << ", \"rules\": [";
        for (unsigned r = 0; r < analysis::numRules; ++r) {
            os << (r ? ", " : "") << "{\"name\": \""
               << analysis::toString(static_cast<analysis::Rule>(r))
               << "\", \"armed\": " << (o.armed[r] ? "true" : "false")
               << ", \"checks\": " << o.rules[r].checks
               << ", \"violations\": " << o.rules[r].violations << "}";
        }
        os << "], \"reports\": [";
        for (std::size_t v = 0; v < o.violations.size(); ++v) {
            const analysis::Violation &viol = o.violations[v];
            os << (v ? ", " : "") << "{\"rule\": \""
               << analysis::toString(viol.rule) << "\", \"core\": "
               << viol.core << ", \"tx\": " << viol.tx
               << ", \"addr\": \"" << hex(viol.addr)
               << "\", \"ordinal\": " << viol.ordinal << ", \"tick\": "
               << viol.tick << ", \"missingEdge\": \""
               << jsonEscape(viol.missingEdge) << "\", \"detail\": \""
               << jsonEscape(viol.detail) << "\"}";
        }
        os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
    return os.str();
}

std::string
mutationRowsJson(LogScheme scheme, WorkloadKind kind,
                 std::uint64_t mutate_seed,
                 const std::vector<MutationRow> &rows)
{
    std::ostringstream os;
    os << "{\"scheme\": \"" << jsonEscape(toString(scheme))
       << "\", \"workload\": \"" << toString(kind)
       << "\", \"seed\": " << mutate_seed
       << ", \"pass\": " << (allFired(rows) ? "true" : "false")
       << ", \"rules\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const MutationRow &row = rows[i];
        os << "  {\"rule\": \"" << analysis::toString(row.rule)
           << "\", \"fired\": " << (row.fired ? "true" : "false")
           << ", \"mutations\": " << row.mutations
           << ", \"violations\": " << row.violations << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]}\n";
    return os.str();
}

void
writeJsonFile(const std::string &path, const std::string &json)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open --json output file: ", path);
    os << json;
    if (!os.flush())
        fatal("failed writing --json output file: ", path);
}

bool
allPass(const std::vector<CheckRow> &rows)
{
    for (const CheckRow &row : rows) {
        if (!row.outcome.pass())
            return false;
    }
    return true;
}

bool
allFired(const std::vector<MutationRow> &rows)
{
    for (const MutationRow &row : rows) {
        if (!row.fired)
            return false;
    }
    return true;
}

} // namespace proteus
