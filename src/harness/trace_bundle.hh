/**
 * @file
 * Prebuilt, immutable trace state shared across FullSystem instances.
 *
 * Building a FullSystem used to re-execute the functional workload —
 * InitOps population plus SimOps recording — on every construction,
 * even though the result (per-thread micro-op traces, the initial heap
 * image, log-area bounds, and the oracle's write history) depends only
 * on (workload kind, params, scheme, linked-list options) and never on
 * the timing configuration. A TraceBundle captures exactly that
 * scheme-and-workload-determined state once; any number of FullSystems
 * can then be wired from the same bundle, concurrently, each with its
 * own private copy of the mutable heap images.
 *
 * Bundles come from three places:
 *  - FullSystem's classic constructor builds a private one (the
 *    uncached path — behavior and results are bit-identical to before),
 *  - TraceCache::get() builds one per key and shares it process-wide,
 *  - loadTraceBundle() deserializes one from a .ptrace file recorded
 *    by tools/proteus-trace (such bundles carry no Workload object, so
 *    they can run and be measured but not invariant-checked).
 */

#ifndef PROTEUS_HARNESS_TRACE_BUNDLE_HH
#define PROTEUS_HARNESS_TRACE_BUNDLE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "heap/persistent_heap.hh"
#include "isa/trace.hh"
#include "sim/config.hh"
#include "trace/write_history.hh"
#include "workloads/workload.hh"

namespace proteus {

/** Everything trace generation depends on; the cache/file identity. */
struct TraceBundleKey
{
    WorkloadKind kind = WorkloadKind::Queue;
    LogScheme scheme = LogScheme::Proteus;
    WorkloadParams params;
    LinkedListOptions llOpts;
    wlgen::GenSpec gen;

    WorkloadExtras extras() const { return {llOpts, gen}; }

    bool operator==(const TraceBundleKey &o) const;
    std::size_t hash() const;

    /** e.g. "QE/Proteus t4 scale20 init1 seed1" (labels, stats). */
    std::string describe() const;
};

/** Immutable product of one functional workload execution. */
class TraceBundle
{
  public:
    /** One simulated thread's share of the bundle. */
    struct ThreadTrace
    {
        Trace trace;
        Addr logStart = invalidAddr;    ///< circular log area bounds
        Addr logEnd = invalidAddr;
        Addr logFlag = invalidAddr;     ///< software logFlag word
        std::uint64_t txCount = 0;      ///< transactions recorded
    };

    TraceBundleKey key;

    /**
     * Functional heap state at the point timing would start: the NVM
     * image is the post-setup (fast-forwarded) durable state, the
     * volatile image the post-recording final state, and the allocator
     * frontiers are live so wiring can still carve ATOM log areas.
     * FullSystems wired from a shared bundle copy this heap; they never
     * mutate it in place.
     */
    std::shared_ptr<PersistentHeap> heap;

    /**
     * The workload that produced the traces (null for bundles loaded
     * from a .ptrace file). Shared FullSystems use it only through
     * const-safe entry points: serialize/checkInvariants against an
     * explicit image, and the per-thread log-area accessors.
     */
    std::shared_ptr<Workload> workload;

    std::vector<ThreadTrace> threads;

    /**
     * The recorded observer stream (null unless requested at build or
     * present in the loaded file). Replaying it into a fresh
     * CommitOracle is equivalent to attaching the oracle during trace
     * generation.
     */
    std::shared_ptr<const WriteHistory> history;

    /** Lock address -> LockAcquire count, derived from the traces
     *  (the .ptrace lock-map section; also a cheap integrity check). */
    std::map<Addr, std::uint64_t> lockMap;

    /**
     * Execute the workload functionally and capture the bundle.
     * @p extra_observer, when set, watches the recording exactly as
     * FullSystem's trace_observer hook used to; @p want_history
     * additionally records the replayable WriteHistory.
     */
    static std::shared_ptr<TraceBundle>
    build(const TraceBundleKey &key,
          TraceWriteObserver *extra_observer = nullptr,
          bool want_history = false);

    /** Recompute lockMap from the traces (build and load both use it). */
    void computeLockMap();

    /// @name Aggregates (info output, tests)
    /// @{
    std::uint64_t totalOps() const;
    std::uint64_t totalTxs() const;
    std::uint64_t totalPayloads() const;
    /// @}
};

} // namespace proteus

#endif // PROTEUS_HARNESS_TRACE_BUNDLE_HH
