#include "trace_bundle.hh"

#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

inline void
hashMix(std::size_t &h, std::uint64_t v)
{
    // splitmix64-style avalanche, folded into the running hash.
    v ^= h + 0x9e3779b97f4a7c15ull + (v << 6) + (v >> 2);
    v *= 0xbf58476d1ce4e5b9ull;
    v ^= v >> 27;
    h = static_cast<std::size_t>(v);
}

} // namespace

bool
TraceBundleKey::operator==(const TraceBundleKey &o) const
{
    return kind == o.kind && scheme == o.scheme &&
           params.threads == o.params.threads &&
           params.scale == o.params.scale &&
           params.initScale == o.params.initScale &&
           params.seed == o.params.seed &&
           params.logAreaBytes == o.params.logAreaBytes &&
           llOpts.elementsPerNode == o.llOpts.elementsPerNode &&
           (kind != WorkloadKind::Generated || gen == o.gen);
}

std::size_t
TraceBundleKey::hash() const
{
    std::size_t h = 0;
    hashMix(h, static_cast<std::uint64_t>(kind));
    hashMix(h, static_cast<std::uint64_t>(scheme));
    hashMix(h, params.threads);
    hashMix(h, params.scale);
    hashMix(h, params.initScale);
    hashMix(h, params.seed);
    hashMix(h, params.logAreaBytes);
    hashMix(h, llOpts.elementsPerNode);
    if (kind == WorkloadKind::Generated)
        hashMix(h, gen.hash());
    return h;
}

std::string
TraceBundleKey::describe() const
{
    std::ostringstream os;
    os << toString(kind) << "/" << toString(scheme) << " t"
       << params.threads << " scale" << params.scale << " init"
       << params.initScale << " seed" << params.seed;
    if (kind == WorkloadKind::LinkedList)
        os << " epn" << llOpts.elementsPerNode;
    if (kind == WorkloadKind::Generated)
        os << " [" << gen.canonical() << "]";
    return os.str();
}

std::shared_ptr<TraceBundle>
TraceBundle::build(const TraceBundleKey &key,
                   TraceWriteObserver *extra_observer, bool want_history)
{
    auto bundle = std::make_shared<TraceBundle>();
    bundle->key = key;
    bundle->heap = std::make_shared<PersistentHeap>();
    bundle->workload = makeWorkload(key.kind, *bundle->heap, key.scheme,
                                    key.params, key.extras());

    // Functional phase, exactly as FullSystem's constructor used to run
    // it: populate (InitOps), fast-forward the NVM image, record.
    bundle->workload->setup();
    bundle->heap->syncNvmToVolatile();

    auto history =
        want_history ? std::make_shared<WriteHistory>() : nullptr;
    TeeWriteObserver tee(history.get(), extra_observer);
    const bool observe = history || extra_observer;
    const unsigned threads = key.params.threads;
    if (observe) {
        for (unsigned t = 0; t < threads; ++t)
            bundle->workload->builder(t).setWriteObserver(&tee);
    }
    bundle->workload->generateTraces();
    if (observe) {
        for (unsigned t = 0; t < threads; ++t)
            bundle->workload->builder(t).setWriteObserver(nullptr);
    }
    bundle->history = std::move(history);

    bundle->threads.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        TraceBuilder &tb = bundle->workload->builder(t);
        ThreadTrace tt;
        tt.trace = tb.takeTrace();
        tt.logStart = tb.logAreaStart();
        tt.logEnd = tb.logAreaEnd();
        tt.logFlag = tb.logFlagAddr();
        tt.txCount = tb.txCount();
        bundle->threads.push_back(std::move(tt));
    }
    bundle->computeLockMap();
    return bundle;
}

void
TraceBundle::computeLockMap()
{
    lockMap.clear();
    for (const ThreadTrace &tt : threads) {
        for (std::size_t i = 0; i < tt.trace.size(); ++i) {
            const MicroOp &op = tt.trace.op(i);
            if (op.op == Op::LockAcquire)
                ++lockMap[op.addr];
        }
    }
}

std::uint64_t
TraceBundle::totalOps() const
{
    std::uint64_t n = 0;
    for (const ThreadTrace &tt : threads)
        n += tt.trace.size();
    return n;
}

std::uint64_t
TraceBundle::totalTxs() const
{
    std::uint64_t n = 0;
    for (const ThreadTrace &tt : threads)
        n += tt.txCount;
    return n;
}

std::uint64_t
TraceBundle::totalPayloads() const
{
    std::uint64_t n = 0;
    for (const ThreadTrace &tt : threads)
        n += tt.trace.payloadCount();
    return n;
}

} // namespace proteus
