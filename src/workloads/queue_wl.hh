/**
 * @file
 * QE: enqueue/dequeue in 8 shared linked-list queues (Table 2).
 */

#ifndef PROTEUS_WORKLOADS_QUEUE_WL_HH
#define PROTEUS_WORKLOADS_QUEUE_WL_HH

#include "workload.hh"

namespace proteus {

/** Eight persistent FIFO queues guarded by per-queue locks. */
class QueueWorkload : public Workload
{
  public:
    QueueWorkload(PersistentHeap &heap, LogScheme scheme,
                  const WorkloadParams &params);

    std::string name() const override { return "QE"; }
    std::uint64_t initOps() const override
    {
        return 20000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 50000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned numQueues = 8;
    static constexpr unsigned nodeBytes = 64;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    /** Header layout: [0] head, [8] tail, [16] count. */
    Addr header(unsigned q) const { return _headers[q]; }

    void enqueue(unsigned thread, unsigned q, std::uint64_t value);
    void dequeue(unsigned thread, unsigned q);
    void runOp(unsigned thread, bool init_only);

    std::vector<Addr> _headers;
    std::vector<Addr> _locks;
    std::uint64_t _nextValue = 1;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_QUEUE_WL_HH
