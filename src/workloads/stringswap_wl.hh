/**
 * @file
 * SS: swap 256-byte strings in a large string array (Table 2).
 */

#ifndef PROTEUS_WORKLOADS_STRINGSWAP_WL_HH
#define PROTEUS_WORKLOADS_STRINGSWAP_WL_HH

#include "workload.hh"

namespace proteus {

/** One shared array of 256B strings with segment locks. */
class StringSwapWorkload : public Workload
{
  public:
    StringSwapWorkload(PersistentHeap &heap, LogScheme scheme,
                       const WorkloadParams &params);

    std::string name() const override { return "SS"; }
    std::uint64_t initOps() const override
    {
        return 20000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 50000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned stringBytes = 256;
    static constexpr unsigned stringsPerLock = 256;

    std::uint64_t items() const { return _items; }

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    Addr stringAddr(std::uint64_t index) const
    {
        return _array + index * stringBytes;
    }
    void swap(unsigned thread, std::uint64_t i, std::uint64_t j);

    std::uint64_t _items;
    Addr _array = invalidAddr;
    std::vector<Addr> _locks;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_STRINGSWAP_WL_HH
