#include "btree_wl.hh"

#include "registry.hh"

#include <functional>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

constexpr unsigned offCount = 0;
constexpr unsigned offKeys = 8;
constexpr unsigned offChildren = 32;

} // namespace

BTreeWorkload::BTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                             const WorkloadParams &params)
    : Workload(heap, scheme, params)
{
}

void
BTreeWorkload::allocateStructures()
{
    for (unsigned t = 0; t < numTrees; ++t) {
        const Addr root = _heap.alloc(blockSize, blockSize);
        _heap.write<std::uint64_t>(root, 0);
        _roots.push_back(root);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

std::uint64_t
BTreeWorkload::keyRange() const
{
    return initOps() * _params.threads * 2 + 64;
}

BTreeWorkload::Node
BTreeWorkload::readNode(TraceBuilder &tb, Addr a, Value dep)
{
    Node n;
    n.a = a;
    n.count = tb.load(a + offCount, 8, dep).v;
    for (unsigned i = 0; i < maxKeys; ++i)
        n.keys[i] = tb.load(a + offKeys + i * 8, 8, dep).v;
    for (unsigned i = 0; i < maxKeys + 1; ++i)
        n.child[i] = tb.load(a + offChildren + i * 8, 8, dep).v;
    return n;
}

void
BTreeWorkload::writeNode(TraceBuilder &tb, const Node &n)
{
    tb.store(n.a + offCount, 8, n.count);
    for (unsigned i = 0; i < maxKeys; ++i)
        tb.store(n.a + offKeys + i * 8, 8, n.keys[i]);
    for (unsigned i = 0; i < maxKeys + 1; ++i)
        tb.store(n.a + offChildren + i * 8, 8, n.child[i]);
}

Addr
BTreeWorkload::poolTake()
{
    if (_poolNext >= _pool.size())
        panic("BTreeWorkload: node pool exhausted");
    return _pool[_poolNext++];
}

void
BTreeWorkload::splitChild(TraceBuilder &tb, Node &parent, unsigned i)
{
    Node y = readNode(tb, parent.child[i]);
    if (y.count != maxKeys)
        panic("BTreeWorkload: splitting a non-full child");
    Node z;
    z.a = poolTake();

    // The top key moves to the new right sibling, the median rises.
    z.count = 1;
    z.keys[0] = y.keys[2];
    if (!y.leaf()) {
        z.child[0] = y.child[2];
        z.child[1] = y.child[3];
    }
    const std::uint64_t median = y.keys[1];
    y.count = 1;
    y.keys[1] = 0;
    y.keys[2] = 0;
    y.child[2] = 0;
    y.child[3] = 0;

    for (unsigned k = parent.count; k > i; --k) {
        parent.keys[k] = parent.keys[k - 1];
        parent.child[k + 1] = parent.child[k];
    }
    parent.keys[i] = median;
    parent.child[i + 1] = z.a;
    ++parent.count;

    writeNode(tb, y);
    writeNode(tb, z);
    writeNode(tb, parent);
}

bool
BTreeWorkload::insertNonFull(TraceBuilder &tb, Addr a, std::uint64_t key)
{
    Node n = readNode(tb, a);
    while (true) {
        // Position of the first key >= key.
        unsigned i = 0;
        while (i < n.count && key > n.keys[i])
            ++i;
        tb.branch(site(0), i < n.count, {});
        if (i < n.count && n.keys[i] == key)
            return false;   // duplicate

        if (n.leaf()) {
            for (unsigned k = n.count; k > i; --k)
                n.keys[k] = n.keys[k - 1];
            n.keys[i] = key;
            ++n.count;
            writeNode(tb, n);
            return true;
        }

        Node c = readNode(tb, n.child[i]);
        if (c.count == maxKeys) {
            splitChild(tb, n, i);
            if (key == n.keys[i])
                return false;   // the risen median is the key
            if (key > n.keys[i])
                ++i;
        }
        n = readNode(tb, n.child[i]);
        a = n.a;
    }
}

std::uint64_t
BTreeWorkload::maxKeyOf(TraceBuilder &tb, Addr a)
{
    Node n = readNode(tb, a);
    while (!n.leaf())
        n = readNode(tb, n.child[n.count]);
    return n.keys[n.count - 1];
}

std::uint64_t
BTreeWorkload::minKeyOf(TraceBuilder &tb, Addr a)
{
    Node n = readNode(tb, a);
    while (!n.leaf())
        n = readNode(tb, n.child[0]);
    return n.keys[0];
}

void
BTreeWorkload::fillChild(TraceBuilder &tb, Node &parent, unsigned i,
                         std::vector<Addr> &freed)
{
    // Child i has the minimum key count; give it one more key by
    // borrowing from a sibling or merging.
    Node c = readNode(tb, parent.child[i]);
    if (i > 0) {
        Node left = readNode(tb, parent.child[i - 1]);
        if (left.count >= 2) {
            // Rotate a key through the parent from the left sibling.
            for (unsigned k = c.count; k > 0; --k)
                c.keys[k] = c.keys[k - 1];
            if (!c.leaf()) {
                for (unsigned k = c.count + 1; k > 0; --k)
                    c.child[k] = c.child[k - 1];
                c.child[0] = left.child[left.count];
                left.child[left.count] = 0;
            }
            c.keys[0] = parent.keys[i - 1];
            ++c.count;
            parent.keys[i - 1] = left.keys[left.count - 1];
            left.keys[left.count - 1] = 0;
            --left.count;
            writeNode(tb, left);
            writeNode(tb, c);
            writeNode(tb, parent);
            return;
        }
    }
    if (i < parent.count) {
        Node right = readNode(tb, parent.child[i + 1]);
        if (right.count >= 2) {
            c.keys[c.count] = parent.keys[i];
            if (!c.leaf()) {
                c.child[c.count + 1] = right.child[0];
                for (unsigned k = 0; k < right.count; ++k)
                    right.child[k] = right.child[k + 1];
                right.child[right.count] = 0;
            }
            ++c.count;
            parent.keys[i] = right.keys[0];
            for (unsigned k = 1; k < right.count; ++k)
                right.keys[k - 1] = right.keys[k];
            right.keys[right.count - 1] = 0;
            --right.count;
            writeNode(tb, right);
            writeNode(tb, c);
            writeNode(tb, parent);
            return;
        }
    }

    // Merge with a sibling around the separating key.
    const unsigned li = i > 0 ? i - 1 : i;  // merge child[li], child[li+1]
    Node left = readNode(tb, parent.child[li]);
    Node right = readNode(tb, parent.child[li + 1]);
    left.keys[left.count] = parent.keys[li];
    for (unsigned k = 0; k < right.count; ++k)
        left.keys[left.count + 1 + k] = right.keys[k];
    if (!left.leaf()) {
        for (unsigned k = 0; k <= right.count; ++k)
            left.child[left.count + 1 + k] = right.child[k];
    }
    left.count += 1 + right.count;

    for (unsigned k = li; k + 1 < parent.count; ++k)
        parent.keys[k] = parent.keys[k + 1];
    for (unsigned k = li + 1; k < parent.count; ++k)
        parent.child[k] = parent.child[k + 1];
    parent.keys[parent.count - 1] = 0;
    parent.child[parent.count] = 0;
    --parent.count;

    writeNode(tb, left);
    writeNode(tb, parent);
    freed.push_back(right.a);
}

void
BTreeWorkload::deleteRec(TraceBuilder &tb, Addr a, std::uint64_t key,
                         std::vector<Addr> &freed)
{
    Node n = readNode(tb, a);
    unsigned i = 0;
    while (i < n.count && key > n.keys[i])
        ++i;
    const bool found = i < n.count && n.keys[i] == key;
    tb.branch(site(1), found, {});

    if (n.leaf()) {
        if (!found)
            return;
        for (unsigned k = i; k + 1 < n.count; ++k)
            n.keys[k] = n.keys[k + 1];
        n.keys[n.count - 1] = 0;
        --n.count;
        writeNode(tb, n);
        return;
    }

    if (found) {
        Node pred_child = readNode(tb, n.child[i]);
        Node succ_child = readNode(tb, n.child[i + 1]);
        if (pred_child.count >= 2) {
            const std::uint64_t pred = maxKeyOf(tb, pred_child.a);
            n.keys[i] = pred;
            writeNode(tb, n);
            deleteRec(tb, pred_child.a, pred, freed);
        } else if (succ_child.count >= 2) {
            const std::uint64_t succ = minKeyOf(tb, succ_child.a);
            n.keys[i] = succ;
            writeNode(tb, n);
            deleteRec(tb, succ_child.a, succ, freed);
        } else {
            // Merge both children around the key, then delete within.
            fillChild(tb, n, i + 1, freed);     // forces the merge path
            n = readNode(tb, a);
            deleteRec(tb, n.child[std::min<unsigned>(i, n.count)], key,
                      freed);
        }
        return;
    }

    // Descend; ensure the target child has at least 2 keys first.
    Node c = readNode(tb, n.child[i]);
    if (c.count < 2) {
        fillChild(tb, n, i, freed);
        n = readNode(tb, a);
        i = 0;
        while (i < n.count && key > n.keys[i])
            ++i;
        if (i < n.count && n.keys[i] == key) {
            // The key moved into this node during the merge.
            deleteRec(tb, a, key, freed);
            return;
        }
    }
    deleteRec(tb, n.child[i], key, freed);
}

void
BTreeWorkload::treeOp(unsigned thread, bool insert_only)
{
    TraceBuilder &tb = builder(thread);
    Random &r = rng(thread);
    const std::uint64_t key = r.nextBelow(keyRange());
    const unsigned t = static_cast<unsigned>(key % numTrees);
    const bool is_insert = insert_only || r.nextBool(0.5);
    const Addr root_ptr = _roots[t];

    // Preallocate enough nodes for a worst-case split chain.
    _pool.clear();
    _poolNext = 0;
    if (is_insert) {
        unsigned depth = 2;
        for (Addr n = _heap.read<std::uint64_t>(root_ptr); n != 0;
             n = _heap.read<std::uint64_t>(n + offChildren)) {
            ++depth;
        }
        for (unsigned k = 0; k < depth + 2; ++k)
            _pool.push_back(allocNode(thread, nodeBytes));
    }

    std::vector<Addr> freed;
    acquire(thread, _locks[t]);
    tb.beginTx();
    padPrologue(thread);
    if (is_insert)
        padAlloc(thread);
    else
        padFree(thread);

    auto mutate = [&]() {
        _poolNext = 0;
        freed.clear();
        const Value root = tb.load(root_ptr, 8);
        if (is_insert) {
            if (root.v == 0) {
                Node n;
                n.a = poolTake();
                n.count = 1;
                n.keys[0] = key;
                writeNode(tb, n);
                tb.store(root_ptr, 8, n.a);
                return;
            }
            Node rn = readNode(tb, root.v, root);
            Addr top = root.v;
            if (rn.count == maxKeys) {
                Node s;
                s.a = poolTake();
                s.count = 0;
                s.child[0] = root.v;
                splitChild(tb, s, 0);
                top = s.a;
                tb.store(root_ptr, 8, top);
            }
            insertNonFull(tb, top, key);
        } else {
            if (root.v == 0)
                return;
            deleteRec(tb, root.v, key, freed);
            // Shrink the root if it emptied out.
            Node rn = readNode(tb, root.v);
            if (rn.count == 0) {
                tb.store(root_ptr, 8, rn.child[0]);
                freed.push_back(root.v);
            }
        }
    };
    mutateWithConservativeLog(thread, mutate);

    tb.endTx();
    release(thread, _locks[t]);

    for (std::size_t k = _poolNext; k < _pool.size(); ++k)
        freeNode(thread, _pool[k], nodeBytes);
    for (Addr a : freed)
        freeNode(thread, a, nodeBytes);
    _pool.clear();
}

void
BTreeWorkload::doInitOp(unsigned thread)
{
    treeOp(thread, true);
}

void
BTreeWorkload::doOp(unsigned thread)
{
    treeOp(thread, false);
}

std::string
BTreeWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned t = 0; t < numTrees; ++t) {
        os << "t" << t << ":";
        std::function<void(Addr)> walk = [&](Addr a) {
            if (a == 0)
                return;
            const std::uint64_t count = image.read64(a + offCount);
            for (std::uint64_t i = 0; i < count; ++i) {
                walk(image.read64(a + offChildren + i * 8));
                os << " " << image.read64(a + offKeys + i * 8);
            }
            walk(image.read64(a + offChildren + count * 8));
        };
        walk(image.read64(_roots[t]));
        os << "\n";
    }
    return os.str();
}

std::string
BTreeWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned t = 0; t < numTrees; ++t) {
        const Addr root = image.read64(_roots[t]);
        // Returns leaf depth, or -1 on violation.
        std::function<std::int64_t(Addr, std::uint64_t, std::uint64_t,
                                   bool)>
            check = [&](Addr a, std::uint64_t lo, std::uint64_t hi,
                        bool is_root) -> std::int64_t {
            const std::uint64_t count = image.read64(a + offCount);
            if (count > maxKeys || (!is_root && count < 1)) {
                err << "t" << t << ": bad key count " << count << "\n";
                return -1;
            }
            std::uint64_t prev = lo;
            for (std::uint64_t i = 0; i < count; ++i) {
                const std::uint64_t k =
                    image.read64(a + offKeys + i * 8);
                if (k < prev || k >= hi) {
                    err << "t" << t << ": key order violation at " << k
                        << "\n";
                    return -1;
                }
                prev = k + 1;
            }
            const Addr c0 = image.read64(a + offChildren);
            if (c0 == 0)
                return 1;   // leaf
            std::int64_t depth = -2;
            std::uint64_t child_lo = lo;
            for (std::uint64_t i = 0; i <= count; ++i) {
                const std::uint64_t child_hi =
                    i < count ? image.read64(a + offKeys + i * 8) : hi;
                const Addr c =
                    image.read64(a + offChildren + i * 8);
                if (c == 0) {
                    err << "t" << t << ": missing child\n";
                    return -1;
                }
                const std::int64_t d =
                    check(c, child_lo, child_hi, false);
                if (d < 0)
                    return -1;
                if (depth == -2)
                    depth = d;
                else if (d != depth) {
                    err << "t" << t << ": uneven leaf depth\n";
                    return -1;
                }
                child_lo = child_hi + 1;
            }
            return depth + 1;
        };
        if (root != 0)
            check(root, 0,
                  std::numeric_limits<std::uint64_t>::max() - 1, true);
    }
    return err.str();
}


WorkloadRegistration
bTreeWorkloadRegistration()
{
    return {WorkloadKind::BTree, "BT", "btree",
            "insert or delete nodes in 16 B-trees (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<BTreeWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
