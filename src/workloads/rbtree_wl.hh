/**
 * @file
 * RT: insert or delete nodes in 16 red-black trees (Table 2),
 * implemented as left-leaning red-black (LLRB) trees — every LLRB is a
 * legal red-black tree, and the recursive formulation keeps the
 * rotation/color-flip store pattern faithful.
 */

#ifndef PROTEUS_WORKLOADS_RBTREE_WL_HH
#define PROTEUS_WORKLOADS_RBTREE_WL_HH

#include "workload.hh"

namespace proteus {

/** Sixteen persistent red-black trees with per-tree locks. */
class RbTreeWorkload : public Workload
{
  public:
    RbTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                   const WorkloadParams &params);

    std::string name() const override { return "RT"; }
    std::uint64_t initOps() const override
    {
        return 100000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 10000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned numTrees = 16;
    static constexpr unsigned nodeBytes = 64;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    /** Node layout: [0] key, [8] left, [16] right, [24] color(1=red). */
    std::uint64_t keyRange() const;
    void treeOp(unsigned thread, bool insert_only);

    bool isRed(TraceBuilder &tb, Addr node);
    Addr rotateLeft(TraceBuilder &tb, Addr node);
    Addr rotateRight(TraceBuilder &tb, Addr node);
    void colorFlip(TraceBuilder &tb, Addr node);
    Addr fixUp(TraceBuilder &tb, Addr node);
    Addr moveRedLeft(TraceBuilder &tb, Addr node);
    Addr moveRedRight(TraceBuilder &tb, Addr node);
    Addr insertRec(TraceBuilder &tb, Addr node, std::uint64_t key,
                   Addr new_node, bool &used);
    Addr deleteMin(TraceBuilder &tb, Addr node,
                   std::vector<Addr> &freed);
    Addr deleteRec(TraceBuilder &tb, Addr node, std::uint64_t key,
                   std::vector<Addr> &freed);
    std::uint64_t minKey(TraceBuilder &tb, Addr node);
    bool contains(TraceBuilder &tb, Addr node, std::uint64_t key);

    std::vector<Addr> _roots;
    std::vector<Addr> _locks;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_RBTREE_WL_HH
