#include "registry.hh"

#include <sstream>

#include "sim/logging.hh"

namespace proteus {

const std::vector<WorkloadRegistration> &
workloadRegistry()
{
    static const std::vector<WorkloadRegistration> registry = {
        queueWorkloadRegistration(),
        hashMapWorkloadRegistration(),
        stringSwapWorkloadRegistration(),
        avlTreeWorkloadRegistration(),
        bTreeWorkloadRegistration(),
        rbTreeWorkloadRegistration(),
        linkedListWorkloadRegistration(),
        genWorkloadRegistration(),
    };
    return registry;
}

const WorkloadRegistration &
workloadInfo(WorkloadKind kind)
{
    for (const auto &reg : workloadRegistry()) {
        if (reg.kind == kind)
            return reg;
    }
    fatal("workloadInfo: unregistered workload kind ",
          static_cast<int>(kind));
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, PersistentHeap &heap, LogScheme scheme,
             const WorkloadParams &params, const WorkloadExtras &extras)
{
    return workloadInfo(kind).build(heap, scheme, params, extras);
}

const char *
toString(WorkloadKind kind)
{
    for (const auto &reg : workloadRegistry()) {
        if (reg.kind == kind)
            return reg.abbrev;
    }
    return "?";
}

WorkloadKind
parseWorkload(const std::string &name)
{
    for (const auto &reg : workloadRegistry()) {
        if (name == reg.abbrev || name == reg.cliName)
            return reg.kind;
    }
    std::ostringstream known;
    for (const auto &reg : workloadRegistry()) {
        if (known.tellp() > 0)
            known << ", ";
        known << reg.abbrev << "/" << reg.cliName;
    }
    fatal("unknown workload: ", name, " (known: ", known.str(), ")");
}

std::vector<WorkloadKind>
allPaperWorkloads()
{
    std::vector<WorkloadKind> kinds;
    for (const auto &reg : workloadRegistry()) {
        if (reg.paper)
            kinds.push_back(reg.kind);
    }
    return kinds;
}

} // namespace proteus
