#include "avltree_wl.hh"
#include "btree_wl.hh"
#include "hashmap_wl.hh"
#include "linkedlist_wl.hh"
#include "queue_wl.hh"
#include "rbtree_wl.hh"
#include "stringswap_wl.hh"
#include "workload.hh"

namespace proteus {

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, PersistentHeap &heap, LogScheme scheme,
             const WorkloadParams &params,
             const LinkedListOptions &ll_opts)
{
    switch (kind) {
      case WorkloadKind::Queue:
        return std::make_unique<QueueWorkload>(heap, scheme, params);
      case WorkloadKind::HashMap:
        return std::make_unique<HashMapWorkload>(heap, scheme, params);
      case WorkloadKind::StringSwap:
        return std::make_unique<StringSwapWorkload>(heap, scheme,
                                                    params);
      case WorkloadKind::AvlTree:
        return std::make_unique<AvlTreeWorkload>(heap, scheme, params);
      case WorkloadKind::BTree:
        return std::make_unique<BTreeWorkload>(heap, scheme, params);
      case WorkloadKind::RbTree:
        return std::make_unique<RbTreeWorkload>(heap, scheme, params);
      case WorkloadKind::LinkedList:
        return std::make_unique<LinkedListWorkload>(heap, scheme,
                                                    params, ll_opts);
    }
    return nullptr;
}

} // namespace proteus
