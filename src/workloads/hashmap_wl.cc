#include "hashmap_wl.hh"

#include "registry.hh"

#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

std::uint64_t
mixKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

} // namespace

HashMapWorkload::HashMapWorkload(PersistentHeap &heap, LogScheme scheme,
                                 const WorkloadParams &params)
    : Workload(heap, scheme, params)
{
}

void
HashMapWorkload::allocateStructures()
{
    for (unsigned m = 0; m < numMaps; ++m) {
        const Addr base =
            _heap.alloc(numBuckets * 8, blockSize);
        for (unsigned b = 0; b < numBuckets; ++b)
            _heap.write<std::uint64_t>(base + b * 8, 0);
        _buckets.push_back(base);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

Addr
HashMapWorkload::bucketAddr(unsigned m, std::uint64_t key) const
{
    return _buckets[m] + (mixKey(key) % numBuckets) * 8;
}

std::uint64_t
HashMapWorkload::randomKey(unsigned thread)
{
    // A modest key space keeps hits and misses both common.
    return rng(thread).nextBelow(initOps() * _params.threads * 2 + 16);
}

void
HashMapWorkload::insert(unsigned thread, unsigned m, std::uint64_t key,
                        std::uint64_t val)
{
    TraceBuilder &tb = builder(thread);
    const Addr bucket = bucketAddr(m, key);

    acquire(thread, _locks[m]);
    tb.beginTx();
    padPrologue(thread);
    padHash(thread);
    padAlloc(thread);

    // Chain walk: find the key if present.
    Value cur = tb.load(bucket, 8);
    Value found{};
    unsigned depth = 0;
    while (cur.v != 0) {
        const Value k = tb.load(cur.v + 0, 8, cur);
        tb.branch(site(0), k.v == key, k);
        if (k.v == key) {
            found = cur;
            break;
        }
        cur = tb.load(cur.v + 16, 8, cur);
        ++depth;
        tb.branch(site(1), cur.v != 0, cur);
    }

    if (found.v != 0) {
        // Update in place.
        tb.declareLogged(found.v, 16);
        tb.store(found.v + 8, 8, val, found);
    } else {
        // Insert at chain head: only the bucket word changes.
        const Addr node = allocNode(thread, nodeBytes);
        const Value old_head = tb.load(bucket, 8);
        tb.declareLogged(bucket, 8);
        tb.storeInit(node + 0, 8, key);
        tb.storeInit(node + 8, 8, val);
        tb.storeInit(node + 16, 8, old_head.v, old_head);
        for (unsigned off = 24; off < nodeBytes; off += 8)
            tb.storeInit(node + off, 8, 0); // padding init
        tb.store(bucket, 8, node);
    }

    tb.endTx();
    release(thread, _locks[m]);
}

void
HashMapWorkload::erase(unsigned thread, unsigned m, std::uint64_t key)
{
    TraceBuilder &tb = builder(thread);
    const Addr bucket = bucketAddr(m, key);

    acquire(thread, _locks[m]);
    tb.beginTx();
    padPrologue(thread);
    padHash(thread);

    Value prev{};   // zero: the bucket word itself
    Value cur = tb.load(bucket, 8);
    Addr victim = 0;
    std::uint64_t victim_next = 0;
    while (cur.v != 0) {
        const Value k = tb.load(cur.v + 0, 8, cur);
        tb.branch(site(2), k.v == key, k);
        if (k.v == key) {
            const Value next = tb.load(cur.v + 16, 8, cur);
            victim = cur.v;
            victim_next = next.v;
            break;
        }
        prev = cur;
        cur = tb.load(cur.v + 16, 8, cur);
        tb.branch(site(3), cur.v != 0, cur);
    }

    if (victim != 0) {
        if (prev.v != 0) {
            tb.declareLogged(prev.v + 16, 8);
            tb.store(prev.v + 16, 8, victim_next, prev);
        } else {
            tb.declareLogged(bucket, 8);
            tb.store(bucket, 8, victim_next);
        }
    }

    tb.endTx();
    release(thread, _locks[m]);
    if (victim != 0)
        freeNode(thread, victim, nodeBytes);
}

void
HashMapWorkload::doInitOp(unsigned thread)
{
    const std::uint64_t key = randomKey(thread);
    insert(thread, static_cast<unsigned>(mixKey(key * 31) % numMaps),
           key, key * 3 + 1);
}

void
HashMapWorkload::doOp(unsigned thread)
{
    Random &r = rng(thread);
    const std::uint64_t key = randomKey(thread);
    const unsigned m =
        static_cast<unsigned>(mixKey(key * 31) % numMaps);
    if (r.nextBool(0.5))
        insert(thread, m, key, key * 7 + 5);
    else
        erase(thread, m, key);
}

std::string
HashMapWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned m = 0; m < numMaps; ++m) {
        for (unsigned b = 0; b < numBuckets; ++b) {
            Addr node = image.read64(_buckets[m] + b * 8);
            if (node == 0)
                continue;
            os << "m" << m << "b" << b << ":";
            std::uint64_t walked = 0;
            while (node != 0 && walked < 1'000'000) {
                os << " (" << image.read64(node + 0) << ","
                   << image.read64(node + 8) << ")";
                node = image.read64(node + 16);
                ++walked;
            }
            os << "\n";
        }
    }
    return os.str();
}

std::string
HashMapWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned m = 0; m < numMaps; ++m) {
        for (unsigned b = 0; b < numBuckets; ++b) {
            Addr node = image.read64(_buckets[m] + b * 8);
            std::uint64_t walked = 0;
            while (node != 0) {
                const std::uint64_t key = image.read64(node);
                if (bucketAddr(m, key) != _buckets[m] + b * 8) {
                    err << "m" << m << "b" << b << ": key " << key
                        << " in the wrong bucket\n";
                    break;
                }
                node = image.read64(node + 16);
                if (++walked > 100000) {
                    err << "m" << m << "b" << b
                        << ": chain cycle suspected\n";
                    break;
                }
            }
        }
    }
    return err.str();
}


WorkloadRegistration
hashMapWorkloadRegistration()
{
    return {WorkloadKind::HashMap, "HM", "hashmap",
            "insert or delete entries in 16 chained hash maps (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<HashMapWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
