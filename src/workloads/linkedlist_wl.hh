/**
 * @file
 * LL: the Table 3 microbenchmark — variable-sized, large transactions
 * over a linked list. Each transaction updates every element of one
 * node (1024..8192 eight-byte elements), stressing the LogQ, LLT, and
 * LPQ with 20-156x more log entries per transaction.
 */

#ifndef PROTEUS_WORKLOADS_LINKEDLIST_WL_HH
#define PROTEUS_WORKLOADS_LINKEDLIST_WL_HH

#include "workload.hh"

namespace proteus {

/** Per-thread linked lists of nodes with large element arrays. */
class LinkedListWorkload : public Workload
{
  public:
    LinkedListWorkload(PersistentHeap &heap, LogScheme scheme,
                       const WorkloadParams &params,
                       const LinkedListOptions &opts);

    std::string name() const override { return "LL"; }
    std::uint64_t initOps() const override { return 0; }
    std::uint64_t simOps() const override
    {
        return std::max<std::uint64_t>(400 / _params.scale, 4);
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned nodesPerList = 16;

    unsigned elementsPerNode() const { return _elements; }

  protected:
    void allocateStructures() override;
    void doOp(unsigned thread) override;

  private:
    /** Node layout: [0] next, [8] version, [16..) elements. */
    std::uint64_t nodeBytes() const
    {
        return 16 + std::uint64_t{8} * _elements;
    }

    unsigned _elements;
    std::vector<Addr> _listHeads;       ///< per thread
    std::vector<Addr> _cursors;         ///< current node per thread
    std::vector<Addr> _locks;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_LINKEDLIST_WL_HH
