#include "stringswap_wl.hh"

#include "registry.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {

StringSwapWorkload::StringSwapWorkload(PersistentHeap &heap,
                                       LogScheme scheme,
                                       const WorkloadParams &params)
    : Workload(heap, scheme, params),
      _items(std::max<std::uint64_t>(262144 / params.initScale, 1024))
{
}

void
StringSwapWorkload::allocateStructures()
{
    _array = _heap.alloc(_items * stringBytes, blockSize);
    // Distinct initial contents so swaps are observable.
    for (std::uint64_t i = 0; i < _items; ++i) {
        for (unsigned w = 0; w < stringBytes / 8; ++w) {
            _heap.write<std::uint64_t>(_array + i * stringBytes + w * 8,
                                       i * 1000 + w);
        }
    }
    const std::uint64_t locks =
        (_items + stringsPerLock - 1) / stringsPerLock;
    for (std::uint64_t l = 0; l < locks; ++l)
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
}

void
StringSwapWorkload::swap(unsigned thread, std::uint64_t i,
                         std::uint64_t j)
{
    TraceBuilder &tb = builder(thread);
    const Addr a = stringAddr(i);
    const Addr b = stringAddr(j);

    // Segment locks in index order to avoid deadlock.
    const std::uint64_t seg_lo =
        std::min(i, j) / stringsPerLock;
    const std::uint64_t seg_hi =
        std::max(i, j) / stringsPerLock;
    acquire(thread, _locks[seg_lo]);
    if (seg_hi != seg_lo)
        acquire(thread, _locks[seg_hi]);

    tb.beginTx();
    padPrologue(thread);

    // Read both strings into registers.
    constexpr unsigned words = stringBytes / 8;
    std::uint64_t buf_a[words];
    std::uint64_t buf_b[words];
    Value va[words];
    Value vb[words];
    for (unsigned w = 0; w < words; ++w) {
        va[w] = tb.load(a + w * 8, 8);
        buf_a[w] = va[w].v;
    }
    for (unsigned w = 0; w < words; ++w) {
        vb[w] = tb.load(b + w * 8, 8);
        buf_b[w] = vb[w].v;
    }

    tb.declareLogged(a, stringBytes);
    tb.declareLogged(b, stringBytes);

    for (unsigned w = 0; w < words; ++w)
        tb.store(a + w * 8, 8, buf_b[w], vb[w]);
    for (unsigned w = 0; w < words; ++w)
        tb.store(b + w * 8, 8, buf_a[w], va[w]);

    tb.endTx();

    if (seg_hi != seg_lo)
        release(thread, _locks[seg_hi]);
    release(thread, _locks[seg_lo]);
}

void
StringSwapWorkload::doInitOp(unsigned thread)
{
    // Warm the array (and caches of the functional state) with swaps.
    doOp(thread);
}

void
StringSwapWorkload::doOp(unsigned thread)
{
    Random &r = rng(thread);
    const std::uint64_t i = r.nextBelow(_items);
    std::uint64_t j = r.nextBelow(_items);
    if (j == i)
        j = (j + 1) % _items;
    swap(thread, i, j);
}

std::string
StringSwapWorkload::serialize(const MemoryImage &image) const
{
    // The full array is large; serialize a deterministic sample plus a
    // whole-array checksum.
    std::ostringstream os;
    std::uint64_t checksum = 1469598103934665603ull;
    for (std::uint64_t i = 0; i < _items; ++i) {
        const std::uint64_t first =
            image.read64(_array + i * stringBytes);
        checksum = (checksum ^ first) * 1099511628211ull;
    }
    os << "checksum: " << checksum << "\n";
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(_items, 64);
         ++i) {
        os << i << ": " << image.read64(_array + i * stringBytes)
           << "\n";
    }
    return os.str();
}

std::string
StringSwapWorkload::checkInvariants(const MemoryImage &image) const
{
    // Swaps permute strings: every string must still be internally
    // consistent (word w == word 0 + w) and the multiset of first
    // words must be exactly {0, 1000, 2000, ...}.
    std::ostringstream err;
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < _items; ++i) {
        const Addr s = _array + i * stringBytes;
        const std::uint64_t first = image.read64(s);
        if (first % 1000 != 0) {
            err << "string " << i << ": torn first word " << first
                << "\n";
            continue;
        }
        sum += first / 1000;
        for (unsigned w = 1; w < stringBytes / 8; ++w) {
            if (image.read64(s + w * 8) != first + w) {
                err << "string " << i << ": torn at word " << w << "\n";
                break;
            }
        }
    }
    const std::uint64_t expect = (_items - 1) * _items / 2;
    if (sum != expect)
        err << "string id sum " << sum << " != expected " << expect
            << " (lost or duplicated strings)\n";
    return err.str();
}


WorkloadRegistration
stringSwapWorkloadRegistration()
{
    return {WorkloadKind::StringSwap, "SS", "stringswap",
            "swap 256-byte strings in a large string array (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<StringSwapWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
