#include "rbtree_wl.hh"

#include "registry.hh"

#include <functional>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

constexpr unsigned offKey = 0;
constexpr unsigned offLeft = 8;
constexpr unsigned offRight = 16;
constexpr unsigned offColor = 24;
constexpr std::uint64_t red = 1;
constexpr std::uint64_t black = 0;

} // namespace

RbTreeWorkload::RbTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                               const WorkloadParams &params)
    : Workload(heap, scheme, params)
{
}

void
RbTreeWorkload::allocateStructures()
{
    for (unsigned t = 0; t < numTrees; ++t) {
        const Addr root = _heap.alloc(blockSize, blockSize);
        _heap.write<std::uint64_t>(root, 0);
        _roots.push_back(root);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

std::uint64_t
RbTreeWorkload::keyRange() const
{
    return initOps() * _params.threads * 2 + 64;
}

bool
RbTreeWorkload::isRed(TraceBuilder &tb, Addr node)
{
    if (node == 0)
        return false;
    return tb.load(node + offColor, 8).v == red;
}

Addr
RbTreeWorkload::rotateLeft(TraceBuilder &tb, Addr h)
{
    const Value x = tb.load(h + offRight, 8);
    const Value xl = tb.load(x.v + offLeft, 8, x);
    const Value hc = tb.load(h + offColor, 8);
    tb.store(h + offRight, 8, xl.v, xl);
    tb.store(x.v + offLeft, 8, h, x);
    tb.store(x.v + offColor, 8, hc.v, hc);
    tb.store(h + offColor, 8, red);
    return x.v;
}

Addr
RbTreeWorkload::rotateRight(TraceBuilder &tb, Addr h)
{
    const Value x = tb.load(h + offLeft, 8);
    const Value xr = tb.load(x.v + offRight, 8, x);
    const Value hc = tb.load(h + offColor, 8);
    tb.store(h + offLeft, 8, xr.v, xr);
    tb.store(x.v + offRight, 8, h, x);
    tb.store(x.v + offColor, 8, hc.v, hc);
    tb.store(h + offColor, 8, red);
    return x.v;
}

void
RbTreeWorkload::colorFlip(TraceBuilder &tb, Addr h)
{
    const Value hc = tb.load(h + offColor, 8);
    const Value l = tb.load(h + offLeft, 8);
    const Value r = tb.load(h + offRight, 8);
    tb.store(h + offColor, 8, hc.v ^ 1, hc);
    if (l.v != 0) {
        const Value lc = tb.load(l.v + offColor, 8, l);
        tb.store(l.v + offColor, 8, lc.v ^ 1, lc);
    }
    if (r.v != 0) {
        const Value rc = tb.load(r.v + offColor, 8, r);
        tb.store(r.v + offColor, 8, rc.v ^ 1, rc);
    }
}

Addr
RbTreeWorkload::fixUp(TraceBuilder &tb, Addr h)
{
    const Value r = tb.load(h + offRight, 8);
    if (isRed(tb, r.v)) {
        const Value l = tb.load(h + offLeft, 8);
        if (!isRed(tb, l.v))
            h = rotateLeft(tb, h);
    }
    const Value l2 = tb.load(h + offLeft, 8);
    if (isRed(tb, l2.v) && l2.v != 0) {
        const Value ll = tb.load(l2.v + offLeft, 8, l2);
        if (isRed(tb, ll.v))
            h = rotateRight(tb, h);
    }
    const Value l3 = tb.load(h + offLeft, 8);
    const Value r3 = tb.load(h + offRight, 8);
    if (isRed(tb, l3.v) && isRed(tb, r3.v))
        colorFlip(tb, h);
    return h;
}

Addr
RbTreeWorkload::moveRedLeft(TraceBuilder &tb, Addr h)
{
    colorFlip(tb, h);
    const Value r = tb.load(h + offRight, 8);
    if (r.v != 0) {
        const Value rl = tb.load(r.v + offLeft, 8, r);
        if (isRed(tb, rl.v)) {
            tb.store(h + offRight, 8, rotateRight(tb, r.v));
            h = rotateLeft(tb, h);
            colorFlip(tb, h);
        }
    }
    return h;
}

Addr
RbTreeWorkload::moveRedRight(TraceBuilder &tb, Addr h)
{
    colorFlip(tb, h);
    const Value l = tb.load(h + offLeft, 8);
    if (l.v != 0) {
        const Value ll = tb.load(l.v + offLeft, 8, l);
        if (isRed(tb, ll.v)) {
            h = rotateRight(tb, h);
            colorFlip(tb, h);
        }
    }
    return h;
}

Addr
RbTreeWorkload::insertRec(TraceBuilder &tb, Addr h, std::uint64_t key,
                          Addr new_node, bool &used)
{
    if (h == 0) {
        used = true;
        tb.store(new_node + offKey, 8, key);
        tb.store(new_node + offLeft, 8, 0);
        tb.store(new_node + offRight, 8, 0);
        tb.store(new_node + offColor, 8, red);
        for (unsigned off = 32; off < nodeBytes; off += 8)
            tb.store(new_node + off, 8, 0); // padding init
        return new_node;
    }

    const Value k = tb.load(h + offKey, 8);
    tb.branch(site(0), key < k.v, k);
    if (key < k.v) {
        const Value l = tb.load(h + offLeft, 8);
        const Addr nl = insertRec(tb, l.v, key, new_node, used);
        if (nl != l.v)
            tb.store(h + offLeft, 8, nl);
    } else if (key > k.v) {
        const Value r = tb.load(h + offRight, 8);
        const Addr nr = insertRec(tb, r.v, key, new_node, used);
        if (nr != r.v)
            tb.store(h + offRight, 8, nr);
    }
    return fixUp(tb, h);
}

std::uint64_t
RbTreeWorkload::minKey(TraceBuilder &tb, Addr node)
{
    Value cur{node, noReg};
    Addr m = node;
    while (true) {
        const Value l = tb.load(m + offLeft, 8, cur);
        tb.branch(site(1), l.v != 0, l);
        if (l.v == 0)
            break;
        m = l.v;
        cur = l;
    }
    return tb.load(m + offKey, 8, cur).v;
}

Addr
RbTreeWorkload::deleteMin(TraceBuilder &tb, Addr h,
                          std::vector<Addr> &freed)
{
    const Value l = tb.load(h + offLeft, 8);
    if (l.v == 0) {
        freed.push_back(h);
        return 0;
    }
    if (!isRed(tb, l.v)) {
        const Value ll = tb.load(l.v + offLeft, 8, l);
        if (!isRed(tb, ll.v))
            h = moveRedLeft(tb, h);
    }
    const Value l2 = tb.load(h + offLeft, 8);
    const Addr nl = deleteMin(tb, l2.v, freed);
    if (nl != l2.v)
        tb.store(h + offLeft, 8, nl);
    return fixUp(tb, h);
}

Addr
RbTreeWorkload::deleteRec(TraceBuilder &tb, Addr h, std::uint64_t key,
                          std::vector<Addr> &freed)
{
    const Value k = tb.load(h + offKey, 8);
    tb.branch(site(2), key < k.v, k);
    if (key < k.v) {
        const Value l = tb.load(h + offLeft, 8);
        if (!isRed(tb, l.v) && l.v != 0) {
            const Value ll = tb.load(l.v + offLeft, 8, l);
            if (!isRed(tb, ll.v))
                h = moveRedLeft(tb, h);
        }
        const Value l2 = tb.load(h + offLeft, 8);
        const Addr nl = deleteRec(tb, l2.v, key, freed);
        if (nl != l2.v)
            tb.store(h + offLeft, 8, nl);
    } else {
        const Value l = tb.load(h + offLeft, 8);
        if (isRed(tb, l.v))
            h = rotateRight(tb, h);

        const Value k2 = tb.load(h + offKey, 8);
        const Value r2 = tb.load(h + offRight, 8);
        if (key == k2.v && r2.v == 0) {
            freed.push_back(h);
            return tb.load(h + offLeft, 8).v;
        }

        const Value r3 = tb.load(h + offRight, 8);
        if (r3.v != 0 && !isRed(tb, r3.v)) {
            const Value rl = tb.load(r3.v + offLeft, 8, r3);
            if (!isRed(tb, rl.v))
                h = moveRedRight(tb, h);
        }

        const Value k3 = tb.load(h + offKey, 8);
        const Value r4 = tb.load(h + offRight, 8);
        if (key == k3.v) {
            // Replace with the successor and delete it below.
            const std::uint64_t succ = minKey(tb, r4.v);
            tb.store(h + offKey, 8, succ);
            const Addr nr = deleteMin(tb, r4.v, freed);
            if (nr != r4.v)
                tb.store(h + offRight, 8, nr);
        } else {
            const Addr nr = deleteRec(tb, r4.v, key, freed);
            if (nr != r4.v)
                tb.store(h + offRight, 8, nr);
        }
    }
    return fixUp(tb, h);
}

bool
RbTreeWorkload::contains(TraceBuilder &tb, Addr node, std::uint64_t key)
{
    Value cur{node, noReg};
    Addr n = node;
    while (n != 0) {
        const Value k = tb.load(n + offKey, 8, cur);
        tb.branch(site(3), key < k.v, k);
        if (key == k.v)
            return true;
        const unsigned off = key < k.v ? offLeft : offRight;
        const Value next = tb.load(n + off, 8, cur);
        n = next.v;
        cur = next;
    }
    return false;
}

void
RbTreeWorkload::treeOp(unsigned thread, bool insert_only)
{
    TraceBuilder &tb = builder(thread);
    Random &r = rng(thread);
    const std::uint64_t key = r.nextBelow(keyRange());
    const unsigned t = static_cast<unsigned>(key % numTrees);
    const bool is_insert = insert_only || r.nextBool(0.5);
    const Addr root_ptr = _roots[t];

    const Addr new_node =
        is_insert ? allocNode(thread, nodeBytes) : 0;
    bool used = false;
    std::vector<Addr> freed;

    acquire(thread, _locks[t]);
    tb.beginTx();
    padPrologue(thread);
    if (is_insert)
        padAlloc(thread);
    else
        padFree(thread);

    auto mutate = [&]() {
        used = false;
        freed.clear();
        const Value root = tb.load(root_ptr, 8);
        Addr new_root = root.v;
        if (is_insert) {
            new_root = insertRec(tb, root.v, key, new_node, used);
        } else if (root.v != 0 && contains(tb, root.v, key)) {
            new_root = deleteRec(tb, root.v, key, freed);
        }
        if (new_root != root.v)
            tb.store(root_ptr, 8, new_root);
        if (new_root != 0) {
            const Value c = tb.load(new_root + offColor, 8);
            if (c.v != black)
                tb.store(new_root + offColor, 8, black, c);
        }
    };
    mutateWithConservativeLog(thread, mutate);

    tb.endTx();
    release(thread, _locks[t]);

    if (is_insert && !used)
        freeNode(thread, new_node, nodeBytes);
    for (Addr a : freed)
        freeNode(thread, a, nodeBytes);
}

void
RbTreeWorkload::doInitOp(unsigned thread)
{
    treeOp(thread, true);
}

void
RbTreeWorkload::doOp(unsigned thread)
{
    treeOp(thread, false);
}

std::string
RbTreeWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned t = 0; t < numTrees; ++t) {
        os << "t" << t << ":";
        std::function<void(Addr)> walk = [&](Addr node) {
            if (node == 0)
                return;
            walk(image.read64(node + offLeft));
            os << " " << image.read64(node + offKey);
            walk(image.read64(node + offRight));
        };
        walk(image.read64(_roots[t]));
        os << "\n";
    }
    return os.str();
}

std::string
RbTreeWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned t = 0; t < numTrees; ++t) {
        const Addr root = image.read64(_roots[t]);
        if (root != 0 && image.read64(root + offColor) == red) {
            err << "t" << t << ": red root\n";
            continue;
        }
        // Returns black height, or -1 on violation.
        std::function<std::int64_t(Addr, std::uint64_t, std::uint64_t)>
            check = [&](Addr node, std::uint64_t lo,
                        std::uint64_t hi) -> std::int64_t {
            if (node == 0)
                return 1;
            const std::uint64_t key = image.read64(node + offKey);
            if (key < lo || key >= hi) {
                err << "t" << t << ": BST violation at key " << key
                    << "\n";
                return -1;
            }
            const Addr left = image.read64(node + offLeft);
            const Addr right = image.read64(node + offRight);
            const bool node_red =
                image.read64(node + offColor) == red;
            const bool right_red =
                right != 0 && image.read64(right + offColor) == red;
            const bool left_red =
                left != 0 && image.read64(left + offColor) == red;
            if (right_red) {
                err << "t" << t << ": red right link at key " << key
                    << "\n";
                return -1;
            }
            if (node_red && left_red) {
                err << "t" << t << ": double red at key " << key
                    << "\n";
                return -1;
            }
            const std::int64_t bl = check(left, lo, key);
            const std::int64_t br = check(right, key + 1, hi);
            if (bl < 0 || br < 0)
                return -1;
            if (bl != br) {
                err << "t" << t << ": black height mismatch at key "
                    << key << "\n";
                return -1;
            }
            return bl + (node_red ? 0 : 1);
        };
        check(root, 0, std::numeric_limits<std::uint64_t>::max());
    }
    return err.str();
}


WorkloadRegistration
rbTreeWorkloadRegistration()
{
    return {WorkloadKind::RbTree, "RT", "rbtree",
            "insert or delete nodes in 16 red-black trees (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<RbTreeWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
