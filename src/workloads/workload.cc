#include "workload.hh"

#include "sim/logging.hh"

namespace proteus {

namespace {

std::uint32_t
siteBaseFor(const std::string &name)
{
    // Small stable hash so each workload's branch sites are distinct.
    std::uint32_t h = 2166136261u;
    for (char c : name)
        h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
    return (h % 4096u) * 4096u;
}

} // namespace

Workload::Workload(PersistentHeap &heap, LogScheme scheme,
                   const WorkloadParams &params)
    : _heap(heap), _scheme(scheme), _params(params), _siteBase(0)
{
    if (params.threads == 0 || params.threads > 32)
        fatal("Workload: thread count must be in [1, 32]");
    if (params.scale == 0 || params.initScale == 0)
        fatal("Workload: scale factors must be nonzero");
    for (unsigned t = 0; t < params.threads; ++t) {
        _builders.push_back(std::make_unique<TraceBuilder>(
            heap, scheme, static_cast<CoreId>(t)));
        _rngs.emplace_back(params.seed * 0x9e3779b9ull + t * 7919ull +
                           1);
        const Addr area = heap.allocLogArea(params.logAreaBytes);
        _builders.back()->setLogArea(area, area + params.logAreaBytes);
    }
    _freeLists.resize(params.threads);
}

void
Workload::setup()
{
    if (_setupDone)
        panic("Workload::setup called twice");
    _siteBase = siteBaseFor(name());
    allocateStructures();
    const std::uint64_t init = initOps();
    for (std::uint64_t i = 0; i < init; ++i) {
        for (unsigned t = 0; t < _params.threads; ++t)
            doInitOp(t);
    }
    _setupDone = true;
}

void
Workload::generateTraces()
{
    if (!_setupDone)
        panic("Workload::generateTraces before setup");
    for (auto &b : _builders)
        b->setRecording(true);
    const std::uint64_t ops = simOps();
    for (std::uint64_t i = 0; i < ops; ++i) {
        for (unsigned t = 0; t < _params.threads; ++t)
            doOp(t);
    }
    for (auto &b : _builders)
        b->setRecording(false);
}

void
Workload::replayOps(std::uint64_t ops_per_thread)
{
    if (!_setupDone)
        panic("Workload::replayOps before setup");
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        for (unsigned t = 0; t < _params.threads; ++t)
            doOp(t);
    }
}

Addr
Workload::allocNode(unsigned thread, std::size_t bytes)
{
    auto &bins = _freeLists[thread];
    auto it = bins.find(bytes);
    if (it != bins.end() && !it->second.empty()) {
        const Addr a = it->second.back();
        it->second.pop_back();
        return a;
    }
    return _heap.alloc(bytes, blockSize);
}

void
Workload::freeNode(unsigned thread, Addr addr, std::size_t bytes)
{
    _freeLists[thread][bytes].push_back(addr);
}

void
Workload::acquire(unsigned thread, Addr lock)
{
    TraceBuilder &b = builder(thread);
    if (b.recording())
        b.lockAcquire(lock, _lockTickets[lock]++);
}

void
Workload::release(unsigned thread, Addr lock)
{
    TraceBuilder &b = builder(thread);
    if (b.recording())
        b.lockRelease(lock);
}

void
Workload::mutateWithConservativeLog(
    unsigned thread, const std::function<void()> &mutate)
{
    TraceBuilder &tb = builder(thread);
    const bool conservative_sw =
        tb.recording() && (_scheme == LogScheme::PMEM ||
                           _scheme == LogScheme::PMEMPCommit);
    if (conservative_sw) {
        const auto touched = tb.collectTouched(mutate);
        for (Addr g : touched.readGranules) {
            if (PersistentHeap::isPersistent(g) &&
                !PersistentHeap::isLogArea(g)) {
                tb.declareLogged(g, logDataSize);
            }
        }
        for (Addr g : touched.writtenGranules) {
            if (PersistentHeap::isPersistent(g) &&
                !PersistentHeap::isLogArea(g)) {
                tb.declareLogged(g, logDataSize);
            }
        }
    }
    mutate();
}

// toString / parseWorkload / allPaperWorkloads live in factory.cc,
// implemented over the workload registry (registry.hh).

} // namespace proteus
