#include "queue_wl.hh"

#include "registry.hh"

#include <sstream>

#include "sim/logging.hh"

namespace proteus {

QueueWorkload::QueueWorkload(PersistentHeap &heap, LogScheme scheme,
                             const WorkloadParams &params)
    : Workload(heap, scheme, params)
{
}

void
QueueWorkload::allocateStructures()
{
    for (unsigned q = 0; q < numQueues; ++q) {
        const Addr hdr = _heap.alloc(blockSize, blockSize);
        _heap.write<std::uint64_t>(hdr + 0, 0);     // head
        _heap.write<std::uint64_t>(hdr + 8, 0);     // tail
        _heap.write<std::uint64_t>(hdr + 16, 0);    // count
        _headers.push_back(hdr);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

void
QueueWorkload::enqueue(unsigned thread, unsigned q, std::uint64_t value)
{
    TraceBuilder &tb = builder(thread);
    const Addr hdr = header(q);
    const Addr node = allocNode(thread, nodeBytes);

    acquire(thread, _locks[q]);
    tb.beginTx();
    padPrologue(thread);
    padAlloc(thread);

    const Value tail = tb.load(hdr + 8, 8);
    const Value count = tb.load(hdr + 16, 8);
    tb.branch(site(0), tail.v != 0, tail);

    // The header always changes; a nonempty queue also relinks the
    // current tail node.
    tb.declareLogged(hdr, 24);
    if (tail.v != 0)
        tb.declareLogged(tail.v + 8, 8);

    tb.storeInit(node + 0, 8, value);
    tb.storeInit(node + 8, 8, 0);
    for (unsigned off = 16; off < nodeBytes; off += 8)
        tb.storeInit(node + off, 8, 0);     // payload/padding init
    if (tail.v != 0) {
        tb.store(tail.v + 8, 8, node, tail);    // old tail -> node
    } else {
        tb.store(hdr + 0, 8, node);             // head = node
    }
    tb.store(hdr + 8, 8, node);                 // tail = node
    tb.store(hdr + 16, 8, count.v + 1, count);  // count++

    tb.endTx();
    release(thread, _locks[q]);
}

void
QueueWorkload::dequeue(unsigned thread, unsigned q)
{
    TraceBuilder &tb = builder(thread);
    const Addr hdr = header(q);

    acquire(thread, _locks[q]);
    tb.beginTx();
    padPrologue(thread);
    padFree(thread);

    const Value head = tb.load(hdr + 0, 8);
    tb.branch(site(1), head.v != 0, head);
    if (head.v == 0) {
        // Empty queue: the transaction commits with no updates.
        tb.endTx();
        release(thread, _locks[q]);
        return;
    }

    const Value next = tb.load(head.v + 8, 8, head);
    const Value count = tb.load(hdr + 16, 8);
    tb.branch(site(2), next.v != 0, next);

    tb.declareLogged(hdr, 24);
    tb.store(hdr + 0, 8, next.v, next);         // head = head->next
    if (next.v == 0)
        tb.store(hdr + 8, 8, 0);                // queue emptied
    tb.store(hdr + 16, 8, count.v - 1, count);  // count--

    tb.endTx();
    release(thread, _locks[q]);
    freeNode(thread, head.v, nodeBytes);
}

void
QueueWorkload::runOp(unsigned thread, bool init_only)
{
    Random &r = rng(thread);
    const unsigned q =
        static_cast<unsigned>(r.nextBelow(numQueues));
    const bool do_enqueue = init_only || r.nextBool(0.5);
    if (do_enqueue)
        enqueue(thread, q, _nextValue++);
    else
        dequeue(thread, q);
}

void
QueueWorkload::doInitOp(unsigned thread)
{
    runOp(thread, true);
}

void
QueueWorkload::doOp(unsigned thread)
{
    runOp(thread, false);
}

std::string
QueueWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned q = 0; q < numQueues; ++q) {
        os << "q" << q << ":";
        Addr node = image.read64(header(q) + 0);
        std::uint64_t walked = 0;
        while (node != 0 && walked < 10'000'000) {
            os << " " << image.read64(node + 0);
            node = image.read64(node + 8);
            ++walked;
        }
        os << "\n";
    }
    return os.str();
}

std::string
QueueWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned q = 0; q < numQueues; ++q) {
        const Addr hdr = header(q);
        const Addr head = image.read64(hdr + 0);
        const Addr tail = image.read64(hdr + 8);
        const std::uint64_t count = image.read64(hdr + 16);

        if ((head == 0) != (tail == 0)) {
            err << "q" << q << ": head/tail emptiness disagree\n";
            continue;
        }
        std::uint64_t walked = 0;
        Addr node = head;
        Addr last = 0;
        while (node != 0 && walked <= count + 1) {
            last = node;
            node = image.read64(node + 8);
            ++walked;
        }
        if (walked != count)
            err << "q" << q << ": count " << count << " but walked "
                << walked << "\n";
        if (head != 0 && last != tail)
            err << "q" << q << ": tail does not match last node\n";
    }
    return err.str();
}


WorkloadRegistration
queueWorkloadRegistration()
{
    return {WorkloadKind::Queue, "QE", "queue",
            "enqueue/dequeue in 8 shared linked-list queues (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<QueueWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
