/**
 * @file
 * BT: insert or delete nodes in 16 B-trees (Table 2). Minimum degree
 * t=2 (a 2-3-4 tree): one 64-byte node holds the count, up to three
 * keys, and four children — exactly one cache line, as Table 2
 * prescribes. Insert uses preemptive splits, delete uses preemptive
 * borrow/merge (CLRS).
 */

#ifndef PROTEUS_WORKLOADS_BTREE_WL_HH
#define PROTEUS_WORKLOADS_BTREE_WL_HH

#include "workload.hh"

namespace proteus {

/** Sixteen persistent 2-3-4 trees with per-tree locks. */
class BTreeWorkload : public Workload
{
  public:
    BTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                  const WorkloadParams &params);

    std::string name() const override { return "BT"; }
    std::uint64_t initOps() const override
    {
        return 100000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 10000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned numTrees = 16;
    static constexpr unsigned nodeBytes = 64;
    static constexpr unsigned maxKeys = 3;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    /** In-register image of one node during an operation. */
    struct Node
    {
        Addr a = 0;
        std::uint64_t count = 0;
        std::uint64_t keys[3] = {};
        Addr child[4] = {};
        bool leaf() const { return child[0] == 0; }
    };

    std::uint64_t keyRange() const;
    void treeOp(unsigned thread, bool insert_only);

    Node readNode(TraceBuilder &tb, Addr a, Value dep = {});
    void writeNode(TraceBuilder &tb, const Node &n);

    Addr poolTake();
    void splitChild(TraceBuilder &tb, Node &parent, unsigned i);
    bool insertNonFull(TraceBuilder &tb, Addr a, std::uint64_t key);
    void deleteRec(TraceBuilder &tb, Addr a, std::uint64_t key,
                   std::vector<Addr> &freed);
    void fillChild(TraceBuilder &tb, Node &parent, unsigned i,
                   std::vector<Addr> &freed);
    std::uint64_t maxKeyOf(TraceBuilder &tb, Addr a);
    std::uint64_t minKeyOf(TraceBuilder &tb, Addr a);

    std::vector<Addr> _roots;
    std::vector<Addr> _locks;

    /** Per-operation node pool (allocated before the mutation so the
     *  dry run and the recorded run use identical addresses). */
    std::vector<Addr> _pool;
    std::size_t _poolNext = 0;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_BTREE_WL_HH
