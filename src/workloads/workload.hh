/**
 * @file
 * Benchmark framework reproducing Table 2.
 *
 * A workload owns one TraceBuilder per simulated thread. setup() runs
 * the paper's InitOps functionally (no recording, the simulator's
 * fast-forward); generateTraces() then records SimOps per thread in a
 * fixed round-robin order, which both defines the functional
 * serialization and assigns lock tickets. Every doOp() call is exactly
 * one durable transaction.
 */

#ifndef PROTEUS_WORKLOADS_WORKLOAD_HH
#define PROTEUS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "heap/persistent_heap.hh"
#include "sim/config.hh"
#include "sim/random.hh"
#include "trace/trace_builder.hh"
#include "wlgen/spec.hh"

namespace proteus {

/** Parameters common to every benchmark. */
struct WorkloadParams
{
    unsigned threads = 4;
    /** Divide Table 2 *timed* operation counts (SimOps) by this to keep
     *  runs laptop-sized; 1 reproduces the paper. */
    unsigned scale = 20;
    /** Divide Table 2 population counts (InitOps, and the SS array) by
     *  this. Population is functional-only and cheap, so the default
     *  keeps the paper's full working-set sizes — that is what makes
     *  operations NVM-latency-bound, as in the paper. */
    unsigned initScale = 1;
    std::uint64_t seed = 1;
    /** Per-thread circular log area (VA logging, Section 4.1). */
    std::uint64_t logAreaBytes = 1ull << 20;
};

/** Base class for the Table 2 benchmarks. */
class Workload
{
  public:
    Workload(PersistentHeap &heap, LogScheme scheme,
             const WorkloadParams &params);
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Allocate structures and run InitOps functionally. */
    void setup();

    /** Record SimOps per thread (round-robin across threads). */
    void generateTraces();

    /**
     * Functionally execute the first @p ops recorded operations of
     * each thread in the same round-robin order (recovery replay on a
     * fresh instance). Must be called instead of generateTraces().
     */
    void replayOps(std::uint64_t ops_per_thread);

    unsigned threads() const { return _params.threads; }
    TraceBuilder &builder(unsigned t) { return *_builders[t]; }
    const Trace &trace(unsigned t) const
    {
        return _builders[t]->trace();
    }
    PersistentHeap &heap() { return _heap; }
    const WorkloadParams &params() const { return _params; }

    /** Table 2 abbreviation, e.g. "QE". */
    virtual std::string name() const = 0;

    /** Per-thread InitOps / SimOps after scaling. */
    virtual std::uint64_t initOps() const = 0;
    virtual std::uint64_t simOps() const = 0;

    /**
     * Canonical textual serialization of the persistent structures as
     * read from @p image — used to compare a recovered NVM image with
     * a functional replay.
     */
    virtual std::string serialize(const MemoryImage &image) const = 0;

    /**
     * Structural invariant check against @p image (tree balance, list
     * integrity, ...). @return empty string if consistent, else a
     * description of the violation.
     */
    virtual std::string checkInvariants(const MemoryImage &image)
        const = 0;

  protected:
    /** Allocate roots, locks, and initial contents (no recording). */
    virtual void allocateStructures() = 0;

    /** Populate during warmup; defaults to doOp. */
    virtual void doInitOp(unsigned thread) { doOp(thread); }

    /** Execute one operation (one durable transaction) on @p thread. */
    virtual void doOp(unsigned thread) = 0;

    /** Fair-ticket helper: acquire @p lock on @p thread's builder. */
    void acquire(unsigned thread, Addr lock);
    void release(unsigned thread, Addr lock);

    /**
     * Failure-safe node allocation (the paper assumes allocation needs
     * no undo logging): freed blocks quarantine on a per-thread free
     * list, so a block freed by an uncommitted transaction can never
     * be handed to another thread whose transaction might commit
     * first — the cross-thread reuse that would make one thread's undo
     * clobber another thread's committed data.
     */
    Addr allocNode(unsigned thread, std::size_t bytes);
    void freeNode(unsigned thread, Addr addr, std::size_t bytes);

    /**
     * Run @p mutate inside the already-open transaction. Under the
     * software schemes (recording), the mutation is first dry-run to
     * discover every granule it touches; all of them are conservatively
     * undo-logged (the paper's "logs all nodes that could be modified",
     * Section 5.2) before the recorded mutation executes. @p mutate
     * must be deterministic and must not allocate/free heap memory.
     */
    void mutateWithConservativeLog(unsigned thread,
                                   const std::function<void()> &mutate);

    Random &rng(unsigned thread) { return _rngs[thread]; }

    /// @name Runtime-cost model
    /// Real workloads spend most of an operation outside the persist
    /// path (lock fast path, allocation, hashing, call overhead).
    /// These helpers emit that work as pointer-chase loads + ALU ops;
    /// the magnitudes are calibrated so the Figure 6 PMEM+nolog
    /// speedup lands near the paper's 1.51x geomean.
    /// @{
    void padPrologue(unsigned t)
    {
        // Models the paper's per-operation harness work: reading the
        // op and key from an input file, dispatch, and the lock fast
        // path (Section 5.2).
        builder(t).workChaseCold(5);
        builder(t).workChase(60);
        builder(t).work(80);
    }
    void padAlloc(unsigned t)
    {
        builder(t).workChase(35);
        builder(t).work(40);
    }
    void padFree(unsigned t)
    {
        builder(t).workChase(18);
        builder(t).work(20);
    }
    void padHash(unsigned t) { builder(t).work(30); }
    /// @}

    /** Unique static branch-site id for predictor indexing. */
    std::uint32_t site(std::uint32_t local) const
    {
        return _siteBase + local;
    }

    PersistentHeap &_heap;
    LogScheme _scheme;
    WorkloadParams _params;

  private:
    std::vector<std::unique_ptr<TraceBuilder>> _builders;
    std::vector<Random> _rngs;
    std::vector<std::map<std::size_t, std::vector<Addr>>> _freeLists;
    std::map<Addr, std::uint64_t> _lockTickets;
    std::uint32_t _siteBase;
    bool _setupDone = false;
};

/** Known workloads, keyed by Table 2 abbreviation. */
enum class WorkloadKind
{
    Queue,      ///< QE
    HashMap,    ///< HM
    StringSwap, ///< SS
    AvlTree,    ///< AT
    BTree,      ///< BT
    RbTree,     ///< RT
    LinkedList, ///< Table 3 microbenchmark
    Generated,  ///< GEN: declarative synthetic workload (src/wlgen)
};

const char *toString(WorkloadKind kind);
WorkloadKind parseWorkload(const std::string &name);
std::vector<WorkloadKind> allPaperWorkloads();

/** Extra knobs for the Table 3 linked-list microbenchmark. */
struct LinkedListOptions
{
    unsigned elementsPerNode = 1024;
};

/** Workload-specific knobs beyond WorkloadParams; defaults are valid
 *  for every kind, so callers without special needs pass `{}`. */
struct WorkloadExtras
{
    LinkedListOptions ll;       ///< LinkedList only
    wlgen::GenSpec gen;         ///< Generated only
};

/** Build @p kind via the factory registry (see registry.hh); throws
 *  FatalError for an unregistered kind instead of returning null. */
std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, PersistentHeap &heap, LogScheme scheme,
             const WorkloadParams &params,
             const WorkloadExtras &extras = {});

} // namespace proteus

#endif // PROTEUS_WORKLOADS_WORKLOAD_HH
