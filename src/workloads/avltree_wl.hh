/**
 * @file
 * AT: insert or delete nodes in 16 AVL trees (Table 2).
 *
 * The rebalancing path makes conservative software undo logging
 * expensive (Section 6): the SW schemes log every node the operation
 * touches, discovered with TraceBuilder::collectTouched.
 */

#ifndef PROTEUS_WORKLOADS_AVLTREE_WL_HH
#define PROTEUS_WORKLOADS_AVLTREE_WL_HH

#include "workload.hh"

namespace proteus {

/** Sixteen persistent AVL trees with per-tree locks. */
class AvlTreeWorkload : public Workload
{
  public:
    AvlTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                    const WorkloadParams &params);

    std::string name() const override { return "AT"; }
    std::uint64_t initOps() const override
    {
        return 100000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 10000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned numTrees = 16;
    static constexpr unsigned nodeBytes = 64;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    /** Node layout: [0] key, [8] left, [16] right, [24] height. */
    std::uint64_t keyRange() const;
    void treeOp(unsigned thread, bool insert_only);

    Addr insertRec(TraceBuilder &tb, Addr node, std::uint64_t key,
                   Addr new_node, bool &used, Value dep);
    Addr deleteRec(TraceBuilder &tb, Addr node, std::uint64_t key,
                   std::vector<Addr> &freed, Value dep);
    Addr fixup(TraceBuilder &tb, Addr node);
    Addr rotateLeft(TraceBuilder &tb, Addr node);
    Addr rotateRight(TraceBuilder &tb, Addr node);
    void fixHeight(TraceBuilder &tb, Addr node);
    std::uint64_t heightOf(TraceBuilder &tb, Addr node, Value dep);

    std::vector<Addr> _roots;       ///< root-pointer blocks
    std::vector<Addr> _locks;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_AVLTREE_WL_HH
