#include "linkedlist_wl.hh"

#include "registry.hh"

#include <sstream>

#include "sim/logging.hh"

namespace proteus {

LinkedListWorkload::LinkedListWorkload(PersistentHeap &heap,
                                       LogScheme scheme,
                                       const WorkloadParams &params,
                                       const LinkedListOptions &opts)
    : Workload(heap, scheme, params), _elements(opts.elementsPerNode)
{
    if (_elements == 0)
        fatal("LinkedListWorkload: need at least one element per node");
}

void
LinkedListWorkload::allocateStructures()
{
    for (unsigned t = 0; t < _params.threads; ++t) {
        Addr head = 0;
        for (unsigned n = 0; n < nodesPerList; ++n) {
            const Addr node = _heap.alloc(nodeBytes(), blockSize);
            _heap.write<std::uint64_t>(node + 0, head);
            _heap.write<std::uint64_t>(node + 8, 0);   // version
            for (unsigned e = 0; e < _elements; ++e)
                _heap.write<std::uint64_t>(node + 16 + e * 8, e);
            head = node;
        }
        _listHeads.push_back(head);
        _cursors.push_back(head);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

void
LinkedListWorkload::doOp(unsigned thread)
{
    TraceBuilder &tb = builder(thread);

    // Advance the cursor (pointer chase), wrapping to the head.
    Addr node = _cursors[thread];
    acquire(thread, _locks[thread]);
    tb.beginTx();
    padPrologue(thread);

    const Value next = tb.load(node + 0, 8);
    tb.branch(site(0), next.v != 0, next);
    _cursors[thread] = next.v != 0 ? next.v : _listHeads[thread];

    const Value version = tb.load(node + 8, 8);
    const std::uint64_t new_version = version.v + 1;

    // The whole node is modified: one large transaction.
    tb.declareLogged(node, static_cast<unsigned>(nodeBytes()));
    tb.store(node + 8, 8, new_version, version);
    for (unsigned e = 0; e < _elements; ++e) {
        // Element value is a function of the version so torn updates
        // are detectable.
        tb.store(node + 16 + e * 8, 8, new_version * 1000 + e);
    }

    tb.endTx();
    release(thread, _locks[thread]);
}

std::string
LinkedListWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned t = 0; t < _params.threads; ++t) {
        os << "list" << t << ":";
        Addr node = _listHeads[t];
        unsigned walked = 0;
        while (node != 0 && walked <= nodesPerList) {
            os << " v" << image.read64(node + 8);
            node = image.read64(node + 0);
            ++walked;
        }
        os << "\n";
    }
    return os.str();
}

std::string
LinkedListWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned t = 0; t < _params.threads; ++t) {
        Addr node = _listHeads[t];
        unsigned idx = 0;
        while (node != 0 && idx <= nodesPerList) {
            const std::uint64_t version = image.read64(node + 8);
            for (unsigned e = 0; e < _elements; ++e) {
                const std::uint64_t v =
                    image.read64(node + 16 + e * 8);
                const std::uint64_t expect =
                    version == 0 ? e : version * 1000 + e;
                if (v != expect) {
                    err << "list" << t << " node" << idx
                        << ": torn element " << e << " (" << v
                        << " != " << expect << ")\n";
                    break;
                }
            }
            node = image.read64(node + 0);
            ++idx;
        }
    }
    return err.str();
}


WorkloadRegistration
linkedListWorkloadRegistration()
{
    return {WorkloadKind::LinkedList, "LL", "linkedlist",
            "Table 3 microbenchmark: large variable-sized transactions",
            "elementsPerNode (WorkloadExtras.ll; Table 3 bench sweeps it)", false,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &extras)
                -> std::unique_ptr<Workload> {
                return std::make_unique<LinkedListWorkload>(heap, scheme, params,
                                                          extras.ll);
            }};
}

} // namespace proteus
