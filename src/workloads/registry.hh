/**
 * @file
 * Workload factory registry.
 *
 * Each workload contributes one WorkloadRegistration — its kind, CLI
 * names, a one-line summary, its extra knobs, and a builder function —
 * via a plain registration function defined next to the workload
 * class. factory.cc aggregates those functions into the registry
 * explicitly (not via static initializers, which a static archive may
 * silently drop) and implements makeWorkload / toString /
 * parseWorkload / allPaperWorkloads on top of it.
 */

#ifndef PROTEUS_WORKLOADS_REGISTRY_HH
#define PROTEUS_WORKLOADS_REGISTRY_HH

#include "workload.hh"

namespace proteus {

using WorkloadBuilder = std::unique_ptr<Workload> (*)(
    PersistentHeap &, LogScheme, const WorkloadParams &,
    const WorkloadExtras &);

/** One factory entry; see `proteus-sim --list-workloads`. */
struct WorkloadRegistration
{
    WorkloadKind kind;
    const char *abbrev;     ///< Table 2 abbreviation, e.g. "QE"
    const char *cliName;    ///< long CLI spelling, e.g. "queue"
    const char *summary;    ///< one line for --list-workloads
    const char *knobs;      ///< extra knobs beyond WorkloadParams
    bool paper;             ///< member of allPaperWorkloads()
    WorkloadBuilder build;
};

/** Every registered workload, in listing order. */
const std::vector<WorkloadRegistration> &workloadRegistry();

/** Registry entry for @p kind; throws FatalError if unregistered. */
const WorkloadRegistration &workloadInfo(WorkloadKind kind);

/// @name Per-workload registration entries
/// Aggregated explicitly by factory.cc; defined in each workload's
/// translation unit so the entry lives next to the class it builds.
/// @{
WorkloadRegistration queueWorkloadRegistration();
WorkloadRegistration hashMapWorkloadRegistration();
WorkloadRegistration stringSwapWorkloadRegistration();
WorkloadRegistration avlTreeWorkloadRegistration();
WorkloadRegistration bTreeWorkloadRegistration();
WorkloadRegistration rbTreeWorkloadRegistration();
WorkloadRegistration linkedListWorkloadRegistration();
WorkloadRegistration genWorkloadRegistration();
/// @}

} // namespace proteus

#endif // PROTEUS_WORKLOADS_REGISTRY_HH
