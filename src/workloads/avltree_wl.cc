#include "avltree_wl.hh"

#include "registry.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "sim/logging.hh"

namespace proteus {

namespace {

constexpr unsigned offKey = 0;
constexpr unsigned offLeft = 8;
constexpr unsigned offRight = 16;
constexpr unsigned offHeight = 24;

} // namespace

AvlTreeWorkload::AvlTreeWorkload(PersistentHeap &heap, LogScheme scheme,
                                 const WorkloadParams &params)
    : Workload(heap, scheme, params)
{
}

void
AvlTreeWorkload::allocateStructures()
{
    for (unsigned t = 0; t < numTrees; ++t) {
        const Addr root = _heap.alloc(blockSize, blockSize);
        _heap.write<std::uint64_t>(root, 0);
        _roots.push_back(root);
        _locks.push_back(_heap.allocVolatile(blockSize, blockSize));
    }
}

std::uint64_t
AvlTreeWorkload::keyRange() const
{
    return initOps() * _params.threads * 2 + 64;
}

std::uint64_t
AvlTreeWorkload::heightOf(TraceBuilder &tb, Addr node, Value dep)
{
    if (node == 0)
        return 0;
    return tb.load(node + offHeight, 8, dep).v;
}

void
AvlTreeWorkload::fixHeight(TraceBuilder &tb, Addr node)
{
    const Value l = tb.load(node + offLeft, 8);
    const Value r = tb.load(node + offRight, 8);
    const std::uint64_t h =
        1 + std::max(heightOf(tb, l.v, l), heightOf(tb, r.v, r));
    tb.store(node + offHeight, 8, h);
}

Addr
AvlTreeWorkload::rotateRight(TraceBuilder &tb, Addr z)
{
    const Value y = tb.load(z + offLeft, 8);
    const Value t = tb.load(y.v + offRight, 8, y);
    tb.store(z + offLeft, 8, t.v, t);
    tb.store(y.v + offRight, 8, z, y);
    fixHeight(tb, z);
    fixHeight(tb, y.v);
    return y.v;
}

Addr
AvlTreeWorkload::rotateLeft(TraceBuilder &tb, Addr z)
{
    const Value y = tb.load(z + offRight, 8);
    const Value t = tb.load(y.v + offLeft, 8, y);
    tb.store(z + offRight, 8, t.v, t);
    tb.store(y.v + offLeft, 8, z, y);
    fixHeight(tb, z);
    fixHeight(tb, y.v);
    return y.v;
}

Addr
AvlTreeWorkload::fixup(TraceBuilder &tb, Addr node)
{
    fixHeight(tb, node);
    const Value l = tb.load(node + offLeft, 8);
    const Value r = tb.load(node + offRight, 8);
    const std::int64_t balance =
        static_cast<std::int64_t>(heightOf(tb, l.v, l)) -
        static_cast<std::int64_t>(heightOf(tb, r.v, r));
    tb.branch(site(10), balance > 1 || balance < -1);

    if (balance > 1) {
        const Value ll = tb.load(l.v + offLeft, 8, l);
        const Value lr = tb.load(l.v + offRight, 8, l);
        if (heightOf(tb, ll.v, ll) >= heightOf(tb, lr.v, lr))
            return rotateRight(tb, node);
        tb.store(node + offLeft, 8, rotateLeft(tb, l.v));
        return rotateRight(tb, node);
    }
    if (balance < -1) {
        const Value rl = tb.load(r.v + offLeft, 8, r);
        const Value rr = tb.load(r.v + offRight, 8, r);
        if (heightOf(tb, rr.v, rr) >= heightOf(tb, rl.v, rl))
            return rotateLeft(tb, node);
        tb.store(node + offRight, 8, rotateRight(tb, r.v));
        return rotateLeft(tb, node);
    }
    return node;
}

Addr
AvlTreeWorkload::insertRec(TraceBuilder &tb, Addr node,
                           std::uint64_t key, Addr new_node, bool &used,
                           Value dep)
{
    if (node == 0) {
        used = true;
        tb.store(new_node + offKey, 8, key);
        tb.store(new_node + offLeft, 8, 0);
        tb.store(new_node + offRight, 8, 0);
        tb.store(new_node + offHeight, 8, 1);
        for (unsigned off = 32; off < nodeBytes; off += 8)
            tb.store(new_node + off, 8, 0); // padding init
        return new_node;
    }

    const Value k = tb.load(node + offKey, 8, dep);
    tb.branch(site(0), key < k.v, k);
    if (key == k.v)
        return node;    // already present

    if (key < k.v) {
        const Value l = tb.load(node + offLeft, 8, dep);
        const Addr nl = insertRec(tb, l.v, key, new_node, used, l);
        if (nl != l.v)
            tb.store(node + offLeft, 8, nl);
    } else {
        const Value r = tb.load(node + offRight, 8, dep);
        const Addr nr = insertRec(tb, r.v, key, new_node, used, r);
        if (nr != r.v)
            tb.store(node + offRight, 8, nr);
    }
    return fixup(tb, node);
}

Addr
AvlTreeWorkload::deleteRec(TraceBuilder &tb, Addr node,
                           std::uint64_t key, std::vector<Addr> &freed,
                           Value dep)
{
    if (node == 0)
        return 0;

    const Value k = tb.load(node + offKey, 8, dep);
    tb.branch(site(1), key < k.v, k);

    if (key < k.v) {
        const Value l = tb.load(node + offLeft, 8, dep);
        const Addr nl = deleteRec(tb, l.v, key, freed, l);
        if (nl != l.v)
            tb.store(node + offLeft, 8, nl);
    } else if (key > k.v) {
        const Value r = tb.load(node + offRight, 8, dep);
        const Addr nr = deleteRec(tb, r.v, key, freed, r);
        if (nr != r.v)
            tb.store(node + offRight, 8, nr);
    } else {
        const Value l = tb.load(node + offLeft, 8, dep);
        const Value r = tb.load(node + offRight, 8, dep);
        if (l.v == 0 || r.v == 0) {
            freed.push_back(node);
            return l.v != 0 ? l.v : r.v;
        }
        // Two children: replace the key with the successor's, then
        // delete the successor from the right subtree.
        Addr succ = r.v;
        Value cur = r;
        while (true) {
            const Value sl = tb.load(succ + offLeft, 8, cur);
            tb.branch(site(2), sl.v != 0, sl);
            if (sl.v == 0)
                break;
            succ = sl.v;
            cur = sl;
        }
        const Value sk = tb.load(succ + offKey, 8, cur);
        tb.store(node + offKey, 8, sk.v, sk);
        const Addr nr = deleteRec(tb, r.v, sk.v, freed, r);
        if (nr != r.v)
            tb.store(node + offRight, 8, nr);
    }
    return fixup(tb, node);
}

void
AvlTreeWorkload::treeOp(unsigned thread, bool insert_only)
{
    TraceBuilder &tb = builder(thread);
    Random &r = rng(thread);
    const std::uint64_t key = r.nextBelow(keyRange());
    const unsigned t = static_cast<unsigned>(key % numTrees);
    const bool is_insert = insert_only || r.nextBool(0.5);
    const Addr root_ptr = _roots[t];

    // Allocation happens outside the mutation so the dry-run and the
    // recorded run use the same addresses.
    const Addr new_node =
        is_insert ? allocNode(thread, nodeBytes) : 0;
    bool used = false;
    std::vector<Addr> freed;

    acquire(thread, _locks[t]);
    tb.beginTx();
    padPrologue(thread);
    if (is_insert)
        padAlloc(thread);
    else
        padFree(thread);

    auto mutate = [&]() {
        used = false;
        freed.clear();
        const Value root = tb.load(root_ptr, 8);
        Addr new_root;
        if (is_insert) {
            new_root =
                insertRec(tb, root.v, key, new_node, used, root);
        } else {
            new_root = deleteRec(tb, root.v, key, freed, root);
        }
        if (new_root != root.v)
            tb.store(root_ptr, 8, new_root);
    };
    mutateWithConservativeLog(thread, mutate);

    tb.endTx();
    release(thread, _locks[t]);

    if (is_insert && !used)
        freeNode(thread, new_node, nodeBytes);
    for (Addr a : freed)
        freeNode(thread, a, nodeBytes);
}

void
AvlTreeWorkload::doInitOp(unsigned thread)
{
    treeOp(thread, true);
}

void
AvlTreeWorkload::doOp(unsigned thread)
{
    treeOp(thread, false);
}

std::string
AvlTreeWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned t = 0; t < numTrees; ++t) {
        os << "t" << t << ":";
        std::function<void(Addr)> walk = [&](Addr node) {
            if (node == 0)
                return;
            walk(image.read64(node + offLeft));
            os << " " << image.read64(node + offKey);
            walk(image.read64(node + offRight));
        };
        walk(image.read64(_roots[t]));
        os << "\n";
    }
    return os.str();
}

std::string
AvlTreeWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned t = 0; t < numTrees; ++t) {
        // Returns subtree height, or -1 on violation.
        std::function<std::int64_t(Addr, std::uint64_t, std::uint64_t)>
            check = [&](Addr node, std::uint64_t lo,
                        std::uint64_t hi) -> std::int64_t {
            if (node == 0)
                return 0;
            const std::uint64_t key = image.read64(node + offKey);
            if (key < lo || key >= hi) {
                err << "t" << t << ": BST violation at key " << key
                    << "\n";
                return -1;
            }
            const std::int64_t hl =
                check(image.read64(node + offLeft), lo, key);
            const std::int64_t hr =
                check(image.read64(node + offRight), key + 1, hi);
            if (hl < 0 || hr < 0)
                return -1;
            const std::int64_t h = 1 + std::max(hl, hr);
            if (static_cast<std::int64_t>(
                    image.read64(node + offHeight)) != h) {
                err << "t" << t << ": stale height at key " << key
                    << "\n";
                return -1;
            }
            if (hl - hr > 1 || hr - hl > 1) {
                err << "t" << t << ": imbalance at key " << key << "\n";
                return -1;
            }
            return h;
        };
        check(image.read64(_roots[t]), 0,
              std::numeric_limits<std::uint64_t>::max());
    }
    return err.str();
}


WorkloadRegistration
avlTreeWorkloadRegistration()
{
    return {WorkloadKind::AvlTree, "AT", "avltree",
            "insert or delete nodes in 16 AVL trees (Table 2)",
            "", true,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &)
                -> std::unique_ptr<Workload> {
                return std::make_unique<AvlTreeWorkload>(heap, scheme, params);
            }};
}

} // namespace proteus
