/**
 * @file
 * HM: insert or delete entries in 16 chained hash maps (Table 2).
 */

#ifndef PROTEUS_WORKLOADS_HASHMAP_WL_HH
#define PROTEUS_WORKLOADS_HASHMAP_WL_HH

#include "workload.hh"

namespace proteus {

/** Sixteen persistent chained hash maps with per-map locks. */
class HashMapWorkload : public Workload
{
  public:
    HashMapWorkload(PersistentHeap &heap, LogScheme scheme,
                    const WorkloadParams &params);

    std::string name() const override { return "HM"; }
    std::uint64_t initOps() const override
    {
        return 100000 / _params.initScale;
    }
    std::uint64_t simOps() const override
    {
        return 20000 / _params.scale;
    }
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    static constexpr unsigned numMaps = 16;
    static constexpr unsigned numBuckets = 1024;    ///< per map
    static constexpr unsigned nodeBytes = 64;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    Addr bucketAddr(unsigned m, std::uint64_t key) const;
    void insert(unsigned thread, unsigned m, std::uint64_t key,
                std::uint64_t val);
    void erase(unsigned thread, unsigned m, std::uint64_t key);
    std::uint64_t randomKey(unsigned thread);

    std::vector<Addr> _buckets;     ///< per-map bucket array base
    std::vector<Addr> _locks;
};

} // namespace proteus

#endif // PROTEUS_WORKLOADS_HASHMAP_WL_HH
