/**
 * @file
 * GEN: the generated workload — a persistent open-addressing KV store
 * driven by a declarative GenSpec (op mix, key distribution, keys per
 * transaction, value size).
 *
 * Layout: `tables` independent hash tables, each an array of 8-slot
 * bucket groups sized for ~50% max load. A slot is
 * 32 bytes of header (key, state, generation, pad) plus the value.
 * Keys probe only within their home group (bounded probe, tombstone
 * deletes), so every transaction touches a statically bounded set of
 * cache lines and the lock set is computable before the transaction
 * opens — multi-key transactions acquire their deduplicated group
 * locks in sorted address order.
 *
 * Values are a deterministic function of (key, generation), which is
 * what lets checkInvariants() verify every committed byte and the
 * crash oracle compare images byte-exactly.
 */

#ifndef PROTEUS_WLGEN_GEN_WORKLOAD_HH
#define PROTEUS_WLGEN_GEN_WORKLOAD_HH

#include "keydist.hh"
#include "workloads/workload.hh"

namespace proteus {
namespace wlgen {

/** Synthetic KV transactions over a persistent open-addressing store. */
class GenWorkload : public Workload
{
  public:
    GenWorkload(PersistentHeap &heap, LogScheme scheme,
                const WorkloadParams &params, const GenSpec &spec);

    std::string name() const override { return "GEN"; }
    std::uint64_t initOps() const override;
    std::uint64_t simOps() const override;
    std::string serialize(const MemoryImage &image) const override;
    std::string checkInvariants(const MemoryImage &image) const override;

    const GenSpec &spec() const { return _spec; }

    static constexpr unsigned slotsPerGroup = 8;
    static constexpr unsigned slotHeaderBytes = 32;
    /** Slot states (the +8 header word). */
    static constexpr std::uint64_t stEmpty = 0;
    static constexpr std::uint64_t stOccupied = 1;
    static constexpr std::uint64_t stTombstone = 2;

    /** Deterministic value pattern: word @p w of (key, generation). */
    static std::uint64_t valueWord(std::uint64_t key, std::uint64_t gen,
                                   unsigned w);

    /** Keys populated by setup(): keySpace * populatePct / 100. */
    std::uint64_t popKeys() const;

  protected:
    void allocateStructures() override;
    void doInitOp(unsigned thread) override;
    void doOp(unsigned thread) override;

  private:
    enum class Op { Read, Update, Insert, Delete, Rmw };

    /** Outcome of a bounded in-group probe (all loads recorded). */
    struct Probe
    {
        Addr slot = 0;      ///< occupied slot holding the key, or 0
        Addr freeSlot = 0;  ///< first tombstone/empty on the path, or 0
        Value dep{};        ///< last load on the hit path
    };

    unsigned tableOf(std::uint64_t key) const;
    std::uint64_t groupOf(std::uint64_t key) const;
    unsigned homeOf(std::uint64_t key) const;
    Addr groupBase(unsigned table, std::uint64_t group) const;
    Addr lockFor(std::uint64_t key) const;

    /** Undo-declare @p key's whole bucket group (before any store). */
    void declareGroup(unsigned thread, std::uint64_t key);
    Probe probe(unsigned thread, std::uint64_t key);
    void opRead(unsigned thread, std::uint64_t key);
    void opUpdate(unsigned thread, std::uint64_t key, bool rmw);
    void opInsert(unsigned thread, std::uint64_t key);
    void opDelete(unsigned thread, std::uint64_t key);
    void dispatch(unsigned thread, Op op, std::uint64_t key);

    GenSpec _spec;
    std::unique_ptr<KeyGenerator> _dist;
    std::uint64_t _groups = 0;      ///< bucket groups per table
    std::uint64_t _stripes = 0;     ///< lock stripes per table
    unsigned _slotBytes = 0;
    unsigned _valueWords = 0;
    std::vector<Addr> _tables;              ///< slot-array base per table
    std::vector<std::vector<Addr>> _locks;  ///< [table][stripe]
    std::vector<std::uint64_t> _initCounter;
};

} // namespace wlgen
} // namespace proteus

#endif // PROTEUS_WLGEN_GEN_WORKLOAD_HH
