#include "spec.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/logging.hh"

namespace proteus {
namespace wlgen {

namespace {

constexpr char knownKeys[] =
    "read, update, insert, delete, rmw, keys, vsize, tables, keyspace, "
    "populate, ops, dist, theta, hot-frac, hot-ops";

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const unsigned long long v = std::stoull(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("wl-spec: ", key, "=", value, " is not a number");
    }
}

unsigned
parseU32(const std::string &key, const std::string &value)
{
    const std::uint64_t v = parseU64(key, value);
    if (v > 0xffffffffull)
        fatal("wl-spec: ", key, "=", value, " is out of range");
    return static_cast<unsigned>(v);
}

/** Parse a fraction and quantize to 1e-4 so equality, hashing, and the
 *  canonical string agree no matter how the value was spelled. */
double
parseFrac(const std::string &key, const std::string &value)
{
    double v = 0;
    try {
        std::size_t used = 0;
        v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
    } catch (const std::exception &) {
        fatal("wl-spec: ", key, "=", value, " is not a number");
    }
    if (!(v >= 0.0 && v <= 1.0))
        fatal("wl-spec: ", key, "=", value, " must be in [0, 1]");
    return std::round(v * 10000.0) / 10000.0;
}

std::string
fmtFrac(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    std::string s(buf);
    while (s.size() > 1 && s.back() == '0')
        s.pop_back();
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s;
}

void
applyKeyValue(GenSpec &spec, const std::string &key,
              const std::string &value)
{
    if (key == "read") {
        spec.readPct = parseU32(key, value);
    } else if (key == "update") {
        spec.updatePct = parseU32(key, value);
    } else if (key == "insert") {
        spec.insertPct = parseU32(key, value);
    } else if (key == "delete") {
        spec.deletePct = parseU32(key, value);
    } else if (key == "rmw") {
        spec.rmwPct = parseU32(key, value);
    } else if (key == "keys") {
        // "N" or "N-M", inclusive.
        const std::size_t dash = value.find('-');
        if (dash == std::string::npos) {
            spec.keysMin = spec.keysMax = parseU32(key, value);
        } else {
            spec.keysMin = parseU32(key, value.substr(0, dash));
            spec.keysMax = parseU32(key, value.substr(dash + 1));
        }
    } else if (key == "vsize") {
        spec.valueBytes = parseU32(key, value);
    } else if (key == "tables") {
        spec.tables = parseU32(key, value);
    } else if (key == "keyspace") {
        spec.keySpace = parseU64(key, value);
    } else if (key == "populate") {
        spec.populatePct = parseU32(key, value);
    } else if (key == "ops") {
        spec.baseOps = parseU64(key, value);
    } else if (key == "dist") {
        spec.dist = parseKeyDist(value);
    } else if (key == "theta") {
        spec.theta = parseFrac(key, value);
    } else if (key == "hot-frac") {
        spec.hotFrac = parseFrac(key, value);
    } else if (key == "hot-ops") {
        spec.hotOpFrac = parseFrac(key, value);
    } else {
        fatal("wl-spec: unknown key '", key, "' (known: ", knownKeys,
              ")");
    }
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

const char *
toString(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform: return "uniform";
      case KeyDist::Zipfian: return "zipf";
      case KeyDist::HotSet:  return "hot";
    }
    return "?";
}

KeyDist
parseKeyDist(const std::string &name)
{
    if (name == "uniform")
        return KeyDist::Uniform;
    if (name == "zipf" || name == "zipfian")
        return KeyDist::Zipfian;
    if (name == "hot" || name == "hotset")
        return KeyDist::HotSet;
    fatal("wl-spec: unknown dist '", name,
          "' (uniform | zipf | hot)");
}

GenSpec
GenSpec::parse(const std::string &kvs, const GenSpec &base)
{
    GenSpec spec = base;
    std::stringstream ss(kvs);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = trim(item);
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("wl-spec: '", item, "' is not key=value");
        applyKeyValue(spec, trim(item.substr(0, eq)),
                      trim(item.substr(eq + 1)));
    }
    spec.validate();
    return spec;
}

GenSpec
GenSpec::parse(const std::string &kvs)
{
    return parse(kvs, GenSpec());
}

GenSpec
GenSpec::parseFile(const std::string &path, const GenSpec &base)
{
    std::ifstream in(path);
    if (!in)
        fatal("wl-spec: cannot open spec file ", path);
    GenSpec spec = base;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash_at = line.find('#');
        if (hash_at != std::string::npos)
            line = line.substr(0, hash_at);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("wl-spec: ", path, ": '", line, "' is not key = value");
        applyKeyValue(spec, trim(line.substr(0, eq)),
                      trim(line.substr(eq + 1)));
    }
    spec.validate();
    return spec;
}

GenSpec
GenSpec::parseFile(const std::string &path)
{
    return parseFile(path, GenSpec());
}

std::string
GenSpec::canonical() const
{
    std::ostringstream os;
    os << "read=" << readPct << ",update=" << updatePct << ",insert="
       << insertPct << ",delete=" << deletePct << ",rmw=" << rmwPct
       << ",keys=" << keysMin;
    if (keysMax != keysMin)
        os << "-" << keysMax;
    os << ",vsize=" << valueBytes << ",tables=" << tables
       << ",keyspace=" << keySpace << ",populate=" << populatePct
       << ",ops=" << baseOps << ",dist=" << toString(dist);
    if (dist == KeyDist::Zipfian)
        os << ",theta=" << fmtFrac(theta);
    if (dist == KeyDist::HotSet) {
        os << ",hot-frac=" << fmtFrac(hotFrac) << ",hot-ops="
           << fmtFrac(hotOpFrac);
    }
    return os.str();
}

void
GenSpec::validate() const
{
    const unsigned mix =
        readPct + updatePct + insertPct + deletePct + rmwPct;
    if (mix != 100) {
        fatal("wl-spec: op mix read+update+insert+delete+rmw must sum "
              "to 100 (got ", mix, ")");
    }
    if (keysMin == 0 || keysMax < keysMin || keysMax > 64) {
        fatal("wl-spec: keys range must satisfy 1 <= min <= max <= 64 "
              "(got ", keysMin, "-", keysMax, ")");
    }
    if (valueBytes == 0 || valueBytes % 8 != 0 || valueBytes > 4096) {
        fatal("wl-spec: vsize must be a multiple of 8 in [8, 4096] "
              "(got ", valueBytes, ")");
    }
    if (tables == 0 || tables > 64)
        fatal("wl-spec: tables must be in [1, 64] (got ", tables, ")");
    if (keySpace < 16 || keySpace > 100'000'000ull) {
        fatal("wl-spec: keyspace must be in [16, 1e8] (got ", keySpace,
              ")");
    }
    if (populatePct > 100)
        fatal("wl-spec: populate must be in [0, 100] (got ",
              populatePct, ")");
    if (baseOps == 0)
        fatal("wl-spec: ops must be nonzero");
    if (dist == KeyDist::Zipfian && !(theta >= 0.0 && theta < 1.0))
        fatal("wl-spec: theta must be in [0, 1) (got ", theta, ")");
    if (dist == KeyDist::HotSet) {
        if (!(hotFrac > 0.0 && hotFrac <= 1.0))
            fatal("wl-spec: hot-frac must be in (0, 1] (got ", hotFrac,
                  ")");
        if (!(hotOpFrac >= 0.0 && hotOpFrac <= 1.0))
            fatal("wl-spec: hot-ops must be in [0, 1] (got ", hotOpFrac,
                  ")");
    }
}

bool
GenSpec::operator==(const GenSpec &o) const
{
    // Fractions are quantized at parse time, so exact compare is sound.
    return readPct == o.readPct && updatePct == o.updatePct &&
           insertPct == o.insertPct && deletePct == o.deletePct &&
           rmwPct == o.rmwPct && keysMin == o.keysMin &&
           keysMax == o.keysMax && valueBytes == o.valueBytes &&
           tables == o.tables && keySpace == o.keySpace &&
           populatePct == o.populatePct && baseOps == o.baseOps &&
           dist == o.dist &&
           (dist != KeyDist::Zipfian || theta == o.theta) &&
           (dist != KeyDist::HotSet ||
            (hotFrac == o.hotFrac && hotOpFrac == o.hotOpFrac));
}

std::uint64_t
GenSpec::hash() const
{
    // The canonical string already encodes exactly the fields equality
    // compares (distribution-specific knobs only), so hash that.
    const std::string s = canonical();
    std::uint64_t h = 1469598103934665603ull;    // FNV-1a 64
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace wlgen
} // namespace proteus
