#include "keydist.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace proteus {
namespace wlgen {

UniformGenerator::UniformGenerator(std::uint64_t n) : KeyGenerator(n)
{
    if (n == 0)
        fatal("UniformGenerator: empty key space");
}

std::uint64_t
UniformGenerator::nextRank(Random &rng) const
{
    return rng.nextBelow(_n);
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : KeyGenerator(n), _theta(theta)
{
    if (n < 2)
        fatal("ZipfianGenerator: key space must hold at least 2 keys");
    if (!(theta >= 0.0 && theta < 1.0))
        fatal("ZipfianGenerator: theta must be in [0, 1)");

    _zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        _zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    _alpha = 1.0 / (1.0 - theta);
    _eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / _zetan);
}

std::uint64_t
ZipfianGenerator::nextRank(Random &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * _zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, _theta))
        return 1;
    const double span = static_cast<double>(_n);
    const auto rank = static_cast<std::uint64_t>(
        span * std::pow(_eta * u - _eta + 1.0, _alpha));
    return std::min(rank, _n - 1);
}

double
ZipfianGenerator::mass(std::uint64_t rank) const
{
    return 1.0 /
           std::pow(static_cast<double>(rank + 1), _theta) / _zetan;
}

HotSetGenerator::HotSetGenerator(std::uint64_t n, double hot_frac,
                                 double hot_ops)
    : KeyGenerator(n), _hotOpFrac(hot_ops)
{
    if (n == 0)
        fatal("HotSetGenerator: empty key space");
    if (!(hot_frac > 0.0 && hot_frac <= 1.0))
        fatal("HotSetGenerator: hot fraction must be in (0, 1]");
    const auto hot = static_cast<std::uint64_t>(
        static_cast<double>(n) * hot_frac);
    _hotKeys = std::clamp<std::uint64_t>(hot, 1, n);
}

std::uint64_t
HotSetGenerator::nextRank(Random &rng) const
{
    // Always consume exactly two draws so sibling keys in one
    // transaction stay aligned regardless of which region is hit.
    const bool hot = rng.nextDouble() < _hotOpFrac;
    if (hot || _hotKeys == _n)
        return rng.nextBelow(_hotKeys);
    return _hotKeys + rng.nextBelow(_n - _hotKeys);
}

std::unique_ptr<KeyGenerator>
makeKeyGenerator(const GenSpec &spec)
{
    switch (spec.dist) {
      case KeyDist::Uniform:
        return std::make_unique<UniformGenerator>(spec.keySpace);
      case KeyDist::Zipfian:
        return std::make_unique<ZipfianGenerator>(spec.keySpace,
                                                  spec.theta);
      case KeyDist::HotSet:
        return std::make_unique<HotSetGenerator>(
            spec.keySpace, spec.hotFrac, spec.hotOpFrac);
    }
    fatal("makeKeyGenerator: unknown distribution");
}

} // namespace wlgen
} // namespace proteus
