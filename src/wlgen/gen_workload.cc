#include "gen_workload.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "workloads/registry.hh"

namespace proteus {
namespace wlgen {

namespace {

/** Full murmur3 fmix64. */
std::uint64_t
mix(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ull;
    key ^= key >> 33;
    return key;
}

constexpr std::uint64_t groupSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t homeSalt = 0xc2b2ae3d27d4eb4full;

} // namespace

GenWorkload::GenWorkload(PersistentHeap &heap, LogScheme scheme,
                         const WorkloadParams &params,
                         const GenSpec &spec)
    : Workload(heap, scheme, params), _spec(spec)
{
    _spec.validate();
    _dist = makeKeyGenerator(_spec);

    // Size each table for ~50% max load even if every key of its
    // share of the key space were inserted.
    const std::uint64_t keys_per_table =
        _spec.keySpace / _spec.tables + 1;
    _groups = std::max<std::uint64_t>(
        1, (keys_per_table * 2 + slotsPerGroup - 1) / slotsPerGroup);
    _stripes = std::min<std::uint64_t>(_groups, 4096);
    _slotBytes = slotHeaderBytes + _spec.valueBytes;
    _valueWords = _spec.valueBytes / 8;
    _initCounter.assign(params.threads, 0);
}

std::uint64_t
GenWorkload::popKeys() const
{
    return _spec.keySpace * _spec.populatePct / 100;
}

std::uint64_t
GenWorkload::initOps() const
{
    const std::uint64_t keys = popKeys();
    if (keys == 0)
        return 0;
    const std::uint64_t per_thread =
        (keys + _params.threads - 1) / _params.threads;
    return std::max<std::uint64_t>(1, per_thread / _params.initScale);
}

std::uint64_t
GenWorkload::simOps() const
{
    return std::max<std::uint64_t>(1, _spec.baseOps / _params.scale);
}

std::uint64_t
GenWorkload::valueWord(std::uint64_t key, std::uint64_t gen, unsigned w)
{
    std::uint64_t x = key + groupSalt * (gen + 1) +
                      0xbf58476d1ce4e5b9ull * (w + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

unsigned
GenWorkload::tableOf(std::uint64_t key) const
{
    return static_cast<unsigned>(mix(key) % _spec.tables);
}

std::uint64_t
GenWorkload::groupOf(std::uint64_t key) const
{
    return mix(key ^ groupSalt) % _groups;
}

unsigned
GenWorkload::homeOf(std::uint64_t key) const
{
    return static_cast<unsigned>(mix(key ^ homeSalt) % slotsPerGroup);
}

Addr
GenWorkload::groupBase(unsigned table, std::uint64_t group) const
{
    return _tables[table] +
           group * (slotsPerGroup * std::uint64_t(_slotBytes));
}

Addr
GenWorkload::lockFor(std::uint64_t key) const
{
    const unsigned t = tableOf(key);
    return _locks[t][groupOf(key) % _stripes];
}

void
GenWorkload::allocateStructures()
{
    const std::uint64_t table_bytes =
        _groups * slotsPerGroup * std::uint64_t(_slotBytes);
    for (unsigned t = 0; t < _spec.tables; ++t) {
        const Addr base = _heap.alloc(table_bytes, blockSize);
        // Only the state words need defined initial contents: probe
        // and serialize read key/gen/value exclusively behind an
        // occupied state.
        for (std::uint64_t s = 0; s < _groups * slotsPerGroup; ++s)
            _heap.write<std::uint64_t>(base + s * _slotBytes + 8,
                                       stEmpty);
        _tables.push_back(base);

        std::vector<Addr> locks;
        for (std::uint64_t l = 0; l < _stripes; ++l)
            locks.push_back(_heap.allocVolatile(blockSize, blockSize));
        _locks.push_back(std::move(locks));
    }
}

void
GenWorkload::declareGroup(unsigned thread, std::uint64_t key)
{
    // Software undo logging (PMEM schemes) must declare everything a
    // transaction may overwrite before its first store — TraceBuilder
    // enforces the Figure 2 step order. Which slots a mutation touches
    // depends on probing, which depends on earlier keys' effects, so
    // declare the key's whole bucket group: coarse but always sound,
    // exactly like a conservative software undo log. declareLogged
    // deduplicates granules, so overlapping keys cost nothing extra.
    builder(thread).declareLogged(
        groupBase(tableOf(key), groupOf(key)),
        slotsPerGroup * _slotBytes);
}

GenWorkload::Probe
GenWorkload::probe(unsigned thread, std::uint64_t key)
{
    TraceBuilder &tb = builder(thread);
    const Addr base = groupBase(tableOf(key), groupOf(key));
    const unsigned home = homeOf(key);

    Probe out;
    for (unsigned i = 0; i < slotsPerGroup; ++i) {
        const Addr s =
            base + ((home + i) % slotsPerGroup) * _slotBytes;
        const Value st = tb.load(s + 8, 8);
        tb.branch(site(0), st.v == stEmpty, st);
        if (st.v == stEmpty) {
            if (out.freeSlot == 0)
                out.freeSlot = s;
            break;
        }
        tb.branch(site(1), st.v == stTombstone, st);
        if (st.v == stTombstone) {
            if (out.freeSlot == 0)
                out.freeSlot = s;
            continue;
        }
        const Value k = tb.load(s + 0, 8, st);
        tb.branch(site(2), k.v == key, k);
        if (k.v == key) {
            out.slot = s;
            out.dep = k;
            break;
        }
    }
    return out;
}

void
GenWorkload::opRead(unsigned thread, std::uint64_t key)
{
    TraceBuilder &tb = builder(thread);
    const Probe p = probe(thread, key);
    tb.branch(site(3), p.slot != 0, p.dep);
    if (p.slot == 0)
        return;
    const Value g = tb.load(p.slot + 16, 8, p.dep);
    for (unsigned w = 0; w < _valueWords; ++w)
        tb.load(p.slot + slotHeaderBytes + w * 8ull, 8, g);
}

void
GenWorkload::opUpdate(unsigned thread, std::uint64_t key, bool rmw)
{
    TraceBuilder &tb = builder(thread);
    const Probe p = probe(thread, key);
    tb.branch(site(4), p.slot != 0, p.dep);
    if (p.slot == 0)
        return;
    const Value g = tb.load(p.slot + 16, 8, p.dep);
    if (rmw) {
        for (unsigned w = 0; w < _valueWords; ++w)
            tb.load(p.slot + slotHeaderBytes + w * 8ull, 8, g);
    }
    const std::uint64_t new_gen = g.v + 1;
    tb.store(p.slot + 16, 8, new_gen, g);
    for (unsigned w = 0; w < _valueWords; ++w)
        tb.store(p.slot + slotHeaderBytes + w * 8ull, 8,
                 valueWord(key, new_gen, w), g);
}

void
GenWorkload::opInsert(unsigned thread, std::uint64_t key)
{
    TraceBuilder &tb = builder(thread);
    const Probe p = probe(thread, key);
    tb.branch(site(5), p.slot != 0, p.dep);
    if (p.slot != 0) {
        // Upsert: bump the generation, rewrite the value.
        const Value g = tb.load(p.slot + 16, 8, p.dep);
        const std::uint64_t new_gen = g.v + 1;
        tb.store(p.slot + 16, 8, new_gen, g);
        for (unsigned w = 0; w < _valueWords; ++w)
            tb.store(p.slot + slotHeaderBytes + w * 8ull, 8,
                     valueWord(key, new_gen, w), g);
        return;
    }
    if (p.freeSlot == 0)
        return;     // group full: deterministic no-op
    padAlloc(thread);
    tb.store(p.freeSlot + 0, 8, key);
    tb.store(p.freeSlot + 16, 8, 1);    // generation
    tb.store(p.freeSlot + 24, 8, 0);    // header pad
    for (unsigned w = 0; w < _valueWords; ++w)
        tb.store(p.freeSlot + slotHeaderBytes + w * 8ull, 8,
                 valueWord(key, 1, w));
    tb.store(p.freeSlot + 8, 8, stOccupied);
}

void
GenWorkload::opDelete(unsigned thread, std::uint64_t key)
{
    TraceBuilder &tb = builder(thread);
    const Probe p = probe(thread, key);
    tb.branch(site(6), p.slot != 0, p.dep);
    if (p.slot == 0)
        return;
    padFree(thread);
    tb.store(p.slot + 8, 8, stTombstone, p.dep);
}

void
GenWorkload::dispatch(unsigned thread, Op op, std::uint64_t key)
{
    switch (op) {
      case Op::Read:   opRead(thread, key); break;
      case Op::Update: opUpdate(thread, key, false); break;
      case Op::Insert: opInsert(thread, key); break;
      case Op::Delete: opDelete(thread, key); break;
      case Op::Rmw:    opUpdate(thread, key, true); break;
    }
}

void
GenWorkload::doInitOp(unsigned thread)
{
    // Deterministic round-robin population of keys [0, popKeys):
    // rank == key, so the distribution's hottest keys are resident.
    const std::uint64_t round = _initCounter[thread]++;
    const std::uint64_t key =
        round * _params.threads + thread;
    if (key >= popKeys())
        return;

    TraceBuilder &tb = builder(thread);
    const Addr lock = lockFor(key);
    acquire(thread, lock);
    tb.beginTx();
    padPrologue(thread);
    declareGroup(thread, key);
    padHash(thread);
    opInsert(thread, key);
    tb.endTx();
    release(thread, lock);
}

void
GenWorkload::doOp(unsigned thread)
{
    Random &r = rng(thread);

    // Draw the whole transaction (keys and op kinds) before touching
    // the trace, so the lock set is known up front.
    const auto nkeys = static_cast<unsigned>(
        r.nextRange(_spec.keysMin, _spec.keysMax));
    struct KeyOp
    {
        std::uint64_t key;
        Op op;
    };
    std::vector<KeyOp> ops;
    ops.reserve(nkeys);
    for (unsigned i = 0; i < nkeys; ++i) {
        const std::uint64_t key = _dist->nextRank(r);
        const std::uint64_t pct = r.nextBelow(100);
        Op op = Op::Rmw;
        if (pct < _spec.readPct)
            op = Op::Read;
        else if (pct < _spec.readPct + _spec.updatePct)
            op = Op::Update;
        else if (pct <
                 _spec.readPct + _spec.updatePct + _spec.insertPct)
            op = Op::Insert;
        else if (pct < _spec.readPct + _spec.updatePct +
                           _spec.insertPct + _spec.deletePct)
            op = Op::Delete;
        ops.push_back({key, op});
    }

    // Sorted, deduplicated group locks: sorted acquisition plus the
    // round-robin ticket order keeps multi-lock transactions
    // deadlock-free.
    std::vector<Addr> locks;
    locks.reserve(ops.size());
    for (const KeyOp &ko : ops)
        locks.push_back(lockFor(ko.key));
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());

    TraceBuilder &tb = builder(thread);
    for (Addr l : locks)
        acquire(thread, l);
    tb.beginTx();
    padPrologue(thread);
    for (const KeyOp &ko : ops) {
        if (ko.op != Op::Read)
            declareGroup(thread, ko.key);
    }
    for (const KeyOp &ko : ops) {
        padHash(thread);
        dispatch(thread, ko.op, ko.key);
    }
    tb.endTx();
    for (auto it = locks.rbegin(); it != locks.rend(); ++it)
        release(thread, *it);
}

std::string
GenWorkload::serialize(const MemoryImage &image) const
{
    std::ostringstream os;
    for (unsigned t = 0; t < _spec.tables; ++t) {
        for (std::uint64_t g = 0; g < _groups; ++g) {
            for (unsigned s = 0; s < slotsPerGroup; ++s) {
                const Addr slot =
                    groupBase(t, g) + s * std::uint64_t(_slotBytes);
                if (image.read64(slot + 8) != stOccupied)
                    continue;
                const std::uint64_t key = image.read64(slot);
                const std::uint64_t gen = image.read64(slot + 16);
                std::uint64_t h = 1469598103934665603ull;
                for (unsigned w = 0; w < _valueWords; ++w) {
                    h ^= image.read64(slot + slotHeaderBytes +
                                      w * 8ull);
                    h *= 1099511628211ull;
                }
                os << "t" << t << " g" << g << " s" << s << ": k"
                   << key << " gen" << gen << " v" << h << "\n";
            }
        }
    }
    return os.str();
}

std::string
GenWorkload::checkInvariants(const MemoryImage &image) const
{
    std::ostringstream err;
    for (unsigned t = 0; t < _spec.tables; ++t) {
        for (std::uint64_t g = 0; g < _groups; ++g) {
            std::vector<std::uint64_t> states(slotsPerGroup);
            std::vector<std::uint64_t> keys;
            for (unsigned s = 0; s < slotsPerGroup; ++s) {
                const Addr slot =
                    groupBase(t, g) + s * std::uint64_t(_slotBytes);
                states[s] = image.read64(slot + 8);
                if (states[s] > stTombstone) {
                    err << "t" << t << " g" << g << " s" << s
                        << ": bad state " << states[s] << "\n";
                    continue;
                }
                if (states[s] != stOccupied)
                    continue;

                const std::uint64_t key = image.read64(slot);
                const std::uint64_t gen = image.read64(slot + 16);
                if (tableOf(key) != t || groupOf(key) != g) {
                    err << "t" << t << " g" << g << " s" << s
                        << ": key " << key << " in the wrong group\n";
                }
                if (gen == 0) {
                    err << "t" << t << " g" << g << " s" << s
                        << ": zero generation\n";
                }
                for (unsigned w = 0; w < _valueWords; ++w) {
                    const std::uint64_t got = image.read64(
                        slot + slotHeaderBytes + w * 8ull);
                    if (got != valueWord(key, gen, w)) {
                        err << "t" << t << " g" << g << " s" << s
                            << ": value word " << w
                            << " does not match (key " << key
                            << ", gen " << gen << ")\n";
                        break;
                    }
                }
                if (std::find(keys.begin(), keys.end(), key) !=
                    keys.end()) {
                    err << "t" << t << " g" << g << ": duplicate key "
                        << key << "\n";
                }
                keys.push_back(key);
            }
            // Probe-path reachability: walking from a key's home slot,
            // no empty slot may appear before the slot holding it —
            // deletes tombstone, they never re-empty a slot.
            for (unsigned s = 0; s < slotsPerGroup; ++s) {
                if (states[s] != stOccupied)
                    continue;
                const Addr slot =
                    groupBase(t, g) + s * std::uint64_t(_slotBytes);
                const std::uint64_t key = image.read64(slot);
                if (tableOf(key) != t || groupOf(key) != g)
                    continue;   // already reported above
                for (unsigned i = 0;; ++i) {
                    const unsigned idx =
                        (homeOf(key) + i) % slotsPerGroup;
                    if (idx == s)
                        break;
                    if (states[idx] == stEmpty) {
                        err << "t" << t << " g" << g << " s" << s
                            << ": key " << key
                            << " unreachable past empty slot " << idx
                            << "\n";
                        break;
                    }
                }
            }
        }
    }
    return err.str();
}

} // namespace wlgen

WorkloadRegistration
genWorkloadRegistration()
{
    return {WorkloadKind::Generated, "GEN", "gen",
            "declarative synthetic KV transactions (src/wlgen)",
            "--wl-spec k=v,... / --wl-spec-file FILE; keys: read, "
            "update, insert, delete, rmw, keys, vsize, tables, "
            "keyspace, populate, ops, dist, theta, hot-frac, hot-ops",
            false,
            [](PersistentHeap &heap, LogScheme scheme,
               const WorkloadParams &params,
               const WorkloadExtras &extras)
                -> std::unique_ptr<Workload> {
                return std::make_unique<wlgen::GenWorkload>(
                    heap, scheme, params, extras.gen);
            }};
}

} // namespace proteus
