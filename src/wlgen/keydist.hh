/**
 * @file
 * Seeded key-distribution generators for generated workloads.
 *
 * A KeyGenerator maps a Random stream onto ranks in [0, n): rank 0 is
 * the most popular key. The generators themselves are stateless after
 * construction (all randomness flows through the caller's Random), so
 * one generator can serve every thread of a workload and the key
 * stream of a thread depends only on that thread's seed — which is
 * what makes generated traces cacheable and replayable.
 */

#ifndef PROTEUS_WLGEN_KEYDIST_HH
#define PROTEUS_WLGEN_KEYDIST_HH

#include <cstdint>
#include <memory>

#include "sim/random.hh"
#include "spec.hh"

namespace proteus {
namespace wlgen {

/** Draws key ranks in [0, n) from a caller-owned Random stream. */
class KeyGenerator
{
  public:
    explicit KeyGenerator(std::uint64_t n) : _n(n) {}
    virtual ~KeyGenerator() = default;

    /** Next rank in [0, n); consumes draws from @p rng only. */
    virtual std::uint64_t nextRank(Random &rng) const = 0;

    std::uint64_t n() const { return _n; }

  protected:
    std::uint64_t _n;
};

/** Every rank equally likely. */
class UniformGenerator : public KeyGenerator
{
  public:
    explicit UniformGenerator(std::uint64_t n);
    std::uint64_t nextRank(Random &rng) const override;
};

/**
 * Zipfian ranks via the Gray et al. incremental method (the YCSB
 * generator): an O(n) harmonic precomputation, then O(1) stateless
 * draws. Rank r has analytical mass (1/(r+1)^theta) / zeta(n, theta).
 */
class ZipfianGenerator : public KeyGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta);
    std::uint64_t nextRank(Random &rng) const override;

    /** Analytical probability of @p rank — the unit tests compare
     *  empirical frequencies against this. */
    double mass(std::uint64_t rank) const;

  private:
    double _theta;
    double _zetan;      ///< zeta(n, theta)
    double _alpha;      ///< 1 / (1 - theta)
    double _eta;
};

/** hotOpFrac of draws land uniformly in the first hotFrac*n ranks. */
class HotSetGenerator : public KeyGenerator
{
  public:
    HotSetGenerator(std::uint64_t n, double hot_frac, double hot_ops);
    std::uint64_t nextRank(Random &rng) const override;

    std::uint64_t hotKeys() const { return _hotKeys; }

  private:
    std::uint64_t _hotKeys;
    double _hotOpFrac;
};

/** Build the generator @p spec asks for over [0, spec.keySpace). */
std::unique_ptr<KeyGenerator> makeKeyGenerator(const GenSpec &spec);

} // namespace wlgen
} // namespace proteus

#endif // PROTEUS_WLGEN_KEYDIST_HH
