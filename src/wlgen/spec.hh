/**
 * @file
 * Declarative generated-workload specification.
 *
 * A GenSpec describes one synthetic key-value transaction workload:
 * the operation mix, the keys-per-transaction range, value size, table
 * count, the key distribution (uniform / Zipfian / hot-set), and the
 * working-set size. Specs parse from the `--wl-spec k=v,...` CLI
 * syntax and from small `key = value` spec files, and render to a
 * canonical string that round-trips through parse() — the canonical
 * form is the spec's identity in trace-cache keys and .ptrace files,
 * so two spellings of the same spec share one trace bundle.
 *
 * Fractional knobs (theta, hot-frac, hot-ops) are quantized to 1e-4 at
 * parse time so field equality, hashing, and the canonical string all
 * agree bit-for-bit no matter how the value was spelled.
 */

#ifndef PROTEUS_WLGEN_SPEC_HH
#define PROTEUS_WLGEN_SPEC_HH

#include <cstdint>
#include <string>

namespace proteus {
namespace wlgen {

/** Key-selection distribution of a generated workload. */
enum class KeyDist
{
    Uniform,    ///< every key equally likely
    Zipfian,    ///< rank r with mass ~ 1/(r+1)^theta (Gray et al.)
    HotSet,     ///< hot-ops fraction of draws hit a hot-frac subset
};

const char *toString(KeyDist dist);
KeyDist parseKeyDist(const std::string &name);

/** One generated workload, fully described. */
struct GenSpec
{
    /// @name Operation mix (percent; must sum to 100)
    /// @{
    unsigned readPct = 50;
    unsigned updatePct = 30;
    unsigned insertPct = 10;
    unsigned deletePct = 5;
    unsigned rmwPct = 5;        ///< read-modify-write
    /// @}

    /// @name Transaction shape
    /// @{
    unsigned keysMin = 1;       ///< keys per transaction, inclusive
    unsigned keysMax = 4;
    unsigned valueBytes = 64;   ///< per-key value size, multiple of 8
    /// @}

    /// @name Store shape
    /// @{
    unsigned tables = 4;        ///< independent KV tables
    std::uint64_t keySpace = 100000;    ///< keys draw from [0, keySpace)
    unsigned populatePct = 50;  ///< % of keySpace inserted during setup
    /// @}

    /** Paper-style per-thread SimOps base; divided by params.scale. */
    std::uint64_t baseOps = 20000;

    /// @name Key distribution
    /// @{
    KeyDist dist = KeyDist::Zipfian;
    double theta = 0.9;         ///< Zipfian skew, [0, 1)
    double hotFrac = 0.1;       ///< HotSet: hot subset size, (0, 1]
    double hotOpFrac = 0.9;     ///< HotSet: draws hitting the subset
    /// @}

    /**
     * Parse `k=v,k=v,...` on top of @p base (so an inline --wl-spec
     * can override a spec file). Every key is validated; the returned
     * spec passed validate(). Throws FatalError on any problem.
     */
    static GenSpec parse(const std::string &kvs, const GenSpec &base);
    static GenSpec parse(const std::string &kvs);

    /**
     * Parse a spec file: one `key = value` per line, '#' comments and
     * blank lines ignored; same keys as parse().
     */
    static GenSpec parseFile(const std::string &path,
                             const GenSpec &base);
    static GenSpec parseFile(const std::string &path);

    /**
     * Canonical `k=v,...` form: fixed field order, fractions printed
     * with trailing zeros trimmed, distribution-specific knobs only.
     * parse(canonical()) == *this for any valid spec.
     */
    std::string canonical() const;

    /** Throw FatalError unless every field is in range. */
    void validate() const;

    bool operator==(const GenSpec &o) const;
    bool operator!=(const GenSpec &o) const { return !(*this == o); }

    /** Mixes every field (for TraceBundleKey::hash). */
    std::uint64_t hash() const;
};

} // namespace wlgen
} // namespace proteus

#endif // PROTEUS_WLGEN_SPEC_HH
