/**
 * @file
 * The memory controller: read queue, Write Pending Queue (WPQ), and the
 * Proteus Log Pending Queue (LPQ) of Section 4.3.
 *
 * With ADR (default) the WPQ and LPQ are battery-backed and inside the
 * persistency domain: a write is durable — and acknowledged — the moment
 * it is accepted. The arbiter prioritizes reads over regular writes over
 * log writes; log writes are kept in the LPQ as long as possible so that
 * a tx-end can flash-clear them before they are ever written to NVMM
 * (log write removal). The controller also implements ATOM's MC-side
 * posted/source log creation and hardware log truncation for the
 * baseline comparison.
 */

#ifndef PROTEUS_MEMCTRL_MEM_CTRL_HH
#define PROTEUS_MEMCTRL_MEM_CTRL_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/persist_sink.hh"
#include "dram/nvm_timing.hh"
#include "faults/fault_model.hh"
#include "heap/memory_image.hh"
#include "logging/log_record.hh"
#include "obs/tx_observer.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

class TraceEventSink;

/** Kinds of writes arriving at the controller. */
enum class WriteKind : std::uint8_t
{
    Data,       ///< regular write-back / clwb flush
    Log,        ///< Proteus log-flush (routed to the LPQ)
    AtomLog,    ///< ATOM hardware log entry (routed to the WPQ)
};

/** A 64B write presented to the controller. */
struct WriteRequest
{
    Addr addr = invalidAddr;            ///< block-aligned destination
    WriteKind kind = WriteKind::Data;
    CoreId core = 0;
    TxId txId = 0;
    std::array<std::uint8_t, blockSize> data{};
};

/** The memory controller; ticks once per CPU cycle. */
class MemCtrl : public Ticked
{
  public:
    MemCtrl(Simulator &sim, const SystemConfig &cfg, MemoryImage &nvm);

    void tick(Tick now) override;
    const std::string &componentName() const override { return _name; }

    /**
     * Quiescence protocol: busy while the last tick made progress or a
     * request arrived since; otherwise idle until the earliest bank
     * ready time among scanned queue entries or an aged-write pressure
     * threshold — everything else the arbiter reacts to changes only
     * via scheduled events, which the kernel never skips past.
     */
    Tick nextWake(Tick now) override;
    /** Replay per-cycle occupancy samples and arbiter-attempt counters
     *  for skipped cycles. */
    void accountSkipped(Tick from, Tick to) override;

    /// @name Read path
    /// @{
    bool canAcceptRead() const;
    /** Enqueue a block read; @p on_complete fires when data returns.
     *  Reads check the WPQ (not the LPQ) for forwarding. */
    void read(Addr addr, std::function<void()> on_complete);
    /// @}

    /// @name Write path
    /// @{
    bool canAcceptWrite(WriteKind kind) const;
    /**
     * Enqueue a write. The acknowledgment (completion for clwb /
     * log-flush purposes) is implicit: acceptance *is* the ack, matching
     * ADR semantics; callers must check canAcceptWrite first.
     */
    void write(const WriteRequest &req);
    /// @}

    /// @name Proteus log write removal (Section 4.3)
    /// @{
    /**
     * Transaction @p tx of @p core is durably complete: flash-clear its
     * LPQ entries, leaving one marker entry flagged with tx-end. No-op
     * when log write removal is disabled (Proteus+NoLWR).
     */
    void txEnd(CoreId core, TxId tx);
    /// @}

    /// @name ATOM baseline support
    /// @{
    /** Bind the per-core hardware log region used by ATOM. The first
     *  block of the area holds the per-core commit record; entries
     *  start at start + 64. */
    void bindAtomLogArea(CoreId core, Addr start, Addr end);
    /**
     * Durably record that @p tx committed (one WPQ write to the
     * per-core commit record). Must succeed before tx-end retires;
     * @return false if the WPQ is full (caller retries).
     */
    bool atomTxCommit(CoreId core, TxId tx);
    /**
     * Create a log entry at the MC (source log) and acknowledge on
     * acceptance (posted log). @return false if the WPQ is full — the
     * caller must retry, keeping the store stalled at retirement.
     */
    bool atomLog(CoreId core, TxId tx, const LogRecord &record);
    /**
     * Truncate @p tx's log: tracked entries get one invalidation write
     * each; entries beyond the hardware tracking resources need a read
     * (log-area search) before the invalidation write (Section 4.3).
     * @p on_done fires when every truncation write has been accepted.
     */
    void atomTxEnd(CoreId core, TxId tx, std::function<void()> on_done);
    /// @}

    /// @name Persistency domain operations
    /// @{
    /** pcommit: fires @p on_drained once WPQ and LPQ are empty. */
    void drain(std::function<void()> on_drained);
    /** log-save / context switch: force core's LPQ entries to NVM. */
    void flushCoreLogs(CoreId core, std::function<void()> on_done);
    /// @}

    /**
     * Crash support: apply everything the battery would drain (WPQ,
     * then LPQ, in FIFO order) onto @p image. Only meaningful with ADR.
     */
    void applyBatteryDrain(MemoryImage &image) const;

    /** @return true if a durable undo log covers @p granule for
     *  (core, tx) — used by the persist-ordering checker. */
    bool logGranuleDurable(CoreId core, TxId tx, Addr granule) const;

    /** Totals for the Figure 8 study. */
    std::uint64_t nvmWrites() const { return _dram.totalWrites(); }
    std::uint64_t nvmReads() const { return _dram.totalReads(); }
    std::uint64_t droppedLogWrites() const
    {
        return static_cast<std::uint64_t>(_logWritesDropped.value());
    }

    bool empty() const;

    /**
     * Attach a transaction flight-recorder observer (nullptr detaches).
     * Hooks fire on queue acceptance, NVM issue/persist, and tx-end
     * flash-clears; synthesized tx-end markers are excluded (their
     * acceptedAt is meaningless and they carry no payload write).
     */
    void setTxObserver(obs::TxObserver *obs) { _txObs = obs; }

    /**
     * Attach a persist-edge sink for the persistency-order checker
     * (nullptr detaches). Hooks fire on write acceptance (the ADR
     * durability boundary), NVM array issue/persist, and the tx-end
     * flash-clear / marker operations of Section 4.3.
     */
    void setPersistSink(analysis::PersistSink *sink) { _pSink = sink; }

    NvmTiming &dram() { return _dram; }

    /** The media fault model, or nullptr when fault injection is off. */
    const faults::FaultModel *faultModel() const { return _faults.get(); }

  private:
    struct QueuedWrite
    {
        WriteRequest req;
        bool marker = false;    ///< held tx-end marker (Section 4.3)
        bool forced = false;    ///< must drain (context switch)
        std::uint64_t seq = 0;  ///< acceptance order
        Tick acceptedAt = 0;
    };

    struct PendingRead
    {
        Addr addr;
        std::function<void()> onComplete;
        /** Completed array reads of this request that failed ECC; the
         *  bounded-retry loop re-enqueues with attempts + 1. */
        unsigned attempts = 0;
    };

    struct AtomTxState
    {
        /** All entry addresses in creation order; the first
         *  atomTruncationEntries are hardware-tracked. */
        std::vector<Addr> entries;
    };

    /** Hash key for the per-transaction tracking tables; these are hit
     *  on every accepted log write, so hashed rather than tree-ordered. */
    struct CoreTx
    {
        CoreId core;
        TxId tx;

        bool
        operator==(const CoreTx &o) const
        {
            return core == o.core && tx == o.tx;
        }
    };

    struct CoreTxHash
    {
        std::size_t
        operator()(const CoreTx &k) const
        {
            return static_cast<std::size_t>(
                (k.tx * 0x9e3779b97f4a7c15ull) ^ k.core);
        }
    };

    /** ATOM per-core hardware log region (start==invalidAddr: unbound). */
    struct AtomLogArea
    {
        Addr start = invalidAddr;
        Addr end = invalidAddr;
        Addr next = invalidAddr;    ///< next entry slot (circular)
    };

    /** Grow the per-core tables to cover @p core. */
    void ensureCore(CoreId core);

    bool tryIssueRead(Tick now);
    bool tryIssueWrite(Tick now);
    bool tryIssueLog(Tick now);
    void issueWriteEntry(std::deque<QueuedWrite> &queue, std::size_t idx,
                         Tick now);
    void recordLogDurable(CoreId core, TxId tx, Addr granule);
    void checkDrainDone();
    std::uint64_t oldestPendingSeq() const;
    void noteLogArrival(CoreId core, TxId tx);
    std::size_t pickWriteCandidate(const std::deque<QueuedWrite> &queue,
                                   Tick now, bool skip_markers) const;

    Simulator &_sim;
    SystemConfig _cfg;
    std::string _name = "mc";
    MemoryImage &_nvm;
    NvmTiming _dram;
    /** Media fault injection + ECC view; null when disabled, so the
     *  default configuration pays nothing and stays bit-identical. */
    std::unique_ptr<faults::FaultModel> _faults;
    /** Reads waiting out a retry backoff (neither queued nor in
     *  flight); they hold their read-queue slot against new arrivals. */
    unsigned _pendingRetries = 0;

    std::deque<PendingRead> _readQ;
    std::deque<QueuedWrite> _wpq;
    std::deque<QueuedWrite> _lpq;
    unsigned _inflightReads = 0;
    unsigned _inflightWrites = 0;
    unsigned _inflightLogs = 0;
    std::unordered_multiset<Addr> _inflightWriteAddrs;
    /** Data of writes mid-flight to the array, by acceptance seq; the
     *  battery preserves these on a crash just like queued entries
     *  (applyBatteryDrain re-sorts by seq). */
    std::unordered_map<std::uint64_t,
                       std::pair<Addr, std::array<std::uint8_t, blockSize>>>
        _inflightData;
    std::uint64_t _acceptSeq = 0;
    unsigned _atomLogsQueued = 0;
    bool _useLpq = false;
    bool _logWriteRemoval = false;

    std::vector<std::pair<std::uint64_t, std::function<void()>>>
        _drainWaiters;
    std::set<std::uint64_t> _inflightSeqs;
    /** Per-core context-switch flush waiter (empty: none pending). */
    std::vector<std::function<void()>> _coreFlushWaiters;
    unsigned _coreFlushWaiterCount = 0;

    /** Last accepted Proteus log entry per core. The record bytes are
     *  retained because the tx-end metadata update must not read the
     *  NVM slot back: the entry's own write may still be in flight, and
     *  a read would return the slot's stale (pre-entry) contents. */
    struct LastLog
    {
        bool valid = false;
        TxId tx = 0;
        Addr addr = invalidAddr;
        std::array<std::uint8_t, blockSize> data{};
    };
    std::vector<LastLog> _lastLog;

    /** Durable log granules per (core, tx) for the ordering checker. */
    std::unordered_map<CoreTx, std::unordered_set<Addr>, CoreTxHash>
        _durableLogs;

    /// @name ATOM state
    /// @{
    std::vector<AtomLogArea> _atomLogArea;
    std::unordered_map<CoreTx, AtomTxState, CoreTxHash> _atomTx;
    /** Outstanding truncation work: writes to enqueue as space allows. */
    struct AtomTruncation
    {
        CoreId core;
        TxId tx;
        std::vector<Addr> invalidations;    ///< ready to invalidate
        std::vector<Addr> searchAddrs;      ///< need a search read first
        std::function<void()> onDone;
        unsigned pendingSearchReads = 0;
    };
    std::deque<AtomTruncation> _atomTruncations;
    void pumpAtomTruncation();
    /// @}

    stats::Scalar _readsAccepted;
    stats::Scalar _writesAccepted;
    stats::Scalar _logWritesAccepted;
    stats::Scalar _wpqForwards;
    stats::Scalar _writesCombined;
    stats::Scalar _logWritesDropped;
    stats::Scalar _markerWrites;
    stats::Scalar _markersDropped;
    stats::Scalar _spilledLogWrites;
    stats::Scalar _atomInvalidationWrites;
    stats::Scalar _atomSearchReads;
    stats::Scalar _atomLogRejects;
    stats::Average _wpqOccupancy;
    stats::Average _lpqOccupancy;
    stats::Average _inflightSample;
    stats::Scalar _writeAttempts;
    stats::Scalar _writeNoCandidate;

    /// @name Quiescence (cycle skipping)
    /// @{
    /** Last tick made progress (issued, accepted, or completed work). */
    bool _tickBusy = true;
    /** A request arrived after this controller's last tick (set by the
     *  public entry points, cleared at tick start). */
    bool _poked = false;
    /** Pre-tick values of the per-cycle arbiter counters; a blocked
     *  tick's deltas are replayed verbatim for skipped cycles. */
    double _preWriteAttempts = 0;
    double _preWriteNoCandidate = 0;
    /// @}

    obs::TxObserver *_txObs = nullptr;
    analysis::PersistSink *_pSink = nullptr;

    /// @name Trace-event output (memctrl category)
    /// @{
    TraceEventSink *_traceSink = nullptr;
    std::uint32_t _trkWpq = 0;
    std::uint32_t _trkLpq = 0;
    /** Faults-category sink (instant events); null unless both fault
     *  injection and the faults trace category are active. */
    TraceEventSink *_faultSink = nullptr;
    std::uint32_t _trkFaults = 0;
    /** Last emitted counter values; counters are emitted on change only
     *  to bound trace volume. -1 forces the first emission. */
    std::int64_t _lastWpqEmit = -1;
    std::int64_t _lastLpqEmit = -1;
    /// @}
};

} // namespace proteus

#endif // PROTEUS_MEMCTRL_MEM_CTRL_HH
