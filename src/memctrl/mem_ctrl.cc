#include "mem_ctrl.hh"

#include <algorithm>
#include <limits>
#include <map>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace proteus {

namespace {

/** Arbiter scan depth: full-window FR-FCFS. */
constexpr std::size_t scanLimit = 64;
/** Latency of serving a read from a matching WPQ entry. */
constexpr Tick wpqForwardLatency = 8;
constexpr std::size_t npos = static_cast<std::size_t>(-1);
/** Age after which a queued write drains regardless of pressure. */
constexpr Tick agedWriteTicks = 4000;

} // namespace

MemCtrl::MemCtrl(Simulator &sim, const SystemConfig &cfg, MemoryImage &nvm)
    : _sim(sim), _cfg(cfg), _nvm(nvm),
      _dram(cfg.mem, sim.statsRegistry(), "mc.dram"),
      _readsAccepted(sim.statsRegistry(), "mc.readsAccepted",
                     "reads accepted"),
      _writesAccepted(sim.statsRegistry(), "mc.writesAccepted",
                      "regular writes accepted into the WPQ"),
      _logWritesAccepted(sim.statsRegistry(), "mc.logWritesAccepted",
                         "log writes accepted (LPQ or ATOM)"),
      _wpqForwards(sim.statsRegistry(), "mc.wpqForwards",
                   "reads served from the WPQ"),
      _writesCombined(sim.statsRegistry(), "mc.writesCombined",
                      "writes absorbed by a queued WPQ entry"),
      _logWritesDropped(sim.statsRegistry(), "mc.logWritesDropped",
                        "LPQ entries flash-cleared at tx-end"),
      _markerWrites(sim.statsRegistry(), "mc.markerWrites",
                    "tx-end marker updates written to NVM"),
      _markersDropped(sim.statsRegistry(), "mc.markersDropped",
                      "held markers discarded by a successor tx"),
      _spilledLogWrites(sim.statsRegistry(), "mc.spilledLogWrites",
                        "log entries written to NVM before tx-end"),
      _atomInvalidationWrites(sim.statsRegistry(),
                              "mc.atomInvalidationWrites",
                              "ATOM truncation invalidation writes"),
      _atomSearchReads(sim.statsRegistry(), "mc.atomSearchReads",
                       "ATOM log-area search reads beyond HW resources"),
      _atomLogRejects(sim.statsRegistry(), "mc.atomLogRejects",
                      "ATOM log entries rejected by a full WPQ"),
      _wpqOccupancy(sim.statsRegistry(), "mc.wpqOccupancy",
                    "WPQ entries sampled per cycle"),
      _lpqOccupancy(sim.statsRegistry(), "mc.lpqOccupancy",
                    "LPQ entries sampled per cycle"),
      _inflightSample(sim.statsRegistry(), "mc.inflightWrites",
                      "in-flight array writes sampled per cycle"),
      _writeAttempts(sim.statsRegistry(), "mc.writeAttempts",
                     "cycles the arbiter tried to issue a write"),
      _writeNoCandidate(sim.statsRegistry(), "mc.writeNoCandidate",
                        "write attempts with no bank-ready candidate")
{
    const LogScheme scheme = cfg.logging.scheme;
    _useLpq = scheme == LogScheme::Proteus ||
              scheme == LogScheme::ProteusNoLWR;
    _logWriteRemoval = scheme == LogScheme::Proteus;
    ensureCore(cfg.cores ? cfg.cores - 1 : 0);

    // The fault model (and its faults.* stats) exists only when fault
    // injection is configured: the default run registers no extra
    // stats and takes no extra branches on the write/read paths.
    if (cfg.faults.enabled()) {
        _faults = std::make_unique<faults::FaultModel>(
            cfg.faults, sim.statsRegistry());
    }

    if (TraceEventSink *ts = sim.trace()) {
        if (ts->wants(TraceCatMemCtrl)) {
            _traceSink = ts;
            _trkWpq = ts->defineTrack("mc.wpq");
            _trkLpq = ts->defineTrack("mc.lpq");
        }
        if (_faults && ts->wants(TraceCatFaults)) {
            _faultSink = ts;
            _trkFaults = ts->defineTrack("mc.faults");
        }
    }
}

void
MemCtrl::ensureCore(CoreId core)
{
    if (core >= _lastLog.size()) {
        _lastLog.resize(core + 1);
        _atomLogArea.resize(core + 1);
        _coreFlushWaiters.resize(core + 1);
    }
}

bool
MemCtrl::canAcceptRead() const
{
    // Reads waiting out a retry backoff keep their queue slot: they
    // re-enter _readQ when the backoff expires, so handing the slot to
    // a new request would overflow the structure.
    return _readQ.size() + _inflightReads + _pendingRetries <
           _cfg.memCtrl.readQueueEntries;
}

void
MemCtrl::read(Addr addr, std::function<void()> on_complete)
{
    if (!canAcceptRead())
        panic("MemCtrl::read on full read queue");
    _poked = true;
    ++_readsAccepted;
    const Addr block = blockAlign(addr);

    // Forward from the WPQ; the LPQ is deliberately *not* checked
    // (Section 4.3: logs are never read outside recovery).
    for (const QueuedWrite &w : _wpq) {
        if (w.req.addr == block) {
            ++_wpqForwards;
            _sim.schedule(wpqForwardLatency, std::move(on_complete));
            return;
        }
    }
    _readQ.push_back(PendingRead{block, std::move(on_complete)});
}

bool
MemCtrl::canAcceptWrite(WriteKind kind) const
{
    if (kind == WriteKind::Log && _useLpq)
        return _lpq.size() + _inflightLogs < _cfg.memCtrl.lpqEntries;
    return _wpq.size() + _inflightWrites < _cfg.memCtrl.wpqEntries;
}

void
MemCtrl::write(const WriteRequest &req)
{
    if (!canAcceptWrite(req.kind))
        panic("MemCtrl::write on full queue");
    if (req.addr != blockAlign(req.addr))
        panic("MemCtrl::write with unaligned address");
    _poked = true;

    QueuedWrite qw;
    qw.req = req;
    qw.seq = _acceptSeq++;
    qw.acceptedAt = _sim.now();

    if (req.kind == WriteKind::Log || req.kind == WriteKind::AtomLog) {
        ++_logWritesAccepted;
        const LogRecord rec = LogRecord::fromBytes(req.data.data());
        recordLogDurable(req.core, req.txId, logAlign(rec.fromAddr));
        if (_pSink) {
            _pSink->logWriteAccepted(req.core, req.txId, req.addr,
                                     logAlign(rec.fromAddr), rec.seq,
                                     req.kind == WriteKind::Log &&
                                         _useLpq,
                                     _sim.now());
        }
        if (req.kind == WriteKind::Log) {
            noteLogArrival(req.core, req.txId);
            ensureCore(req.core);
            _lastLog[req.core] = LastLog{true, req.txId, req.addr,
                                         req.data};
        }
    } else {
        ++_writesAccepted;
    }

    if (req.kind == WriteKind::Log && _useLpq) {
        if (_txObs)
            _txObs->mcQueued(req.core, req.txId, true, _sim.now());
        _lpq.push_back(std::move(qw));
        return;
    }

    // Write combining: a WPQ entry to the same block absorbs the new
    // data (standard ADR write-pending-queue behavior). This also makes
    // ATOM truncation naturally ordered: invalidating an entry that is
    // still queued simply overwrites it in place.
    for (QueuedWrite &w : _wpq) {
        if (w.req.addr == req.addr) {
            ++_writesCombined;
            if (w.req.kind == WriteKind::AtomLog &&
                req.kind != WriteKind::AtomLog) {
                --_atomLogsQueued;
            } else if (w.req.kind != WriteKind::AtomLog &&
                       req.kind == WriteKind::AtomLog) {
                ++_atomLogsQueued;
            }
            w.req.data = req.data;
            w.req.kind = req.kind;
            w.req.core = req.core;
            w.req.txId = req.txId;
            // The combined data is newly durable even though no new
            // queue entry was created.
            if (_pSink && req.kind == WriteKind::Data) {
                _pSink->dataWriteAccepted(req.core, req.txId, req.addr,
                                          w.seq, /*combined=*/true,
                                          req.data.data(), _sim.now());
            }
            return;
        }
    }
    if (req.kind == WriteKind::AtomLog)
        ++_atomLogsQueued;
    // Combined writes above are absorbed into an existing entry, so
    // only a genuinely new WPQ entry counts as queued.
    if (_txObs)
        _txObs->mcQueued(req.core, req.txId, false, _sim.now());
    if (_pSink && req.kind == WriteKind::Data) {
        _pSink->dataWriteAccepted(req.core, req.txId, req.addr, qw.seq,
                                  /*combined=*/false, req.data.data(),
                                  _sim.now());
    }
    _wpq.push_back(std::move(qw));
}

void
MemCtrl::noteLogArrival(CoreId core, TxId tx)
{
    // A held tx-end marker is discarded once a log entry from the next
    // transaction of the same thread arrives (Section 4.3): the newest
    // transaction in the durable log is now the successor, so the
    // marker can never be consulted. With log write removal the marker
    // is the sole remnant of its transaction and the entry is elided
    // outright; without it the record doubles as a live data entry
    // whose NVM write must still be paid, so only the marker role is
    // dropped and the entry drains as an ordinary log write.
    for (auto it = _lpq.begin(); it != _lpq.end(); ++it) {
        if (it->marker && it->req.core == core && it->req.txId != tx) {
            ++_markersDropped;
            if (_pSink) {
                _pSink->txEndMarker(core, it->req.txId,
                                    analysis::MarkerOp::Dropped,
                                    _sim.now());
            }
            if (_logWriteRemoval)
                _lpq.erase(it);
            else
                it->marker = false;
            break;
        }
    }
}

void
MemCtrl::recordLogDurable(CoreId core, TxId tx, Addr granule)
{
    _durableLogs[CoreTx{core, tx}].insert(granule);
}

bool
MemCtrl::logGranuleDurable(CoreId core, TxId tx, Addr granule) const
{
    auto it = _durableLogs.find(CoreTx{core, tx});
    return it != _durableLogs.end() &&
           it->second.count(logAlign(granule)) > 0;
}

void
MemCtrl::txEnd(CoreId core, TxId tx)
{
    _poked = true;
    _durableLogs.erase(CoreTx{core, tx});
    if (!_useLpq)
        return;

    // Find this transaction's LPQ-resident entries; all but the latest
    // are flash-cleared, the latest becomes the held tx-end marker.
    std::size_t latest = npos;
    std::uint64_t latest_seq = 0;
    for (std::size_t i = 0; i < _lpq.size(); ++i) {
        const QueuedWrite &w = _lpq[i];
        if (w.req.core != core || w.req.txId != tx || w.marker)
            continue;
        const LogRecord rec = LogRecord::fromBytes(w.req.data.data());
        if (latest == npos || rec.seq >= latest_seq) {
            latest = i;
            latest_seq = rec.seq;
        }
    }

    if (latest != npos) {
        LogRecord rec =
            LogRecord::fromBytes(_lpq[latest].req.data.data());
        rec.flags |= LogRecord::flagTxEnd;
        const auto bytes = rec.toBytes();
        std::copy(bytes.begin(), bytes.end(),
                  _lpq[latest].req.data.begin());
        _lpq[latest].marker = true;
        if (_pSink) {
            _pSink->txEndMarker(core, tx, analysis::MarkerOp::Held,
                                _sim.now());
        }

        if (_logWriteRemoval) {
            std::uint64_t dropped = 0;
            std::deque<QueuedWrite> kept;
            for (std::size_t i = 0; i < _lpq.size(); ++i) {
                const QueuedWrite &w = _lpq[i];
                if (i != latest && w.req.core == core &&
                    w.req.txId == tx && !w.marker) {
                    ++_logWritesDropped;
                    ++dropped;
                } else {
                    kept.push_back(_lpq[i]);
                }
            }
            _lpq.swap(kept);
            if (_txObs && dropped)
                _txObs->mcDropped(core, tx, dropped, _sim.now());
            if (_pSink && dropped)
                _pSink->lpqFlashCleared(core, tx, dropped, _sim.now());
        }
        return;
    }

    // Every entry already left the LPQ: rewrite the last entry with its
    // tx-end flag set so recovery can see the transaction committed.
    // The retained acceptance-time bytes are used — the entry's own
    // write may still be in flight to the array, so reading the NVM
    // slot back here could return stale pre-entry contents and the
    // rewrite would then destroy the entry.
    if (core < _lastLog.size() && _lastLog[core].valid &&
        _lastLog[core].tx == tx) {
        const LastLog &last = _lastLog[core];
        LogRecord rec = LogRecord::fromBytes(last.data.data());
        rec.flags |= LogRecord::flagTxEnd;

        if (canAcceptWrite(WriteKind::Log)) {
            WriteRequest req;
            req.addr = last.addr;
            req.kind = WriteKind::Log;
            req.core = core;
            req.txId = tx;
            req.data = rec.toBytes();
            QueuedWrite qw;
            qw.req = req;
            qw.seq = _acceptSeq++;
            qw.marker = true;
            ++_markerWrites;
            _lpq.push_back(std::move(qw));
            if (_pSink) {
                _pSink->txEndMarker(core, tx,
                                    analysis::MarkerOp::Rewritten,
                                    _sim.now());
            }
        } else {
            // Extremely rare; apply directly and charge a write. If the
            // entry's own array write is still in flight, its completion
            // would land *after* this point and overwrite the marker
            // with the stale (no tx-end) payload — patch the in-flight
            // bytes instead so the completion itself writes the marker.
            ++_markerWrites;
            const auto out = rec.toBytes();
            bool patched = false;
            for (auto &[seq, entry] : _inflightData) {
                if (entry.first == last.addr) {
                    std::copy(out.begin(), out.end(),
                              entry.second.begin());
                    patched = true;
                }
            }
            if (!patched) {
                if (_faults)
                    _faults->applyWrite(_nvm, last.addr, out.data());
                else
                    _nvm.write(last.addr, out.data(), out.size());
            }
            if (_pSink) {
                _pSink->txEndMarker(core, tx,
                                    analysis::MarkerOp::Rewritten,
                                    _sim.now());
            }
        }
    }
}

void
MemCtrl::bindAtomLogArea(CoreId core, Addr start, Addr end)
{
    if (end <= start + logEntrySize)
        fatal("MemCtrl: ATOM log area too small");
    ensureCore(core);
    // Block 0 holds the commit record; entries start one block in.
    _atomLogArea[core] = AtomLogArea{start, end, start + logEntrySize};
}

bool
MemCtrl::atomTxCommit(CoreId core, TxId tx)
{
    if (!canAcceptWrite(WriteKind::Data))
        return false;
    if (core >= _atomLogArea.size() ||
        _atomLogArea[core].start == invalidAddr) {
        panic("MemCtrl::atomTxCommit without a bound log area");
    }
    WriteRequest req;
    req.addr = _atomLogArea[core].start;
    req.kind = WriteKind::Data;
    req.core = core;
    req.txId = tx;
    req.data.fill(0);
    std::memcpy(req.data.data(), &tx, sizeof(tx));
    write(req);
    return true;
}

bool
MemCtrl::atomLog(CoreId core, TxId tx, const LogRecord &record)
{
    if (!canAcceptWrite(WriteKind::AtomLog)) {
        ++_atomLogRejects;
        return false;
    }
    if (core >= _atomLogArea.size() ||
        _atomLogArea[core].start == invalidAddr) {
        panic("MemCtrl::atomLog without a bound log area");
    }

    AtomLogArea &area = _atomLogArea[core];
    const Addr slot = area.next;
    area.next += logEntrySize;
    if (area.next >= area.end)
        area.next = area.start + logEntrySize;

    WriteRequest req;
    req.addr = slot;
    req.kind = WriteKind::AtomLog;
    req.core = core;
    req.txId = tx;
    req.data = record.toBytes();
    write(req);

    _atomTx[CoreTx{core, tx}].entries.push_back(slot);
    return true;
}

void
MemCtrl::atomTxEnd(CoreId core, TxId tx, std::function<void()> on_done)
{
    _poked = true;
    _durableLogs.erase(CoreTx{core, tx});
    auto it = _atomTx.find(CoreTx{core, tx});
    if (it == _atomTx.end() || it->second.entries.empty()) {
        _atomTx.erase(CoreTx{core, tx});
        if (on_done)
            _sim.schedule(1, std::move(on_done));
        return;
    }

    // Hardware-tracked entries are cleared in the MC's SRAM and covered
    // by the durable commit record -- no NVM writes needed. Only entries
    // beyond the tracking resources must be searched for and manually
    // invalidated one by one (Section 4.3).
    const auto &entries = it->second.entries;
    const std::size_t tracked = std::min<std::size_t>(
        entries.size(), _cfg.logging.atomTruncationEntries);
    if (tracked == entries.size()) {
        _atomTx.erase(CoreTx{core, tx});
        if (on_done)
            _sim.schedule(1, std::move(on_done));
        return;
    }
    AtomTruncation job;
    job.core = core;
    job.tx = tx;
    job.onDone = std::move(on_done);
    // Addresses the hardware must rediscover by scanning the log area.
    job.searchAddrs.assign(entries.begin() +
                               static_cast<std::ptrdiff_t>(tracked),
                           entries.end());
    _atomTx.erase(CoreTx{core, tx});
    _atomTruncations.push_back(std::move(job));
}

void
MemCtrl::pumpAtomTruncation()
{
    if (_atomTruncations.empty())
        return;
    AtomTruncation &job = _atomTruncations.front();

    // Convert searches (log-area scans) into reads; each completed read
    // yields one more invalidation target.
    while (!job.searchAddrs.empty() && canAcceptRead()) {
        const Addr addr = job.searchAddrs.back();
        job.searchAddrs.pop_back();
        ++job.pendingSearchReads;
        ++_atomSearchReads;
        AtomTruncation *jobp = &job;
        read(addr, [this, jobp, addr]() {
            --jobp->pendingSearchReads;
            jobp->invalidations.push_back(addr);
        });
    }

    // Issue invalidation writes, rate-limited so background truncation
    // never starves the cores' own writes: at most two per cycle, and
    // only while the WPQ has headroom. Entries still queued in the WPQ
    // are overwritten in place by write combining; an entry mid-write
    // to the array forces a short wait.
    unsigned issued = 0;
    while (!job.invalidations.empty() && issued < 2 &&
           canAcceptWrite(WriteKind::Data) &&
           _wpq.size() + _inflightWrites <
               (3 * _cfg.memCtrl.wpqEntries) / 4) {
        const Addr addr = job.invalidations.back();
        if (_inflightWriteAddrs.count(addr) > 0)
            break;
        ++issued;
        job.invalidations.pop_back();
        ++_atomInvalidationWrites;
        WriteRequest req;
        req.addr = addr;
        req.kind = WriteKind::Data;
        req.core = job.core;
        req.txId = job.tx;
        req.data.fill(0);   // an all-zero block is an invalid record
        write(req);
    }

    if (job.searchAddrs.empty() && job.pendingSearchReads == 0 &&
        job.invalidations.empty()) {
        if (job.onDone)
            job.onDone();
        _atomTruncations.pop_front();
    }
}

void
MemCtrl::drain(std::function<void()> on_drained)
{
    // pcommit semantics: only writes accepted before this point must
    // reach NVM; later arrivals are not waited for.
    _poked = true;
    _drainWaiters.emplace_back(_acceptSeq, std::move(on_drained));
}

std::uint64_t
MemCtrl::oldestPendingSeq() const
{
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const QueuedWrite &w : _wpq)
        oldest = std::min(oldest, w.seq);
    for (const QueuedWrite &w : _lpq)
        oldest = std::min(oldest, w.seq);
    if (!_inflightSeqs.empty())
        oldest = std::min(oldest, *_inflightSeqs.begin());
    return oldest;
}

void
MemCtrl::flushCoreLogs(CoreId core, std::function<void()> on_done)
{
    _poked = true;
    for (QueuedWrite &w : _lpq) {
        if (w.req.core == core)
            w.forced = true;
    }
    ensureCore(core);
    if (on_done) {
        if (!_coreFlushWaiters[core])
            ++_coreFlushWaiterCount;
        _coreFlushWaiters[core] = std::move(on_done);
    }
}

bool
MemCtrl::empty() const
{
    return _readQ.empty() && _wpq.empty() && _lpq.empty() &&
           _inflightReads == 0 && _inflightWrites == 0 &&
           _inflightLogs == 0 && _pendingRetries == 0 &&
           _atomTruncations.empty();
}

void
MemCtrl::applyBatteryDrain(MemoryImage &image) const
{
    // Everything the battery preserves, in acceptance order: writes
    // mid-flight to the array plus both pending queues.
    std::map<std::uint64_t,
             std::pair<Addr, const std::array<std::uint8_t,
                                              blockSize> *>>
        all;
    for (const auto &[seq, entry] : _inflightData)
        all.emplace(seq, std::make_pair(entry.first, &entry.second));
    for (const QueuedWrite &w : _wpq)
        all.emplace(w.seq, std::make_pair(w.req.addr, &w.req.data));
    for (const QueuedWrite &w : _lpq)
        all.emplace(w.seq, std::make_pair(w.req.addr, &w.req.data));
    for (const auto &[seq, entry] : all)
        image.write(entry.first, entry.second->data(), blockSize);
}

std::size_t
MemCtrl::pickWriteCandidate(const std::deque<QueuedWrite> &queue,
                            Tick now, bool skip_markers) const
{
    std::size_t fallback = npos;
    const std::size_t depth = std::min(queue.size(), scanLimit);
    // First preference: forced entries (context switch flushes).
    for (std::size_t i = 0; i < depth; ++i) {
        const QueuedWrite &w = queue[i];
        if (w.forced && _dram.bankReady(w.req.addr, now))
            return i;
    }
    // Row-conflict writes commit a bank to a long NVM activate that
    // pending reads then wait behind; defer them until the queue is
    // under real pressure (conflict-averse write drain).
    const bool allow_conflicts =
        !_drainWaiters.empty() ||
        (!queue.empty() &&
         now > queue.front().acceptedAt + agedWriteTicks) ||
        queue.size() + _inflightWrites + _inflightLogs >=
            (3 * _cfg.memCtrl.wpqEntries) / 4;
    for (std::size_t i = 0; i < depth; ++i) {
        const QueuedWrite &w = queue[i];
        if (skip_markers && w.marker)
            continue;
        if (!_dram.bankReady(w.req.addr, now))
            continue;
        if (_dram.rowHit(w.req.addr))
            return i;
        if (fallback == npos)
            fallback = i;
    }
    return allow_conflicts ? fallback : npos;
}

void
MemCtrl::issueWriteEntry(std::deque<QueuedWrite> &queue, std::size_t idx,
                         Tick now)
{
    // The completion closure captures only (addr, seq): the data bytes
    // already live in _inflightData for battery-drain purposes, so
    // capturing the whole QueuedWrite (with its 64B payload) would copy
    // the block twice and blow past std::function's inline storage on
    // this hot path.
    const QueuedWrite &w = queue[idx];
    const Addr addr = w.req.addr;
    const std::uint64_t seq = w.seq;
    const bool is_log_queue = (&queue == &_lpq);
    const CoreId req_core = w.req.core;
    const TxId req_tx = w.req.txId;
    const bool is_marker = w.marker;
    // Markers are synthesized at tx-end with no meaningful acceptance
    // time, so they stay invisible to the flight recorder.
    if (_txObs && !is_marker) {
        _txObs->mcIssued(req_core, req_tx, is_log_queue, w.acceptedAt,
                         now);
    }
    if (_pSink)
        _pSink->nvmWriteIssued(is_log_queue, addr, seq, now);
    if (!is_log_queue && w.req.kind == WriteKind::AtomLog)
        --_atomLogsQueued;
    if (is_log_queue) {
        ++_inflightLogs;
        if (_logWriteRemoval && !w.marker)
            ++_spilledLogWrites;
    } else {
        ++_inflightWrites;
    }
    _inflightWriteAddrs.insert(addr);
    _inflightSeqs.insert(seq);
    _inflightData.emplace(seq, std::make_pair(addr, w.req.data));
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(idx));

    const Tick done = _dram.issue(addr, true, now);
    _sim.events().schedule(done, [this, addr, seq, is_log_queue,
                                  req_core, req_tx, is_marker]() {
        auto dit = _inflightData.find(seq);
        if (dit == _inflightData.end())
            panic("MemCtrl: completed write lost its in-flight data");
        if (_faults) {
            const auto out = _faults->applyWrite(
                _nvm, addr, dit->second.second.data());
            if (_faultSink && out != faults::WriteOutcome::Clean) {
                const char *what =
                    out == faults::WriteOutcome::Torn ? "torn-write"
                    : out == faults::WriteOutcome::Corrected
                        ? "worn-corrected"
                    : out == faults::WriteOutcome::Uncorrectable
                        ? "worn-uncorrectable"
                        : "silent-corruption";
                _faultSink->instant(TraceCatFaults, _trkFaults, what,
                                    _sim.now());
            }
        } else {
            _nvm.write(addr, dit->second.second.data(), blockSize);
        }
        _inflightData.erase(dit);
        auto it = _inflightWriteAddrs.find(addr);
        if (it != _inflightWriteAddrs.end())
            _inflightWriteAddrs.erase(it);
        _inflightSeqs.erase(seq);
        if (is_log_queue)
            --_inflightLogs;
        else
            --_inflightWrites;
        if (_txObs && !is_marker) {
            _txObs->nvmPersisted(req_core, req_tx, is_log_queue,
                                 _sim.now());
        }
        if (_pSink)
            _pSink->nvmWritePersisted(is_log_queue, addr, seq, _sim.now());
    });
}

bool
MemCtrl::tryIssueRead(Tick now)
{
    if (_readQ.empty())
        return false;
    std::size_t pick = npos;
    const std::size_t depth = std::min(_readQ.size(), scanLimit);
    for (std::size_t i = 0; i < depth; ++i) {
        if (!_dram.bankReady(_readQ[i].addr, now))
            continue;
        if (_dram.rowHit(_readQ[i].addr)) {
            pick = i;
            break;
        }
        if (pick == npos)
            pick = i;
    }
    if (pick == npos)
        return false;

    PendingRead r = std::move(_readQ[pick]);
    _readQ.erase(_readQ.begin() + static_cast<std::ptrdiff_t>(pick));
    ++_inflightReads;
    const Tick done = _dram.issue(r.addr, false, now);
    const Addr raddr = r.addr;
    const unsigned attempt = r.attempts;
    auto cb = std::move(r.onComplete);
    _sim.events().schedule(done, [this, raddr, attempt,
                                  cb = std::move(cb)]() mutable {
        --_inflightReads;
        if (_faults) {
            const auto out = _faults->classifyRead(_nvm, raddr);
            if (out == faults::ReadOutcome::Transient ||
                out == faults::ReadOutcome::Unrecoverable) {
                if (attempt < _faults->retryLimit()) {
                    // Bounded retry with exponential backoff: the
                    // request waits out the backoff, then re-enters the
                    // read queue and pays a full array read again. The
                    // backoff is a scheduled event, so cycle skipping
                    // can never jump past it.
                    const Tick back = _faults->backoff(attempt);
                    _faults->noteRetry(back);
                    if (_faultSink) {
                        _faultSink->instant(TraceCatFaults, _trkFaults,
                                            "read-retry", _sim.now());
                    }
                    ++_pendingRetries;
                    _sim.schedule(back, [this, raddr, attempt,
                                         cb = std::move(cb)]() mutable {
                        --_pendingRetries;
                        _poked = true;
                        _readQ.push_back(PendingRead{
                            raddr, std::move(cb), attempt + 1});
                    });
                    return;
                }
                // Graceful degradation: give up, poison the line, and
                // complete anyway — consumers observe the failure via
                // the poison mark (recovery classification) and the
                // faults.retriesExhausted counter.
                _faults->noteRetriesExhausted(_nvm, raddr);
                if (_faultSink) {
                    _faultSink->instant(TraceCatFaults, _trkFaults,
                                        "retries-exhausted", _sim.now());
                }
            }
        }
        if (cb)
            cb();
    });
    return true;
}

bool
MemCtrl::tryIssueWrite(Tick now)
{
    if (_wpq.empty())
        return false;
    // ATOM posted-log entries drain eagerly: the MC writes them to the
    // log area promptly so the locked lines can be released.
    // Age pressure: the WPQ is not long-term storage; entries older
    // than a few microseconds drain even without occupancy pressure.
    const bool aged =
        !_wpq.empty() && now > _wpq.front().acceptedAt + agedWriteTicks;
    const bool pressured =
        !_drainWaiters.empty() || _atomLogsQueued > 0 || aged ||
        _wpq.size() >=
            static_cast<std::size_t>(_cfg.memCtrl.wpqDrainThreshold *
                                     _cfg.memCtrl.wpqEntries);
    const bool opportunistic = _readQ.empty();
    if (!pressured && !opportunistic)
        return false;

    ++_writeAttempts;
    const std::size_t pick = pickWriteCandidate(_wpq, now, false);
    if (pick == npos) {
        ++_writeNoCandidate;
        return false;
    }
    issueWriteEntry(_wpq, pick, now);
    return true;
}

bool
MemCtrl::tryIssueLog(Tick now)
{
    if (_lpq.empty())
        return false;

    bool forced = false;
    for (const QueuedWrite &w : _lpq) {
        if (w.forced) {
            forced = true;
            break;
        }
    }

    const double threshold = _logWriteRemoval
        ? _cfg.memCtrl.lpqDrainThreshold
        : _cfg.memCtrl.wpqDrainThreshold;
    const bool pressured =
        !_drainWaiters.empty() || forced ||
        _lpq.size() >= static_cast<std::size_t>(
                           threshold * _cfg.memCtrl.lpqEntries);
    // Without log write removal there is no reason to hold entries:
    // drain opportunistically like a regular write queue.
    const bool opportunistic =
        !_logWriteRemoval && _readQ.empty() && _wpq.empty();
    if (!pressured && !opportunistic)
        return false;

    const bool nearly_full =
        _lpq.size() + 1 >= _cfg.memCtrl.lpqEntries;
    const std::size_t pick =
        pickWriteCandidate(_lpq, now, !nearly_full && !forced &&
                                          _logWriteRemoval);
    if (pick == npos)
        return false;
    issueWriteEntry(_lpq, pick, now);
    return true;
}

void
MemCtrl::checkDrainDone()
{
    if (!_drainWaiters.empty()) {
        const std::uint64_t oldest = oldestPendingSeq();
        for (auto it = _drainWaiters.begin();
             it != _drainWaiters.end();) {
            if (oldest >= it->first) {
                auto cb = std::move(it->second);
                it = _drainWaiters.erase(it);
                if (cb)
                    cb();
            } else {
                ++it;
            }
        }
    }

    if (_coreFlushWaiterCount == 0)
        return;
    for (CoreId core = 0; core < _coreFlushWaiters.size(); ++core) {
        if (!_coreFlushWaiters[core])
            continue;
        bool pending = _inflightLogs > 0;
        if (!pending) {
            for (const QueuedWrite &w : _lpq) {
                if (w.req.core == core) {
                    pending = true;
                    break;
                }
            }
        }
        if (!pending) {
            auto cb = std::move(_coreFlushWaiters[core]);
            _coreFlushWaiters[core] = nullptr;
            --_coreFlushWaiterCount;
            cb();
        }
    }
}

void
MemCtrl::tick(Tick now)
{
    _preWriteAttempts = _writeAttempts.value();
    _preWriteNoCandidate = _writeNoCandidate.value();
    _tickBusy = false;
    _poked = false;

    _wpqOccupancy.sample(_wpq.size());
    _inflightSample.sample(_inflightWrites);
    _lpqOccupancy.sample(_lpq.size() + _inflightLogs);
    if (_traceSink) {
        const auto wpq = static_cast<std::int64_t>(_wpq.size());
        const auto lpq =
            static_cast<std::int64_t>(_lpq.size() + _inflightLogs);
        if (wpq != _lastWpqEmit) {
            _traceSink->counter(TraceCatMemCtrl, _trkWpq, "wpq", now,
                                static_cast<double>(wpq));
            _lastWpqEmit = wpq;
        }
        if (lpq != _lastLpqEmit) {
            _traceSink->counter(TraceCatMemCtrl, _trkLpq, "lpq", now,
                                static_cast<double>(lpq));
            _lastLpqEmit = lpq;
        }
    }

    // Progress detection for the quiescence hint: truncation pumping
    // accepts reads/writes (bumping _readsAccepted/_acceptSeq) or
    // retires a job; drain checks consume waiters.
    const std::uint64_t acceptBefore = _acceptSeq;
    const double readsBefore = _readsAccepted.value();
    const std::size_t truncBefore = _atomTruncations.size();
    const std::size_t drainBefore = _drainWaiters.size();
    const unsigned flushBefore = _coreFlushWaiterCount;

    pumpAtomTruncation();

    // One command per cycle: reads first, then regular writes, then the
    // de-prioritized log writes (Section 4.3 arbiter).
    bool issued = tryIssueRead(now);
    if (!issued)
        issued = tryIssueWrite(now);
    if (!issued)
        issued = tryIssueLog(now);

    if (!_drainWaiters.empty() || _coreFlushWaiterCount > 0)
        checkDrainDone();

    if (issued || _acceptSeq != acceptBefore ||
        _readsAccepted.value() != readsBefore ||
        _atomTruncations.size() != truncBefore ||
        _drainWaiters.size() != drainBefore ||
        _coreFlushWaiterCount != flushBefore) {
        _tickBusy = true;
    }
}

Tick
MemCtrl::nextWake(Tick now)
{
    if (_tickBusy || _poked)
        return now;

    // Everything left is blocked on either a scheduled completion event
    // (the kernel clamps skips to those) or pure passage of time: a bank
    // coming ready, or a queue front crossing the aged-write threshold
    // that flips the pressure/conflict-aversion decisions.
    // The last tick ran at now-1, so anything crossing a time threshold
    // exactly at `now` is newly actionable this cycle: the comparisons
    // below must be >= now, not > now. A bank ready strictly before now
    // was already ready during the last (idle) tick and the arbiter
    // still declined it, so only the aged threshold can unblock it.
    Tick wake = maxTick;
    auto bankWake = [&](Addr addr) {
        const Tick at = _dram.bankReadyAt(addr);
        if (at >= now)
            wake = std::min(wake, at);
    };
    const std::size_t rdepth = std::min(_readQ.size(), scanLimit);
    for (std::size_t i = 0; i < rdepth; ++i)
        bankWake(_readQ[i].addr);
    auto queueWake = [&](const std::deque<QueuedWrite> &q) {
        if (q.empty())
            return;
        const Tick aged = q.front().acceptedAt + agedWriteTicks + 1;
        if (aged >= now)
            wake = std::min(wake, aged);
        const std::size_t depth = std::min(q.size(), scanLimit);
        for (std::size_t i = 0; i < depth; ++i)
            bankWake(q[i].req.addr);
    };
    queueWake(_wpq);
    queueWake(_lpq);
    return wake;
}

void
MemCtrl::accountSkipped(Tick from, Tick to)
{
    const std::uint64_t n = to - from;
    _wpqOccupancy.sample(static_cast<double>(_wpq.size()), n);
    _inflightSample.sample(static_cast<double>(_inflightWrites), n);
    _lpqOccupancy.sample(
        static_cast<double>(_lpq.size() + _inflightLogs), n);
    const double attempts = _writeAttempts.value() - _preWriteAttempts;
    if (attempts != 0.0)
        _writeAttempts += attempts * static_cast<double>(n);
    const double nocand =
        _writeNoCandidate.value() - _preWriteNoCandidate;
    if (nocand != 0.0)
        _writeNoCandidate += nocand * static_cast<double>(n);
}

} // namespace proteus
