/**
 * @file
 * A sparse byte-addressable memory image backing the simulated address
 * space. Two images exist per system: the volatile image (what the
 * program sees through the cache hierarchy) and the NVM image (what has
 * actually persisted). Pages materialize on first touch and read as
 * zero before that.
 */

#ifndef PROTEUS_HEAP_MEMORY_IMAGE_HH
#define PROTEUS_HEAP_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace proteus {

/** Sparse paged storage for a 64-bit simulated address space. */
class MemoryImage
{
  public:
    static constexpr unsigned pageBits = 12;
    static constexpr std::size_t pageBytes = std::size_t{1} << pageBits;

    MemoryImage() = default;
    MemoryImage(const MemoryImage &other);
    MemoryImage &operator=(const MemoryImage &other);
    MemoryImage(MemoryImage &&) = default;
    MemoryImage &operator=(MemoryImage &&) = default;

    /** Copy @p n bytes at @p addr into @p out (zero for untouched). */
    void read(Addr addr, void *out, std::size_t n) const;

    /** Write @p n bytes from @p src at @p addr. */
    void write(Addr addr, const void *src, std::size_t n);

    /** Little-endian fixed-width helpers. */
    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t value);

    /** One differing 8-byte word between two images. */
    struct DiffEntry
    {
        Addr addr = invalidAddr;    ///< 8-byte aligned
        std::uint64_t lhs = 0;      ///< this image's word
        std::uint64_t rhs = 0;      ///< the other image's word
    };

    /**
     * Compare against @p other at 8-byte word granularity over the
     * union of both images' materialized pages (untouched pages read
     * as zero). Entries come back sorted by address; at most
     * @p max_entries are collected, so a hit of exactly that many may
     * mean the comparison was cut short.
     */
    std::vector<DiffEntry> diff(const MemoryImage &other,
                                std::size_t max_entries = SIZE_MAX)
        const;

    /** Render up to @p max_lines entries as "addr: lhs != rhs" lines,
     *  with a trailing elision note when entries were held back. */
    static std::string formatDiff(const std::vector<DiffEntry> &entries,
                                  std::size_t max_lines = 16);

    /** @return number of materialized pages (tests, footprint stats). */
    std::size_t pageCount() const { return _pages.size(); }

    /**
     * Materialized page indices (addr >> pageBits), sorted ascending so
     * serialization is deterministic regardless of hash-map order.
     */
    std::vector<Addr> pageIndices() const;

    /** Raw bytes of a materialized page; null if never touched. */
    const std::uint8_t *pageData(Addr page_index) const;

    /** @return true if both images hold identical contents (untouched
     *  pages read as zero, so an all-zero page equals a missing one). */
    bool identical(const MemoryImage &other) const
    {
        return diff(other, 1).empty();
    }

    /** Drop all contents. */
    void clear() { _pages.clear(); _poison.clear(); }

    /// @name Media-fault poison tracking (64B line granularity)
    /// @{
    /**
     * Mark the cache line containing @p addr as detected-uncorrectable
     * (failed media ECC). Poison is metadata carried alongside the
     * bytes: it travels through copies (crash images) and is cleared
     * when write() fully overwrites the line, modeling a clean rewrite
     * re-establishing valid ECC.
     */
    void markPoisoned(Addr addr) { _poison.insert(blockAlign(addr)); }

    /** @return true if @p addr's line is marked poisoned. */
    bool
    isPoisoned(Addr addr) const
    {
        return !_poison.empty() && _poison.count(blockAlign(addr)) > 0;
    }

    /** @return number of currently poisoned lines. */
    std::uint64_t poisonedCount() const { return _poison.size(); }

    /** Poisoned line addresses, sorted for deterministic reporting. */
    std::vector<Addr> poisonedLines() const;
    /// @}

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    static Addr pageBase(Addr a) { return a >> pageBits; }
    static std::size_t pageOffset(Addr a)
    {
        return static_cast<std::size_t>(a & (pageBytes - 1));
    }

    Page &touch(Addr page_index);
    const Page *peek(Addr page_index) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
    /** Lines flagged detected-uncorrectable by the media fault model;
     *  empty (and cost-free) unless fault injection is active. */
    std::unordered_set<Addr> _poison;
};

} // namespace proteus

#endif // PROTEUS_HEAP_MEMORY_IMAGE_HH
