#include "persistent_heap.hh"

#include "sim/logging.hh"

namespace proteus {

namespace {

Addr
alignUp(Addr a, std::size_t align)
{
    const Addr mask = static_cast<Addr>(align) - 1;
    return (a + mask) & ~mask;
}

} // namespace

RegionAllocator::RegionAllocator(Addr base, Addr limit)
    : _base(base), _limit(limit), _next(base)
{
    if (limit <= base)
        panic("RegionAllocator: empty region");
}

Addr
RegionAllocator::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        panic("RegionAllocator: zero-size allocation");
    if (align == 0 || (align & (align - 1)) != 0)
        panic("RegionAllocator: alignment must be a power of two");

    auto bin = _freeBins.find(bytes);
    if (bin != _freeBins.end() && !bin->second.empty()) {
        // Exact-size reuse keeps node addresses stable across
        // insert/delete churn, like a slab allocator would.
        for (std::size_t i = bin->second.size(); i-- > 0;) {
            Addr candidate = bin->second[i];
            if ((candidate & (align - 1)) == 0) {
                bin->second.erase(bin->second.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                _liveBytes += bytes;
                return candidate;
            }
        }
    }

    Addr addr = alignUp(_next, align);
    if (addr + bytes > _limit)
        fatal("RegionAllocator: out of simulated memory (",
              bytes, " bytes requested)");
    _next = addr + bytes;
    _liveBytes += bytes;
    return addr;
}

void
RegionAllocator::release(Addr addr, std::size_t bytes)
{
    if (addr < _base || addr + bytes > _next)
        panic("RegionAllocator: release outside region");
    _liveBytes -= bytes;
    _freeBins[bytes].push_back(addr);
}

RegionAllocator::State
RegionAllocator::state() const
{
    State s;
    s.next = _next;
    s.liveBytes = _liveBytes;
    for (const auto &[size, addrs] : _freeBins) {
        if (!addrs.empty())
            s.freeBins.emplace_back(size, addrs);
    }
    return s;
}

void
RegionAllocator::restore(const State &s)
{
    if (s.next < _base || s.next > _limit)
        fatal("RegionAllocator::restore: frontier outside region");
    _next = s.next;
    _liveBytes = s.liveBytes;
    _freeBins.clear();
    for (const auto &[size, addrs] : s.freeBins)
        _freeBins[size] = addrs;
}

PersistentHeap::PersistentHeap()
    : _volatileAlloc(volatileBase, persistentBase),
      _persistentAlloc(persistentBase, logBase),
      _nextLogArea(logBase)
{
}

Addr
PersistentHeap::alloc(std::size_t bytes, std::size_t align)
{
    return _persistentAlloc.allocate(bytes, align);
}

void
PersistentHeap::free(Addr addr, std::size_t bytes)
{
    _persistentAlloc.release(addr, bytes);
}

Addr
PersistentHeap::allocVolatile(std::size_t bytes, std::size_t align)
{
    return _volatileAlloc.allocate(bytes, align);
}

Addr
PersistentHeap::chaseArena()
{
    if (_chaseArena == invalidAddr)
        _chaseArena = _persistentAlloc.allocate(chaseArenaBytes,
                                                blockSize);
    return _chaseArena;
}

PersistentHeap::AllocState
PersistentHeap::allocState() const
{
    AllocState s;
    s.volatileAlloc = _volatileAlloc.state();
    s.persistentAlloc = _persistentAlloc.state();
    s.nextLogArea = _nextLogArea;
    s.chaseArena = _chaseArena;
    return s;
}

void
PersistentHeap::restoreAllocState(const AllocState &s)
{
    _volatileAlloc.restore(s.volatileAlloc);
    _persistentAlloc.restore(s.persistentAlloc);
    if (s.nextLogArea < logBase || s.nextLogArea > logLimit)
        fatal("PersistentHeap: restored log frontier outside region");
    _nextLogArea = s.nextLogArea;
    _chaseArena = s.chaseArena;
}

Addr
PersistentHeap::allocLogArea(std::size_t bytes)
{
    const Addr addr = alignUp(_nextLogArea, logEntrySize);
    if (addr + bytes > logLimit)
        fatal("PersistentHeap: log area region exhausted");
    _nextLogArea = addr + bytes;
    return addr;
}

} // namespace proteus
