#include "memory_image.hh"

#include <algorithm>
#include <cstdio>

namespace proteus {

MemoryImage::MemoryImage(const MemoryImage &other)
{
    *this = other;
}

MemoryImage &
MemoryImage::operator=(const MemoryImage &other)
{
    if (this == &other)
        return *this;
    _pages.clear();
    _pages.reserve(other._pages.size());
    for (const auto &[index, page] : other._pages)
        _pages.emplace(index, std::make_unique<Page>(*page));
    _poison = other._poison;
    return *this;
}

MemoryImage::Page &
MemoryImage::touch(Addr page_index)
{
    auto it = _pages.find(page_index);
    if (it == _pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = _pages.emplace(page_index, std::move(page)).first;
    }
    return *it->second;
}

const MemoryImage::Page *
MemoryImage::peek(Addr page_index) const
{
    auto it = _pages.find(page_index);
    return it == _pages.end() ? nullptr : it->second.get();
}

void
MemoryImage::read(Addr addr, void *out, std::size_t n) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (n > 0) {
        const Addr page_index = pageBase(addr);
        const std::size_t off = pageOffset(addr);
        const std::size_t chunk = std::min(n, pageBytes - off);
        if (const Page *page = peek(page_index))
            std::memcpy(dst, page->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        n -= chunk;
    }
}

void
MemoryImage::write(Addr addr, const void *src, std::size_t n)
{
    // A write covering a whole poisoned line re-establishes valid ECC.
    if (!_poison.empty()) {
        for (Addr line = blockAlign(addr); line + blockSize <= addr + n;
             line += blockSize) {
            if (line >= addr)
                _poison.erase(line);
        }
    }
    const auto *from = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const Addr page_index = pageBase(addr);
        const std::size_t off = pageOffset(addr);
        const std::size_t chunk = std::min(n, pageBytes - off);
        std::memcpy(touch(page_index).data() + off, from, chunk);
        from += chunk;
        addr += chunk;
        n -= chunk;
    }
}

std::vector<Addr>
MemoryImage::poisonedLines() const
{
    std::vector<Addr> lines(_poison.begin(), _poison.end());
    std::sort(lines.begin(), lines.end());
    return lines;
}

std::vector<Addr>
MemoryImage::pageIndices() const
{
    std::vector<Addr> indices;
    indices.reserve(_pages.size());
    for (const auto &[index, page] : _pages)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    return indices;
}

const std::uint8_t *
MemoryImage::pageData(Addr page_index) const
{
    const Page *page = peek(page_index);
    return page ? page->data() : nullptr;
}

std::vector<MemoryImage::DiffEntry>
MemoryImage::diff(const MemoryImage &other,
                  std::size_t max_entries) const
{
    // The page maps are unordered; walk the sorted union of page
    // indices so the result is deterministic and address-ordered.
    std::vector<Addr> indices;
    indices.reserve(_pages.size() + other._pages.size());
    for (const auto &[index, page] : _pages)
        indices.push_back(index);
    for (const auto &[index, page] : other._pages) {
        if (_pages.find(index) == _pages.end())
            indices.push_back(index);
    }
    std::sort(indices.begin(), indices.end());

    std::vector<DiffEntry> entries;
    static const Page zeroPage{};
    for (const Addr index : indices) {
        const Page *lhs = peek(index);
        const Page *rhs = other.peek(index);
        if (lhs == nullptr)
            lhs = &zeroPage;
        if (rhs == nullptr)
            rhs = &zeroPage;
        if (lhs == rhs ||
            std::memcmp(lhs->data(), rhs->data(), pageBytes) == 0) {
            continue;
        }
        for (std::size_t off = 0; off < pageBytes; off += 8) {
            std::uint64_t l, r;
            std::memcpy(&l, lhs->data() + off, 8);
            std::memcpy(&r, rhs->data() + off, 8);
            if (l == r)
                continue;
            if (entries.size() >= max_entries)
                return entries;
            entries.push_back(DiffEntry{(index << pageBits) + off,
                                        l, r});
        }
    }
    return entries;
}

std::string
MemoryImage::formatDiff(const std::vector<DiffEntry> &entries,
                        std::size_t max_lines)
{
    std::string out;
    const std::size_t shown = std::min(entries.size(), max_lines);
    for (std::size_t i = 0; i < shown; ++i) {
        char line[96];
        std::snprintf(line, sizeof(line),
                      "  0x%012llx: 0x%016llx != 0x%016llx\n",
                      static_cast<unsigned long long>(entries[i].addr),
                      static_cast<unsigned long long>(entries[i].lhs),
                      static_cast<unsigned long long>(entries[i].rhs));
        out += line;
    }
    if (entries.size() > shown) {
        out += "  ... " + std::to_string(entries.size() - shown) +
               " more differing words\n";
    }
    return out;
}

std::uint64_t
MemoryImage::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
MemoryImage::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

} // namespace proteus
