#include "memory_image.hh"

namespace proteus {

MemoryImage::MemoryImage(const MemoryImage &other)
{
    *this = other;
}

MemoryImage &
MemoryImage::operator=(const MemoryImage &other)
{
    if (this == &other)
        return *this;
    _pages.clear();
    _pages.reserve(other._pages.size());
    for (const auto &[index, page] : other._pages)
        _pages.emplace(index, std::make_unique<Page>(*page));
    return *this;
}

MemoryImage::Page &
MemoryImage::touch(Addr page_index)
{
    auto it = _pages.find(page_index);
    if (it == _pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = _pages.emplace(page_index, std::move(page)).first;
    }
    return *it->second;
}

const MemoryImage::Page *
MemoryImage::peek(Addr page_index) const
{
    auto it = _pages.find(page_index);
    return it == _pages.end() ? nullptr : it->second.get();
}

void
MemoryImage::read(Addr addr, void *out, std::size_t n) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (n > 0) {
        const Addr page_index = pageBase(addr);
        const std::size_t off = pageOffset(addr);
        const std::size_t chunk = std::min(n, pageBytes - off);
        if (const Page *page = peek(page_index))
            std::memcpy(dst, page->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        n -= chunk;
    }
}

void
MemoryImage::write(Addr addr, const void *src, std::size_t n)
{
    const auto *from = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const Addr page_index = pageBase(addr);
        const std::size_t off = pageOffset(addr);
        const std::size_t chunk = std::min(n, pageBytes - off);
        std::memcpy(touch(page_index).data() + off, from, chunk);
        from += chunk;
        addr += chunk;
        n -= chunk;
    }
}

std::uint64_t
MemoryImage::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
MemoryImage::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

} // namespace proteus
