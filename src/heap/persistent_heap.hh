/**
 * @file
 * The simulated persistent heap.
 *
 * Programs (the workloads) allocate and manipulate data here through
 * typed reads and writes against the volatile image. The NVM image is
 * only updated by the timing simulation when a write actually becomes
 * durable; crash injection snapshots the NVM image plus whatever the
 * battery-backed queues would drain (Section 2.1, ADR).
 *
 * Address map:
 *   [volatileBase, persistentBase)  - volatile allocations (locks, misc)
 *   [persistentBase, logBase)       - persistent data allocations
 *   [logBase, ...)                  - per-thread log areas (Section 4.1)
 */

#ifndef PROTEUS_HEAP_PERSISTENT_HEAP_HH
#define PROTEUS_HEAP_PERSISTENT_HEAP_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "memory_image.hh"
#include "sim/types.hh"

namespace proteus {

/** Simple exact-fit free-list allocator over a bump region. */
class RegionAllocator
{
  public:
    RegionAllocator(Addr base, Addr limit);

    /** Allocate @p bytes aligned to @p align (power of two). */
    Addr allocate(std::size_t bytes, std::size_t align = 8);

    /** Return a block to the exact-size free list. */
    void release(Addr addr, std::size_t bytes);

    Addr base() const { return _base; }
    Addr frontier() const { return _next; }
    std::uint64_t liveBytes() const { return _liveBytes; }

    /** Complete mutable state, for heap snapshot serialization. */
    struct State
    {
        Addr next = 0;
        std::uint64_t liveBytes = 0;
        /** (size, addresses) free bins, sorted by size for stable
         *  serialization. */
        std::vector<std::pair<std::size_t, std::vector<Addr>>> freeBins;
    };

    State state() const;
    void restore(const State &s);

  private:
    Addr _base;
    Addr _limit;
    Addr _next;
    std::uint64_t _liveBytes = 0;
    std::map<std::size_t, std::vector<Addr>> _freeBins;
};

/** The byte-addressable persistent main memory seen by workloads. */
class PersistentHeap
{
  public:
    static constexpr Addr volatileBase = 0x0000'0000'0001'0000ull;
    static constexpr Addr persistentBase = 0x0000'0000'4000'0000ull;
    static constexpr Addr logBase = 0x0000'0001'4000'0000ull;
    static constexpr Addr logLimit = 0x0000'0001'8000'0000ull;

    PersistentHeap();

    /** Allocate persistent memory (node storage etc.). */
    Addr alloc(std::size_t bytes, std::size_t align = 8);
    void free(Addr addr, std::size_t bytes);

    /** Allocate volatile memory (locks, scratch). */
    Addr allocVolatile(std::size_t bytes, std::size_t align = 8);

    /** Carve out one per-thread circular log area (Section 4.1). */
    Addr allocLogArea(std::size_t bytes);

    /**
     * A shared read-only arena, larger than the last-level cache, used
     * to model the cold NVM reads real operations perform. Created on
     * first use.
     */
    Addr chaseArena();
    static constexpr std::size_t chaseArenaBytes = 64ull << 20;

    /** @return true if @p addr lies in the persistent data region. */
    static bool
    isPersistent(Addr addr)
    {
        return addr >= persistentBase;
    }

    /** @return true if @p addr lies inside a log area. */
    static bool
    isLogArea(Addr addr)
    {
        return addr >= logBase && addr < logLimit;
    }

    /** Typed access to the volatile (program-visible) image. */
    template <typename T>
    T
    read(Addr addr) const
    {
        T v{};
        _volatileImage.read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        _volatileImage.write(addr, &value, sizeof(T));
    }

    void readBytes(Addr addr, void *out, std::size_t n) const
    {
        _volatileImage.read(addr, out, n);
    }
    void writeBytes(Addr addr, const void *src, std::size_t n)
    {
        _volatileImage.write(addr, src, n);
    }

    MemoryImage &volatileImage() { return _volatileImage; }
    const MemoryImage &volatileImage() const { return _volatileImage; }
    MemoryImage &nvmImage() { return _nvmImage; }
    const MemoryImage &nvmImage() const { return _nvmImage; }

    /**
     * Fast-forward: declare the current volatile contents durable. Used
     * after functional warmup (the paper's InitOps) before timing starts.
     */
    void syncNvmToVolatile() { _nvmImage = _volatileImage; }

    /**
     * Allocator-side mutable state (images excluded), captured for the
     * .ptrace heap section so a deserialized heap can keep allocating —
     * in particular the ATOM per-core log areas FullSystem carves at
     * wiring time must land at the same addresses as in the recording
     * process.
     */
    struct AllocState
    {
        RegionAllocator::State volatileAlloc;
        RegionAllocator::State persistentAlloc;
        Addr nextLogArea = logBase;
        Addr chaseArena = invalidAddr;
    };

    AllocState allocState() const;
    void restoreAllocState(const AllocState &s);

  private:
    MemoryImage _volatileImage;
    MemoryImage _nvmImage;
    RegionAllocator _volatileAlloc;
    RegionAllocator _persistentAlloc;
    Addr _nextLogArea;
    Addr _chaseArena = invalidAddr;
};

} // namespace proteus

#endif // PROTEUS_HEAP_PERSISTENT_HEAP_HH
