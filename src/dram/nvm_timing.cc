#include "nvm_timing.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace proteus {

NvmTiming::NvmTiming(const MemTimingConfig &cfg,
                     stats::StatRegistry &stats, const std::string &name)
    : _cfg(cfg), _banks(cfg.banks),
      _reads(stats, name + ".reads", "memory read accesses"),
      _writes(stats, name + ".writes", "memory write accesses"),
      _rowHits(stats, name + ".rowHits", "row buffer hits"),
      _rowMisses(stats, name + ".rowMisses", "accesses to closed rows"),
      _rowConflicts(stats, name + ".rowConflicts", "row buffer conflicts")
{
    if (cfg.banks == 0)
        fatal("NvmTiming: need at least one bank");
    if (cfg.cpuPerMemCycle <= 0)
        fatal("NvmTiming: cpuPerMemCycle must be positive");
}

Tick
NvmTiming::memCycles(unsigned mem_cycles) const
{
    return static_cast<Tick>(
        std::llround(mem_cycles * _cfg.cpuPerMemCycle));
}

unsigned
NvmTiming::bankIndex(Addr addr) const
{
    // XOR-fold the row index into the bank bits (permutation-based
    // interleaving) so distinct hot regions spread across banks.
    const std::uint64_t col_group = addr / _cfg.rowBufferBytes;
    const std::uint64_t row = col_group / _cfg.banks;
    return static_cast<unsigned>((col_group ^ row) % _cfg.banks);
}

std::uint64_t
NvmTiming::rowIndex(Addr addr) const
{
    return addr / (static_cast<std::uint64_t>(_cfg.rowBufferBytes) *
                   _cfg.banks);
}

bool
NvmTiming::bankReady(Addr addr, Tick now) const
{
    return _banks[bankIndex(addr)].readyAt <= now;
}

bool
NvmTiming::rowHit(Addr addr) const
{
    const Bank &bank = _banks[bankIndex(addr)];
    return bank.rowOpen && bank.openRow == rowIndex(addr);
}

Tick
NvmTiming::reserveActivateSlot(Tick earliest)
{
    // Enforce tRRD between activates and at most four activates per
    // tFAW window. Only activates scheduled at or before the candidate
    // time constrain it: a long NVM activate reserved far in the
    // future must not serialize earlier activates on other banks.
    Tick t = earliest;
    const Tick rrd = memCycles(_cfg.tRRD);
    const Tick faw = memCycles(_cfg.tFAW);

    bool moved = true;
    while (moved) {
        moved = false;
        Tick last_before = 0;
        unsigned in_faw = 0;
        Tick oldest_in_faw = 0;
        for (Tick a : _recentActivates) {
            if (a > t)
                continue;
            last_before = std::max(last_before, a);
            if (a + faw > t) {
                if (in_faw == 0)
                    oldest_in_faw = a;
                ++in_faw;
            }
        }
        if (last_before != 0 && last_before + rrd > t) {
            t = last_before + rrd;
            moved = true;
        } else if (in_faw >= 4) {
            t = oldest_in_faw + faw;
            moved = true;
        }
    }

    // Keep the window sorted and small.
    auto pos = std::lower_bound(_recentActivates.begin(),
                                _recentActivates.end(), t);
    _recentActivates.insert(pos, t);
    while (_recentActivates.size() > 8)
        _recentActivates.pop_front();
    return t;
}

Tick
NvmTiming::issue(Addr addr, bool is_write, Tick now)
{
    Bank &bank = _banks[bankIndex(addr)];
    const std::uint64_t row = rowIndex(addr);

    if (bank.readyAt > now)
        panic("NvmTiming::issue on a busy bank");

    // Row activation latency: in NVM mode this is where the slow cell
    // array shows up, per access direction (Section 5.1).
    const unsigned t_rcd = !_cfg.nvmMode ? _cfg.tRCD
        : (is_write ? _cfg.nvmWriteTRCD : _cfg.nvmReadTRCD);

    Tick data_start = now;
    if (bank.rowOpen && bank.openRow == row) {
        // Row-buffer hit: accesses stream at CAS + burst rate.
        ++_rowHits;
        data_start = now + memCycles(_cfg.tCAS);
    } else if (!bank.rowOpen) {
        ++_rowMisses;
        const Tick act = reserveActivateSlot(now);
        bank.activatedAt = act;
        data_start = act + memCycles(t_rcd) + memCycles(_cfg.tCAS);
    } else {
        ++_rowConflicts;
        // Precharge may not start before tRAS since the last activate
        // nor before read-to-precharge / write recovery have elapsed.
        const Tick pre_start = std::max(
            {now, bank.activatedAt + memCycles(_cfg.tRAS),
             bank.prechargeReadyAt});
        const Tick act =
            reserveActivateSlot(pre_start + memCycles(_cfg.tRP));
        bank.activatedAt = act;
        data_start = act + memCycles(t_rcd) + memCycles(_cfg.tCAS);
    }
    bank.rowOpen = true;
    bank.openRow = row;

    // Serialize on the shared data bus.
    data_start = std::max(data_start, _busFreeAt);
    const Tick data_end = data_start + memCycles(_cfg.tBurst);
    _busFreeAt = data_end;

    // CAS commands pipeline: the next column access to the open row
    // may issue one burst after this one, even though its data arrives
    // a full CAS latency later. tWR / tRTP gate only a later precharge.
    bank.readyAt = data_start - memCycles(_cfg.tCAS) +
                   memCycles(_cfg.tBurst);
    const unsigned to_pre = is_write ? _cfg.tWR : _cfg.tRTP;
    bank.prechargeReadyAt =
        std::max(bank.prechargeReadyAt, data_end + memCycles(to_pre));

    if (is_write) {
        ++_writes;
        return data_end + memCycles(_cfg.tWR);
    }
    ++_reads;
    return data_end;
}

std::uint64_t
NvmTiming::totalWrites() const
{
    return static_cast<std::uint64_t>(_writes.value());
}

std::uint64_t
NvmTiming::totalReads() const
{
    return static_cast<std::uint64_t>(_reads.value());
}

} // namespace proteus
