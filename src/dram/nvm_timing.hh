/**
 * @file
 * Bank-level main-memory timing model (DRAMSim2-lite).
 *
 * Models per-bank row buffers, activate/precharge/CAS timing, write
 * recovery, activation-window constraints (tRRD/tFAW), and a shared data
 * bus. All external times are CPU ticks; Table 1 parameters are memory
 * cycles converted by cpuPerMemCycle. In NVM mode the row activation
 * time (tRCD) is replaced per access direction with the paper's NVM
 * latencies: 29 memory cycles for reads, 109 for writes (50 ns / 150 ns
 * at 800 MHz); row-buffer hits remain DRAM-fast.
 */

#ifndef PROTEUS_DRAM_NVM_TIMING_HH
#define PROTEUS_DRAM_NVM_TIMING_HH

#include <deque>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {

/** Passive bank/bus timing calculator driven by the memory controller. */
class NvmTiming
{
  public:
    NvmTiming(const MemTimingConfig &cfg, stats::StatRegistry &stats,
              const std::string &name);

    /** @return bank index servicing @p addr. */
    unsigned bankIndex(Addr addr) const;

    /** @return row index within the bank for @p addr. */
    std::uint64_t rowIndex(Addr addr) const;

    /** @return true if the bank can accept a command at @p now. */
    bool bankReady(Addr addr, Tick now) const;

    /** @return the tick at which @p addr's bank accepts its next
     *  command (quiescence wake hints). */
    Tick
    bankReadyAt(Addr addr) const
    {
        return _banks[bankIndex(addr)].readyAt;
    }

    /** @return true if @p addr hits the currently open row. */
    bool rowHit(Addr addr) const;

    /**
     * Issue one 64B access. The bank must be ready (bankReady). Returns
     * the tick at which the access completes: data returned for reads,
     * write recovery done for writes.
     */
    Tick issue(Addr addr, bool is_write, Tick now);

    /** Totals used by the Figure 8 write-count study. */
    std::uint64_t totalWrites() const;
    std::uint64_t totalReads() const;

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick readyAt = 0;       ///< next command accepted at/after this
        Tick activatedAt = 0;   ///< last activate (for tRAS)
        Tick prechargeReadyAt = 0;  ///< earliest precharge (tWR/tRTP)
    };

    Tick memCycles(unsigned mem_cycles) const;
    Tick reserveActivateSlot(Tick earliest);

    MemTimingConfig _cfg;
    std::vector<Bank> _banks;
    Tick _busFreeAt = 0;
    std::deque<Tick> _recentActivates;  ///< for tRRD / tFAW

    stats::Scalar _reads;
    stats::Scalar _writes;
    stats::Scalar _rowHits;
    stats::Scalar _rowMisses;
    stats::Scalar _rowConflicts;
};

} // namespace proteus

#endif // PROTEUS_DRAM_NVM_TIMING_HH
