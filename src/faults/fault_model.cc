#include "fault_model.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace proteus {
namespace faults {

namespace {

/** Torn writes persist 8-byte sub-chunks of the 64B line. */
constexpr unsigned tornChunk = 8;
constexpr unsigned tornChunks = blockSize / tornChunk;

/** Domain-separation salts for the per-purpose draw streams. */
constexpr std::uint64_t saltTorn = 0x746f726eull;       // "torn"
constexpr std::uint64_t saltTornMask = 0x6d61736bull;   // "mask"
constexpr std::uint64_t saltRead = 0x72656164ull;       // "read"
constexpr std::uint64_t saltReadBits = 0x62697473ull;   // "bits"
constexpr std::uint64_t saltStuck = 0x73747563ull;      // "stuc"

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace

FaultConfig
parseFaultSpec(const std::string &spec, const FaultConfig &base)
{
    FaultConfig cfg = base;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("--faults: expected key=value, got '", item, "'");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        try {
            if (key == "torn") {
                cfg.tornWriteRate = std::stod(val);
            } else if (key == "readflip") {
                cfg.readFlipRate = std::stod(val);
            } else if (key == "bits") {
                cfg.readFlipBitsMax =
                    static_cast<unsigned>(std::stoul(val));
            } else if (key == "endurance") {
                cfg.enduranceWrites = std::stoull(val);
            } else if (key == "stuck") {
                cfg.stuckBits = static_cast<unsigned>(std::stoul(val));
            } else if (key == "detect") {
                cfg.eccDetectBits =
                    static_cast<unsigned>(std::stoul(val));
            } else if (key == "correct") {
                cfg.eccCorrectBits =
                    static_cast<unsigned>(std::stoul(val));
            } else if (key == "retries") {
                cfg.readRetryLimit =
                    static_cast<unsigned>(std::stoul(val));
            } else if (key == "backoff") {
                cfg.retryBackoffBase =
                    static_cast<unsigned>(std::stoul(val));
            } else if (key == "seed") {
                cfg.seed = std::stoull(val);
            } else {
                fatal("--faults: unknown key '", key, "'");
            }
        } catch (const std::invalid_argument &) {
            fatal("--faults: bad value '", val, "' for key '", key, "'");
        } catch (const std::out_of_range &) {
            fatal("--faults: value out of range for key '", key, "'");
        }
    }
    if (cfg.tornWriteRate < 0.0 || cfg.tornWriteRate > 1.0 ||
        cfg.readFlipRate < 0.0 || cfg.readFlipRate > 1.0) {
        fatal("--faults: rates must lie in [0, 1]");
    }
    if (cfg.readFlipBitsMax == 0)
        fatal("--faults: bits must be >= 1");
    if (cfg.eccCorrectBits > cfg.eccDetectBits) {
        fatal("--faults: correct (", cfg.eccCorrectBits,
              ") must not exceed detect (", cfg.eccDetectBits, ")");
    }
    return cfg;
}

std::string
canonicalFaultSpec(const FaultConfig &cfg)
{
    std::string out;
    out += "torn=" + formatDouble(cfg.tornWriteRate);
    out += ",readflip=" + formatDouble(cfg.readFlipRate);
    out += ",bits=" + std::to_string(cfg.readFlipBitsMax);
    out += ",endurance=" + std::to_string(cfg.enduranceWrites);
    out += ",stuck=" + std::to_string(cfg.stuckBits);
    out += ",detect=" + std::to_string(cfg.eccDetectBits);
    out += ",correct=" + std::to_string(cfg.eccCorrectBits);
    out += ",retries=" + std::to_string(cfg.readRetryLimit);
    out += ",backoff=" + std::to_string(cfg.retryBackoffBase);
    out += ",seed=" + std::to_string(cfg.seed);
    return out;
}

FaultModel::FaultModel(const FaultConfig &cfg, stats::StatRegistry &stats)
    : _cfg(cfg),
      _tornWrites(stats, "faults.tornWrites",
                  "torn 64B line writes injected"),
      _wornWrites(stats, "faults.wornWrites",
                  "writes past the per-line endurance budget"),
      _readFaults(stats, "faults.readFaults",
                  "array read attempts that hit a fault"),
      _eccCorrected(stats, "faults.eccCorrected",
                    "faults corrected in line by ECC"),
      _eccDetected(stats, "faults.eccDetected",
                   "detected-but-uncorrectable fault events"),
      _silentFaults(stats, "faults.silentFaults",
                    "faults beyond ECC detection strength"),
      _readRetries(stats, "faults.readRetries",
                   "bounded-retry reads issued by the MC"),
      _retryBackoff(stats, "faults.retryBackoffCycles",
                    "cycles spent in read-retry backoff"),
      _retriesExhausted(stats, "faults.retriesExhausted",
                        "reads degraded after the retry budget"),
      _linesPoisoned(stats, "faults.linesPoisoned",
                     "lines marked poisoned (detected-uncorrectable)")
{
}

std::uint64_t
FaultModel::draw(std::uint64_t salt, Addr line,
                 std::uint64_t ordinal) const
{
    return mix(mix(mix(_cfg.seed ^ salt) ^ line) ^ ordinal);
}

double
FaultModel::drawUniform(std::uint64_t salt, Addr line,
                        std::uint64_t ordinal) const
{
    // 53 high-quality bits -> uniform double in [0, 1).
    return static_cast<double>(draw(salt, line, ordinal) >> 11) *
           0x1.0p-53;
}

WriteOutcome
FaultModel::applyWrite(MemoryImage &image, Addr addr,
                       const std::uint8_t *data)
{
    const Addr line = blockAlign(addr);
    LineState &st = _lines[line];
    ++st.writes;

    // Torn line write: only a deterministic subset of the 8-byte
    // sub-chunks reaches the medium; the rest keep their old contents.
    if (_cfg.tornWriteRate > 0.0 &&
        drawUniform(saltTorn, line, st.writes) < _cfg.tornWriteRate) {
        std::array<std::uint8_t, blockSize> merged;
        image.read(line, merged.data(), blockSize);
        std::uint64_t mask =
            draw(saltTornMask, line, st.writes) & ((1u << tornChunks) - 1);
        if (mask == 0)
            mask = 1;                           // at least one chunk lands
        if (mask == (1u << tornChunks) - 1)
            mask &= ~1ull;                      // at least one is lost
        for (unsigned c = 0; c < tornChunks; ++c) {
            if (mask & (1ull << c)) {
                std::memcpy(merged.data() + c * tornChunk,
                            data + c * tornChunk, tornChunk);
            }
        }
        image.write(line, merged.data(), blockSize);
        ++_tornWrites;
        if (_cfg.eccDetectBits > 0) {
            // The line's interleaved ECC no longer matches: detected.
            if (!image.isPoisoned(line))
                ++_linesPoisoned;
            image.markPoisoned(line);
            ++_eccDetected;
            return WriteOutcome::Torn;
        }
        ++_silentFaults;
        return WriteOutcome::Silent;
    }

    // Worn line: writes past the endurance budget hit stuck-at cells.
    if (_cfg.enduranceWrites > 0 && st.writes > _cfg.enduranceWrites &&
        _cfg.stuckBits > 0) {
        ++_wornWrites;
        std::array<std::uint8_t, blockSize> stored;
        std::memcpy(stored.data(), data, blockSize);
        // The line's stuck cells are fixed positions with fixed values;
        // only bits the incoming data disagrees with actually corrupt.
        unsigned flipped = 0;
        for (unsigned j = 0; j < _cfg.stuckBits; ++j) {
            const std::uint64_t d = draw(saltStuck + j, line, 0);
            const unsigned bit = static_cast<unsigned>(d % (blockSize * 8));
            const std::uint8_t stuckVal = (d >> 32) & 1;
            const unsigned byte = bit / 8;
            const std::uint8_t m =
                static_cast<std::uint8_t>(1u << (bit % 8));
            const std::uint8_t cur = (stored[byte] & m) ? 1 : 0;
            if (cur != stuckVal) {
                stored[byte] =
                    static_cast<std::uint8_t>(stored[byte] ^ m);
                ++flipped;
            }
        }
        if (flipped == 0) {
            image.write(line, data, blockSize);
            return WriteOutcome::Clean;
        }
        if (flipped <= _cfg.eccCorrectBits) {
            // ECC heals the flips on every read; store the intended
            // data (the functional view is the post-correction view).
            image.write(line, data, blockSize);
            ++_eccCorrected;
            return WriteOutcome::Corrected;
        }
        image.write(line, stored.data(), blockSize);
        if (flipped <= _cfg.eccDetectBits) {
            if (!image.isPoisoned(line))
                ++_linesPoisoned;
            image.markPoisoned(line);
            ++_eccDetected;
            return WriteOutcome::Uncorrectable;
        }
        ++_silentFaults;
        return WriteOutcome::Silent;
    }

    image.write(line, data, blockSize);
    return WriteOutcome::Clean;
}

ReadOutcome
FaultModel::classifyRead(const MemoryImage &image, Addr addr)
{
    const Addr line = blockAlign(addr);
    LineState &st = _lines[line];
    ++st.reads;

    // A poisoned line fails ECC on every attempt until rewritten.
    if (image.isPoisoned(line)) {
        ++_readFaults;
        ++_eccDetected;
        return ReadOutcome::Unrecoverable;
    }

    if (_cfg.readFlipRate <= 0.0 ||
        drawUniform(saltRead, line, st.reads) >= _cfg.readFlipRate) {
        return ReadOutcome::Clean;
    }

    ++_readFaults;
    const unsigned bits = 1 +
        static_cast<unsigned>(draw(saltReadBits, line, st.reads) %
                              _cfg.readFlipBitsMax);
    if (bits <= _cfg.eccCorrectBits) {
        ++_eccCorrected;
        return ReadOutcome::Corrected;
    }
    if (bits <= _cfg.eccDetectBits) {
        ++_eccDetected;
        return ReadOutcome::Transient;
    }
    ++_silentFaults;
    return ReadOutcome::Silent;
}

Tick
FaultModel::backoff(unsigned attempt) const
{
    const Tick base = std::max<Tick>(1, _cfg.retryBackoffBase);
    const unsigned shift = std::min(attempt, 16u);
    return base << shift;
}

void
FaultModel::noteRetry(Tick backoff_cycles)
{
    ++_readRetries;
    _retryBackoff += static_cast<double>(backoff_cycles);
}

void
FaultModel::noteRetriesExhausted(MemoryImage &image, Addr addr)
{
    const Addr line = blockAlign(addr);
    if (!image.isPoisoned(line)) {
        ++_linesPoisoned;
        image.markPoisoned(line);
    }
    ++_retriesExhausted;
}

FaultStatsSummary
FaultModel::summary(const MemoryImage &image) const
{
    FaultStatsSummary s;
    s.enabled = true;
    s.tornWrites = static_cast<std::uint64_t>(_tornWrites.value());
    s.wornWrites = static_cast<std::uint64_t>(_wornWrites.value());
    s.readFaults = static_cast<std::uint64_t>(_readFaults.value());
    s.eccCorrected = static_cast<std::uint64_t>(_eccCorrected.value());
    s.eccDetected = static_cast<std::uint64_t>(_eccDetected.value());
    s.silentFaults = static_cast<std::uint64_t>(_silentFaults.value());
    s.readRetries = static_cast<std::uint64_t>(_readRetries.value());
    s.retryBackoffCycles =
        static_cast<std::uint64_t>(_retryBackoff.value());
    s.retriesExhausted =
        static_cast<std::uint64_t>(_retriesExhausted.value());
    s.poisonedLines = image.poisonedCount();
    return s;
}

} // namespace faults
} // namespace proteus
