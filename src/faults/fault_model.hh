/**
 * @file
 * Seeded, deterministic NVM media fault model with an ECC view.
 *
 * The model sits at the MemCtrl/NvmTiming boundary: the controller
 * routes every completed array write through applyWrite() (which may
 * tear the line or hit worn cells) and classifies every completed
 * array read with classifyRead() (which may report a transient flip).
 * All randomness is a pure hash of (seed, line address, per-line
 * access ordinal) — never of simulated time — so the injected fault
 * stream is identical across --jobs levels and with cycle skipping on
 * or off, as long as the per-line access order is deterministic
 * (which the MC arbiter guarantees).
 *
 * ECC semantics per event: faults flipping at most eccCorrectBits are
 * corrected in line; flips within eccDetectBits are detected but
 * uncorrectable (the line is poisoned — see MemoryImage::isPoisoned —
 * and reads of it keep failing until the MC's bounded retry gives up);
 * flips beyond eccDetectBits are silent corruption, which downstream
 * checkers (oracle, invariants) must catch.
 */

#ifndef PROTEUS_FAULTS_FAULT_MODEL_HH
#define PROTEUS_FAULTS_FAULT_MODEL_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "fault_config.hh"
#include "heap/memory_image.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace proteus {
namespace faults {

/** What the medium did with one completed 64B array write. */
enum class WriteOutcome : std::uint8_t
{
    Clean,          ///< stored intact
    Torn,           ///< partial line persisted; line poisoned
    Corrected,      ///< worn cells flipped bits within ECC correction
    Uncorrectable,  ///< worn cells beyond correction; line poisoned
    Silent,         ///< corruption beyond ECC detection; NOT poisoned
};

/** What ECC saw on one completed array read attempt. */
enum class ReadOutcome : std::uint8_t
{
    Clean,          ///< no fault
    Corrected,      ///< transient flip corrected in line
    Transient,      ///< detected-uncorrectable transient; retry may clear
    Unrecoverable,  ///< poisoned line; every attempt fails
    Silent,         ///< flips beyond detection strength
};

/** Deterministic per-line fault injection and ECC classification. */
class FaultModel
{
  public:
    FaultModel(const FaultConfig &cfg, stats::StatRegistry &stats);

    /**
     * Route one completed 64B array write to @p image, possibly
     * corrupting it. Detected-uncorrectable outcomes poison the line in
     * @p image; a later clean full-line write heals it.
     */
    WriteOutcome applyWrite(MemoryImage &image, Addr addr,
                            const std::uint8_t *data);

    /**
     * Classify one completed array read attempt of the line at
     * @p addr. Transient/Unrecoverable outcomes ask the MC to retry
     * (bounded); Corrected/Silent outcomes complete immediately.
     */
    ReadOutcome classifyRead(const MemoryImage &image, Addr addr);

    /** Bounded-retry parameters for the MC. */
    unsigned retryLimit() const { return _cfg.readRetryLimit; }
    /** Backoff before retry number @p attempt (exponential, capped). */
    Tick backoff(unsigned attempt) const;

    /** Account one retry read and its backoff wait. */
    void noteRetry(Tick backoff_cycles);
    /**
     * The MC gave up on the line at @p addr: poison it (graceful
     * degradation — recovery will classify, never replay, its slots)
     * and count the exhaustion.
     */
    void noteRetriesExhausted(MemoryImage &image, Addr addr);

    /** Counter snapshot; @p image provides the live poisoned-line count. */
    FaultStatsSummary summary(const MemoryImage &image) const;

    const FaultConfig &config() const { return _cfg; }

  private:
    struct LineState
    {
        std::uint64_t writes = 0;
        std::uint64_t reads = 0;
    };

    /** Pure draw: hash of (seed, salt, line, ordinal). */
    std::uint64_t draw(std::uint64_t salt, Addr line,
                       std::uint64_t ordinal) const;
    /** draw() folded to a uniform double in [0, 1). */
    double drawUniform(std::uint64_t salt, Addr line,
                       std::uint64_t ordinal) const;

    FaultConfig _cfg;
    std::unordered_map<Addr, LineState> _lines;

    stats::Scalar _tornWrites;
    stats::Scalar _wornWrites;
    stats::Scalar _readFaults;
    stats::Scalar _eccCorrected;
    stats::Scalar _eccDetected;
    stats::Scalar _silentFaults;
    stats::Scalar _readRetries;
    stats::Scalar _retryBackoff;
    stats::Scalar _retriesExhausted;
    stats::Scalar _linesPoisoned;
};

} // namespace faults
} // namespace proteus

#endif // PROTEUS_FAULTS_FAULT_MODEL_HH
