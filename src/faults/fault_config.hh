/**
 * @file
 * Configuration of the NVM media fault model and the MC-side
 * resilience layer (ECC strength, bounded read retry).
 *
 * This header is dependency-free (cstdint/string only) so that
 * SystemConfig can embed a FaultConfig without dragging the faults
 * library into the base sim library; the model itself, the spec
 * parser, and the canonical printer live in proteus_faults.
 */

#ifndef PROTEUS_FAULTS_FAULT_CONFIG_HH
#define PROTEUS_FAULTS_FAULT_CONFIG_HH

#include <cstdint>
#include <string>

namespace proteus {
namespace faults {

/**
 * Media fault rates and MC resilience knobs. All draws inside the
 * model are pure functions of (seed, line, per-line access ordinal),
 * never of simulated time, so fault outcomes are bit-identical across
 * --jobs levels and with cycle skipping on or off.
 *
 * Spec grammar (--faults): comma-separated key=value pairs —
 *   torn=RATE       per-write probability of a torn 64B line write
 *   readflip=RATE   per-read probability of transient bit flips
 *   bits=N          max flipped bits per transient read fault (>=1)
 *   endurance=N     per-line write budget; writes beyond it hit
 *                   stuck-at cells (0 = unlimited endurance)
 *   stuck=N         stuck-at bits per worn-line write
 *   detect=N        ECC detection strength in bits (faults flipping
 *                   more bits than this are *silent*)
 *   correct=N       ECC correction strength in bits (<= detect)
 *   retries=N       bounded read-retry attempts before the line is
 *                   declared unrecoverable
 *   backoff=N       base retry backoff in cycles (doubles per attempt)
 *   seed=N          fault-stream seed (also --fault-seed)
 * Example: --faults torn=1e-3,readflip=1e-4,detect=8,correct=1
 */
struct FaultConfig
{
    double tornWriteRate = 0.0;     ///< torn 64B line write probability
    double readFlipRate = 0.0;      ///< transient read fault probability
    unsigned readFlipBitsMax = 2;   ///< max bits flipped per read fault
    std::uint64_t enduranceWrites = 0;  ///< per-line budget; 0 = infinite
    unsigned stuckBits = 2;         ///< stuck-at bits on worn writes
    unsigned eccDetectBits = 8;     ///< ECC detection strength (bits)
    unsigned eccCorrectBits = 1;    ///< ECC correction strength (bits)
    unsigned readRetryLimit = 4;    ///< bounded retry attempts per read
    unsigned retryBackoffBase = 16; ///< cycles; doubles per attempt
    std::uint64_t seed = 1;         ///< fault-stream seed

    /** @return true if any fault mechanism can fire. */
    bool
    enabled() const
    {
        return tornWriteRate > 0.0 || readFlipRate > 0.0 ||
               enduranceWrites > 0;
    }
};

/** Parse a --faults spec on top of @p base; throws FatalError on bad
 *  keys/values (defined in the faults library). */
FaultConfig parseFaultSpec(const std::string &spec,
                           const FaultConfig &base = FaultConfig{});

/** Canonical spec string round-tripping through parseFaultSpec. */
std::string canonicalFaultSpec(const FaultConfig &cfg);

/**
 * Counter snapshot of one run's fault activity; plain data so RunResult
 * and tx-stats rows can carry it without linking the faults library.
 */
struct FaultStatsSummary
{
    bool enabled = false;
    std::uint64_t tornWrites = 0;       ///< torn line writes injected
    std::uint64_t wornWrites = 0;       ///< writes past the endurance budget
    std::uint64_t readFaults = 0;       ///< faulted read attempts (all kinds)
    std::uint64_t eccCorrected = 0;     ///< faults corrected in-line by ECC
    std::uint64_t eccDetected = 0;      ///< detected-but-uncorrectable events
    std::uint64_t silentFaults = 0;     ///< faults beyond ECC detection
    std::uint64_t readRetries = 0;      ///< retry reads issued by the MC
    std::uint64_t retryBackoffCycles = 0;   ///< cycles spent backing off
    std::uint64_t retriesExhausted = 0; ///< reads degraded after max retries
    std::uint64_t poisonedLines = 0;    ///< lines poisoned at snapshot time
};

} // namespace faults
} // namespace proteus

#endif // PROTEUS_FAULTS_FAULT_CONFIG_HH
