/**
 * @file
 * Minimal JSON emission helpers shared by every machine-readable dump
 * (stats registry, interval sampler, trace-event sink, result rows).
 * Only writing is supported; the simulator never parses JSON.
 */

#ifndef PROTEUS_SIM_JSON_UTIL_HH
#define PROTEUS_SIM_JSON_UTIL_HH

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace proteus {
namespace json {

/** Append @p s to @p out with JSON string escaping (no quotes added). */
inline void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** @return @p s as a quoted, escaped JSON string literal. */
inline std::string
quoted(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    appendEscaped(out, s);
    out += '"';
    return out;
}

/**
 * Write @p v as a JSON number. NaN and infinities are not representable
 * in JSON and would corrupt the document, so they are mapped to null.
 */
inline void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        os << "null";
    else
        os << v;
}

} // namespace json
} // namespace proteus

#endif // PROTEUS_SIM_JSON_UTIL_HH
