#include "trace_events.hh"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "json_util.hh"
#include "logging.hh"

namespace proteus {

TraceEventSink::TraceEventSink(std::string path, unsigned categories,
                               std::size_t capacity)
    : _path(std::move(path)), _categories(categories),
      _capacity(capacity ? capacity : 1)
{
    if ((_categories & TraceCatAll) == 0)
        fatal("TraceEventSink: empty category mask; nothing to trace");
}

std::uint32_t
TraceEventSink::defineTrack(const std::string &name)
{
    _tracks.push_back(name);
    return static_cast<std::uint32_t>(_tracks.size());  // tids from 1
}

void
TraceEventSink::push(Event &&e)
{
    if (_ring.size() < _capacity) {
        _ring.push_back(std::move(e));
        return;
    }
    _ring[_head] = std::move(e);
    _head = (_head + 1) % _capacity;
    ++_dropped;
}

void
TraceEventSink::complete(unsigned cat, std::uint32_t track,
                         std::string name, Tick start, Tick end)
{
    if (!wants(cat))
        return;
    Event e;
    e.phase = 'X';
    e.cat = cat;
    e.track = track;
    e.name = std::move(name);
    e.ts = start;
    e.dur = end >= start ? end - start : 0;
    push(std::move(e));
}

void
TraceEventSink::instant(unsigned cat, std::uint32_t track,
                        std::string name, Tick ts)
{
    if (!wants(cat))
        return;
    Event e;
    e.phase = 'i';
    e.cat = cat;
    e.track = track;
    e.name = std::move(name);
    e.ts = ts;
    push(std::move(e));
}

void
TraceEventSink::counter(unsigned cat, std::uint32_t track,
                        std::string name, Tick ts, double value)
{
    if (!wants(cat))
        return;
    Event e;
    e.phase = 'C';
    e.cat = cat;
    e.track = track;
    e.name = std::move(name);
    e.ts = ts;
    e.value = value;
    push(std::move(e));
}

void
TraceEventSink::flow(unsigned cat, std::uint32_t track, std::string &&name,
                     Tick ts, std::uint64_t id, char phase)
{
    if (!wants(cat))
        return;
    Event e;
    e.phase = phase;
    e.cat = cat;
    e.track = track;
    e.name = std::move(name);
    e.ts = ts;
    e.id = id;
    push(std::move(e));
}

void
TraceEventSink::flowStart(unsigned cat, std::uint32_t track,
                          std::string name, Tick ts, std::uint64_t id)
{
    flow(cat, track, std::move(name), ts, id, 's');
}

void
TraceEventSink::flowStep(unsigned cat, std::uint32_t track,
                         std::string name, Tick ts, std::uint64_t id)
{
    flow(cat, track, std::move(name), ts, id, 't');
}

void
TraceEventSink::flowFinish(unsigned cat, std::uint32_t track,
                           std::string name, Tick ts, std::uint64_t id)
{
    flow(cat, track, std::move(name), ts, id, 'f');
}

std::size_t
TraceEventSink::size() const
{
    return _ring.size();
}

const char *
TraceEventSink::categoryName(unsigned cat)
{
    switch (cat) {
      case TraceCatCpu:     return "cpu";
      case TraceCatMemCtrl: return "memctrl";
      case TraceCatLog:     return "log";
      case TraceCatLock:    return "lock";
      case TraceCatFaults:  return "faults";
      default:              return "other";
    }
}

unsigned
TraceEventSink::parseCategories(const std::string &spec)
{
    unsigned mask = 0;
    std::istringstream in(spec);
    std::string token;
    while (std::getline(in, token, ',')) {
        if (token.empty())
            continue;
        if (token == "cpu")
            mask |= TraceCatCpu;
        else if (token == "memctrl")
            mask |= TraceCatMemCtrl;
        else if (token == "log")
            mask |= TraceCatLog;
        else if (token == "lock")
            mask |= TraceCatLock;
        else if (token == "faults")
            mask |= TraceCatFaults;
        else if (token == "all")
            mask |= TraceCatAll;
        else
            fatal("unknown trace category: ", token,
                  " (expected cpu, memctrl, log, lock, faults, or all)");
    }
    if (mask == 0)
        fatal("--trace-categories selected nothing");
    return mask;
}

void
TraceEventSink::write(std::ostream &os) const
{
    // Restore chronological order: [_head, end) is older than
    // [0, _head) once the ring has wrapped, then sort by timestamp so
    // every track reads in cycle order (complete events are recorded at
    // their *end* tick but carry their start as ts).
    std::vector<const Event *> events;
    events.reserve(_ring.size());
    for (std::size_t i = 0; i < _ring.size(); ++i)
        events.push_back(&_ring[(_head + i) % _ring.size()]);
    std::stable_sort(events.begin(), events.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    os << "{\"displayTimeUnit\": \"ns\", \"droppedEvents\": " << _dropped
       << ", \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    sep();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
       << "\"name\": \"process_name\", "
       << "\"args\": {\"name\": \"proteus-sim\"}}";
    if (_dropped > 0 && !events.empty()) {
        // Make the wrap visible in the viewer: a counter pinned at the
        // earliest retained timestamp records how many older events the
        // bounded ring overwrote.
        sep();
        os << "{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": "
           << events.front()->ts
           << ", \"cat\": \"other\", \"name\": \"droppedEvents\", "
           << "\"args\": {\"value\": " << _dropped << "}}";
    }
    for (std::size_t i = 0; i < _tracks.size(); ++i) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << (i + 1)
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           << json::quoted(_tracks[i]) << "}}";
    }

    for (const Event *e : events) {
        sep();
        os << "{\"ph\": \"" << e->phase << "\", \"pid\": 1, \"tid\": "
           << e->track << ", \"ts\": " << e->ts << ", \"cat\": \""
           << categoryName(e->cat) << "\", \"name\": "
           << json::quoted(e->name);
        if (e->phase == 'X')
            os << ", \"dur\": " << e->dur;
        else if (e->phase == 'i')
            os << ", \"s\": \"t\"";
        else if (e->phase == 's' || e->phase == 't' || e->phase == 'f') {
            os << ", \"id\": " << e->id;
            if (e->phase == 'f')
                os << ", \"bp\": \"e\"";
        } else if (e->phase == 'C') {
            os << ", \"args\": {\"value\": ";
            json::writeNumber(os, e->value);
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceEventSink::flush()
{
    if (_flushed || _path.empty())
        return;
    _flushed = true;
    std::ofstream os(_path);
    if (!os)
        fatal("cannot open --trace-events output file: ", _path);
    write(os);
    if (!os.flush())
        fatal("failed writing --trace-events output file: ", _path);
    if (_dropped > 0) {
        warn("trace ring buffer overflowed: dropped ", _dropped,
             " oldest events (raise the ring size or narrow "
             "--trace-categories)");
    }
}

} // namespace proteus
