/**
 * @file
 * System configuration structures. Default values reproduce Table 1 of
 * the paper (Skylake-like quad-core, DDR3-1600, NVM latency overrides)
 * and the Proteus structure sizes (8 LRs, 16-entry LogQ, 64-entry 8-way
 * LLT, 256-entry LPQ).
 */

#ifndef PROTEUS_SIM_CONFIG_HH
#define PROTEUS_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "faults/fault_config.hh"
#include "types.hh"

namespace proteus {

/**
 * Logging scheme under evaluation; matches the bars of Figure 6.
 */
enum class LogScheme
{
    PMEM,           ///< software undo logging, ADR (baseline of Fig. 6)
    PMEMPCommit,    ///< software undo logging with pcommit (no ADR)
    PMEMNoLog,      ///< logging removed entirely (the ideal upper bound)
    ATOM,           ///< hardware undo logging at store retirement [19]
    Proteus,        ///< SSHL with log write removal (this paper)
    ProteusNoLWR,   ///< SSHL without log write removal
};

/** @return a short printable name, e.g. "Proteus+NoLWR". */
const char *toString(LogScheme scheme);

/** Parse a scheme name (case-insensitive); throws FatalError if unknown. */
LogScheme parseScheme(const std::string &name);

/** @return true if the scheme uses software-generated logging code. */
bool isSoftwareScheme(LogScheme scheme);

/** Out-of-order core parameters (Table 1, "Processor" row). */
struct CpuConfig
{
    unsigned fetchWidth = 5;
    unsigned dispatchWidth = 5;
    unsigned issueWidth = 5;
    unsigned retireWidth = 5;
    unsigned robEntries = 224;
    unsigned fetchQueueEntries = 48;
    unsigned issueQueueEntries = 64;
    unsigned loadQueueEntries = 72;
    unsigned storeQueueEntries = 56;
    unsigned storeBufferEntries = 56;   ///< post-retirement store buffer
    unsigned intAluCount = 4;
    unsigned intMulCount = 1;
    unsigned memPortCount = 2;          ///< loads/stores issued per cycle
    unsigned intAluLatency = 1;
    unsigned intMulLatency = 3;
    unsigned branchMispredictPenalty = 14;
    unsigned branchPredictorBits = 12;  ///< gshare table = 2^bits entries
    unsigned physIntRegs = 180;         ///< physical integer registers
};

/** One cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned latency = 4;       ///< access (hit) latency in cycles
    unsigned mshrs = 16;
    unsigned writebackBuffers = 16;
};

/** Whole memory-hierarchy shape (Table 1 cache rows). */
struct HierarchyConfig
{
    CacheConfig l1d{32 * 1024, 8, 4, 16, 16};
    CacheConfig l2{256 * 1024, 8, 12, 24, 24};
    CacheConfig l3{8 * 1024 * 1024, 16, 42, 48, 48};
    /** L3-to-MC link width in bytes per CPU cycle (Table 1). */
    unsigned l3ToMcBytesPerCycle = 16;
};

/**
 * DRAM timing (Table 1): DDR3-1600 at 800 MHz with a 3.4 GHz core. All
 * parameters are expressed in *memory* clock cycles and converted with
 * cpuPerMemCycle. NVM mode overrides tRCD per direction, following the
 * paper (50 ns read / 150 ns write at 800 MHz = 29 / 109 memory cycles).
 */
struct MemTimingConfig
{
    bool nvmMode = true;
    double cpuPerMemCycle = 4.25;   ///< 3.4 GHz / 800 MHz

    unsigned banks = 16;
    unsigned rowBufferBytes = 2048;
    std::uint64_t capacityBytes = 8ull << 30;

    unsigned tCAS = 11;
    unsigned tRCD = 11;
    unsigned tRP = 11;
    unsigned tRAS = 28;
    unsigned tRC = 39;
    unsigned tWR = 12;
    unsigned tWTR = 6;
    unsigned tRTP = 6;
    unsigned tRRD = 5;
    unsigned tFAW = 24;
    unsigned tBurst = 4;            ///< data-bus occupancy per 64B access

    unsigned nvmReadTRCD = 29;      ///< ~50 ns at 800 MHz
    unsigned nvmWriteTRCD = 109;    ///< ~150 ns at 800 MHz
};

/** Memory-controller queues and the persistency domain boundary. */
struct MemCtrlConfig
{
    unsigned readQueueEntries = 64;
    unsigned wpqEntries = 64;
    unsigned lpqEntries = 256;      ///< Proteus LPQ (Table 1)
    /**
     * ADR: WPQ/LPQ are battery-backed and inside the persistency domain,
     * so writes are durable on queue acceptance. When false, durability
     * requires NVM writeback and pcommit drains the WPQ (PMEM+pcommit).
     */
    bool adr = true;
    /** Drain regular writes when WPQ occupancy exceeds this fraction. */
    double wpqDrainThreshold = 0.5;
    /** Drain log writes when LPQ occupancy exceeds this fraction
     *  (Proteus keeps logs queued as long as possible). */
    double lpqDrainThreshold = 0.9;
};

/** Proteus / ATOM hardware structure sizes (Table 1, "Proteus" row). */
struct LoggingConfig
{
    LogScheme scheme = LogScheme::Proteus;
    unsigned logRegisters = 8;
    unsigned logQEntries = 16;
    unsigned lltEntries = 64;
    unsigned lltWays = 8;
    /** Per-thread circular log area size in bytes. */
    std::uint64_t logAreaBytes = 1ull << 20;
    /** ATOM: hardware log-truncation resource count; beyond this the MC
     *  falls back to manual one-by-one invalidation (Section 4.3). */
    unsigned atomTruncationEntries = 64;
};

/**
 * Observability hooks: interval stats sampling and trace-event output.
 * Both are off by default and cost nothing when off. Paths are per-run;
 * the parallel runner derives per-job file names for multi-job batches.
 */
struct ObservabilityConfig
{
    Tick statsInterval = 0;         ///< cycles between samples; 0 = off
    std::string statsOut;           ///< interval time-series file
    std::string traceEvents;        ///< Chrome Trace Event JSON file
    unsigned traceCategories = 0x1f;    ///< TraceCategory mask
    /** Trace ring-buffer capacity in events (oldest dropped beyond). */
    std::uint64_t traceRingEntries = 1ull << 18;
    /** Transaction flight-recorder output file ("" = recorder off
     *  unless txTrack forces it on). */
    std::string txStats;
    /** Run the flight recorder without writing a file (the parallel
     *  runner enables this and collects summaries in memory so a batch
     *  writes one combined file in submission order). */
    bool txTrack = false;
    /** Full event timelines retained for the K slowest transactions. */
    std::uint64_t txSlowest = 8;
};

/**
 * The online persistency-order checker (src/analysis/). Off by default
 * and entirely off the hot path when disabled: no checker object is
 * built and every instrumented site is a single null-pointer test.
 */
struct AnalysisConfig
{
    /** Build and attach the PersistChecker for this run. */
    bool check = false;
    /**
     * Mutation self-test: perturb the event stream targeting this rule
     * index (analysis::Rule) so the checker must flag it; -1 = off.
     */
    int mutateRule = -1;
    /** Seed selecting which qualifying edge the mutation hits. */
    std::uint64_t mutateSeed = 1;
    /** One-command repro line carried into violation reports. */
    std::string repro;
};

/** Top-level system description. */
struct SystemConfig
{
    unsigned cores = 4;
    CpuConfig cpu;
    HierarchyConfig caches;
    MemTimingConfig mem;
    MemCtrlConfig memCtrl;
    LoggingConfig logging;
    ObservabilityConfig obs;
    /** NVM media fault injection; disabled (all-zero rates) by default,
     *  in which case the MC builds no fault model and behavior is
     *  bit-identical to a faultless build. */
    faults::FaultConfig faults;
    /** Persistency-order checker wiring (src/analysis/). */
    AnalysisConfig analysis;
    std::uint64_t seed = 1;
    /**
     * Quiescence-driven cycle skipping in the simulation kernel. On by
     * default; results are bit-identical either way (the skip protocol
     * is observationally invisible), so this exists only as an escape
     * hatch and for A/B timing (`--no-cycle-skip`).
     */
    bool cycleSkip = true;

    /**
     * Apply a "key=value" override, e.g. "logging.logQEntries=8" or
     * "mem.nvmWriteTRCD=218". Throws FatalError on unknown keys.
     */
    void applyOverride(const std::string &spec);
};

/** @return the Table 1 baseline configuration (fast NVM). */
SystemConfig baselineConfig();

/** @return Table 1 with slow NVM writes (300 ns, Section 7.1). */
SystemConfig slowNvmConfig();

/** @return Table 1 with plain DRAM timing (NVDIMM study, Section 7.2). */
SystemConfig dramConfig();

} // namespace proteus

#endif // PROTEUS_SIM_CONFIG_HH
