/**
 * @file
 * Fundamental simulation types shared by every module.
 */

#ifndef PROTEUS_SIM_TYPES_HH
#define PROTEUS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace proteus {

/** Simulation time expressed in CPU clock cycles. */
using Tick = std::uint64_t;

/** A simulated (virtual) memory address. */
using Addr = std::uint64_t;

/** Identifier of a simulated hardware thread / core. */
using CoreId = std::uint32_t;

/** Identifier of a durable transaction. */
using TxId = std::uint64_t;

/** Sentinel for "never" / "no deadline". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Cache block size used throughout the system (matches Table 1). */
constexpr unsigned blockSize = 64;

/** Logging granularity: data bytes captured per log entry (Section 4.1). */
constexpr unsigned logDataSize = 32;

/** Full log entry size: 32B data + metadata, fits one cache block. */
constexpr unsigned logEntrySize = 64;

/** Align an address down to its cache block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockSize - 1);
}

/** Align an address down to the 32-byte logging granule (Section 4.1). */
constexpr Addr
logAlign(Addr a)
{
    return a & ~static_cast<Addr>(logDataSize - 1);
}

} // namespace proteus

#endif // PROTEUS_SIM_TYPES_HH
