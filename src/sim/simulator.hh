/**
 * @file
 * The cycle-driven simulation kernel.
 *
 * Components implement Ticked and register with the Simulator; every cycle
 * the kernel first fires due events from the EventQueue, then calls tick()
 * on each component in registration order. Registration order therefore
 * defines intra-cycle evaluation order and is chosen by the system builder
 * (memory first, then caches, then cores) so that responses produced this
 * cycle are visible to consumers next cycle.
 */

#ifndef PROTEUS_SIM_SIMULATOR_HH
#define PROTEUS_SIM_SIMULATOR_HH

#include <string>
#include <vector>

#include "event_queue.hh"
#include "stats.hh"
#include "types.hh"

namespace proteus {

class TraceEventSink;

/** Interface for components advanced once per simulated cycle. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance one cycle; @p now is the current tick. */
    virtual void tick(Tick now) = 0;

    /** Human-readable component name for diagnostics. */
    virtual const std::string &componentName() const = 0;

    /**
     * Quiescence hint: the earliest future cycle at which this component
     * could make progress without an intervening event, or @p now when it
     * is busy (or cannot prove idleness). Called after the component has
     * ticked at cycle @p now - 1; a return value w > now promises that
     * ticking the component at each cycle in [now, w) would change no
     * state and would bump exactly the same per-cycle stats as the last
     * tick did (see accountSkipped). External state changes delivered by
     * events need not be anticipated — the kernel never skips past a
     * scheduled event. The default is maximally conservative: always busy.
     */
    virtual Tick nextWake(Tick now) { return now; }

    /**
     * The kernel decided cycles [from, to) will not be ticked (every
     * component was quiescent). Account cycle-denominated stats exactly
     * as if tick() had run for each skipped cycle, so skipping is
     * observationally invisible.
     */
    virtual void
    accountSkipped(Tick from, Tick to)
    {
        (void)from;
        (void)to;
    }
};

/** Owns simulated time, the event queue, and the stat registry. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component; evaluation happens in registration order. */
    void addTicked(Ticked *component);

    /** Current simulated tick (CPU cycles). */
    Tick now() const { return _now; }

    EventQueue &events() { return _events; }
    stats::StatRegistry &statsRegistry() { return _stats; }

    /**
     * Trace-event sink, or nullptr when tracing is off (the default).
     * Set by the system builder before components are constructed so
     * they can define their tracks; components must null-check on every
     * emission path.
     */
    TraceEventSink *trace() const { return _trace; }
    void setTraceSink(TraceEventSink *sink) { _trace = sink; }

    /** Schedule a callback @p delay cycles in the future. */
    void schedule(Tick delay, EventQueue::Callback cb);

    /** Advance exactly @p cycles cycles. */
    void run(Tick cycles);

    /**
     * Run until @p done returns true or @p maxCycles elapse.
     * @return true if @p done was satisfied, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Tick maxCycles);

    /** Request that run()/runUntil() stop at the end of this cycle. */
    void requestStop() { _stopRequested = true; }

    /**
     * Enable/disable quiescence-driven cycle skipping (on by default).
     * When on, the run loops fast-forward _now past stretches where every
     * component reports a future nextWake() and no event is due; skipped
     * cycles are accounted via Ticked::accountSkipped so results are
     * bit-identical either way.
     */
    void setCycleSkip(bool on) { _cycleSkip = on; }
    bool cycleSkip() const { return _cycleSkip; }

    /**
     * Kernel work counters. Deliberately plain members rather than
     * StatRegistry stats: registry scalars leak into interval-stats
     * output and stat dumps, which must stay bit-identical with skipping
     * on and off.
     */
    std::uint64_t skippedCycles() const { return _skippedCycles; }
    std::uint64_t kernelSteps() const { return _kernelSteps; }

  private:
    /**
     * Advance one cycle. Inline so the run loops see the whole body;
     * EventQueue::runUntil's inline fast path compares the cached
     * next-due-event tick (heap front) and skips the queue entirely on
     * idle cycles.
     */
    void
    stepOneCycle()
    {
        _events.runUntil(_now);
        for (Ticked *c : _components)
            c->tick(_now);
        ++_now;
        ++_kernelSteps;
    }

    /**
     * If every component is quiescent and no event is due, jump _now to
     * min(next event, earliest component wake, @p limit) after replaying
     * each component's per-cycle stat signature over the skipped span.
     */
    void skipIdleCycles(Tick limit);

    Tick _now = 0;
    bool _stopRequested = false;
    bool _cycleSkip = true;
    std::uint64_t _skippedCycles = 0;
    std::uint64_t _kernelSteps = 0;
    EventQueue _events;
    stats::StatRegistry _stats;
    TraceEventSink *_trace = nullptr;
    std::vector<Ticked *> _components;
};

} // namespace proteus

#endif // PROTEUS_SIM_SIMULATOR_HH
