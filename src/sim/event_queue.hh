/**
 * @file
 * Deterministic discrete-event queue used alongside the cycle-driven
 * component loop. Events scheduled for the same tick fire in scheduling
 * order (FIFO), which keeps multi-component interactions reproducible.
 *
 * Layout is optimized for the simulator's hot loop: the binary heap
 * holds small POD keys (tick, seq, slot index) so sift operations never
 * move std::function state, callbacks live in recycled slots so steady-
 * state scheduling does not grow storage, and runUntil() is an inline
 * two-compare no-op on the (overwhelmingly common) cycles where no
 * event is due.
 */

#ifndef PROTEUS_SIM_EVENT_QUEUE_HH
#define PROTEUS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "types.hh"

namespace proteus {

/** Callback-based event queue keyed by absolute tick. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute tick @p when. */
    void schedule(Tick when, Callback cb);

    /** Run every event scheduled at or before @p now, in order. */
    void
    runUntil(Tick now)
    {
        if (_heap.empty() || _heap.front().when > now)
            return;
        runDue(now);
    }

    /** @return tick of the earliest pending event, or maxTick if empty. */
    Tick
    nextEventTick() const
    {
        return _heap.empty() ? maxTick : _heap.front().when;
    }

    bool empty() const { return _heap.empty(); }
    std::size_t size() const { return _heap.size(); }

    /** Drop all pending events (used by crash injection). */
    void clear();

  private:
    /** Heap key; the callback lives in _slots[slot]. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const Key &a, const Key &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Out-of-line slow path: at least one event is due. */
    void runDue(Tick now);

    std::vector<Key> _heap;             ///< min-heap via std::push_heap
    std::vector<Callback> _slots;       ///< callback storage, recycled
    std::vector<std::uint32_t> _freeSlots;
    std::uint64_t _nextSeq = 0;
};

} // namespace proteus

#endif // PROTEUS_SIM_EVENT_QUEUE_HH
