/**
 * @file
 * Deterministic discrete-event queue used alongside the cycle-driven
 * component loop. Events scheduled for the same tick fire in scheduling
 * order (FIFO), which keeps multi-component interactions reproducible.
 */

#ifndef PROTEUS_SIM_EVENT_QUEUE_HH
#define PROTEUS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace proteus {

/** Callback-based event queue keyed by absolute tick. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute tick @p when. */
    void schedule(Tick when, Callback cb);

    /** Run every event scheduled at or before @p now, in order. */
    void runUntil(Tick now);

    /** @return tick of the earliest pending event, or maxTick if empty. */
    Tick nextEventTick() const;

    bool empty() const { return _heap.empty(); }
    std::size_t size() const { return _heap.size(); }

    /** Drop all pending events (used by crash injection). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::uint64_t _nextSeq = 0;
};

} // namespace proteus

#endif // PROTEUS_SIM_EVENT_QUEUE_HH
