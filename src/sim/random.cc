#include "random.hh"

#include "logging.hh"

namespace proteus {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

std::uint64_t
Random::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Random::nextBelow: zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Random::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo)
        panic("Random::nextRange: hi < lo");
    return lo + nextBelow(hi - lo + 1);
}

bool
Random::nextBool(double p)
{
    if (p <= 0)
        return false;
    if (p >= 1)
        return true;
    return nextDouble() < p;
}

double
Random::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace proteus
