#include "interval_stats.hh"

#include <fstream>

#include "json_util.hh"
#include "logging.hh"
#include "simulator.hh"
#include "stats.hh"

namespace proteus {

IntervalStatsSampler::IntervalStatsSampler(Simulator &sim, Tick interval,
                                           std::string outPath)
    : _sim(sim), _interval(interval), _outPath(std::move(outPath))
{
    if (_interval == 0)
        fatal("IntervalStatsSampler: interval must be positive");
}

void
IntervalStatsSampler::start()
{
    if (_started)
        panic("IntervalStatsSampler: started twice");
    _started = true;

    // Only Scalars are tracked: their deltas are meaningful and sum to
    // the end-of-run totals. Means, histograms, and formulas are
    // derived views better recomputed from the scalar series.
    for (const auto &[name, stat] : _sim.statsRegistry().all()) {
        const auto *scalar = dynamic_cast<const stats::Scalar *>(stat);
        if (!scalar)
            continue;
        _columns.push_back(name);
        _tracked.push_back(scalar);
        _prev.push_back(scalar->value());
    }
    _lastCapture = _sim.now();
    _sim.schedule(_interval, [this]() { fire(); });
}

void
IntervalStatsSampler::fire()
{
    capture(_sim.now());
    _sim.schedule(_interval, [this]() { fire(); });
}

void
IntervalStatsSampler::capture(Tick cycle)
{
    Row row;
    row.cycle = cycle;
    row.deltas.resize(_tracked.size());
    for (std::size_t i = 0; i < _tracked.size(); ++i) {
        const double v = _tracked[i]->value();
        row.deltas[i] = v - _prev[i];
        _prev[i] = v;
    }
    _rows.push_back(std::move(row));
    _lastCapture = cycle;
}

void
IntervalStatsSampler::finish()
{
    if (_finished)
        return;
    _finished = true;
    if (_started && _sim.now() > _lastCapture)
        capture(_sim.now());
    if (_outPath.empty())
        return;

    const bool json = _outPath.size() >= 5 &&
                      _outPath.compare(_outPath.size() - 5, 5,
                                       ".json") == 0;
    std::ofstream os(_outPath);
    if (!os)
        fatal("cannot open --stats-out output file: ", _outPath);
    write(os, json);
    if (!os.flush())
        fatal("failed writing --stats-out output file: ", _outPath);
}

void
IntervalStatsSampler::write(std::ostream &os, bool json) const
{
    if (json) {
        os << "{\n  \"interval\": " << _interval
           << ",\n  \"columns\": [";
        for (std::size_t i = 0; i < _columns.size(); ++i)
            os << (i ? ", " : "") << json::quoted(_columns[i]);
        os << "],\n  \"rows\": [";
        for (std::size_t r = 0; r < _rows.size(); ++r) {
            os << (r ? ",\n    " : "\n    ") << "{\"cycle\": "
               << _rows[r].cycle << ", \"deltas\": [";
            for (std::size_t i = 0; i < _rows[r].deltas.size(); ++i) {
                os << (i ? ", " : "");
                json::writeNumber(os, _rows[r].deltas[i]);
            }
            os << "]}";
        }
        os << "\n  ]\n}\n";
        return;
    }

    os << "cycle";
    for (const std::string &c : _columns)
        os << "," << c;
    os << "\n";
    for (const Row &row : _rows) {
        os << row.cycle;
        for (const double d : row.deltas)
            os << "," << d;
        os << "\n";
    }
}

} // namespace proteus
