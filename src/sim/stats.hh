/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Stats register themselves with a StatRegistry (owned by the Simulator or
 * created standalone for tests). Supported kinds: Scalar counters,
 * Averages, Distributions (histograms), and Formulas evaluated at dump
 * time. All stats carry a name and a description and can be dumped as
 * text or looked up programmatically by the experiment harness.
 */

#ifndef PROTEUS_SIM_STATS_HH
#define PROTEUS_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace proteus {
namespace stats {

class StatRegistry;

/** Common base for all statistics: name, description, reset/dump. */
class StatBase
{
  public:
    StatBase(StatRegistry &registry, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Primary value used by lookups and formulas. */
    virtual double value() const = 0;
    /** Clear accumulated state. */
    virtual void reset() = 0;
    /** Pretty-print one or more lines to @p os. */
    virtual void dump(std::ostream &os) const;
    /**
     * Write this stat's JSON value (the right-hand side of its
     * "name": ... entry). The default writes value() as a number,
     * mapping NaN/Inf to null; Distribution emits a full histogram
     * object.
     */
    virtual void dumpJsonValue(std::ostream &os) const;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically adjustable scalar counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator-=(double v) { _value -= v; return *this; }
    void set(double v) { _value = v; }

    double value() const override { return _value; }
    void reset() override { _value = 0; }

  private:
    double _value = 0;
};

/** Accumulates samples and reports their arithmetic mean. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { _sum += v; ++_count; }

    /** Record @p v as @p n identical samples (bulk replay of skipped
     *  cycles). Sample values are small integers, so the weighted sum
     *  is bit-identical to n individual sample() calls. */
    void
    sample(double v, std::uint64_t n)
    {
        _sum += v * static_cast<double>(n);
        _count += n;
    }

    double value() const override { return _count ? _sum / _count : 0; }
    std::uint64_t count() const { return _count; }
    void reset() override { _sum = 0; _count = 0; }
    void dump(std::ostream &os) const override;

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/**
 * A histogram over a fixed linear bucket range; samples outside the range
 * land in underflow/overflow buckets.
 *
 * Alongside the fixed linear buckets, every sample is also recorded in
 * an HDR-style value->count map: values with magnitude below
 * percentileExactMax are kept exactly; larger magnitudes are quantized
 * to 12 mantissa bits (relative error < 2^-12), so memory stays bounded
 * for arbitrarily long runs while percentile() remains exact over the
 * exact range and within 0.025% beyond it. max()/min() are always exact.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatRegistry &registry, std::string name, std::string desc,
                 double min, double max, unsigned buckets);

    void sample(double v);
    /** Record @p v as @p n identical samples. */
    void sample(double v, std::uint64_t n);

    double value() const override;   ///< mean of all samples
    double sum() const { return _sum; }
    double min() const { return _minSeen; }
    double max() const { return _maxSeen; }
    std::uint64_t count() const { return _count; }
    /** The HDR-style quantized value->count map behind percentile(). */
    const std::map<double, std::uint64_t> &quantized() const
    {
        return _quantized;
    }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /**
     * Nearest-rank percentile, @p p in [0, 100]. Exact for values below
     * percentileExactMax; within bounded relative error (2^-12) above.
     * Returns 0 with no samples; p=0 returns min(), p=100 returns max().
     */
    double percentile(double p) const;

    /**
     * Fold another distribution's samples into this one. Requires an
     * identical bucket configuration (lo/hi/bucket count); panics
     * otherwise. Percentile state merges exactly.
     */
    void merge(const Distribution &other);

    /** Magnitude bound below which percentile state is exact. */
    static constexpr double percentileExactMax = 8192.0;
    /** Quantization key for the percentile map (exposed for tests). */
    static double quantizeKey(double v);

    void reset() override;
    void dump(std::ostream &os) const override;
    void dumpJsonValue(std::ostream &os) const override;

  private:
    double _lo;
    double _hi;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0;
    double _minSeen = 0;
    double _maxSeen = 0;
    std::map<double, std::uint64_t> _quantized;
};

/** A stat computed from other stats at dump/lookup time. */
class Formula : public StatBase
{
  public:
    Formula(StatRegistry &registry, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const override { return _fn ? _fn() : 0; }
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * Owns nothing but tracks every stat created against it; supports lookup
 * by name, bulk reset, and a formatted dump.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Called by StatBase's constructor. */
    void add(StatBase *stat);
    /** Called by StatBase's destructor (stats may outlive registries in
     *  tests; removal is best-effort by name). */
    void remove(const StatBase *stat);

    /** @return the stat registered under @p name or nullptr. */
    const StatBase *find(const std::string &name) const;
    /** @return value of @p name; panics if the stat does not exist. */
    double lookup(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;
    /**
     * Machine-readable dump: a JSON object of name -> value. Names are
     * escaped, non-finite values become null, and Distributions emit
     * their full histogram (buckets, under/overflow, min/max).
     */
    void dumpJson(std::ostream &os) const;
    std::size_t size() const { return _stats.size(); }

    /** Registration map, for bulk consumers (interval sampler). */
    const std::map<std::string, StatBase *> &all() const
    {
        return _stats;
    }

  private:
    std::map<std::string, StatBase *> _stats;
};

} // namespace stats
} // namespace proteus

#endif // PROTEUS_SIM_STATS_HH
