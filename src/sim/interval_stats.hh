/**
 * @file
 * Event-queue-driven interval statistics sampler.
 *
 * Every N simulated cycles the sampler snapshots all Scalar stats in
 * the registry and records the per-interval *delta* of each, producing
 * a time series that shows when — not just how much — a scheme stalls,
 * writes NVM, or drops log entries. A final partial row is captured at
 * finish() so the deltas of every column sum exactly to the stat's
 * end-of-run total.
 *
 * Rows are held in memory (one row per interval) and written at
 * finish() as CSV or, when the output path ends in ".json", as a JSON
 * document {"interval": N, "columns": [...], "rows": [...]}.
 */

#ifndef PROTEUS_SIM_INTERVAL_STATS_HH
#define PROTEUS_SIM_INTERVAL_STATS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "types.hh"

namespace proteus {

class Simulator;

namespace stats {
class Scalar;
} // namespace stats

/** Periodic scalar-delta sampler attached to one Simulator. */
class IntervalStatsSampler
{
  public:
    /** One interval's worth of deltas, parallel to columns(). */
    struct Row
    {
        Tick cycle = 0;                 ///< interval end cycle
        std::vector<double> deltas;
    };

    /**
     * @param sim      the simulator whose registry and event queue drive
     *                 sampling
     * @param interval cycles between samples (> 0)
     * @param outPath  file written by finish(); "" keeps the series
     *                 in-memory only (tests)
     */
    IntervalStatsSampler(Simulator &sim, Tick interval,
                         std::string outPath = "");

    /**
     * Snapshot the baseline and schedule the first sample. Stats
     * registered after start() are not tracked.
     */
    void start();

    /**
     * Capture the final partial interval (if any cycles have elapsed
     * since the last boundary) and write the output file. Idempotent.
     */
    void finish();

    Tick interval() const { return _interval; }
    const std::vector<std::string> &columns() const { return _columns; }
    const std::vector<Row> &rows() const { return _rows; }

    /** Serialize the captured series (format chosen by @p json). */
    void write(std::ostream &os, bool json) const;

  private:
    void fire();
    void capture(Tick cycle);

    Simulator &_sim;
    Tick _interval;
    std::string _outPath;
    bool _started = false;
    bool _finished = false;
    Tick _lastCapture = 0;

    std::vector<std::string> _columns;
    std::vector<const stats::Scalar *> _tracked;
    std::vector<double> _prev;          ///< values at the last capture
    std::vector<Row> _rows;
};

} // namespace proteus

#endif // PROTEUS_SIM_INTERVAL_STATS_HH
