/**
 * @file
 * Chrome Trace Event Format sink (loadable in Perfetto and
 * chrome://tracing).
 *
 * Components emit duration ("X"), instant ("i"), counter ("C"), and
 * flow ("s"/"t"/"f") events onto named tracks; the sink buffers them in
 * a bounded ring and serializes everything as {"traceEvents": [...]}
 * JSON at flush time. Event timestamps are simulated CPU cycles written
 * into the format's microsecond field, so one trace "us" equals one
 * cycle.
 *
 * Ring-wrap policy (bounded memory for long runs): once the ring is
 * full the *oldest* events are overwritten so the tail of the run is
 * always retained, and every overwrite increments a drop counter. The
 * count is never silent — it is embedded in the output itself as a
 * top-level "droppedEvents" field plus a "droppedEvents" counter event
 * at the earliest retained timestamp, and flush() warns on stderr.
 * Raise obs.traceRingEntries (--set obs.traceRingEntries=N) or narrow
 * --trace-categories to retain more.
 *
 * Emission is gated twice so disabled tracing stays off the hot path:
 * callers hold a TraceEventSink pointer that is null when tracing is
 * off, and each event carries a category (cpu / memctrl / log / lock)
 * checked against the --trace-categories mask before any formatting
 * work happens.
 */

#ifndef PROTEUS_SIM_TRACE_EVENTS_HH
#define PROTEUS_SIM_TRACE_EVENTS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "types.hh"

namespace proteus {

/** Event categories selectable via --trace-categories. */
enum TraceCategory : unsigned
{
    TraceCatCpu     = 1u << 0,  ///< pipeline phases, transactions
    TraceCatMemCtrl = 1u << 1,  ///< WPQ/LPQ occupancy
    TraceCatLog     = 1u << 2,  ///< LogQ/LLT activity
    TraceCatLock    = 1u << 3,  ///< lock acquire/release
    TraceCatFaults  = 1u << 4,  ///< media faults, ECC events, retries
    TraceCatAll     = 0x1fu,
};

/** Bounded, per-run buffer of trace events with a JSON writer. */
class TraceEventSink
{
  public:
    /**
     * @param path      output file written by flush() ("" = in-memory
     *                  only; use write() to serialize)
     * @param categories mask of TraceCategory bits to record
     * @param capacity  ring-buffer size in events; once exceeded the
     *                  oldest events are dropped
     */
    TraceEventSink(std::string path, unsigned categories,
                   std::size_t capacity);

    /** @return true if events of @p cat are being recorded. */
    bool wants(unsigned cat) const { return (_categories & cat) != 0; }

    /** Register a named track (a Perfetto row); @return its id. */
    std::uint32_t defineTrack(const std::string &name);

    /** A duration event spanning [@p start, @p end]. */
    void complete(unsigned cat, std::uint32_t track, std::string name,
                  Tick start, Tick end);
    /** A point-in-time marker. */
    void instant(unsigned cat, std::uint32_t track, std::string name,
                 Tick ts);
    /** A sampled counter value (rendered as a step chart). */
    void counter(unsigned cat, std::uint32_t track, std::string name,
                 Tick ts, double value);

    /**
     * Flow arrows: a flow @p id links a start ("s") through any number
     * of steps ("t") to a finish ("f") across tracks; viewers draw
     * arrows between the enclosing slices. Used to connect a
     * transaction's begin, memory-controller activity, and commit.
     */
    void flowStart(unsigned cat, std::uint32_t track, std::string name,
                   Tick ts, std::uint64_t id);
    void flowStep(unsigned cat, std::uint32_t track, std::string name,
                  Tick ts, std::uint64_t id);
    void flowFinish(unsigned cat, std::uint32_t track, std::string name,
                    Tick ts, std::uint64_t id);

    /** Buffered event count (at most the ring capacity). */
    std::size_t size() const;
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return _dropped; }

    /** Serialize all buffered events as Chrome Trace Event JSON. */
    void write(std::ostream &os) const;

    /** Write the JSON file named at construction; idempotent. */
    void flush();

    /**
     * Parse a comma-separated category list ("cpu,memctrl,log,lock")
     * into a mask. Throws FatalError on an unknown name.
     */
    static unsigned parseCategories(const std::string &spec);

    /** @return the name of a single-category bit (for serialization). */
    static const char *categoryName(unsigned cat);

  private:
    struct Event
    {
        Tick ts = 0;
        Tick dur = 0;
        double value = 0;
        std::uint64_t id = 0;       ///< flow id for 's'/'t'/'f' phases
        std::string name;
        std::uint32_t track = 0;
        unsigned cat = 0;
        char phase = 'i';
    };

    void flow(unsigned cat, std::uint32_t track, std::string &&name,
              Tick ts, std::uint64_t id, char phase);

    void push(Event &&e);

    std::string _path;
    unsigned _categories;
    std::size_t _capacity;
    std::vector<Event> _ring;
    std::size_t _head = 0;          ///< next overwrite slot once full
    std::uint64_t _dropped = 0;
    std::vector<std::string> _tracks;
    bool _flushed = false;
};

} // namespace proteus

#endif // PROTEUS_SIM_TRACE_EVENTS_HH
