/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). Every
 * stochastic choice in the repository flows through one of these so that
 * runs are bit-reproducible given a seed.
 */

#ifndef PROTEUS_SIM_RANDOM_HH
#define PROTEUS_SIM_RANDOM_HH

#include <cstdint>

namespace proteus {

/** xoshiro256** generator with splitmix64 seeding. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t _state[4];
};

} // namespace proteus

#endif // PROTEUS_SIM_RANDOM_HH
