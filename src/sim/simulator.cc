#include "simulator.hh"

#include "logging.hh"

namespace proteus {

void
Simulator::addTicked(Ticked *component)
{
    if (!component)
        panic("Simulator::addTicked: null component");
    _components.push_back(component);
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb)
{
    _events.schedule(_now + delay, std::move(cb));
}

void
Simulator::run(Tick cycles)
{
    _stopRequested = false;
    for (Tick i = 0; i < cycles && !_stopRequested; ++i)
        stepOneCycle();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Tick maxCycles)
{
    _stopRequested = false;
    for (Tick i = 0; i < maxCycles && !_stopRequested; ++i) {
        if (done())
            return true;
        stepOneCycle();
    }
    return done();
}

} // namespace proteus
