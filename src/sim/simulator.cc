#include "simulator.hh"

#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace proteus {

namespace {
/**
 * Debug aid (set PROTEUS_SKIP_AUDIT=1): execute would-be-skipped spans
 * tick by tick and report any component that turns busy mid-span. A
 * report means that component's nextWake() violated the quiescence
 * contract; results are still correct in this mode because nothing is
 * actually skipped.
 */
bool
skipAuditEnabled()
{
    static const bool on = std::getenv("PROTEUS_SKIP_AUDIT") != nullptr;
    return on;
}
} // namespace

void
Simulator::addTicked(Ticked *component)
{
    if (!component)
        panic("Simulator::addTicked: null component");
    _components.push_back(component);
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb)
{
    _events.schedule(_now + delay, std::move(cb));
}

void
Simulator::skipIdleCycles(Tick limit)
{
    // Clamp to the next due event first: events are the only way external
    // state reaches a quiescent component, so we must execute the cycle
    // they fire in. Interval-stats boundaries are self-scheduled events,
    // so they clamp the skip automatically.
    Tick target = std::min(_events.nextEventTick(), limit);
    if (target <= _now)
        return;
    for (Ticked *c : _components) {
        const Tick wake = c->nextWake(_now);
        if (wake <= _now)
            return;                     // busy (or unprovable): no skip
        target = std::min(target, wake);
    }
    if (skipAuditEnabled()) {
        // Execute the span instead of skipping; any busy report inside
        // it means nextWake lied.
        const Tick from = _now;
        while (_now < target) {
            _events.runUntil(_now);
            for (Ticked *c : _components)
                c->tick(_now);
            for (Ticked *c : _components) {
                if (c->nextWake(_now) <= _now) {
                    std::fprintf(stderr,
                                 "SKIP-AUDIT: %s busy at %llu inside "
                                 "span [%llu, %llu)\n",
                                 c->componentName().c_str(),
                                 static_cast<unsigned long long>(_now),
                                 static_cast<unsigned long long>(from),
                                 static_cast<unsigned long long>(target));
                }
            }
            ++_now;
        }
        return;
    }
    for (Ticked *c : _components)
        c->accountSkipped(_now, target);
    _skippedCycles += target - _now;
    _now = target;
}

void
Simulator::run(Tick cycles)
{
    const Tick end = _now + cycles;
    _stopRequested = false;
    while (_now < end && !_stopRequested) {
        stepOneCycle();
        if (_cycleSkip && !_stopRequested && _now < end)
            skipIdleCycles(end);
    }
}

bool
Simulator::runUntil(const std::function<bool()> &done, Tick maxCycles)
{
    _stopRequested = false;
    if (done())
        return true;
    const Tick end = _now + maxCycles;
    // The predicate is only re-evaluated at activity boundaries (after a
    // cycle actually executed): skipped cycles change no state by
    // construction, so the predicate cannot flip during a skipped span.
    while (_now < end && !_stopRequested) {
        stepOneCycle();
        if (done())
            return true;
        if (_cycleSkip && !_stopRequested && _now < end)
            skipIdleCycles(end);
    }
    return done();
}

} // namespace proteus
