#include "event_queue.hh"

#include "logging.hh"

namespace proteus {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    _heap.push(Entry{when, _nextSeq++, std::move(cb)});
}

void
EventQueue::runUntil(Tick now)
{
    while (!_heap.empty() && _heap.top().when <= now) {
        // Copy out before pop so the callback may schedule new events.
        Entry e = _heap.top();
        _heap.pop();
        e.cb();
    }
}

Tick
EventQueue::nextEventTick() const
{
    return _heap.empty() ? maxTick : _heap.top().when;
}

void
EventQueue::clear()
{
    while (!_heap.empty())
        _heap.pop();
    _nextSeq = 0;
}

} // namespace proteus
