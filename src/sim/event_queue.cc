#include "event_queue.hh"

#include <algorithm>

#include "logging.hh"

namespace proteus {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (!cb)
        panic("EventQueue::schedule: empty callback");

    std::uint32_t slot;
    if (_freeSlots.empty()) {
        slot = static_cast<std::uint32_t>(_slots.size());
        _slots.push_back(std::move(cb));
    } else {
        slot = _freeSlots.back();
        _freeSlots.pop_back();
        _slots[slot] = std::move(cb);
    }
    _heap.push_back(Key{when, _nextSeq++, slot});
    std::push_heap(_heap.begin(), _heap.end(), Later{});
}

void
EventQueue::runDue(Tick now)
{
    while (!_heap.empty() && _heap.front().when <= now) {
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        const Key key = _heap.back();
        _heap.pop_back();
        // Move the callback out and free its slot before invoking: the
        // callback may schedule new events, which may reuse the slot or
        // reallocate the slot vector.
        Callback cb = std::move(_slots[key.slot]);
        _freeSlots.push_back(key.slot);
        cb();
    }
}

void
EventQueue::clear()
{
    _heap.clear();
    _slots.clear();
    _freeSlots.clear();
    _nextSeq = 0;
}

} // namespace proteus
