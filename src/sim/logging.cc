#include "logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace proteus {
namespace detail {

namespace {

std::atomic<int> &
verbosityLevel()
{
    static std::atomic<int> level{1};
    return level;
}

std::mutex &
emitMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

int
verbosity()
{
    return verbosityLevel().load(std::memory_order_relaxed);
}

void
emit(const char *tag, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(emitMutex());
    std::cerr << tag << ": " << msg << "\n";
}

} // namespace detail

void
setVerbosity(int level)
{
    detail::verbosityLevel().store(level, std::memory_order_relaxed);
}

} // namespace proteus
