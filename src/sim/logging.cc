#include "logging.hh"

#include <iostream>

namespace proteus {
namespace detail {

int &
verbosity()
{
    static int level = 1;
    return level;
}

void
emit(const char *tag, const std::string &msg)
{
    std::cerr << tag << ": " << msg << "\n";
}

} // namespace detail

void
setVerbosity(int level)
{
    detail::verbosity() = level;
}

} // namespace proteus
