/**
 * @file
 * gem5-style status and error reporting: panic, fatal, warn, inform.
 *
 * panic() is for conditions that indicate a simulator bug; fatal() is for
 * user errors (bad configuration, invalid arguments); warn()/inform() are
 * status messages that never stop the simulation.
 */

#ifndef PROTEUS_SIM_LOGGING_HH
#define PROTEUS_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace proteus {

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupportable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
appendArgs(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendArgs(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendArgs(os, rest...);
}

template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    appendArgs(os, args...);
    return os.str();
}

/** Runtime-settable verbosity: 0 = silent, 1 = warn, 2 = inform.
 *  Safe to read concurrently from parallel simulation jobs. */
int verbosity();

/** Write one tagged line to stderr; serialized across threads so
 *  concurrent jobs never interleave partial lines. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort the simulation by throwing.
 * Use when something happens that should never happen regardless of what
 * the user does.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::formatMessage("panic: ", args...));
}

/**
 * Report an unrecoverable user error (bad config, invalid arguments) and
 * stop the simulation by throwing.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::formatMessage("fatal: ", args...));
}

/** Alert the user that something may not behave as they expect. */
template <typename... Args>
void
warn(const Args &...args)
{
    if (detail::verbosity() >= 1)
        detail::emit("warn", detail::formatMessage(args...));
}

/** Provide a normal operating status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    if (detail::verbosity() >= 2)
        detail::emit("info", detail::formatMessage(args...));
}

/** Set global message verbosity (0 silent, 1 warn, 2 inform). */
void setVerbosity(int level);

} // namespace proteus

#endif // PROTEUS_SIM_LOGGING_HH
