#include "config.hh"

#include <algorithm>
#include <cctype>
#include <map>

#include "logging.hh"

namespace proteus {

const char *
toString(LogScheme scheme)
{
    switch (scheme) {
      case LogScheme::PMEM:         return "PMEM";
      case LogScheme::PMEMPCommit:  return "PMEM+pcommit";
      case LogScheme::PMEMNoLog:    return "PMEM+nolog";
      case LogScheme::ATOM:         return "ATOM";
      case LogScheme::Proteus:      return "Proteus";
      case LogScheme::ProteusNoLWR: return "Proteus+NoLWR";
    }
    return "unknown";
}

LogScheme
parseScheme(const std::string &name)
{
    std::string key;
    key.reserve(name.size());
    for (char c : name)
        key.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));

    static const std::map<std::string, LogScheme> table = {
        {"pmem", LogScheme::PMEM},
        {"pmem+pcommit", LogScheme::PMEMPCommit},
        {"pcommit", LogScheme::PMEMPCommit},
        {"pmem+nolog", LogScheme::PMEMNoLog},
        {"nolog", LogScheme::PMEMNoLog},
        {"ideal", LogScheme::PMEMNoLog},
        {"atom", LogScheme::ATOM},
        {"proteus", LogScheme::Proteus},
        {"proteus+nolwr", LogScheme::ProteusNoLWR},
        {"nolwr", LogScheme::ProteusNoLWR},
    };
    auto it = table.find(key);
    if (it == table.end())
        fatal("unknown logging scheme: ", name);
    return it->second;
}

bool
isSoftwareScheme(LogScheme scheme)
{
    return scheme == LogScheme::PMEM || scheme == LogScheme::PMEMPCommit ||
           scheme == LogScheme::PMEMNoLog;
}

void
SystemConfig::applyOverride(const std::string &spec)
{
    auto eq = spec.find('=');
    if (eq == std::string::npos)
        fatal("override must be key=value: ", spec);
    const std::string key = spec.substr(0, eq);
    const std::string value = spec.substr(eq + 1);

    auto as_u64 = [&]() -> std::uint64_t {
        try {
            return std::stoull(value);
        } catch (const std::exception &) {
            fatal("bad numeric value in override: ", spec);
        }
    };
    auto as_double = [&]() -> double {
        try {
            return std::stod(value);
        } catch (const std::exception &) {
            fatal("bad numeric value in override: ", spec);
        }
    };
    auto as_bool = [&]() -> bool {
        if (value == "true" || value == "1") return true;
        if (value == "false" || value == "0") return false;
        fatal("bad boolean value in override: ", spec);
    };

    if (key == "cores") cores = static_cast<unsigned>(as_u64());
    else if (key == "seed") seed = as_u64();
    else if (key == "cpu.robEntries")
        cpu.robEntries = static_cast<unsigned>(as_u64());
    else if (key == "cpu.issueQueueEntries")
        cpu.issueQueueEntries = static_cast<unsigned>(as_u64());
    else if (key == "cpu.loadQueueEntries")
        cpu.loadQueueEntries = static_cast<unsigned>(as_u64());
    else if (key == "cpu.storeQueueEntries")
        cpu.storeQueueEntries = static_cast<unsigned>(as_u64());
    else if (key == "cpu.fetchWidth")
        cpu.fetchWidth = static_cast<unsigned>(as_u64());
    else if (key == "mem.nvmMode") mem.nvmMode = as_bool();
    else if (key == "mem.nvmReadTRCD")
        mem.nvmReadTRCD = static_cast<unsigned>(as_u64());
    else if (key == "mem.nvmWriteTRCD")
        mem.nvmWriteTRCD = static_cast<unsigned>(as_u64());
    else if (key == "mem.banks")
        mem.banks = static_cast<unsigned>(as_u64());
    else if (key == "memCtrl.adr") memCtrl.adr = as_bool();
    else if (key == "memCtrl.wpqEntries")
        memCtrl.wpqEntries = static_cast<unsigned>(as_u64());
    else if (key == "memCtrl.lpqEntries")
        memCtrl.lpqEntries = static_cast<unsigned>(as_u64());
    else if (key == "memCtrl.wpqDrainThreshold")
        memCtrl.wpqDrainThreshold = as_double();
    else if (key == "memCtrl.lpqDrainThreshold")
        memCtrl.lpqDrainThreshold = as_double();
    else if (key == "logging.scheme") logging.scheme = parseScheme(value);
    else if (key == "logging.logRegisters")
        logging.logRegisters = static_cast<unsigned>(as_u64());
    else if (key == "logging.logQEntries")
        logging.logQEntries = static_cast<unsigned>(as_u64());
    else if (key == "logging.lltEntries")
        logging.lltEntries = static_cast<unsigned>(as_u64());
    else if (key == "logging.lltWays")
        logging.lltWays = static_cast<unsigned>(as_u64());
    else if (key == "logging.logAreaBytes") logging.logAreaBytes = as_u64();
    else if (key == "logging.atomTruncationEntries")
        logging.atomTruncationEntries = static_cast<unsigned>(as_u64());
    else if (key == "faults.tornWriteRate")
        faults.tornWriteRate = as_double();
    else if (key == "faults.readFlipRate")
        faults.readFlipRate = as_double();
    else if (key == "faults.enduranceWrites")
        faults.enduranceWrites = as_u64();
    else if (key == "faults.eccDetectBits")
        faults.eccDetectBits = static_cast<unsigned>(as_u64());
    else if (key == "faults.eccCorrectBits")
        faults.eccCorrectBits = static_cast<unsigned>(as_u64());
    else if (key == "faults.readRetryLimit")
        faults.readRetryLimit = static_cast<unsigned>(as_u64());
    else if (key == "faults.retryBackoffBase")
        faults.retryBackoffBase = static_cast<unsigned>(as_u64());
    else if (key == "faults.seed") faults.seed = as_u64();
    else if (key == "obs.traceRingEntries")
        obs.traceRingEntries = as_u64();
    else if (key == "obs.txSlowest")
        obs.txSlowest = as_u64();
    else if (key == "cycleSkip") cycleSkip = as_bool();
    else
        fatal("unknown config override key: ", key);
}

SystemConfig
baselineConfig()
{
    SystemConfig cfg;
    return cfg;
}

SystemConfig
slowNvmConfig()
{
    SystemConfig cfg;
    // 300 ns write at 800 MHz DRAM clock = 240 memory cycles; read stays
    // at 50 ns (Section 7.1).
    cfg.mem.nvmWriteTRCD = 240;
    return cfg;
}

SystemConfig
dramConfig()
{
    SystemConfig cfg;
    cfg.mem.nvmMode = false;
    return cfg;
}

} // namespace proteus
