#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "json_util.hh"
#include "logging.hh"

namespace proteus {
namespace stats {

StatBase::StatBase(StatRegistry &registry, std::string name,
                   std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    registry.add(this);
}

void
StatBase::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << _name << std::right
       << std::setw(16) << value() << "  # " << _desc << "\n";
}

void
StatBase::dumpJsonValue(std::ostream &os) const
{
    json::writeNumber(os, value());
}

void
Average::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right
       << std::setw(16) << value() << "  # " << desc()
       << " (" << _count << " samples)\n";
}

Distribution::Distribution(StatRegistry &registry, std::string name,
                           std::string desc, double min, double max,
                           unsigned buckets)
    : StatBase(registry, std::move(name), std::move(desc)),
      _lo(min), _hi(max),
      _bucketWidth(buckets ? (max - min) / buckets : 0),
      _buckets(buckets, 0)
{
    if (buckets == 0 || max <= min)
        panic("Distribution ", this->name(), ": bad bucket range");
}

double
Distribution::quantizeKey(double v)
{
    double a = std::fabs(v);
    if (a < percentileExactMax)
        return v;
    int exp = 0;
    double mant = std::frexp(a, &exp);           // mant in [0.5, 1)
    double q = std::ldexp(std::floor(std::ldexp(mant, 12)), exp - 12);
    return v < 0 ? -q : q;
}

void
Distribution::sample(double v)
{
    sample(v, 1);
}

void
Distribution::sample(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    if (_count == 0) {
        _minSeen = _maxSeen = v;
    } else {
        if (v < _minSeen) _minSeen = v;
        if (v > _maxSeen) _maxSeen = v;
    }
    _count += n;
    _sum += v * static_cast<double>(n);
    _quantized[quantizeKey(v)] += n;

    if (v < _lo) {
        _underflow += n;
    } else if (v >= _hi) {
        _overflow += n;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        _buckets[idx] += n;
    }
}

double
Distribution::percentile(double p) const
{
    if (_count == 0)
        return 0;
    if (p <= 0)
        return _minSeen;
    if (p >= 100)
        return _maxSeen;
    // Nearest rank: the smallest value whose cumulative count reaches
    // ceil(p/100 * count).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(_count)));
    if (rank < 1)
        rank = 1;
    std::uint64_t cum = 0;
    for (const auto &[key, cnt] : _quantized) {
        cum += cnt;
        if (cum >= rank) {
            // The topmost rank is the maximum, which we track exactly.
            return rank == _count ? _maxSeen : key;
        }
    }
    return _maxSeen;
}

void
Distribution::merge(const Distribution &other)
{
    if (other._lo != _lo || other._hi != _hi ||
        other._buckets.size() != _buckets.size()) {
        panic("Distribution::merge ", name(), ": bucket configuration "
              "mismatch with ", other.name());
    }
    if (other._count == 0)
        return;
    if (_count == 0) {
        _minSeen = other._minSeen;
        _maxSeen = other._maxSeen;
    } else {
        _minSeen = std::min(_minSeen, other._minSeen);
        _maxSeen = std::max(_maxSeen, other._maxSeen);
    }
    _count += other._count;
    _sum += other._sum;
    _underflow += other._underflow;
    _overflow += other._overflow;
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    for (const auto &[key, cnt] : other._quantized)
        _quantized[key] += cnt;
}

double
Distribution::value() const
{
    return _count ? _sum / _count : 0;
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = _minSeen = _maxSeen = 0;
    _quantized.clear();
}

void
Distribution::dumpJsonValue(std::ostream &os) const
{
    os << "{\"mean\": ";
    json::writeNumber(os, value());
    os << ", \"count\": " << _count;
    os << ", \"min\": ";
    json::writeNumber(os, _minSeen);
    os << ", \"max\": ";
    json::writeNumber(os, _maxSeen);
    os << ", \"lo\": ";
    json::writeNumber(os, _lo);
    os << ", \"hi\": ";
    json::writeNumber(os, _hi);
    os << ", \"p50\": ";
    json::writeNumber(os, percentile(50));
    os << ", \"p95\": ";
    json::writeNumber(os, percentile(95));
    os << ", \"p99\": ";
    json::writeNumber(os, percentile(99));
    os << ", \"underflow\": " << _underflow
       << ", \"overflow\": " << _overflow << ", \"buckets\": [";
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        os << (i ? ", " : "") << _buckets[i];
    os << "]}";
}

void
Distribution::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right
       << std::setw(16) << value() << "  # " << desc()
       << " (mean of " << _count << ", min " << _minSeen
       << ", max " << _maxSeen << ")\n";
}

Formula::Formula(StatRegistry &registry, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(registry, std::move(name), std::move(desc)),
      _fn(std::move(fn))
{
}

void
StatRegistry::add(StatBase *stat)
{
    auto [it, inserted] = _stats.emplace(stat->name(), stat);
    if (!inserted)
        panic("duplicate stat name: ", stat->name());
}

void
StatRegistry::remove(const StatBase *stat)
{
    auto it = _stats.find(stat->name());
    if (it != _stats.end() && it->second == stat)
        _stats.erase(it);
}

const StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = _stats.find(name);
    return it == _stats.end() ? nullptr : it->second;
}

double
StatRegistry::lookup(const std::string &name) const
{
    const StatBase *s = find(name);
    if (!s)
        panic("unknown stat: ", name);
    return s->value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : _stats)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : _stats)
        stat->dump(os);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, stat] : _stats) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  " << json::quoted(name) << ": ";
        stat->dumpJsonValue(os);
    }
    os << "\n}\n";
}

} // namespace stats
} // namespace proteus
