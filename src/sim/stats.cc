#include "stats.hh"

#include <iomanip>

#include "json_util.hh"
#include "logging.hh"

namespace proteus {
namespace stats {

StatBase::StatBase(StatRegistry &registry, std::string name,
                   std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    registry.add(this);
}

void
StatBase::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << _name << std::right
       << std::setw(16) << value() << "  # " << _desc << "\n";
}

void
StatBase::dumpJsonValue(std::ostream &os) const
{
    json::writeNumber(os, value());
}

void
Average::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right
       << std::setw(16) << value() << "  # " << desc()
       << " (" << _count << " samples)\n";
}

Distribution::Distribution(StatRegistry &registry, std::string name,
                           std::string desc, double min, double max,
                           unsigned buckets)
    : StatBase(registry, std::move(name), std::move(desc)),
      _lo(min), _hi(max),
      _bucketWidth(buckets ? (max - min) / buckets : 0),
      _buckets(buckets, 0)
{
    if (buckets == 0 || max <= min)
        panic("Distribution ", this->name(), ": bad bucket range");
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _minSeen = _maxSeen = v;
    } else {
        if (v < _minSeen) _minSeen = v;
        if (v > _maxSeen) _maxSeen = v;
    }
    ++_count;
    _sum += v;

    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        ++_buckets[idx];
    }
}

double
Distribution::value() const
{
    return _count ? _sum / _count : 0;
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = _minSeen = _maxSeen = 0;
}

void
Distribution::dumpJsonValue(std::ostream &os) const
{
    os << "{\"mean\": ";
    json::writeNumber(os, value());
    os << ", \"count\": " << _count;
    os << ", \"min\": ";
    json::writeNumber(os, _minSeen);
    os << ", \"max\": ";
    json::writeNumber(os, _maxSeen);
    os << ", \"lo\": ";
    json::writeNumber(os, _lo);
    os << ", \"hi\": ";
    json::writeNumber(os, _hi);
    os << ", \"underflow\": " << _underflow
       << ", \"overflow\": " << _overflow << ", \"buckets\": [";
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        os << (i ? ", " : "") << _buckets[i];
    os << "]}";
}

void
Distribution::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right
       << std::setw(16) << value() << "  # " << desc()
       << " (mean of " << _count << ", min " << _minSeen
       << ", max " << _maxSeen << ")\n";
}

Formula::Formula(StatRegistry &registry, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(registry, std::move(name), std::move(desc)),
      _fn(std::move(fn))
{
}

void
StatRegistry::add(StatBase *stat)
{
    auto [it, inserted] = _stats.emplace(stat->name(), stat);
    if (!inserted)
        panic("duplicate stat name: ", stat->name());
}

void
StatRegistry::remove(const StatBase *stat)
{
    auto it = _stats.find(stat->name());
    if (it != _stats.end() && it->second == stat)
        _stats.erase(it);
}

const StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = _stats.find(name);
    return it == _stats.end() ? nullptr : it->second;
}

double
StatRegistry::lookup(const std::string &name) const
{
    const StatBase *s = find(name);
    if (!s)
        panic("unknown stat: ", name);
    return s->value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : _stats)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : _stats)
        stat->dump(os);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, stat] : _stats) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  " << json::quoted(name) << ": ";
        stat->dumpJsonValue(os);
    }
    os << "\n}\n";
}

} // namespace stats
} // namespace proteus
