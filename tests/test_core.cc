/** @file Pipeline-level tests for the out-of-order core. */

#include <gtest/gtest.h>

#include <memory>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/lock_manager.hh"
#include "heap/persistent_heap.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

using namespace proteus;

namespace {

/** A minimal single-core machine around a hand-built trace. */
struct CoreFixture
{
    explicit CoreFixture(LogScheme scheme = LogScheme::Proteus)
    {
        cfg = baselineConfig();
        cfg.cores = 1;
        cfg.logging.scheme = scheme;
    }

    /** Build the system after the trace is filled in. */
    void
    start()
    {
        mc = std::make_unique<MemCtrl>(sim, cfg, nvm);
        hier = std::make_unique<CacheHierarchy>(sim, cfg, *mc, nvm);
        locks = std::make_unique<LockManager>(sim);
        core = std::make_unique<Core>(sim, cfg, 0, trace, *hier, *mc,
                                      *locks);
        core->bindLogArea(0x200000, 0x200000 + (1 << 16));
        sim.addTicked(mc.get());
        sim.addTicked(core.get());
    }

    void
    runToCompletion(Tick max = 2000000)
    {
        ASSERT_TRUE(sim.runUntil([&]() { return core->done(); }, max))
            << "core did not drain";
    }

    MicroOp
    alu(std::int16_t dst = noReg, std::int16_t src = noReg)
    {
        MicroOp m;
        m.op = Op::IntAlu;
        m.dst = dst;
        m.src0 = src;
        return m;
    }

    MicroOp
    load(Addr a, std::int16_t dst)
    {
        MicroOp m;
        m.op = Op::Load;
        m.addr = a;
        m.size = 8;
        m.dst = dst;
        return m;
    }

    MicroOp
    store(Addr a, std::uint64_t value, bool persistent = true)
    {
        MicroOp m;
        m.op = Op::Store;
        m.addr = a;
        m.size = 8;
        m.data = value;
        m.persistent = persistent;
        return m;
    }

    MicroOp
    simple(Op op, std::uint64_t data = 0, Addr addr = invalidAddr)
    {
        MicroOp m;
        m.op = op;
        m.data = data;
        m.addr = addr;
        return m;
    }

    Simulator sim;
    SystemConfig cfg;
    MemoryImage nvm;
    Trace trace;
    std::unique_ptr<MemCtrl> mc;
    std::unique_ptr<CacheHierarchy> hier;
    std::unique_ptr<LockManager> locks;
    std::unique_ptr<Core> core;
};

constexpr Addr dataAddr = PersistentHeap::persistentBase;

} // namespace

TEST(Core, RetiresAluChain)
{
    CoreFixture f;
    for (int i = 0; i < 20; ++i)
        f.trace.push(f.alu(static_cast<std::int16_t>(i % 8)));
    f.start();
    f.runToCompletion();
    EXPECT_EQ(f.core->retiredOps(), 20u);
}

TEST(Core, DependentAluChainIsSerialized)
{
    // A dependent chain of N 1-cycle ops needs at least N cycles; an
    // independent batch of the same size retires much faster.
    CoreFixture dep;
    for (int i = 0; i < 64; ++i)
        dep.trace.push(dep.alu(1, 1));
    dep.start();
    dep.runToCompletion();
    const Tick dep_time = dep.sim.now();

    CoreFixture indep;
    for (int i = 0; i < 64; ++i)
        indep.trace.push(indep.alu(static_cast<std::int16_t>(i % 16)));
    indep.start();
    indep.runToCompletion();
    EXPECT_LT(indep.sim.now() * 2, dep_time);
}

TEST(Core, LoadMissThenHit)
{
    CoreFixture f;
    f.trace.push(f.load(dataAddr, 1));
    f.trace.push(f.load(dataAddr, 2));
    f.start();
    f.runToCompletion();
    EXPECT_EQ(f.mc->nvmReads(), 1u);
}

TEST(Core, StoreValueReachesNvmThroughFlush)
{
    CoreFixture f(LogScheme::PMEMNoLog);
    f.trace.push(f.simple(Op::TxBegin, 1));
    f.trace.push(f.store(dataAddr, 0xFEED));
    f.trace.push(f.simple(Op::ClWb, 0, dataAddr));
    f.trace.push(f.simple(Op::SFence));
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    f.runToCompletion();
    ASSERT_TRUE(f.sim.runUntil([&]() { return f.mc->empty(); },
                               1000000));
    EXPECT_EQ(f.nvm.read64(dataAddr), 0xFEEDu);
}

TEST(Core, SFenceWaitsForFlushAck)
{
    // Without the flush the fence is cheap; with it the fence must
    // wait for the MC acknowledgment.
    CoreFixture cheap(LogScheme::PMEMNoLog);
    cheap.trace.push(cheap.simple(Op::SFence));
    cheap.start();
    cheap.runToCompletion();
    const Tick fast = cheap.sim.now();

    CoreFixture slow(LogScheme::PMEMNoLog);
    slow.trace.push(slow.simple(Op::TxBegin, 1));
    slow.trace.push(slow.store(dataAddr, 1));
    slow.trace.push(slow.simple(Op::ClWb, 0, dataAddr));
    slow.trace.push(slow.simple(Op::SFence));
    slow.trace.push(slow.simple(Op::TxEnd, 1));
    slow.start();
    slow.runToCompletion();
    EXPECT_GT(slow.sim.now(), fast + 50);
}

TEST(Core, ProteusLogFlushReachesLogArea)
{
    CoreFixture f(LogScheme::Proteus);
    LogPayload payload;
    payload.fromAddr = logAlign(dataAddr);
    payload.txId = 1;
    const std::uint64_t old = 0x01D;
    std::memcpy(payload.bytes, &old, 8);

    f.trace.push(f.simple(Op::TxBegin, 1));
    MicroOp ll;
    ll.op = Op::LogLoad;
    ll.addr = logAlign(dataAddr);
    ll.size = logDataSize;
    ll.dst = 24;
    f.trace.push(ll);
    MicroOp lf;
    lf.op = Op::LogFlush;
    lf.addr = logAlign(dataAddr);
    lf.src0 = 24;
    lf.payload = f.trace.addPayload(payload);
    f.trace.push(lf);
    f.trace.push(f.store(dataAddr, 0xAB));
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    f.runToCompletion();
    // The tx committed; its log entry was flash-cleared into a marker.
    EXPECT_EQ(f.core->committedTxs().size(), 1u);
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("core0.llt.misses"), 1.0);
}

TEST(Core, LltFiltersRepeatedGranule)
{
    CoreFixture f(LogScheme::Proteus);
    f.trace.push(f.simple(Op::TxBegin, 1));
    for (int i = 0; i < 3; ++i) {
        LogPayload payload;
        payload.fromAddr = logAlign(dataAddr);
        payload.txId = 1;
        MicroOp ll;
        ll.op = Op::LogLoad;
        ll.addr = logAlign(dataAddr);
        ll.size = logDataSize;
        ll.dst = 24;
        f.trace.push(ll);
        MicroOp lf;
        lf.op = Op::LogFlush;
        lf.addr = logAlign(dataAddr);
        lf.src0 = 24;
        lf.payload = f.trace.addPayload(payload);
        f.trace.push(lf);
        f.trace.push(f.store(dataAddr + 8ull * i, 1));
    }
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    f.runToCompletion();
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("core0.llt.lookups"), 3.0);
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("core0.llt.misses"), 1.0);
}

TEST(Core, AtomLogsAtRetirementOncePerBlock)
{
    CoreFixture f(LogScheme::ATOM);
    f.trace.push(f.simple(Op::TxBegin, 1));
    f.trace.push(f.store(dataAddr, 1));
    f.trace.push(f.store(dataAddr + 8, 2));        // same block
    f.trace.push(f.store(dataAddr + 64, 3));       // new block
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    // ATOM needs the MC log area bound before the first store retires.
    f.mc->bindAtomLogArea(0, 0x300000, 0x300000 + (1 << 16));
    f.runToCompletion();
    // Two blocks logged, two 32B granule records each.
    EXPECT_DOUBLE_EQ(
        f.sim.statsRegistry().lookup("mc.logWritesAccepted"), 4.0);
    EXPECT_EQ(f.core->committedTxs().size(), 1u);
}

TEST(Core, BranchMispredictStallsFetch)
{
    // Random outcomes mispredict often; fixed outcomes train away.
    CoreFixture noisy;
    proteus::Random rng(3);
    for (int i = 0; i < 400; ++i) {
        MicroOp m;
        m.op = Op::Branch;
        m.staticPc = 0x10;
        m.taken = rng.nextBool(0.5);
        noisy.trace.push(m);
        noisy.trace.push(noisy.alu());
    }
    noisy.start();
    noisy.runToCompletion();
    const Tick noisy_time = noisy.sim.now();

    CoreFixture steady;
    for (int i = 0; i < 400; ++i) {
        MicroOp m;
        m.op = Op::Branch;
        m.staticPc = 0x10;
        m.taken = true;
        steady.trace.push(m);
        steady.trace.push(steady.alu());
    }
    steady.start();
    steady.runToCompletion();
    EXPECT_LT(steady.sim.now() * 2, noisy_time);
}

TEST(Core, LockRoundTrip)
{
    CoreFixture f;
    f.trace.push(f.simple(Op::LockAcquire, 0, 0x8000));
    f.trace.push(f.alu());
    f.trace.push(f.simple(Op::LockRelease, 0, 0x8000));
    f.start();
    f.runToCompletion();
    EXPECT_FALSE(f.locks->held(0x8000));
}

TEST(Core, PCommitDrainsWpq)
{
    CoreFixture f(LogScheme::PMEMPCommit);
    f.cfg.memCtrl.adr = false;
    f.trace.push(f.simple(Op::TxBegin, 1));
    f.trace.push(f.store(dataAddr, 0x55));
    f.trace.push(f.simple(Op::ClWb, 0, dataAddr));
    f.trace.push(f.simple(Op::SFence));
    f.trace.push(f.simple(Op::PCommit));
    f.trace.push(f.simple(Op::SFence));
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    f.runToCompletion();
    // pcommit retired only after the WPQ drained to NVM.
    EXPECT_EQ(f.nvm.read64(dataAddr), 0x55u);
}

TEST(Core, LogSaveFlushesCoreLogs)
{
    CoreFixture f(LogScheme::Proteus);
    LogPayload payload;
    payload.fromAddr = logAlign(dataAddr);
    payload.txId = 1;
    f.trace.push(f.simple(Op::TxBegin, 1));
    MicroOp ll;
    ll.op = Op::LogLoad;
    ll.addr = logAlign(dataAddr);
    ll.size = logDataSize;
    ll.dst = 24;
    f.trace.push(ll);
    MicroOp lf;
    lf.op = Op::LogFlush;
    lf.addr = logAlign(dataAddr);
    lf.src0 = 24;
    lf.payload = f.trace.addPayload(payload);
    f.trace.push(lf);
    f.trace.push(f.store(dataAddr, 1));
    // Context switch in the middle of the transaction (Section 4.4).
    f.trace.push(f.simple(Op::LogSave));
    f.trace.push(f.simple(Op::TxEnd, 1));
    f.start();
    f.runToCompletion();
    // The log entry was forced to NVM instead of lingering in the LPQ.
    EXPECT_GE(f.mc->nvmWrites(), 1u);
}

TEST(Core, FrontendStallsAccumulateUnderPressure)
{
    CoreFixture f;
    f.cfg.cpu.robEntries = 8;       // tiny ROB forces dispatch stalls
    for (int i = 0; i < 200; ++i)
        f.trace.push(f.load(dataAddr + 4096ull * i, 1));
    f.start();
    f.runToCompletion();
    EXPECT_GT(f.core->frontendStallCycles(), 100u);
}
