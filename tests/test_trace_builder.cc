/** @file Unit tests for the scheme-aware trace codegen. */

#include <gtest/gtest.h>

#include <memory>

#include "heap/persistent_heap.hh"
#include "logging/log_record.hh"
#include "sim/logging.hh"
#include "trace/trace_builder.hh"

using namespace proteus;

namespace {

struct Fixture
{
    explicit Fixture(LogScheme scheme)
        : tb(heap, scheme, 0), data(heap.alloc(256, blockSize))
    {
        const Addr area = heap.allocLogArea(1 << 16);
        tb.setLogArea(area, area + (1 << 16));
        heap.write<std::uint64_t>(data, 0x1111);
        tb.setRecording(true);
    }

    PersistentHeap heap;
    TraceBuilder tb;
    Addr data;
};

} // namespace

TEST(TraceBuilder, LoadsReturnHeapValues)
{
    Fixture f(LogScheme::PMEMNoLog);
    const Value v = f.tb.load(f.data, 8);
    EXPECT_EQ(v.v, 0x1111u);
    EXPECT_NE(v.reg, noReg);
    EXPECT_EQ(f.tb.trace().countOps(Op::Load), 1u);
}

TEST(TraceBuilder, StoresApplyToHeap)
{
    Fixture f(LogScheme::PMEMNoLog);
    f.tb.beginTx();
    f.tb.store(f.data, 8, 0x2222);
    f.tb.endTx();
    EXPECT_EQ(f.heap.read<std::uint64_t>(f.data), 0x2222u);
}

TEST(TraceBuilder, ProteusExpandsPerFigure4)
{
    // Each store becomes log-load; log-flush; st.
    Fixture f(LogScheme::Proteus);
    f.tb.beginTx();
    f.tb.store(f.data, 8, 1);
    f.tb.store(f.data + 64, 8, 2);
    f.tb.endTx();
    const Trace &t = f.tb.trace();
    EXPECT_EQ(t.countOps(Op::LogLoad), 2u);
    EXPECT_EQ(t.countOps(Op::LogFlush), 2u);
    EXPECT_EQ(t.countOps(Op::Store), 2u);
    EXPECT_EQ(t.countOps(Op::TxBegin), 1u);
    EXPECT_EQ(t.countOps(Op::TxEnd), 1u);
    EXPECT_EQ(t.countOps(Op::ClWb), 0u);     // hardware handles persists
    EXPECT_EQ(t.countOps(Op::SFence), 0u);
}

TEST(TraceBuilder, ProteusPayloadCapturesPreStoreData)
{
    Fixture f(LogScheme::Proteus);
    f.tb.beginTx();
    f.tb.store(f.data, 8, 0x9999);
    f.tb.endTx();
    const Trace &t = f.tb.trace();
    // Find the log-flush and inspect its payload.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t.op(i).op == Op::LogFlush) {
            const LogPayload &p = t.logPayload(t.op(i).payload);
            std::uint64_t old = 0;
            std::memcpy(&old, p.bytes, 8);
            EXPECT_EQ(old, 0x1111u);            // pre-store value
            EXPECT_EQ(p.fromAddr, logAlign(f.data));
            return;
        }
    }
    FAIL() << "no log-flush found";
}

TEST(TraceBuilder, AtomEmitsPlainStores)
{
    Fixture f(LogScheme::ATOM);
    f.tb.beginTx();
    f.tb.store(f.data, 8, 1);
    f.tb.endTx();
    const Trace &t = f.tb.trace();
    EXPECT_EQ(t.countOps(Op::LogLoad), 0u);
    EXPECT_EQ(t.countOps(Op::Store), 1u);
    EXPECT_EQ(t.countOps(Op::ClWb), 0u);
}

TEST(TraceBuilder, SoftwareLoggingFollowsFigure2)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    f.tb.declareLogged(f.data, 8);
    f.tb.store(f.data, 8, 5);
    f.tb.endTx();
    const Trace &t = f.tb.trace();
    // Step 1 writes a full log entry (8 stores) + clwb; steps 2/4
    // store/clear the flag with clwb; step 3 persists the data block.
    EXPECT_GE(t.countOps(Op::Store), 1u + 8u + 2u);
    EXPECT_GE(t.countOps(Op::ClWb), 4u);
    EXPECT_GE(t.countOps(Op::SFence), 4u);
    EXPECT_EQ(t.countOps(Op::PCommit), 0u);
    EXPECT_EQ(t.countOps(Op::LogLoad), 0u);
}

TEST(TraceBuilder, PCommitVariantAddsPCommit)
{
    Fixture f(LogScheme::PMEMPCommit);
    f.tb.beginTx();
    f.tb.declareLogged(f.data, 8);
    f.tb.store(f.data, 8, 5);
    f.tb.endTx();
    EXPECT_GE(f.tb.trace().countOps(Op::PCommit), 4u);
}

TEST(TraceBuilder, SoftwareLogEntryIsParseable)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    f.tb.declareLogged(f.data, 8);
    f.tb.store(f.data, 8, 5);
    f.tb.endTx();
    // The software log entry was written to the heap in LogRecord
    // format at the start of the log area.
    std::uint8_t bytes[logEntrySize];
    f.heap.readBytes(f.tb.logAreaStart(), bytes, sizeof(bytes));
    const LogRecord rec = LogRecord::fromBytes(bytes);
    EXPECT_TRUE(rec.valid());
    EXPECT_EQ(rec.fromAddr, logAlign(f.data));
    std::uint64_t old = 0;
    std::memcpy(&old, rec.data.data(), 8);
    EXPECT_EQ(old, 0x1111u);
}

TEST(TraceBuilder, UndeclaredStorePanicsUnderSwLogging)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    EXPECT_THROW(f.tb.store(f.data, 8, 1), PanicError);
}

TEST(TraceBuilder, StoreInitSkipsSwUndoLog)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    f.tb.storeInit(f.data, 8, 1);   // fresh allocation: no undo entry
    f.tb.endTx();
    // No full log entry was emitted: far fewer stores than Figure 2.
    EXPECT_LT(f.tb.trace().countOps(Op::Store), 8u);
}

TEST(TraceBuilder, DeclareAfterStorePanics)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    f.tb.declareLogged(f.data, 8);
    f.tb.store(f.data, 8, 1);
    EXPECT_THROW(f.tb.declareLogged(f.data + 64, 8), PanicError);
}

TEST(TraceBuilder, NoRecordingDuringWarmup)
{
    Fixture f(LogScheme::Proteus);
    f.tb.setRecording(false);
    f.tb.beginTx();
    f.tb.store(f.data, 8, 3);
    f.tb.endTx();
    EXPECT_TRUE(f.tb.trace().empty());
    EXPECT_EQ(f.heap.read<std::uint64_t>(f.data), 3u);
}

TEST(TraceBuilder, CollectTouchedRollsBack)
{
    Fixture f(LogScheme::PMEM);
    f.tb.beginTx();
    const auto touched = f.tb.collectTouched([&]() {
        const Value v = f.tb.load(f.data, 8);
        f.tb.store(f.data, 8, v.v + 1);
        f.tb.store(f.data + 32, 8, 7);
    });
    // The heap is unchanged and nothing was recorded...
    EXPECT_EQ(f.heap.read<std::uint64_t>(f.data), 0x1111u);
    EXPECT_EQ(f.heap.read<std::uint64_t>(f.data + 32), 0u);
    EXPECT_EQ(f.tb.trace().countOps(Op::Store), 0u);
    // ...but the touch set knows both granules.
    EXPECT_TRUE(touched.readGranules.count(logAlign(f.data)));
    EXPECT_TRUE(touched.writtenGranules.count(logAlign(f.data)));
    EXPECT_TRUE(touched.writtenGranules.count(logAlign(f.data + 32)));
    f.tb.endTx();
}

TEST(TraceBuilder, WorkEmitsAlu)
{
    Fixture f(LogScheme::PMEMNoLog);
    f.tb.work(10);
    EXPECT_EQ(f.tb.trace().countOps(Op::IntAlu), 10u);
}

TEST(TraceBuilder, WorkChaseEmitsDependentLoads)
{
    Fixture f(LogScheme::PMEMNoLog);
    f.tb.workChase(5);
    const Trace &t = f.tb.trace();
    ASSERT_EQ(t.countOps(Op::Load), 5u);
    // Each load (after the first) depends on the previous load's
    // destination register.
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_EQ(t.op(i).src0, t.op(i - 1).dst);
}

TEST(TraceBuilder, TxIdsAreMonotonicPerThread)
{
    Fixture f(LogScheme::PMEMNoLog);
    const TxId a = f.tb.beginTx();
    f.tb.endTx();
    const TxId b = f.tb.beginTx();
    f.tb.endTx();
    EXPECT_GT(b, a);
    EXPECT_GT(a, 0u);
}

TEST(TraceBuilder, StoreOutsideTxPanics)
{
    Fixture f(LogScheme::PMEMNoLog);
    EXPECT_THROW(f.tb.store(f.data, 8, 1), PanicError);
    EXPECT_NO_THROW(f.tb.storeRaw(f.data, 8, 1));
}
