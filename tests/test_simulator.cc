/** @file Unit tests for the cycle-driven simulation kernel. */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

class Probe : public Ticked
{
  public:
    explicit Probe(std::string name) : _name(std::move(name)) {}
    void tick(Tick now) override
    {
        ++ticks;
        lastTick = now;
        if (onTick)
            onTick(now);
    }
    const std::string &componentName() const override { return _name; }

    unsigned ticks = 0;
    Tick lastTick = 0;
    std::function<void(Tick)> onTick;

  private:
    std::string _name;
};

} // namespace

TEST(Simulator, RunAdvancesTime)
{
    Simulator sim;
    Probe p("p");
    sim.addTicked(&p);
    sim.run(10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(p.ticks, 10u);
    EXPECT_EQ(p.lastTick, 9u);
}

TEST(Simulator, ComponentsTickInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> order;
    Probe a("a"), b("b");
    a.onTick = [&](Tick) { order.push_back(1); };
    b.onTick = [&](Tick) { order.push_back(2); };
    sim.addTicked(&a);
    sim.addTicked(&b);
    sim.run(1);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, EventsFireBeforeTicks)
{
    Simulator sim;
    std::vector<int> order;
    Probe p("p");
    p.onTick = [&](Tick now) {
        if (now == 5)
            order.push_back(2);
    };
    sim.addTicked(&p);
    sim.schedule(5, [&]() { order.push_back(1); });
    sim.run(6);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilPredicate)
{
    Simulator sim;
    Probe p("p");
    sim.addTicked(&p);
    bool ok = sim.runUntil([&]() { return p.ticks >= 7; }, 100);
    EXPECT_TRUE(ok);
    EXPECT_EQ(p.ticks, 7u);
}

TEST(Simulator, RunUntilTimesOut)
{
    Simulator sim;
    bool ok = sim.runUntil([]() { return false; }, 50);
    EXPECT_FALSE(ok);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RequestStopEndsRun)
{
    Simulator sim;
    Probe p("p");
    p.onTick = [&](Tick now) {
        if (now == 3)
            sim.requestStop();
    };
    sim.addTicked(&p);
    sim.run(100);
    EXPECT_EQ(sim.now(), 4u);
}

TEST(Simulator, NullComponentPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.addTicked(nullptr), PanicError);
}
