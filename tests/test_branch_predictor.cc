/** @file Unit tests for the gshare branch predictor. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

} // namespace

TEST(BranchPredictor, LearnsAConstantDirection)
{
    BranchPredictor bp(10, reg(), "bp" + std::to_string(counter++));
    // Train: always taken at one site.
    for (int i = 0; i < 64; ++i) {
        const bool pred = bp.predict(0x40);
        bp.update(0x40, true, pred);
    }
    // The global history register shifts during warmup, so early
    // predictions exercise untrained slots; once history saturates the
    // predictor is stable.
    EXPECT_TRUE(bp.predict(0x40));
    EXPECT_GT(bp.accuracy(), 0.7);
}

TEST(BranchPredictor, LearnsNotTaken)
{
    BranchPredictor bp(10, reg(), "bp" + std::to_string(counter++));
    for (int i = 0; i < 64; ++i) {
        const bool pred = bp.predict(0x80);
        bp.update(0x80, false, pred);
    }
    EXPECT_FALSE(bp.predict(0x80));
}

TEST(BranchPredictor, LearnsAlternationThroughHistory)
{
    BranchPredictor bp(12, reg(), "bp" + std::to_string(counter++));
    bool dir = false;
    // Strict alternation is predictable once the global history
    // correlates with the outcome.
    unsigned correct_tail = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool pred = bp.predict(0x99);
        if (i >= 3000 && pred == dir)
            ++correct_tail;
        bp.update(0x99, dir, pred);
        dir = !dir;
    }
    EXPECT_GT(correct_tail, 900u);
}

TEST(BranchPredictor, BadGeometryFatal)
{
    EXPECT_THROW(BranchPredictor(0, reg(), "bp_bad0"), FatalError);
    EXPECT_THROW(BranchPredictor(30, reg(), "bp_bad1"), FatalError);
}
