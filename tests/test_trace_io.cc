/**
 * @file
 * Round-trip tests of the .ptrace snapshot format: save -> load must
 * reproduce the bundle exactly, and a system wired from the loaded
 * bundle must produce a bit-identical RunResult to one that built its
 * traces in-process — for every logging scheme.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "harness/trace_bundle.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

const std::vector<LogScheme> allSchemes{
    LogScheme::PMEM,    LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
    LogScheme::ATOM,    LogScheme::Proteus,     LogScheme::ProteusNoLWR,
};

TraceBundleKey
smallKey(LogScheme scheme, WorkloadKind kind = WorkloadKind::Queue)
{
    TraceBundleKey key;
    key.kind = kind;
    key.scheme = scheme;
    key.params.threads = 2;
    key.params.scale = 2000;
    key.params.initScale = 200;
    key.params.seed = 1;
    return key;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.payloadCount(), b.payloadCount());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const MicroOp &x = a.op(i);
        const MicroOp &y = b.op(i);
        ASSERT_EQ(x.op, y.op) << "op " << i;
        ASSERT_EQ(x.src0, y.src0) << "op " << i;
        ASSERT_EQ(x.src1, y.src1) << "op " << i;
        ASSERT_EQ(x.dst, y.dst) << "op " << i;
        ASSERT_EQ(x.size, y.size) << "op " << i;
        ASSERT_EQ(x.taken, y.taken) << "op " << i;
        ASSERT_EQ(x.persistent, y.persistent) << "op " << i;
        ASSERT_EQ(x.staticPc, y.staticPc) << "op " << i;
        ASSERT_EQ(x.payload, y.payload) << "op " << i;
        ASSERT_EQ(x.addr, y.addr) << "op " << i;
        ASSERT_EQ(x.data, y.data) << "op " << i;
    }
    for (std::size_t i = 0; i < a.payloadCount(); ++i) {
        const LogPayload &x = a.logPayload(static_cast<std::uint32_t>(i));
        const LogPayload &y = b.logPayload(static_cast<std::uint32_t>(i));
        ASSERT_EQ(0, std::memcmp(x.bytes, y.bytes, logDataSize))
            << "payload " << i;
        ASSERT_EQ(x.fromAddr, y.fromAddr) << "payload " << i;
        ASSERT_EQ(x.txId, y.txId) << "payload " << i;
    }
}

void
expectResultsEqual(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.nvmWrites, b.nvmWrites);
    EXPECT_EQ(a.nvmReads, b.nvmReads);
    EXPECT_EQ(a.frontendStallCycles, b.frontendStallCycles);
    EXPECT_EQ(a.committedTxs, b.committedTxs);
    EXPECT_EQ(a.logWritesDropped, b.logWritesDropped);
    EXPECT_EQ(a.lltMissRate, b.lltMissRate);
    EXPECT_EQ(a.cpi.base, b.cpi.base);
    EXPECT_EQ(a.cpi.robFull, b.cpi.robFull);
    EXPECT_EQ(a.cpi.iqLsqFull, b.cpi.iqLsqFull);
    EXPECT_EQ(a.cpi.branchRedirect, b.cpi.branchRedirect);
    EXPECT_EQ(a.cpi.persistStall, b.cpi.persistStall);
    EXPECT_EQ(a.cpi.wpqBackpressure, b.cpi.wpqBackpressure);
    EXPECT_EQ(a.cpi.lockWait, b.cpi.lockWait);
}

} // namespace

TEST(TraceIo, Crc32KnownVector)
{
    // The classic IEEE 802.3 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    for (const LogScheme scheme : allSchemes) {
        SCOPED_TRACE(toString(scheme));
        const TraceBundleKey key = smallKey(scheme);
        const auto built = TraceBundle::build(key, nullptr, true);
        const std::string path =
            tempPath(std::string("rt_") + toString(key.kind) + "_" +
                     std::to_string(static_cast<int>(scheme)) +
                     ".ptrace");
        saveTraceBundle(*built, path);
        const auto loaded = loadTraceBundle(path);

        EXPECT_TRUE(loaded->key == key);
        EXPECT_EQ(loaded->workload, nullptr);
        ASSERT_EQ(loaded->threads.size(), built->threads.size());
        for (std::size_t t = 0; t < built->threads.size(); ++t) {
            SCOPED_TRACE("thread " + std::to_string(t));
            const auto &x = built->threads[t];
            const auto &y = loaded->threads[t];
            EXPECT_EQ(x.logStart, y.logStart);
            EXPECT_EQ(x.logEnd, y.logEnd);
            EXPECT_EQ(x.logFlag, y.logFlag);
            EXPECT_EQ(x.txCount, y.txCount);
            expectTracesEqual(x.trace, y.trace);
        }
        EXPECT_TRUE(built->heap->volatileImage().identical(
            loaded->heap->volatileImage()));
        EXPECT_TRUE(built->heap->nvmImage().identical(
            loaded->heap->nvmImage()));
        EXPECT_EQ(built->lockMap, loaded->lockMap);
        ASSERT_NE(loaded->history, nullptr);
        EXPECT_EQ(built->history->events(), loaded->history->events());

        // The allocator must keep allocating from the same frontier —
        // this is what makes ATOM log-area addresses reproducible.
        EXPECT_EQ(built->heap->allocState().nextLogArea,
                  loaded->heap->allocState().nextLogArea);
        EXPECT_EQ(built->heap->alloc(64), loaded->heap->alloc(64));
        std::remove(path.c_str());
    }
}

TEST(TraceIo, LoadedBundleRunsBitIdentical)
{
    for (const LogScheme scheme : allSchemes) {
        SCOPED_TRACE(toString(scheme));
        const TraceBundleKey key = smallKey(scheme);

        SystemConfig cfg = baselineConfig();
        cfg.logging.scheme = scheme;
        cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;

        // Classic path: build the traces in-process.
        FullSystem direct(cfg, key.kind, key.params);
        const RunResult want = direct.run();

        // Snapshot path: save, load, wire from the file.
        const auto built = TraceBundle::build(key);
        const std::string path = tempPath(
            std::string("run_") +
            std::to_string(static_cast<int>(scheme)) + ".ptrace");
        saveTraceBundle(*built, path);
        const auto loaded = loadTraceBundle(path);
        FullSystem replay(cfg, loaded);
        EXPECT_FALSE(replay.hasWorkload());
        const RunResult got = replay.run();

        expectResultsEqual(want, got);
        std::remove(path.c_str());
    }
}

TEST(TraceIo, VerifyAcceptsSoundFile)
{
    const auto bundle =
        TraceBundle::build(smallKey(LogScheme::Proteus), nullptr, true);
    const std::string path = tempPath("sound.ptrace");
    saveTraceBundle(*bundle, path);

    EXPECT_TRUE(verifyTraceFile(path).empty());

    const PtraceFileInfo info = inspectTraceFile(path);
    EXPECT_EQ(info.version, ptraceVersion);
    EXPECT_TRUE(info.key == bundle->key);
    EXPECT_EQ(info.totalOps, bundle->totalOps());
    EXPECT_EQ(info.totalPayloads, bundle->totalPayloads());
    EXPECT_EQ(info.totalTxs, bundle->totalTxs());
    EXPECT_EQ(info.historyEvents, bundle->history->events().size());
    for (const PtraceSectionInfo &s : info.sections)
        EXPECT_TRUE(s.crcOk) << s.tag;
    std::remove(path.c_str());
}

TEST(TraceIo, CorruptionIsDetectedNotCrashed)
{
    const auto bundle = TraceBundle::build(smallKey(LogScheme::Proteus));
    const std::string path = tempPath("corrupt.ptrace");
    saveTraceBundle(*bundle, path);

    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();

    // Flip one byte in the middle of the file (inside a section
    // payload): the CRC check must reject the file.
    std::vector<char> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    const std::string bad = tempPath("corrupt_flipped.ptrace");
    std::ofstream(bad, std::ios::binary)
        .write(flipped.data(),
               static_cast<std::streamsize>(flipped.size()));
    EXPECT_THROW(loadTraceBundle(bad), FatalError);
    EXPECT_FALSE(verifyTraceFile(bad).empty());

    // Truncation anywhere must also be rejected cleanly.
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() +
                              static_cast<std::ptrdiff_t>(
                                  bytes.size() / 3));
    const std::string short_path = tempPath("corrupt_cut.ptrace");
    std::ofstream(short_path, std::ios::binary)
        .write(cut.data(), static_cast<std::streamsize>(cut.size()));
    EXPECT_THROW(loadTraceBundle(short_path), FatalError);

    // A non-ptrace file is rejected on the magic.
    const std::string junk = tempPath("corrupt_junk.ptrace");
    std::ofstream(junk) << "not a trace";
    EXPECT_THROW(loadTraceBundle(junk), FatalError);
    EXPECT_THROW(inspectTraceFile(junk), FatalError);

    std::remove(path.c_str());
    std::remove(bad.c_str());
    std::remove(short_path.c_str());
    std::remove(junk.c_str());
}
