/** @file Unit tests for the per-core transaction registers. */

#include <gtest/gtest.h>

#include "logging/tx_context.hh"
#include "sim/logging.hh"

using namespace proteus;

TEST(TxContext, BeginEndLifecycle)
{
    TxContext ctx;
    EXPECT_FALSE(ctx.inTx());
    ctx.beginTx(5);
    EXPECT_TRUE(ctx.inTx());
    EXPECT_EQ(ctx.txId(), 5u);
    ctx.endTx();
    EXPECT_FALSE(ctx.inTx());
}

TEST(TxContext, NestedTxPanics)
{
    TxContext ctx;
    ctx.beginTx(1);
    EXPECT_THROW(ctx.beginTx(2), PanicError);
}

TEST(TxContext, EndWithoutBeginPanics)
{
    TxContext ctx;
    EXPECT_THROW(ctx.endTx(), PanicError);
}

TEST(TxContext, TxIdZeroReserved)
{
    TxContext ctx;
    EXPECT_THROW(ctx.beginTx(0), PanicError);
}

TEST(TxContext, LogToAutoIncrementAndWrap)
{
    TxContext ctx;
    ctx.bindLogArea(0x1000, 0x1000 + 3 * logEntrySize);
    ctx.beginTx(1);
    EXPECT_EQ(ctx.nextLogTo(), 0x1000u);
    EXPECT_EQ(ctx.nextLogTo(), 0x1000u + logEntrySize);
    EXPECT_EQ(ctx.nextLogTo(), 0x1000u + 2 * logEntrySize);
    ctx.endTx();
    ctx.beginTx(2);
    // Circular: the next transaction wraps to the start.
    EXPECT_EQ(ctx.nextLogTo(), 0x1000u);
}

TEST(TxContext, OverflowRaisesException)
{
    TxContext ctx;
    ctx.bindLogArea(0x1000, 0x1000 + 2 * logEntrySize);
    ctx.beginTx(1);
    ctx.nextLogTo();
    ctx.nextLogTo();
    // A third entry in one transaction exceeds the whole area
    // (Section 4.1: the processor raises an exception).
    EXPECT_THROW(ctx.nextLogTo(), FatalError);
}

TEST(TxContext, SeqIsPerTransaction)
{
    TxContext ctx;
    ctx.bindLogArea(0x1000, 0x2000);
    ctx.beginTx(1);
    EXPECT_EQ(ctx.nextSeq(), 0u);
    EXPECT_EQ(ctx.nextSeq(), 1u);
    ctx.endTx();
    ctx.beginTx(2);
    EXPECT_EQ(ctx.nextSeq(), 0u);
}

TEST(TxContext, BadLogAreaIsFatal)
{
    TxContext ctx;
    EXPECT_THROW(ctx.bindLogArea(0x1000, 0x1000), FatalError);
    EXPECT_THROW(ctx.bindLogArea(0x1000, 0x1001), FatalError);
}

TEST(TxContext, UnboundLogToPanics)
{
    TxContext ctx;
    ctx.beginTx(1);
    EXPECT_THROW(ctx.nextLogTo(), PanicError);
}

TEST(TxContext, SaveRestoreRoundTrip)
{
    TxContext ctx;
    ctx.bindLogArea(0x1000, 0x2000);
    ctx.beginTx(9);
    ctx.nextLogTo();
    ctx.nextSeq();
    const auto saved = ctx.save();

    TxContext other;
    other.restore(saved);
    EXPECT_TRUE(other.inTx());
    EXPECT_EQ(other.txId(), 9u);
    EXPECT_EQ(other.curlog(), ctx.curlog());
    EXPECT_EQ(other.nextSeq(), 1u);
}
