/**
 * @file
 * TraceEventSink: category parsing, ring-buffer bounding, Chrome Trace
 * Event JSON validity, per-track cycle ordering, and bit-identical
 * trace files no matter how many host threads run the batch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/system.hh"
#include "json_validator.hh"
#include "sim/logging.hh"
#include "sim/trace_events.hh"

using namespace proteus;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Extract an integer field like `"ts": 123` from one event line. */
bool
field(const std::string &line, const std::string &key, std::int64_t &out)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    out = std::stoll(line.substr(pos + needle.size()));
    return true;
}

/** Per-track timestamps, in file order (metadata events skipped). */
std::map<std::int64_t, std::vector<std::int64_t>>
perTrackTimestamps(const std::string &json)
{
    std::map<std::int64_t, std::vector<std::int64_t>> tracks;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"ph\": \"M\"") != std::string::npos)
            continue;
        std::int64_t tid = 0, ts = 0;
        if (field(line, "tid", tid) && field(line, "ts", ts))
            tracks[tid].push_back(ts);
    }
    return tracks;
}

BenchOptions
tinyOptions()
{
    BenchOptions opts;
    opts.threads = 2;
    opts.scale = 500;
    opts.initScale = 100;
    opts.seed = 3;
    return opts;
}

} // namespace

TEST(TraceCategories, ParseAndName)
{
    EXPECT_EQ(TraceEventSink::parseCategories("cpu"), TraceCatCpu);
    EXPECT_EQ(TraceEventSink::parseCategories("cpu,log"),
              TraceCatCpu | TraceCatLog);
    EXPECT_EQ(TraceEventSink::parseCategories("all"), TraceCatAll);
    EXPECT_EQ(TraceEventSink::parseCategories("memctrl,lock"),
              TraceCatMemCtrl | TraceCatLock);
    EXPECT_THROW(TraceEventSink::parseCategories("bogus"), FatalError);
    EXPECT_THROW(TraceEventSink::parseCategories(""), FatalError);
    EXPECT_STREQ(TraceEventSink::categoryName(TraceCatCpu), "cpu");
    EXPECT_STREQ(TraceEventSink::categoryName(TraceCatLock), "lock");
}

TEST(TraceEventSink, CategoryMaskGatesRecording)
{
    TraceEventSink sink("", TraceCatCpu, 16);
    const std::uint32_t track = sink.defineTrack("t");
    sink.instant(TraceCatCpu, track, "kept", 1);
    sink.instant(TraceCatLog, track, "filtered", 2);
    EXPECT_EQ(sink.size(), 1u);
    EXPECT_TRUE(sink.wants(TraceCatCpu));
    EXPECT_FALSE(sink.wants(TraceCatLog));
}

TEST(TraceEventSink, RingBoundsEventCountAndCountsDrops)
{
    TraceEventSink sink("", TraceCatAll, 4);
    const std::uint32_t track = sink.defineTrack("t");
    for (Tick t = 0; t < 10; ++t)
        sink.instant(TraceCatCpu, track, "e", t);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);

    // The survivors are the newest events, still in cycle order, and
    // the wrap is advertised: a top-level droppedEvents field plus a
    // counter event pinned at the earliest retained timestamp.
    std::ostringstream os;
    sink.write(os);
    EXPECT_TRUE(testjson::isValidJson(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"droppedEvents\": 6"),
              std::string::npos);
    const auto tracks = perTrackTimestamps(os.str());
    ASSERT_EQ(tracks.size(), 2u);
    EXPECT_EQ(tracks.at(0), (std::vector<std::int64_t>{6}));
    EXPECT_EQ(tracks.at(1),
              (std::vector<std::int64_t>{6, 7, 8, 9}));
}

TEST(TraceEventSink, WritesValidJsonWithAllPhases)
{
    TraceEventSink sink("", TraceCatAll, 64);
    const std::uint32_t t1 = sink.defineTrack("pipeline");
    const std::uint32_t t2 = sink.defineTrack("wpq \"weird\\name\"");
    sink.complete(TraceCatCpu, t1, "base", 0, 10);
    sink.instant(TraceCatLock, t1, "wait", 4);
    sink.counter(TraceCatMemCtrl, t2, "occupancy", 5, 3);
    std::ostringstream os;
    sink.write(os);
    const std::string json = os.str();
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    // Track name with quotes/backslash must be escaped, not raw.
    EXPECT_NE(json.find("wpq \\\"weird\\\\name\\\""),
              std::string::npos);
}

TEST(TraceEvents, FullSystemFileIsValidAndCycleOrderedPerTrack)
{
    const std::string path =
        testing::TempDir() + "/proteus_trace_test.json";
    SystemConfig cfg = baselineConfig();
    cfg.obs.traceEvents = path;

    WorkloadParams params;
    params.threads = 2;
    params.scale = 500;
    params.initScale = 100;
    params.seed = 3;

    {
        FullSystem system(cfg, WorkloadKind::Queue, params);
        ASSERT_TRUE(system.run().finished);
        ASSERT_NE(system.traceSink(), nullptr);
        EXPECT_GT(system.traceSink()->size(), 0u);
    }

    const std::string json = slurp(path);
    ASSERT_TRUE(testjson::isValidJson(json)) << path;

    const auto tracks = perTrackTimestamps(json);
    EXPECT_GE(tracks.size(), 3u);   // pipeline, tx, mc.wpq at least
    for (const auto &[tid, stamps] : tracks) {
        for (std::size_t i = 1; i < stamps.size(); ++i) {
            ASSERT_LE(stamps[i - 1], stamps[i])
                << "track " << tid << " out of order at event " << i;
        }
    }
}

TEST(TraceEvents, ParallelBatchProducesIdenticalFiles)
{
    const BenchOptions opts = tinyOptions();
    const std::string base =
        testing::TempDir() + "/proteus_trace_jobs.json";

    std::vector<SimJob> jobs;
    for (LogScheme s : {LogScheme::PMEM, LogScheme::Proteus,
                        LogScheme::ATOM}) {
        SystemConfig cfg = opts.makeConfig();
        cfg.obs.traceEvents = base;
        jobs.push_back(SimJob{cfg, s, WorkloadKind::Queue, {},
                              toString(s)});
    }

    auto run_and_read = [&](unsigned workers) {
        ParallelRunner(workers).run(jobs, opts);
        std::vector<std::string> files;
        for (std::size_t i = 0; i < jobs.size(); ++i)
            files.push_back(slurp(perJobPath(base, i)));
        return files;
    };

    const auto serial = run_and_read(1);
    const auto parallel = run_and_read(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(testjson::isValidJson(serial[i]));
        EXPECT_EQ(serial[i], parallel[i]) << jobs[i].label;
    }
}

TEST(PerJobPath, InsertsIndexBeforeExtension)
{
    EXPECT_EQ(perJobPath("out/iv.json", 2), "out/iv.job2.json");
    EXPECT_EQ(perJobPath("trace", 0), "trace.job0");
    EXPECT_EQ(perJobPath("a.b/c", 1), "a.b/c.job1");
    EXPECT_EQ(perJobPath("", 3), "");
}
