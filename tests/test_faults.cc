/**
 * @file
 * NVM media fault injection: the seeded fault model (torn writes,
 * endurance wear, read bit-flips), MC-side ECC classification and
 * bounded retry, recovery-scan poison classification, and end-to-end
 * crash campaigns that must never report silent corruption.
 *
 * Every fault draw is a pure hash of (seed, line, ordinal), so each
 * test pins exact deterministic outcomes — across processes, --jobs
 * levels, and cycle-skip modes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "crashtest/commit_oracle.hh"
#include "crashtest/crash_tester.hh"
#include "faults/fault_model.hh"
#include "harness/experiments.hh"
#include "heap/persistent_heap.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/tx_stats_io.hh"
#include "recovery/recovery.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace proteus;

namespace {

faults::FaultConfig
spec(const std::string &s)
{
    return faults::parseFaultSpec(s);
}

/** A fault model bound to a private registry and image. */
struct ModelFixture
{
    explicit ModelFixture(const std::string &s)
        : model(spec(s), sim.statsRegistry())
    {
    }

    double
    stat(const std::string &name)
    {
        return sim.statsRegistry().lookup("faults." + name);
    }

    Simulator sim;
    MemoryImage image;
    faults::FaultModel model;
};

std::array<std::uint8_t, blockSize>
pattern(std::uint8_t value)
{
    std::array<std::uint8_t, blockSize> data;
    data.fill(value);
    return data;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

TEST(FaultSpec, RoundTripsThroughCanonicalForm)
{
    const faults::FaultConfig cfg = spec(
        "torn=0.01,readflip=1e-4,bits=3,endurance=500,stuck=4,detect=8,"
        "correct=2,retries=6,backoff=32,seed=42");
    EXPECT_DOUBLE_EQ(cfg.tornWriteRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg.readFlipRate, 1e-4);
    EXPECT_EQ(cfg.readFlipBitsMax, 3u);
    EXPECT_EQ(cfg.enduranceWrites, 500u);
    EXPECT_EQ(cfg.stuckBits, 4u);
    EXPECT_EQ(cfg.eccDetectBits, 8u);
    EXPECT_EQ(cfg.eccCorrectBits, 2u);
    EXPECT_EQ(cfg.readRetryLimit, 6u);
    EXPECT_EQ(cfg.retryBackoffBase, 32u);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_TRUE(cfg.enabled());
    // Canonical spec -> parse -> canonical is a fixed point.
    const std::string canon = faults::canonicalFaultSpec(cfg);
    EXPECT_EQ(faults::canonicalFaultSpec(spec(canon)), canon);
}

TEST(FaultSpec, RejectsNonsense)
{
    EXPECT_THROW(spec("torn=1.5"), FatalError);
    EXPECT_THROW(spec("readflip=-0.1"), FatalError);
    EXPECT_THROW(spec("bits=0"), FatalError);
    EXPECT_THROW(spec("detect=1,correct=2"), FatalError);
    EXPECT_THROW(spec("unknown=1"), FatalError);
    EXPECT_THROW(spec("torn"), FatalError);
    EXPECT_THROW(spec("torn=abc"), FatalError);
}

TEST(FaultSpec, DefaultIsDisabled)
{
    const faults::FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    // ECC/retry knobs alone do not arm injection.
    EXPECT_FALSE(spec("detect=16,correct=2,retries=8").enabled());
    EXPECT_TRUE(spec("torn=0.1").enabled());
    EXPECT_TRUE(spec("readflip=0.1").enabled());
    EXPECT_TRUE(spec("endurance=10").enabled());
}

// ---------------------------------------------------------------------
// Torn line writes
// ---------------------------------------------------------------------

TEST(FaultModel, TornWriteMergesOldAndNewChunks)
{
    ModelFixture f("torn=1,detect=8,correct=1,seed=7");
    const Addr line = 0x4000;
    f.image.write(line, pattern(0x00).data(), blockSize);
    f.image.write(line, pattern(0x00).data(), blockSize);  // heal marks

    const auto out =
        f.model.applyWrite(f.image, line, pattern(0xFF).data());
    EXPECT_EQ(out, faults::WriteOutcome::Torn);
    EXPECT_TRUE(f.image.isPoisoned(line));
    EXPECT_EQ(f.stat("tornWrites"), 1.0);
    EXPECT_EQ(f.stat("eccDetected"), 1.0);
    EXPECT_EQ(f.stat("linesPoisoned"), 1.0);

    // Each 8-byte chunk either landed whole (0xFF) or was lost whole
    // (0x00) — and a torn write by construction has at least one of
    // each.
    std::uint8_t got[blockSize];
    f.image.read(line, got, blockSize);
    unsigned landed = 0, lost = 0;
    for (unsigned c = 0; c < blockSize / 8; ++c) {
        bool allNew = true, allOld = true;
        for (unsigned b = 0; b < 8; ++b) {
            (got[c * 8 + b] == 0xFF ? allOld : allNew) = false;
        }
        ASSERT_TRUE(allNew || allOld) << "chunk " << c << " is mixed";
        (allNew ? landed : lost) += 1;
    }
    EXPECT_GE(landed, 1u);
    EXPECT_GE(lost, 1u);
}

TEST(FaultModel, TornWriteWithoutEccIsSilent)
{
    ModelFixture f("torn=1,detect=0,correct=0,seed=7");
    const auto out =
        f.model.applyWrite(f.image, 0x4000, pattern(0xFF).data());
    EXPECT_EQ(out, faults::WriteOutcome::Silent);
    EXPECT_FALSE(f.image.isPoisoned(0x4000));
    EXPECT_EQ(f.stat("silentFaults"), 1.0);
    EXPECT_EQ(f.stat("eccDetected"), 0.0);
}

TEST(FaultModel, TornOutcomesAreSeedDeterministic)
{
    ModelFixture a("torn=0.5,detect=8,seed=123");
    ModelFixture b("torn=0.5,detect=8,seed=123");
    for (unsigned i = 0; i < 64; ++i) {
        const Addr line = 0x10000 + i * blockSize;
        const auto oa =
            a.model.applyWrite(a.image, line, pattern(0xAB).data());
        const auto ob =
            b.model.applyWrite(b.image, line, pattern(0xAB).data());
        EXPECT_EQ(oa, ob);
        std::uint8_t ba[blockSize], bb[blockSize];
        a.image.read(line, ba, blockSize);
        b.image.read(line, bb, blockSize);
        EXPECT_EQ(std::memcmp(ba, bb, blockSize), 0);
    }
    // ...and a different seed tears a different subset of lines.
    ModelFixture c("torn=0.5,detect=8,seed=124");
    unsigned differs = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const Addr line = 0x10000 + i * blockSize;
        const auto oc =
            c.model.applyWrite(c.image, line, pattern(0xAB).data());
        differs += (a.image.isPoisoned(line) !=
                    (oc == faults::WriteOutcome::Torn))
                       ? 1
                       : 0;
    }
    EXPECT_GT(differs, 0u);
}

// ---------------------------------------------------------------------
// Endurance wear and stuck-at cells
// ---------------------------------------------------------------------

TEST(FaultModel, EnduranceBudgetGatesWear)
{
    // One stuck cell, no correction: after 3 writes the line wears out
    // and exactly one of two complementary patterns disagrees with the
    // stuck value (whichever it is for this seed/line).
    ModelFixture f("endurance=3,stuck=1,detect=8,correct=0,seed=9");
    const Addr line = 0x8000;
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(f.model.applyWrite(f.image, line, pattern(0x00).data()),
                  faults::WriteOutcome::Clean);
    }
    EXPECT_EQ(f.stat("wornWrites"), 0.0);

    const auto zeros =
        f.model.applyWrite(f.image, line, pattern(0x00).data());
    ASSERT_TRUE(zeros == faults::WriteOutcome::Clean ||
                zeros == faults::WriteOutcome::Uncorrectable);
    const bool stuck_at_zero = zeros == faults::WriteOutcome::Clean;
    const auto failing = stuck_at_zero ? pattern(0xFF) : pattern(0x00);
    if (stuck_at_zero) {
        EXPECT_EQ(f.model.applyWrite(f.image, line, failing.data()),
                  faults::WriteOutcome::Uncorrectable);
    }

    // The failing write stored corrupted data differing in exactly the
    // stuck bit, and poisoned the line (1 flip > correct=0, <= detect).
    EXPECT_EQ(f.stat("wornWrites"), stuck_at_zero ? 2.0 : 1.0);
    EXPECT_EQ(f.stat("eccDetected"), 1.0);
    EXPECT_TRUE(f.image.isPoisoned(line));
    std::uint8_t got[blockSize];
    f.image.read(line, got, blockSize);
    unsigned flips = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        std::uint8_t diff =
            static_cast<std::uint8_t>(got[i] ^ failing[i]);
        while (diff) {
            flips += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(flips, 1u);

    // A pattern agreeing with the stuck cell stores clean — and the
    // full-line rewrite re-encodes the ECC, healing the poison.
    const auto agreeing = stuck_at_zero ? pattern(0x00) : pattern(0xFF);
    EXPECT_EQ(f.model.applyWrite(f.image, line, agreeing.data()),
              faults::WriteOutcome::Clean);
    EXPECT_FALSE(f.image.isPoisoned(line));
}

TEST(FaultModel, EccCorrectsWearWithinStrength)
{
    // correct=2 covers both stuck cells: the stored data is pristine
    // and the line never poisons, whatever the pattern.
    ModelFixture f("endurance=1,stuck=2,detect=8,correct=2,seed=9");
    const Addr line = 0x8000;
    f.model.applyWrite(f.image, line, pattern(0x00).data());
    for (std::uint8_t v : {0x00, 0xFF, 0x5A}) {
        const auto out =
            f.model.applyWrite(f.image, line, pattern(v).data());
        EXPECT_TRUE(out == faults::WriteOutcome::Clean ||
                    out == faults::WriteOutcome::Corrected);
        std::uint8_t got[blockSize];
        f.image.read(line, got, blockSize);
        EXPECT_EQ(std::memcmp(got, pattern(v).data(), blockSize), 0);
        EXPECT_FALSE(f.image.isPoisoned(line));
    }
}

TEST(FaultModel, WearBeyondDetectionIsSilent)
{
    // detect=0 disables ECC entirely: worn writes that flip bits are
    // stored corrupted with no poison mark.
    ModelFixture f("endurance=1,stuck=1,detect=0,correct=0,seed=9");
    const Addr line = 0x8000;
    f.model.applyWrite(f.image, line, pattern(0x00).data());
    const auto zeros =
        f.model.applyWrite(f.image, line, pattern(0x00).data());
    const auto ones =
        f.model.applyWrite(f.image, line, pattern(0xFF).data());
    const bool one_silent = (zeros == faults::WriteOutcome::Silent) !=
                            (ones == faults::WriteOutcome::Silent);
    EXPECT_TRUE(one_silent);
    EXPECT_FALSE(f.image.isPoisoned(line));
    EXPECT_EQ(f.stat("silentFaults"), 1.0);
}

// ---------------------------------------------------------------------
// Read faults and ECC thresholds
// ---------------------------------------------------------------------

TEST(FaultModel, ReadFlipsClassifyByEccStrength)
{
    // Every read faults with 1..2 flipped bits; correct=1 splits the
    // outcomes between Corrected (1 bit) and Transient (2 bits).
    ModelFixture f("readflip=1,bits=2,detect=8,correct=1,seed=5");
    f.image.write(0x4000, pattern(0).data(), blockSize);
    unsigned corrected = 0, transient = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const Addr line = 0x4000 + (i % 4) * blockSize;
        switch (f.model.classifyRead(f.image, line)) {
          case faults::ReadOutcome::Corrected: ++corrected; break;
          case faults::ReadOutcome::Transient: ++transient; break;
          default: FAIL() << "unexpected outcome";
        }
    }
    EXPECT_GT(corrected, 0u);
    EXPECT_GT(transient, 0u);
    EXPECT_EQ(corrected + transient, 64u);
    EXPECT_EQ(f.stat("readFaults"), 64.0);
    EXPECT_EQ(f.stat("eccCorrected"), static_cast<double>(corrected));
    EXPECT_EQ(f.stat("eccDetected"), static_cast<double>(transient));

    // correct=2 swallows everything; detect=1,bits=4 leaks silently.
    ModelFixture g("readflip=1,bits=2,detect=8,correct=2,seed=5");
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(g.model.classifyRead(g.image, 0x4000),
                  faults::ReadOutcome::Corrected);
    }
    ModelFixture h("readflip=1,bits=8,detect=2,correct=0,seed=5");
    unsigned silent = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if (h.model.classifyRead(h.image, 0x4000) ==
            faults::ReadOutcome::Silent) {
            ++silent;
        }
    }
    EXPECT_GT(silent, 0u);
    EXPECT_EQ(h.stat("silentFaults"), static_cast<double>(silent));
}

TEST(FaultModel, PoisonedLineAlwaysReadsUnrecoverable)
{
    ModelFixture f("readflip=0,torn=1,detect=8,seed=5");
    f.image.markPoisoned(0x4000);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(f.model.classifyRead(f.image, 0x4000),
                  faults::ReadOutcome::Unrecoverable);
    }
    // An address inside the line maps to the same poisoned state.
    EXPECT_EQ(f.model.classifyRead(f.image, 0x4020),
              faults::ReadOutcome::Unrecoverable);
}

TEST(FaultModel, BackoffIsExponentialAndClamped)
{
    ModelFixture f("readflip=1,backoff=16,seed=1");
    EXPECT_EQ(f.model.backoff(0), 16u);
    EXPECT_EQ(f.model.backoff(1), 32u);
    EXPECT_EQ(f.model.backoff(4), 256u);
    // Shift clamps at 16 so huge attempt counts cannot overflow.
    EXPECT_EQ(f.model.backoff(16), f.model.backoff(100));

    ModelFixture g("readflip=1,backoff=0,seed=1");
    EXPECT_EQ(g.model.backoff(0), 1u);      // zero base still advances
}

// ---------------------------------------------------------------------
// MemoryImage poison plumbing
// ---------------------------------------------------------------------

TEST(MemoryImagePoison, FullLineRewriteHeals)
{
    MemoryImage image;
    image.markPoisoned(0x4000);
    image.markPoisoned(0x4040);
    EXPECT_TRUE(image.isPoisoned(0x4000));
    EXPECT_TRUE(image.isPoisoned(0x403F));      // same line
    EXPECT_EQ(image.poisonedCount(), 2u);

    // A partial write cannot re-establish the line's ECC.
    image.write64(0x4000, 1);
    EXPECT_TRUE(image.isPoisoned(0x4000));

    // A full-line write is a clean re-encode: poison clears.
    std::uint8_t block[blockSize] = {};
    image.write(0x4000, block, blockSize);
    EXPECT_FALSE(image.isPoisoned(0x4000));
    EXPECT_TRUE(image.isPoisoned(0x4040));
    EXPECT_EQ(image.poisonedLines(),
              (std::vector<Addr>{0x4040}));
}

TEST(MemoryImagePoison, CopiesAndClearsTravel)
{
    MemoryImage image;
    image.write64(0x4000, 7);
    image.markPoisoned(0x4000);
    MemoryImage copy = image;           // crash images are copies
    EXPECT_TRUE(copy.isPoisoned(0x4000));
    copy.clear();
    EXPECT_FALSE(copy.isPoisoned(0x4000));
    EXPECT_TRUE(image.isPoisoned(0x4000));
}

TEST(MemoryImagePoison, SpanningWriteHealsOnlyCoveredLines)
{
    MemoryImage image;
    image.markPoisoned(0x4000);
    image.markPoisoned(0x4040);
    // [0x4020, 0x4080) covers line 0x4040 fully, line 0x4000 partially.
    std::vector<std::uint8_t> buf(0x60, 0xCC);
    image.write(0x4020, buf.data(), buf.size());
    EXPECT_TRUE(image.isPoisoned(0x4000));
    EXPECT_FALSE(image.isPoisoned(0x4040));
}

// ---------------------------------------------------------------------
// MC retry path
// ---------------------------------------------------------------------

namespace {

struct FaultedMc
{
    explicit FaultedMc(const std::string &fault_spec,
                       unsigned read_queue_entries = 64)
    {
        cfg = baselineConfig();
        cfg.faults = spec(fault_spec);
        cfg.memCtrl.readQueueEntries = read_queue_entries;
        mc = std::make_unique<MemCtrl>(sim, cfg, nvm);
        sim.addTicked(mc.get());
    }

    double
    stat(const std::string &name)
    {
        return sim.statsRegistry().lookup("faults." + name);
    }

    Simulator sim;
    SystemConfig cfg;
    MemoryImage nvm;
    std::unique_ptr<MemCtrl> mc;
};

} // namespace

TEST(MemCtrlFaults, BoundedRetryExhaustsAndDegrades)
{
    // Every read faults beyond correction; 2 retries then give up.
    FaultedMc f("readflip=1,bits=2,detect=8,correct=0,retries=2,"
                "backoff=4,seed=3");
    bool done = false;
    f.mc->read(0x4000, [&]() { done = true; });
    ASSERT_TRUE(f.sim.runUntil([&]() { return done; }, 100000));

    EXPECT_EQ(f.stat("readRetries"), 2.0);
    EXPECT_EQ(f.stat("retriesExhausted"), 1.0);
    // backoff(0) + backoff(1) = 4 + 8.
    EXPECT_EQ(f.stat("retryBackoffCycles"), 12.0);
    EXPECT_TRUE(f.nvm.isPoisoned(0x4000));
    EXPECT_TRUE(f.mc->empty());

    // The faulted read still counts every array attempt.
    EXPECT_EQ(f.mc->nvmReads(), 3u);
}

TEST(MemCtrlFaults, RetrySucceedsWhenFaultClears)
{
    // ~half of reads fault (transient): a retry eventually lands a
    // clean attempt without exhausting the generous budget.
    FaultedMc f("readflip=0.5,bits=2,detect=8,correct=0,retries=10,"
                "backoff=2,seed=11");
    unsigned completed = 0;
    for (unsigned i = 0; i < 16; ++i) {
        f.mc->read(0x10000 + i * blockSize, [&]() { ++completed; });
        ASSERT_TRUE(
            f.sim.runUntil([&]() { return completed == i + 1; }, 100000));
    }
    EXPECT_EQ(completed, 16u);
    EXPECT_GT(f.stat("readRetries"), 0.0);
    EXPECT_EQ(f.stat("retriesExhausted"), 0.0);
    EXPECT_EQ(f.nvm.poisonedCount(), 0u);
}

TEST(MemCtrlFaults, PendingRetriesOccupyReadQueueSlots)
{
    // Two-entry read queue; both slots end up in retry backoff, so the
    // MC must refuse a third read until a retry resolves.
    FaultedMc f("readflip=1,bits=2,detect=8,correct=0,retries=3,"
                "backoff=256,seed=3",
                2);
    unsigned completed = 0;
    ASSERT_TRUE(f.mc->canAcceptRead());
    f.mc->read(0x4000, [&]() { ++completed; });
    ASSERT_TRUE(f.mc->canAcceptRead());
    f.mc->read(0x4040, [&]() { ++completed; });
    EXPECT_FALSE(f.mc->canAcceptRead());

    // Step into the backoff window: the queue drained into pending
    // retries, which still hold their slots.
    f.sim.runUntil([&]() { return f.mc->nvmReads() >= 2; }, 100000);
    EXPECT_FALSE(f.mc->canAcceptRead());
    EXPECT_FALSE(f.mc->empty());

    ASSERT_TRUE(f.sim.runUntil([&]() { return completed == 2; }, 100000));
    EXPECT_TRUE(f.mc->canAcceptRead());
    EXPECT_TRUE(f.mc->empty());
}

TEST(MemCtrlFaults, TornWriteReachesImagePoisoned)
{
    FaultedMc f("torn=1,detect=8,seed=7");
    WriteRequest req;
    req.addr = 0x2000;
    req.kind = WriteKind::Data;
    std::uint64_t v = 0xABCD;
    std::memcpy(req.data.data(), &v, 8);
    f.mc->write(req);
    ASSERT_TRUE(f.sim.runUntil([&]() { return f.mc->empty(); }, 100000));
    EXPECT_TRUE(f.nvm.isPoisoned(0x2000));
    EXPECT_EQ(f.stat("tornWrites"), 1.0);
}

TEST(MemCtrlFaults, StatsAbsentWhenDisabled)
{
    // The fault model (and its stats) must not exist when injection is
    // off — this is what keeps golden stat dumps bit-identical.
    Simulator sim;
    MemoryImage nvm;
    const SystemConfig cfg = baselineConfig();
    MemCtrl mc(sim, cfg, nvm);
    EXPECT_EQ(mc.faultModel(), nullptr);
    EXPECT_THROW(sim.statsRegistry().lookup("faults.tornWrites"),
                 PanicError);
}

// ---------------------------------------------------------------------
// Recovery-scan classification of poisoned slots
// ---------------------------------------------------------------------

namespace {

void
putRecord(MemoryImage &image, Addr slot, TxId tx, Addr from,
          std::uint64_t seq, std::uint64_t old_value,
          std::uint32_t extra_flags = 0)
{
    LogRecord rec;
    std::memcpy(rec.data.data(), &old_value, 8);
    rec.fromAddr = from;
    rec.txId = tx;
    rec.seq = seq;
    rec.flags = LogRecord::flagValid | extra_flags;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(slot, bytes.data(), bytes.size());
}

} // namespace

TEST(RecoveryFaults, ContiguousScanStopsAtPoisonedSlot)
{
    MemoryImage image;
    putRecord(image, 0x9000, 3, 0x5000, 0, 0xAA);
    putRecord(image, 0x9040, 3, 0x5020, 1, 0xBB);
    putRecord(image, 0x9080, 3, 0x5040, 2, 0xCC);
    image.markPoisoned(0x9040);     // after writes: marks survive

    const auto scan =
        Recovery::scanLogContiguous(image, 0x9000, 0x9000 + 4 * 64);
    // The ECC mark outranks the parse: the slot may decode as a
    // plausible record yet must never be replayed; nothing after it is
    // trustworthy in a contiguous log.
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].fromAddr, 0x5000u);
    EXPECT_TRUE(scan.truncated);
    EXPECT_EQ(scan.poisonedSlots, 1u);
    EXPECT_EQ(scan.firstPoisonedSlot, 0x9040u);
}

TEST(RecoveryFaults, SparseScanSkipsPoisonedSlotAndContinues)
{
    MemoryImage image;
    putRecord(image, 0x9000, 3, 0x5000, 0, 0xAA);
    putRecord(image, 0x9040, 3, 0x5020, 1, 0xBB);
    putRecord(image, 0x9080, 3, 0x5040, 2, 0xCC);
    image.markPoisoned(0x9040);

    const auto scan =
        Recovery::scanLogSparse(image, 0x9000, 0x9000 + 3 * 64);
    // Circular areas legitimately have holes: later slots stay live.
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].fromAddr, 0x5000u);
    EXPECT_EQ(scan.records[1].fromAddr, 0x5040u);
    EXPECT_EQ(scan.poisonedSlots, 1u);
    EXPECT_EQ(scan.firstPoisonedSlot, 0x9040u);
}

TEST(RecoveryFaults, PoisonedSlotNeverReplaysIntoImage)
{
    // The poisoned slot holds the undo entry for 0x5000: recovery must
    // not apply it (its contents are untrustworthy) and must report the
    // classification.
    MemoryImage image;
    image.write64(0x5000, 0xFFFF);
    image.write64(0x6000, 0x33);
    putRecord(image, 0x9000, 9, 0x5000, 0, 0xAAAA);
    putRecord(image, 0x9040, 9, 0x6000, 1, 0x0);
    image.markPoisoned(0x9000);

    const auto result =
        Recovery::recoverProteus(image, 0x9000, 0x9000 + 2 * 64);
    EXPECT_EQ(result.poisonedSlots, 1u);
    EXPECT_EQ(result.firstPoisonedSlot, 0x9000u);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(image.read64(0x6000), 0x0u);      // surviving entry undone
    EXPECT_EQ(image.read64(0x5000), 0xFFFFu);   // poisoned entry skipped
}

// ---------------------------------------------------------------------
// End-to-end crash campaigns under media faults
// ---------------------------------------------------------------------

namespace {

CrashTestOptions
faultCampaign(const std::string &fault_spec)
{
    CrashTestOptions opts;
    opts.schemes = {LogScheme::PMEM,      LogScheme::PMEMPCommit,
                    LogScheme::PMEMNoLog, LogScheme::ATOM,
                    LogScheme::Proteus,   LogScheme::ProteusNoLWR};
    opts.workloads = {WorkloadKind::Queue};
    opts.threads = 1;
    opts.scale = 250;
    opts.initScale = 100;
    opts.seed = 11;
    opts.mode = CrashMode::Stride;
    opts.autoPoints = 4;
    opts.jobs = 2;
    opts.faults = spec(fault_spec);
    return opts;
}

} // namespace

TEST(CrashCampaignFaults, NoSilentCorruptionAcrossAllSchemes)
{
    // Full-strength ECC detection: every injected fault must surface
    // as a detected-unrecoverable verdict or be absorbed — never as a
    // silent oracle violation. This is the subsystem's core guarantee.
    CrashTestOptions opts = faultCampaign(
        "torn=0.05,readflip=0.01,detect=8,correct=1,seed=13");
    std::ostringstream os;
    const CrashTestSummary summary = runCrashTests(opts, os);
    EXPECT_EQ(summary.violations, 0u) << os.str();
    EXPECT_TRUE(summary.ok) << os.str();
    EXPECT_GT(summary.crashPoints, 0u);
    // At this tear rate some crash point somewhere must have lost data
    // detectably; the campaign reports rather than hides it.
    EXPECT_GT(summary.detectedUnrecoverable, 0u) << os.str();
}

TEST(CrashCampaignFaults, ReplayCommandCarriesFaultSpec)
{
    const CrashTestOptions opts =
        faultCampaign("torn=0.02,detect=8,seed=5");
    CrashPairResult pair;
    pair.scheme = LogScheme::Proteus;
    pair.workload = WorkloadKind::Queue;
    const std::string cmd = replayCommand(opts, pair);
    EXPECT_NE(cmd.find("--faults "), std::string::npos);
    EXPECT_NE(cmd.find("torn=0.02"), std::string::npos);
    EXPECT_NE(cmd.find("seed=5"), std::string::npos);

    // Fault-free campaigns keep the pre-fault command line.
    CrashTestOptions plain = opts;
    plain.faults = faults::FaultConfig{};
    EXPECT_EQ(replayCommand(plain, pair).find("--faults"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism: jobs levels and cycle-skip modes
// ---------------------------------------------------------------------

TEST(FaultDeterminism, CampaignJsonIdenticalAcrossJobsAndCycleSkip)
{
    const std::string base = ::testing::TempDir();
    const std::string paths[3] = {base + "faults_j1.json",
                                  base + "faults_j4.json",
                                  base + "faults_noskip.json"};

    CrashTestOptions opts = faultCampaign(
        "torn=0.05,readflip=0.01,detect=8,correct=1,seed=13");
    opts.schemes = {LogScheme::Proteus, LogScheme::PMEM};
    opts.jobs = 1;
    opts.jsonPath = paths[0];
    std::ostringstream os1;
    runCrashTests(opts, os1);

    opts.jobs = 4;
    opts.jsonPath = paths[1];
    std::ostringstream os2;
    runCrashTests(opts, os2);

    // Fault retry events are scheduled events the kernel cannot skip
    // past, so quiescence skipping must not change a single byte.
    opts.jobs = 1;
    opts.cycleSkip = false;
    opts.jsonPath = paths[2];
    std::ostringstream os3;
    runCrashTests(opts, os3);

    const std::string j1 = slurp(paths[0]);
    ASSERT_FALSE(j1.empty());
    EXPECT_EQ(j1, slurp(paths[1]));
    EXPECT_EQ(j1, slurp(paths[2]));
    EXPECT_NE(j1.find("\"faults\": "), std::string::npos);
    EXPECT_NE(j1.find("\"detectedUnrecoverable\""), std::string::npos);
    for (const std::string &p : paths)
        std::remove(p.c_str());
}

TEST(FaultDeterminism, RunResultsIdenticalAcrossJobsAndCycleSkip)
{
    // Batch --json / --tx-stats serializations must be byte-identical
    // across --jobs levels and cycle-skip modes with faults injected.
    BenchOptions opts;
    opts.threads = 1;
    opts.scale = 400;
    opts.initScale = 100;
    opts.seed = 3;
    opts.faults = spec("torn=0.02,readflip=0.01,detect=8,correct=1");

    auto batch = [&](unsigned jobs, bool skip) {
        BenchOptions o = opts;
        o.jobs = jobs;
        o.cycleSkip = skip;
        std::vector<SimJob> jobsv;
        for (LogScheme s : {LogScheme::Proteus, LogScheme::PMEM}) {
            for (WorkloadKind w :
                 {WorkloadKind::Queue, WorkloadKind::HashMap}) {
                jobsv.push_back(SimJob{o.makeConfig(), s, w, {},
                                       std::string(toString(s))});
            }
        }
        ParallelRunner runner(jobs);
        const auto results = runner.run(jobsv, o);

        std::vector<JsonResultRow> rows;
        std::vector<obs::TxStatsRow> txRows;
        for (std::size_t i = 0; i < jobsv.size(); ++i) {
            rows.push_back(JsonResultRow{toString(jobsv[i].scheme),
                                         toString(jobsv[i].kind),
                                         results[i].result, 0.0});
            txRows.push_back(makeTxStatsRow(o, jobsv[i].scheme,
                                            jobsv[i].kind,
                                            results[i].result));
        }
        const std::string path = ::testing::TempDir() + "faults_rr.json";
        writeJsonResults(path, rows);
        std::ostringstream tx;
        obs::writeTxStatsJson(tx, txRows);
        const std::string out = slurp(path) + "\n---\n" + tx.str();
        std::remove(path.c_str());
        return out;
    };

    const std::string ref = batch(1, true);
    EXPECT_EQ(ref, batch(4, true));
    EXPECT_EQ(ref, batch(1, false));
    EXPECT_NE(ref.find("\"faults\": {"), std::string::npos);
    EXPECT_NE(ref.find("\"tornWrites\": "), std::string::npos);
}

// ---------------------------------------------------------------------
// Oracle classification of poisoned bytes
// ---------------------------------------------------------------------

TEST(OracleFaults, PoisonedBytesAreDetectedNotViolations)
{
    CommitOracle oracle;
    oracle.onTxBegin(0, 1);
    // A committed write the crash image then loses to a media fault.
    const Addr addr = PersistentHeap::persistentBase;
    oracle.onStore(0, 1, addr, 8, 0, 0x1122334455667788ull,
                   ObservedWrite::Logged);
    oracle.onTxEnd(0, 1);

    MemoryImage image;
    image.write64(addr, 0xDEAD);        // wrong value survived
    MemoryImage poisoned = image;
    poisoned.markPoisoned(addr);

    // Unpoisoned: a plain violation (silent corruption).
    const OracleReport bad = oracle.check(image, {1});
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.poisonedBytes, 0u);

    // Poisoned: detected loss — no violation, surfaced separately.
    const OracleReport det = oracle.check(poisoned, {1});
    EXPECT_TRUE(det.ok);
    EXPECT_EQ(det.violationCount, 0u);
    EXPECT_EQ(det.poisonedBytes, 8u);
    ASSERT_FALSE(det.poisonedSample.empty());
    EXPECT_EQ(det.poisonedSample[0].addr, addr);
    EXPECT_NE(det.summary().find("detected-unrecoverable"),
              std::string::npos);
}
