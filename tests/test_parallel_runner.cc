/**
 * @file
 * ParallelRunner determinism: a batch run on 4 worker threads must
 * produce bit-identical RunResult counters, in the same submission
 * order, as the same batch run on 1 thread. Each job is an independent
 * FullSystem, so any divergence means shared mutable state leaked
 * between concurrent instances.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"

using namespace proteus;

namespace {

BenchOptions
tinyOptions()
{
    BenchOptions opts;
    opts.threads = 2;
    opts.scale = 500;       // divide Table 2 SimOps: tiny run
    opts.initScale = 100;
    opts.seed = 3;
    return opts;
}

std::vector<SimJob>
smallMatrix(const BenchOptions &opts)
{
    const std::vector<LogScheme> schemes{
        LogScheme::PMEM, LogScheme::ATOM, LogScheme::Proteus};
    const std::vector<WorkloadKind> workloads{WorkloadKind::Queue,
                                              WorkloadKind::BTree};
    std::vector<SimJob> jobs;
    for (LogScheme s : schemes) {
        for (WorkloadKind w : workloads)
            jobs.push_back(SimJob{opts.makeConfig(), s, w, {},
                                  std::string(toString(s)) + " / " +
                                      toString(w)});
    }
    return jobs;
}

void
expectSameCounters(const RunResult &a, const RunResult &b,
                   const std::string &label)
{
    EXPECT_EQ(a.finished, b.finished) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.retiredOps, b.retiredOps) << label;
    EXPECT_EQ(a.committedTxs, b.committedTxs) << label;
    EXPECT_EQ(a.nvmWrites, b.nvmWrites) << label;
    EXPECT_EQ(a.nvmReads, b.nvmReads) << label;
    EXPECT_EQ(a.logWritesDropped, b.logWritesDropped) << label;
}

} // namespace

TEST(ParallelRunner, ZeroWorkersMeansHardwareConcurrency)
{
    ParallelRunner runner(0);
    EXPECT_GE(runner.workers(), 1u);
    EXPECT_EQ(ParallelRunner(3).workers(), 3u);
}

TEST(ParallelRunner, EmptyBatchReturnsNoResults)
{
    ParallelRunner runner(4);
    EXPECT_TRUE(runner.run({}, tinyOptions()).empty());
}

TEST(ParallelRunner, FourWorkersMatchOneWorker)
{
    const BenchOptions opts = tinyOptions();
    const std::vector<SimJob> jobs = smallMatrix(opts);

    const auto serial = ParallelRunner(1).run(jobs, opts);
    const auto parallel = ParallelRunner(4).run(jobs, opts);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectSameCounters(serial[i].result, parallel[i].result,
                           jobs[i].label);
        EXPECT_TRUE(parallel[i].result.finished) << jobs[i].label;
    }
}

TEST(ParallelRunner, RepeatedParallelRunsAreIdentical)
{
    const BenchOptions opts = tinyOptions();
    const std::vector<SimJob> jobs = smallMatrix(opts);

    ParallelRunner runner(4);
    const auto first = runner.run(jobs, opts);
    const auto second = runner.run(jobs, opts);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectSameCounters(first[i].result, second[i].result,
                           jobs[i].label);
}

TEST(ParallelRunner, ProgressLinesAreWholeLines)
{
    const BenchOptions opts = tinyOptions();
    const std::vector<SimJob> jobs = smallMatrix(opts);

    std::ostringstream os;
    ProgressReporter progress(os);
    ParallelRunner(4).run(jobs, opts, &progress);

    // Two lines per job (start + done), each mentioning a known label.
    std::istringstream in(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        bool matched = false;
        for (const SimJob &job : jobs)
            matched = matched ||
                      line.find(job.label) != std::string::npos;
        EXPECT_TRUE(matched) << "torn progress line: " << line;
    }
    EXPECT_EQ(lines, 2 * jobs.size());
}
