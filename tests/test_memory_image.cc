/** @file Unit tests for the sparse memory image. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "heap/memory_image.hh"

using namespace proteus;

TEST(MemoryImage, ZeroBeforeTouch)
{
    MemoryImage img;
    EXPECT_EQ(img.read64(0x1234), 0u);
    EXPECT_EQ(img.pageCount(), 0u);
}

TEST(MemoryImage, ReadBackWritten)
{
    MemoryImage img;
    img.write64(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(img.read64(0x1000), 0xdeadbeefcafef00dull);
    EXPECT_EQ(img.pageCount(), 1u);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage img;
    const Addr addr = MemoryImage::pageBytes - 3;
    const std::uint64_t v = 0x0102030405060708ull;
    img.write(addr, &v, 8);
    std::uint64_t out = 0;
    img.read(addr, &out, 8);
    EXPECT_EQ(out, v);
    EXPECT_EQ(img.pageCount(), 2u);
}

TEST(MemoryImage, PartialWritesMerge)
{
    MemoryImage img;
    img.write64(0x40, 0);
    const std::uint8_t b = 0xAB;
    img.write(0x42, &b, 1);
    const std::uint64_t v = img.read64(0x40);
    EXPECT_EQ((v >> 16) & 0xFF, 0xABu);
    EXPECT_EQ(v & 0xFFFF, 0u);
}

TEST(MemoryImage, DeepCopyIsIndependent)
{
    MemoryImage a;
    a.write64(0x100, 1);
    MemoryImage b = a;
    b.write64(0x100, 2);
    EXPECT_EQ(a.read64(0x100), 1u);
    EXPECT_EQ(b.read64(0x100), 2u);

    MemoryImage c;
    c = a;
    a.write64(0x100, 3);
    EXPECT_EQ(c.read64(0x100), 1u);
}

TEST(MemoryImage, ClearDropsPages)
{
    MemoryImage img;
    img.write64(0x10, 9);
    img.clear();
    EXPECT_EQ(img.pageCount(), 0u);
    EXPECT_EQ(img.read64(0x10), 0u);
}

TEST(MemoryImage, LargeSpanRoundTrip)
{
    MemoryImage img;
    std::vector<std::uint8_t> data(3 * MemoryImage::pageBytes + 17);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31 + 7);
    img.write(12345, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    img.read(12345, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(MemoryImage, DiffFindsDifferingWords)
{
    MemoryImage a;
    MemoryImage b;
    a.write64(0x100, 1);
    b.write64(0x100, 2);
    a.write64(0x2000, 7);       // only in a
    b.write64(0x5008, 9);       // only in b (different page)
    a.write64(0x400, 5);        // identical in both
    b.write64(0x400, 5);

    const auto entries = a.diff(b);
    ASSERT_EQ(entries.size(), 3u);
    // Sorted by address, regardless of page-map iteration order.
    EXPECT_EQ(entries[0].addr, 0x100u);
    EXPECT_EQ(entries[0].lhs, 1u);
    EXPECT_EQ(entries[0].rhs, 2u);
    EXPECT_EQ(entries[1].addr, 0x2000u);
    EXPECT_EQ(entries[1].lhs, 7u);
    EXPECT_EQ(entries[1].rhs, 0u);
    EXPECT_EQ(entries[2].addr, 0x5008u);
    EXPECT_EQ(entries[2].lhs, 0u);
    EXPECT_EQ(entries[2].rhs, 9u);
}

TEST(MemoryImage, DiffOfIdenticalImagesIsEmpty)
{
    MemoryImage a;
    a.write64(0x100, 42);
    MemoryImage b = a;
    EXPECT_TRUE(a.diff(b).empty());
    EXPECT_TRUE(a.diff(a).empty());
}

TEST(MemoryImage, DiffHonorsMaxEntries)
{
    MemoryImage a;
    MemoryImage b;
    for (unsigned i = 0; i < 32; ++i)
        a.write64(0x1000 + i * 8, i + 1);
    const auto entries = a.diff(b, 5);
    EXPECT_EQ(entries.size(), 5u);
}

TEST(MemoryImage, FormatDiffIsBoundedAndMentionsElision)
{
    MemoryImage a;
    MemoryImage b;
    for (unsigned i = 0; i < 12; ++i)
        a.write64(0x1000 + i * 8, i + 1);
    const auto entries = a.diff(b);
    const std::string text = MemoryImage::formatDiff(entries, 4);
    EXPECT_NE(text.find("0x000000001000"), std::string::npos);
    EXPECT_NE(text.find("more differing words"), std::string::npos);
    // Exactly 4 value lines plus the elision line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}
