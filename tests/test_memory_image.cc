/** @file Unit tests for the sparse memory image. */

#include <gtest/gtest.h>

#include "heap/memory_image.hh"

using namespace proteus;

TEST(MemoryImage, ZeroBeforeTouch)
{
    MemoryImage img;
    EXPECT_EQ(img.read64(0x1234), 0u);
    EXPECT_EQ(img.pageCount(), 0u);
}

TEST(MemoryImage, ReadBackWritten)
{
    MemoryImage img;
    img.write64(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(img.read64(0x1000), 0xdeadbeefcafef00dull);
    EXPECT_EQ(img.pageCount(), 1u);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage img;
    const Addr addr = MemoryImage::pageBytes - 3;
    const std::uint64_t v = 0x0102030405060708ull;
    img.write(addr, &v, 8);
    std::uint64_t out = 0;
    img.read(addr, &out, 8);
    EXPECT_EQ(out, v);
    EXPECT_EQ(img.pageCount(), 2u);
}

TEST(MemoryImage, PartialWritesMerge)
{
    MemoryImage img;
    img.write64(0x40, 0);
    const std::uint8_t b = 0xAB;
    img.write(0x42, &b, 1);
    const std::uint64_t v = img.read64(0x40);
    EXPECT_EQ((v >> 16) & 0xFF, 0xABu);
    EXPECT_EQ(v & 0xFFFF, 0u);
}

TEST(MemoryImage, DeepCopyIsIndependent)
{
    MemoryImage a;
    a.write64(0x100, 1);
    MemoryImage b = a;
    b.write64(0x100, 2);
    EXPECT_EQ(a.read64(0x100), 1u);
    EXPECT_EQ(b.read64(0x100), 2u);

    MemoryImage c;
    c = a;
    a.write64(0x100, 3);
    EXPECT_EQ(c.read64(0x100), 1u);
}

TEST(MemoryImage, ClearDropsPages)
{
    MemoryImage img;
    img.write64(0x10, 9);
    img.clear();
    EXPECT_EQ(img.pageCount(), 0u);
    EXPECT_EQ(img.read64(0x10), 0u);
}

TEST(MemoryImage, LargeSpanRoundTrip)
{
    MemoryImage img;
    std::vector<std::uint8_t> data(3 * MemoryImage::pageBytes + 17);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31 + 7);
    img.write(12345, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    img.read(12345, out.data(), out.size());
    EXPECT_EQ(data, out);
}
