/**
 * @file
 * Property-based randomized tests for the logging hardware structures:
 * hundreds of seeded random operation sequences checked against simple
 * reference models. Every assertion carries the sequence seed via
 * SCOPED_TRACE, so a failure message names the exact seed to replay.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "logging/llt.hh"
#include "logging/log_queue.hh"
#include "logging/tx_context.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

std::string
uniqueName(const char *base)
{
    return std::string(base) + std::to_string(counter++);
}

/**
 * Exact reference model of a set-associative LRU table: each set is a
 * recency-ordered list (front = MRU), sized by ways.
 */
class LltModel
{
  public:
    LltModel(unsigned entries, unsigned ways)
        : _sets(entries / ways), _ways(ways), _table(_sets)
    {
    }

    bool
    lookupInsert(Addr granule)
    {
        auto &set = _table[(granule / logDataSize) % _sets];
        const auto it = std::find(set.begin(), set.end(), granule);
        if (it != set.end()) {
            set.erase(it);
            set.push_front(granule);
            return true;
        }
        set.push_front(granule);
        if (set.size() > _ways)
            set.pop_back();
        return false;
    }

    void
    clear()
    {
        for (auto &set : _table)
            set.clear();
    }

  private:
    std::size_t _sets;
    std::size_t _ways;
    std::vector<std::deque<Addr>> _table;
};

} // namespace

TEST(PropertyLlt, MatchesReferenceLruModel)
{
    // Many short sequences across table shapes, including the
    // direct-mapped and fully-associative corners.
    const struct { unsigned entries, ways; } shapes[] = {
        {64, 8}, {16, 1}, {16, 16}, {32, 4}, {8, 2},
    };
    for (const auto &shape : shapes) {
        for (std::uint64_t seed = 1; seed <= 40; ++seed) {
            SCOPED_TRACE("entries=" + std::to_string(shape.entries) +
                         " ways=" + std::to_string(shape.ways) +
                         " seed=" + std::to_string(seed));
            Random rng(seed * 0x2545F4914F6CDD1Dull + shape.entries +
                       shape.ways);
            LogLookupTable llt(shape.entries, shape.ways, reg(),
                               uniqueName("prop_llt"));
            LltModel model(shape.entries, shape.ways);

            std::uint64_t expected_misses = 0;
            std::uint64_t ops = 0;
            for (int i = 0; i < 400; ++i) {
                if (rng.nextBool(0.02)) {
                    llt.clear();
                    model.clear();
                    continue;
                }
                // A small working set makes hits and LRU evictions
                // both common.
                const Addr granule =
                    logAlign(0x4000'0000 +
                             rng.nextBelow(4 * shape.entries) *
                                 logDataSize);
                const bool hit = llt.lookupInsert(granule);
                const bool model_hit = model.lookupInsert(granule);
                ASSERT_EQ(hit, model_hit)
                    << "op " << i << " granule " << granule;
                expected_misses += hit ? 0 : 1;
                ++ops;
            }
            EXPECT_EQ(llt.lookups(), ops);
            EXPECT_EQ(llt.misses(), expected_misses);
            const double expect_rate =
                ops ? static_cast<double>(expected_misses) /
                          static_cast<double>(ops)
                    : 0.0;
            EXPECT_DOUBLE_EQ(llt.missRate(), expect_rate);
        }
    }
}

namespace {

/** Shadow copy of one live LogQ entry. */
struct ShadowEntry
{
    LogQueue::EntryId id;
    std::uint64_t seq;
    Addr fromGranule;
    TxId tx;
};

} // namespace

TEST(PropertyLogQueue, OrderingQueryMatchesBruteForce)
{
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed ^ 0x9E3779B97F4A7C15ull);
        const unsigned capacity =
            static_cast<unsigned>(rng.nextRange(2, 24));
        LogQueue q(capacity, reg(), uniqueName("prop_logq"));
        std::vector<ShadowEntry> shadow;
        std::uint64_t next_seq = 1;

        for (int i = 0; i < 300; ++i) {
            const double roll = rng.nextDouble();
            if (roll < 0.4 && !q.full()) {
                const Addr granule =
                    logAlign(0x4000'0000 + rng.nextBelow(32) *
                                               logDataSize);
                const TxId tx = 1 + rng.nextBelow(4);
                LogRecord rec;
                rec.txId = tx;
                rec.fromAddr = granule;
                rec.magic = LogRecord::magicValue;
                rec.flags = LogRecord::flagValid;
                const std::uint64_t seq = next_seq++;
                const LogQueue::EntryId id = q.allocate(
                    seq, granule, 0x1'4000'0000ull + i * logEntrySize,
                    rec);
                shadow.push_back(ShadowEntry{id, seq, granule, tx});
            } else if (roll < 0.6 && !shadow.empty()) {
                const std::size_t pick = rng.nextBelow(shadow.size());
                q.deallocate(shadow[pick].id);
                shadow.erase(shadow.begin() +
                             static_cast<std::ptrdiff_t>(pick));
            } else {
                // Query a random (addr, seq) against the brute-force
                // answer over the shadow set; offset the address within
                // the granule to exercise logAlign.
                const Addr addr = 0x4000'0000 +
                                  rng.nextBelow(32) * logDataSize +
                                  rng.nextBelow(logDataSize);
                const std::uint64_t seq = rng.nextBelow(next_seq + 2);
                bool expect = false;
                for (const ShadowEntry &e : shadow) {
                    if (e.seq <= seq && e.fromGranule == logAlign(addr))
                        expect = true;
                }
                ASSERT_EQ(q.pendingOlderFor(addr, seq), expect)
                    << "op " << i << " addr " << addr << " seq " << seq;

                const TxId tx = 1 + rng.nextBelow(4);
                bool expect_empty = true;
                for (const ShadowEntry &e : shadow) {
                    if (e.tx == tx)
                        expect_empty = false;
                }
                ASSERT_EQ(q.emptyForTx(tx), expect_empty)
                    << "op " << i << " tx " << tx;
            }
            ASSERT_EQ(q.occupancy(), shadow.size());
            ASSERT_EQ(q.empty(), shadow.empty());
        }
    }
}

TEST(PropertyTxContext, WrapSaveRestoreAndOverflow)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Random rng(seed * 0xBF58476D1CE4E5B9ull);
        const std::uint64_t capacity = rng.nextRange(2, 32);
        const Addr start = 0x1'4000'0000ull +
                           rng.nextBelow(16) * logEntrySize;
        const Addr end = start + capacity * logEntrySize;

        TxContext ctx;
        ctx.bindLogArea(start, end);
        ASSERT_EQ(ctx.curlog(), start);

        Addr expect_curlog = start;
        std::uint64_t entries_this_tx = 0;
        TxId tx = 0;
        for (int i = 0; i < 200; ++i) {
            if (!ctx.inTx()) {
                ctx.beginTx(++tx);
                entries_this_tx = 0;
                ASSERT_EQ(ctx.txId(), tx);
                continue;
            }
            if (entries_this_tx == capacity) {
                // The transaction filled the whole circular area: the
                // next assignment models the processor exception, and
                // the registers must survive it unchanged.
                const Addr before = ctx.curlog();
                ASSERT_THROW(ctx.nextLogTo(), FatalError);
                ASSERT_EQ(ctx.curlog(), before);
                ctx.endTx();
                continue;
            }
            const double roll = rng.nextDouble();
            if (roll < 0.15) {
                ctx.endTx();
                ASSERT_FALSE(ctx.inTx());
            } else if (roll < 0.3) {
                // Save/restore must round-trip every register: the
                // restored copy and the original assign the same slot.
                const TxContext::Saved saved = ctx.save();
                TxContext other;
                other.restore(saved);
                ASSERT_EQ(other.curlog(), ctx.curlog());
                ASSERT_EQ(other.txId(), ctx.txId());
                ASSERT_EQ(other.logStart(), ctx.logStart());
                ASSERT_EQ(other.logEnd(), ctx.logEnd());
                const Addr a = other.nextLogTo();
                const Addr b = ctx.nextLogTo();
                ASSERT_EQ(a, b);
                ASSERT_EQ(b, expect_curlog);
                ++entries_this_tx;
                expect_curlog += logEntrySize;
                if (expect_curlog >= end)
                    expect_curlog = start;
            } else {
                // The auto-increment addressing mode wraps circularly;
                // sequence numbers count up within the transaction.
                const std::uint64_t seq_before = ctx.nextSeq();
                const Addr slot = ctx.nextLogTo();
                ASSERT_EQ(slot, expect_curlog);
                ASSERT_GE(slot, start);
                ASSERT_LT(slot, end);
                ASSERT_EQ(ctx.nextSeq(), seq_before + 1);
                ++entries_this_tx;
                expect_curlog += logEntrySize;
                if (expect_curlog >= end)
                    expect_curlog = start;
            }
        }

        // Overflow: one transaction may write at most `capacity`
        // entries; the next assignment models the processor exception.
        TxContext of;
        of.bindLogArea(start, end);
        of.beginTx(7);
        for (std::uint64_t i = 0; i < capacity; ++i)
            of.nextLogTo();
        EXPECT_THROW(of.nextLogTo(), FatalError);
    }
}
