/** @file Unit tests for the LogQ (Section 4.2). */

#include <gtest/gtest.h>

#include <memory>

#include "logging/log_queue.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

std::unique_ptr<LogQueue>
makeQ(unsigned entries = 4)
{
    return std::make_unique<LogQueue>(entries, reg(),
                                      "logq" + std::to_string(counter++));
}

LogRecord
record(TxId tx, std::uint64_t seq)
{
    LogRecord rec;
    rec.txId = tx;
    rec.seq = seq;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    return rec;
}

} // namespace

TEST(LogQueue, AllocateUntilFull)
{
    auto qp = makeQ(2);
    auto &q = *qp;
    EXPECT_FALSE(q.full());
    q.allocate(1, 0x1000, 0x9000, record(1, 0));
    q.allocate(2, 0x1020, 0x9040, record(1, 1));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.occupancy(), 2u);
    EXPECT_THROW(q.allocate(3, 0x1040, 0x9080, record(1, 2)),
                 PanicError);
}

TEST(LogQueue, DeallocateRecycles)
{
    auto qp = makeQ(1);
    auto &q = *qp;
    const auto id = q.allocate(1, 0x1000, 0x9000, record(1, 0));
    q.deallocate(id);
    EXPECT_TRUE(q.empty());
    EXPECT_NO_THROW(q.allocate(2, 0x2000, 0x9040, record(1, 1)));
    EXPECT_THROW(q.deallocate(id + 100), PanicError);
}

TEST(LogQueue, PendingOlderForMatchesGranule)
{
    auto qp = makeQ(4);
    auto &q = *qp;
    q.allocate(10, 0x1000, 0x9000, record(1, 0));

    // A younger store to any byte of the same 32B granule must wait.
    EXPECT_TRUE(q.pendingOlderFor(0x1000, 20));
    EXPECT_TRUE(q.pendingOlderFor(0x101F, 20));
    // A different granule is unconstrained.
    EXPECT_FALSE(q.pendingOlderFor(0x1020, 20));
    // An *older* store (smaller seq) is not gated by this entry.
    EXPECT_FALSE(q.pendingOlderFor(0x1000, 5));
}

TEST(LogQueue, PendingClearsOnAck)
{
    auto qp = makeQ(4);
    auto &q = *qp;
    const auto id = q.allocate(10, 0x1000, 0x9000, record(1, 0));
    ASSERT_TRUE(q.pendingOlderFor(0x1008, 20));
    q.deallocate(id);
    EXPECT_FALSE(q.pendingOlderFor(0x1008, 20));
}

TEST(LogQueue, EmptyForTx)
{
    auto qp = makeQ(4);
    auto &q = *qp;
    const auto a = q.allocate(1, 0x1000, 0x9000, record(7, 0));
    q.allocate(2, 0x2000, 0x9040, record(8, 0));
    EXPECT_FALSE(q.emptyForTx(7));
    EXPECT_FALSE(q.emptyForTx(8));
    EXPECT_TRUE(q.emptyForTx(9));
    q.deallocate(a);
    EXPECT_TRUE(q.emptyForTx(7));
    EXPECT_FALSE(q.emptyForTx(8));
}

TEST(LogQueue, StoresRecordAndLogTo)
{
    auto qp = makeQ(4);
    auto &q = *qp;
    const auto id = q.allocate(1, 0x1000, 0x9abc0, record(3, 9));
    EXPECT_EQ(q.logTo(id), 0x9abc0u);
    EXPECT_EQ(q.record(id).txId, 3u);
    EXPECT_EQ(q.record(id).seq, 9u);
}

TEST(LogQueue, TracksPeakOccupancy)
{
    auto qp = makeQ(4);
    auto &q = *qp;
    const auto a = q.allocate(1, 0x1000, 0x9000, record(1, 0));
    q.allocate(2, 0x2000, 0x9040, record(1, 1));
    q.deallocate(a);
    EXPECT_DOUBLE_EQ(q.peakOccupancy(), 2.0);
}

TEST(LogQueue, ZeroEntriesIsFatal)
{
    EXPECT_THROW(LogQueue(0, reg(), "zero"), FatalError);
}
