/** @file Unit tests for the Log Lookup Table (Section 4.2). */

#include <gtest/gtest.h>

#include <memory>

#include "logging/llt.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

std::unique_ptr<LogLookupTable>
makeLlt(unsigned entries = 64, unsigned ways = 8)
{
    return std::make_unique<LogLookupTable>(
        entries, ways, reg(), "llt" + std::to_string(counter++));
}

} // namespace

TEST(Llt, MissThenHit)
{
    auto p = makeLlt();
    auto &llt = *p;
    EXPECT_FALSE(llt.lookupInsert(0x1000));
    EXPECT_TRUE(llt.lookupInsert(0x1000));
    EXPECT_TRUE(llt.lookupInsert(0x1000));
    EXPECT_EQ(llt.misses(), 1u);
    EXPECT_EQ(llt.lookups(), 3u);
}

TEST(Llt, DistinctGranulesMiss)
{
    auto p = makeLlt();
    auto &llt = *p;
    EXPECT_FALSE(llt.lookupInsert(0x1000));
    EXPECT_FALSE(llt.lookupInsert(0x1020));   // next 32B granule
    EXPECT_TRUE(llt.lookupInsert(0x1000));
    EXPECT_TRUE(llt.lookupInsert(0x1020));
}

TEST(Llt, ClearForgetsEverything)
{
    auto p = makeLlt();
    auto &llt = *p;
    llt.lookupInsert(0x2000);
    llt.clear();
    EXPECT_FALSE(llt.lookupInsert(0x2000));   // must be logged again
}

TEST(Llt, LruEvictionWithinSet)
{
    // 2 entries x 1 way: two sets of one way each; two granules that
    // map to the same set evict each other.
    LogLookupTable llt(2, 1, reg(), "llt_lru");
    const Addr a = 0;                // set 0
    const Addr b = 2 * 2 * 32;       // also set 0 (granule index 4)
    EXPECT_FALSE(llt.lookupInsert(a));
    EXPECT_FALSE(llt.lookupInsert(b));   // evicts a
    EXPECT_FALSE(llt.lookupInsert(a));   // a was evicted
}

TEST(Llt, AssociativityHoldsConflictingGranules)
{
    // One set, 4 ways: four conflicting granules all fit.
    LogLookupTable llt(4, 4, reg(), "llt_assoc");
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_FALSE(llt.lookupInsert(i * 32));
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(llt.lookupInsert(i * 32));
    // Fifth conflicting granule evicts the LRU (granule 0).
    EXPECT_FALSE(llt.lookupInsert(4 * 32));
    EXPECT_FALSE(llt.lookupInsert(0));
}

TEST(Llt, MissRate)
{
    auto p = makeLlt();
    auto &llt = *p;
    llt.lookupInsert(0x100);     // miss
    llt.lookupInsert(0x100);     // hit
    llt.lookupInsert(0x100);     // hit
    llt.lookupInsert(0x120);     // miss
    EXPECT_DOUBLE_EQ(llt.missRate(), 0.5);
}

TEST(Llt, BadGeometryIsFatal)
{
    EXPECT_THROW(LogLookupTable(0, 1, reg(), "bad0"), FatalError);
    EXPECT_THROW(LogLookupTable(8, 0, reg(), "bad1"), FatalError);
    EXPECT_THROW(LogLookupTable(9, 2, reg(), "bad2"), FatalError);
}
