/** @file Unit tests for the persistent heap and allocator. */

#include <gtest/gtest.h>

#include "heap/persistent_heap.hh"
#include "sim/logging.hh"

using namespace proteus;

TEST(RegionAllocator, AlignmentRespected)
{
    RegionAllocator alloc(0x1000, 0x100000);
    const Addr a = alloc.allocate(10, 64);
    EXPECT_EQ(a % 64, 0u);
    const Addr b = alloc.allocate(8, 8);
    EXPECT_GE(b, a + 10);
}

TEST(RegionAllocator, ExactFitReuse)
{
    RegionAllocator alloc(0x1000, 0x100000);
    const Addr a = alloc.allocate(64, 64);
    alloc.release(a, 64);
    const Addr b = alloc.allocate(64, 64);
    EXPECT_EQ(a, b);
}

TEST(RegionAllocator, LiveBytesTracked)
{
    RegionAllocator alloc(0x1000, 0x100000);
    const Addr a = alloc.allocate(128);
    EXPECT_EQ(alloc.liveBytes(), 128u);
    alloc.release(a, 128);
    EXPECT_EQ(alloc.liveBytes(), 0u);
}

TEST(RegionAllocator, ExhaustionIsFatal)
{
    RegionAllocator alloc(0, 256);
    alloc.allocate(200);
    EXPECT_THROW(alloc.allocate(100), FatalError);
}

TEST(RegionAllocator, BadArgsPanic)
{
    RegionAllocator alloc(0, 4096);
    EXPECT_THROW(alloc.allocate(0), PanicError);
    EXPECT_THROW(alloc.allocate(8, 3), PanicError);
    EXPECT_THROW(alloc.release(8192, 8), PanicError);
}

TEST(PersistentHeap, RegionsClassifyAddresses)
{
    PersistentHeap heap;
    const Addr v = heap.allocVolatile(64);
    const Addr p = heap.alloc(64);
    const Addr l = heap.allocLogArea(4096);
    EXPECT_FALSE(PersistentHeap::isPersistent(v));
    EXPECT_TRUE(PersistentHeap::isPersistent(p));
    EXPECT_TRUE(PersistentHeap::isPersistent(l));
    EXPECT_FALSE(PersistentHeap::isLogArea(p));
    EXPECT_TRUE(PersistentHeap::isLogArea(l));
}

TEST(PersistentHeap, TypedReadWrite)
{
    PersistentHeap heap;
    const Addr p = heap.alloc(64);
    heap.write<std::uint64_t>(p, 0x1122334455667788ull);
    EXPECT_EQ(heap.read<std::uint64_t>(p), 0x1122334455667788ull);
    heap.write<std::uint32_t>(p + 8, 7);
    EXPECT_EQ(heap.read<std::uint32_t>(p + 8), 7u);
}

TEST(PersistentHeap, NvmImageLagsUntilSync)
{
    PersistentHeap heap;
    const Addr p = heap.alloc(64);
    heap.write<std::uint64_t>(p, 99);
    EXPECT_EQ(heap.nvmImage().read64(p), 0u);
    heap.syncNvmToVolatile();
    EXPECT_EQ(heap.nvmImage().read64(p), 99u);
}

TEST(PersistentHeap, LogAreasAreDistinct)
{
    PersistentHeap heap;
    const Addr a = heap.allocLogArea(1 << 16);
    const Addr b = heap.allocLogArea(1 << 16);
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + (1 << 16));
    EXPECT_EQ(a % logEntrySize, 0u);
}

TEST(PersistentHeap, ChaseArenaIsSharedAndPersistent)
{
    PersistentHeap heap;
    const Addr a = heap.chaseArena();
    EXPECT_EQ(a, heap.chaseArena());
    EXPECT_TRUE(PersistentHeap::isPersistent(a));
}

TEST(HeapAlignHelpers, BlockAndGranuleAlign)
{
    EXPECT_EQ(blockAlign(0x1003F), 0x10000u);
    EXPECT_EQ(blockAlign(0x10040), 0x10040u);
    EXPECT_EQ(logAlign(0x1001F), 0x10000u);
    EXPECT_EQ(logAlign(0x10020), 0x10020u);
}
