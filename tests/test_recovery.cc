/**
 * @file
 * Crash injection and recovery: the heart of failure safety.
 *
 * A simulation is stopped at an arbitrary cycle; the crash image is
 * what the persistency domain preserves (NVM + battery-backed WPQ/LPQ
 * under ADR). Recovery rolls back at most one in-flight transaction
 * per thread using the durable undo logs. Afterwards:
 *
 *  1. every structural invariant must hold (no torn transactions), and
 *  2. for single-threaded runs, the recovered state must equal a
 *     functional replay of exactly the committed transactions.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "harness/system.hh"
#include "recovery/recovery.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

WorkloadParams
crashParams(unsigned threads)
{
    WorkloadParams p;
    p.threads = threads;
    p.scale = 250;
    p.initScale = 100;
    p.seed = 11;
    return p;
}

/** Run recovery for every thread of @p system against @p image. */
void
recoverAll(FullSystem &system, MemoryImage &image)
{
    const LogScheme scheme = system.config().logging.scheme;
    for (unsigned t = 0; t < system.coreCount(); ++t) {
        TraceBuilder &tb = system.workload().builder(t);
        switch (scheme) {
          case LogScheme::PMEM:
          case LogScheme::PMEMPCommit:
            Recovery::recoverSoftware(image, tb.logAreaStart(),
                                      tb.logAreaEnd(),
                                      tb.logFlagAddr());
            break;
          case LogScheme::Proteus:
          case LogScheme::ProteusNoLWR:
            Recovery::recoverProteus(image, tb.logAreaStart(),
                                     tb.logAreaEnd());
            break;
          case LogScheme::ATOM: {
            const auto [start, end] = system.atomLogArea(t);
            Recovery::recoverAtom(image, start, end);
            break;
          }
          case LogScheme::PMEMNoLog:
            break;      // not failure-safe by design
        }
    }
}

using CrashCase = std::tuple<LogScheme, WorkloadKind, unsigned>;

class CrashRecovery : public ::testing::TestWithParam<CrashCase>
{
};

} // namespace

TEST_P(CrashRecovery, RecoversToAConsistentCommittedPrefix)
{
    const auto [scheme, kind, crash_percent] = GetParam();
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = scheme;
    cfg.memCtrl.adr = scheme != LogScheme::PMEMPCommit;

    const WorkloadParams params = crashParams(1);
    FullSystem system(cfg, kind, params);

    // Find the total runtime once, then crash partway through it.
    const RunResult full = system.run(500'000'000ull);
    ASSERT_TRUE(full.finished);
    const Tick crash_at = full.cycles * crash_percent / 100;

    FullSystem crashed(cfg, kind, params);
    crashed.runFor(crash_at);
    MemoryImage image = crashed.crashImage();
    recoverAll(crashed, image);

    // (1) No torn transactions.
    const std::string err =
        crashed.workload().checkInvariants(image);
    EXPECT_TRUE(err.empty()) << "crash at " << crash_at << ": " << err;

    // (2) Exact committed-prefix equivalence (single thread).
    const std::uint64_t committed =
        crashed.core(0).committedTxs().size();
    PersistentHeap replay_heap;
    auto replay = makeWorkload(kind, replay_heap, scheme, params);
    replay->setup();
    replay->replayOps(committed);
    EXPECT_EQ(crashed.workload().serialize(image),
              replay->serialize(replay_heap.volatileImage()))
        << "recovered state is not the committed prefix (committed="
        << committed << ", crash at " << crash_at << ")";
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, CrashRecovery,
    ::testing::Combine(
        ::testing::Values(LogScheme::PMEM, LogScheme::ATOM,
                          LogScheme::Proteus,
                          LogScheme::ProteusNoLWR),
        ::testing::Values(WorkloadKind::Queue, WorkloadKind::HashMap,
                          WorkloadKind::RbTree),
        ::testing::Values(13u, 37u, 61u, 88u)),
    [](const ::testing::TestParamInfo<CrashCase> &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '+')
                c = '_';
        }
        return name + "_" + toString(std::get<1>(info.param)) + "_at" +
               std::to_string(std::get<2>(info.param));
    });

namespace {

class CrashRecoveryMulti
    : public ::testing::TestWithParam<std::tuple<LogScheme, unsigned>>
{
};

} // namespace

TEST_P(CrashRecoveryMulti, InvariantsHoldAfterMultiThreadCrash)
{
    const auto [scheme, crash_percent] = GetParam();
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = scheme;

    const WorkloadParams params = crashParams(4);
    FullSystem system(cfg, WorkloadKind::AvlTree, params);
    const RunResult full = system.run(500'000'000ull);
    ASSERT_TRUE(full.finished);

    FullSystem crashed(cfg, WorkloadKind::AvlTree, params);
    crashed.runFor(full.cycles * crash_percent / 100);
    MemoryImage image = crashed.crashImage();
    recoverAll(crashed, image);
    const std::string err =
        crashed.workload().checkInvariants(image);
    EXPECT_TRUE(err.empty()) << err;
}

INSTANTIATE_TEST_SUITE_P(
    MultiThread, CrashRecoveryMulti,
    ::testing::Combine(::testing::Values(LogScheme::PMEM,
                                         LogScheme::ATOM,
                                         LogScheme::Proteus),
                       ::testing::Values(23u, 52u, 79u)),
    [](const ::testing::TestParamInfo<std::tuple<LogScheme, unsigned>>
           &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '+')
                c = '_';
        }
        return name + "_at" + std::to_string(std::get<1>(info.param));
    });

TEST(RecoveryUnit, ScanFindsOnlyValidRecords)
{
    MemoryImage image;
    LogRecord rec;
    rec.fromAddr = 0x5000;
    rec.txId = 1;
    rec.seq = 0;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(0x9000, bytes.data(), bytes.size());
    // Garbage in the next slot.
    image.write64(0x9040, 0x1234);

    const auto records = Recovery::scanLog(image, 0x9000, 0x9000 + 640);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].fromAddr, 0x5000u);
}

TEST(RecoveryUnit, UndoUsesEarliestEntryPerGranule)
{
    MemoryImage image;
    image.write64(0x5000, 0xFFFF);      // corrupted current value

    // Two entries for the same granule: seq 1 (old value 0xAAAA) and
    // seq 2 (mid-transaction value 0xBBBB). Recovery must apply seq 1.
    for (unsigned i = 0; i < 2; ++i) {
        LogRecord rec;
        const std::uint64_t v = i == 0 ? 0xAAAA : 0xBBBB;
        std::memcpy(rec.data.data(), &v, 8);
        rec.fromAddr = 0x5000;
        rec.txId = 9;
        rec.seq = i + 1;
        rec.flags = LogRecord::flagValid;
        rec.magic = LogRecord::magicValue;
        const auto bytes = rec.toBytes();
        image.write(0x9000 + i * logEntrySize, bytes.data(),
                    bytes.size());
    }
    const auto result =
        Recovery::recoverProteus(image, 0x9000, 0x9000 + 2 * 64);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(result.undoneTx, 9u);
    EXPECT_EQ(image.read64(0x5000), 0xAAAAu);
}

TEST(RecoveryUnit, CommittedMarkerSuppressesUndo)
{
    MemoryImage image;
    image.write64(0x5000, 0x1);
    LogRecord rec;
    const std::uint64_t v = 0x0;
    std::memcpy(rec.data.data(), &v, 8);
    rec.fromAddr = 0x5000;
    rec.txId = 9;
    rec.seq = 1;
    rec.flags = LogRecord::flagValid | LogRecord::flagTxEnd;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(0x9000, bytes.data(), bytes.size());

    const auto result =
        Recovery::recoverProteus(image, 0x9000, 0x9000 + 64);
    EXPECT_FALSE(result.didUndo);
    EXPECT_EQ(image.read64(0x5000), 0x1u);  // committed data kept
}

TEST(RecoveryUnit, OnlyNewestTxIsLive)
{
    MemoryImage image;
    image.write64(0x5000, 0x22);    // committed by tx 8
    image.write64(0x6000, 0x33);    // in-flight write of tx 9

    auto put = [&](Addr slot, TxId tx, Addr from, std::uint64_t old) {
        LogRecord rec;
        std::memcpy(rec.data.data(), &old, 8);
        rec.fromAddr = from;
        rec.txId = tx;
        rec.seq = 0;
        rec.flags = LogRecord::flagValid;
        rec.magic = LogRecord::magicValue;
        const auto bytes = rec.toBytes();
        image.write(slot, bytes.data(), bytes.size());
    };
    // tx 8's stale entry (it committed; its marker was discarded when
    // tx 9's first entry arrived) and tx 9's live entry.
    put(0x9000, 8, 0x5000, 0x11);
    put(0x9040, 9, 0x6000, 0x00);

    const auto result =
        Recovery::recoverProteus(image, 0x9000, 0x9000 + 128);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(result.undoneTx, 9u);
    EXPECT_EQ(image.read64(0x6000), 0x0u);      // tx 9 undone
    EXPECT_EQ(image.read64(0x5000), 0x22u);     // tx 8 untouched
}

TEST(RecoveryUnit, SoftwareFlagGatesUndo)
{
    MemoryImage image;
    const Addr flag = 0x4000;
    image.write64(0x5000, 0x77);
    LogRecord rec;
    const std::uint64_t old = 0x55;
    std::memcpy(rec.data.data(), &old, 8);
    rec.fromAddr = 0x5000;
    rec.txId = 42;
    rec.seq = 0;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(0x9000, bytes.data(), bytes.size());

    // Flag clear: no undo.
    image.write64(flag, 0);
    auto result =
        Recovery::recoverSoftware(image, 0x9000, 0x9040, flag);
    EXPECT_FALSE(result.didUndo);
    EXPECT_EQ(image.read64(0x5000), 0x77u);

    // Flag set to tx 42: undo applies and clears the flag.
    image.write64(flag, 42);
    result = Recovery::recoverSoftware(image, 0x9000, 0x9040, flag);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(image.read64(0x5000), 0x55u);
    EXPECT_EQ(image.read64(flag), 0u);
}

TEST(RecoveryUnit, AtomCommitRecordGatesUndo)
{
    MemoryImage image;
    const Addr area = 0xA000;
    image.write64(0x5000, 0x77);

    LogRecord rec;
    const std::uint64_t old = 0x55;
    std::memcpy(rec.data.data(), &old, 8);
    rec.fromAddr = 0x5000;
    rec.txId = 10;
    rec.seq = 0;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(area + logEntrySize, bytes.data(), bytes.size());

    // Commit record already covers tx 10: no undo.
    image.write64(area, 10);
    auto result = Recovery::recoverAtom(image, area, area + 1024);
    EXPECT_FALSE(result.didUndo);

    // Commit record at tx 9: tx 10 was in flight and is undone.
    image.write64(area, 9);
    result = Recovery::recoverAtom(image, area, area + 1024);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(image.read64(0x5000), 0x55u);
}

TEST(RecoveryUnit, EmptyLogRegionIsANoOpForEveryScheme)
{
    MemoryImage image;
    image.write64(0x5000, 0x42);

    auto proteus = Recovery::recoverProteus(image, 0x9000, 0x9000 + 640);
    EXPECT_FALSE(proteus.didUndo);
    EXPECT_EQ(proteus.entriesScanned, 0u);
    EXPECT_FALSE(proteus.truncatedTail);
    EXPECT_EQ(proteus.tornSlots, 0u);

    auto atom = Recovery::recoverAtom(image, 0xA000, 0xA000 + 1024);
    EXPECT_FALSE(atom.didUndo);
    EXPECT_EQ(atom.tornSlots, 0u);

    auto sw = Recovery::recoverSoftware(image, 0x9000, 0x9000 + 640,
                                        0x4000);
    EXPECT_FALSE(sw.didUndo);
    EXPECT_FALSE(sw.truncatedTail);

    EXPECT_EQ(image.read64(0x5000), 0x42u);     // data untouched
}

namespace {

/** Write a valid undo record into @p image at @p slot. */
void
putRecord(MemoryImage &image, Addr slot, TxId tx, Addr from,
          std::uint64_t old_value, std::uint64_t seq = 0,
          std::uint8_t extra_flags = 0)
{
    LogRecord rec;
    std::memcpy(rec.data.data(), &old_value, 8);
    rec.fromAddr = from;
    rec.txId = tx;
    rec.seq = seq;
    rec.flags = LogRecord::flagValid | extra_flags;
    rec.magic = LogRecord::magicValue;
    const auto bytes = rec.toBytes();
    image.write(slot, bytes.data(), bytes.size());
}

} // namespace

TEST(RecoveryUnit, ContiguousScanStopsCleanlyAtTornTail)
{
    MemoryImage image;
    putRecord(image, 0x9000, 7, 0x5000, 0xAA, 0);
    // A torn tail: the next slot holds a partial record (nonzero bytes
    // but no valid flag/magic), as a crash mid-log-write leaves it.
    image.write64(0x9040, 0x123456);
    // A stale record beyond the tear must NOT be picked up by the
    // contiguous (software) scan: the log is rewritten from its base
    // every transaction, so nothing live can follow the first hole.
    putRecord(image, 0x9080, 99, 0x6000, 0xBB, 0);

    const auto scan =
        Recovery::scanLogContiguous(image, 0x9000, 0x9000 + 640);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].txId, 7u);
    EXPECT_TRUE(scan.truncated);
    EXPECT_EQ(scan.tornSlot, 0x9040u);
    EXPECT_EQ(scan.tornSlots, 1u);
}

TEST(RecoveryUnit, SparseScanSkipsHolesAndCountsTornSlots)
{
    MemoryImage image;
    putRecord(image, 0x9000, 7, 0x5000, 0xAA, 0);
    image.write64(0x9040, 0x123456);            // torn slot
    // All-zero slot at 0x9080: an invalidated (ATOM-truncated) hole.
    putRecord(image, 0x90C0, 8, 0x6000, 0xBB, 0);

    const auto scan =
        Recovery::scanLogSparse(image, 0x9000, 0x9000 + 4 * 64);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].txId, 7u);
    EXPECT_EQ(scan.records[1].txId, 8u);
    EXPECT_EQ(scan.tornSlots, 1u);
    EXPECT_EQ(scan.tornSlot, 0x9040u);
    EXPECT_EQ(scan.slotsScanned, 4u);
}

TEST(RecoveryUnit, SoftwareRecoveryReportsAndSurvivesTornTail)
{
    MemoryImage image;
    const Addr flag = 0x4000;
    image.write64(0x5000, 0xFFFF);              // torn current value
    putRecord(image, 0x9000, 42, 0x5000, 0x55, 0);
    // The transaction's second log entry was torn by the crash.
    image.write64(0x9040, 0xDEAD);
    image.write64(flag, 42);                    // tx 42 was in flight

    const auto result =
        Recovery::recoverSoftware(image, 0x9000, 0x9000 + 640, flag);
    EXPECT_TRUE(result.didUndo);
    EXPECT_TRUE(result.truncatedTail);
    EXPECT_EQ(result.tornSlot, 0x9040u);
    EXPECT_EQ(result.entriesApplied, 1u);
    EXPECT_EQ(image.read64(0x5000), 0x55u);     // valid prefix applied
    EXPECT_EQ(image.read64(flag), 0u);          // flag cleared
}

TEST(RecoveryUnit, BackToBackTxsOnSameAddressUndoToCommittedValue)
{
    // tx 8 committed value 0xBB over 0xAA; tx 9 then wrote 0xCC and
    // 0xDD in flight. Undo must use tx 9's *earliest* pre-image, which
    // is tx 8's committed value — not tx 8's own (stale) entry.
    MemoryImage image;
    image.write64(0x5000, 0xDD);                // tx 9's last store
    putRecord(image, 0x9000, 8, 0x5000, 0xAA, 0);
    putRecord(image, 0x9040, 9, 0x5000, 0xBB, 1);
    putRecord(image, 0x9080, 9, 0x5000, 0xCC, 2);

    const auto result =
        Recovery::recoverProteus(image, 0x9000, 0x9000 + 640);
    EXPECT_TRUE(result.didUndo);
    EXPECT_EQ(result.undoneTx, 9u);
    EXPECT_EQ(image.read64(0x5000), 0xBBu);
}

TEST(CrashAtCommitPoint, DurableCommitCycleKeepsTheTransaction)
{
    // Crash exactly at the cycle a mid-run transaction's tx-end
    // retires: the transaction is committed-counted and must survive
    // recovery; the recovered state must equal the replayed prefix.
    SystemConfig cfg = baselineConfig();
    cfg.logging.scheme = LogScheme::Proteus;

    const WorkloadParams params = crashParams(1);
    FullSystem reference(cfg, WorkloadKind::Queue, params);
    const RunResult full = reference.run(500'000'000ull);
    ASSERT_TRUE(full.finished);
    const auto &commits = reference.core(0).commitCycles();
    ASSERT_GT(commits.size(), 4u);
    const std::size_t k = commits.size() / 2;
    // runFor(T + 1) executes cycles 0..T, including the retire at T.
    const Tick crash_at = commits[k] + 1;

    FullSystem crashed(cfg, WorkloadKind::Queue, params);
    crashed.runFor(crash_at);
    const std::uint64_t committed =
        crashed.core(0).committedTxs().size();
    EXPECT_GE(committed, k + 1);

    MemoryImage image = crashed.crashImage();
    recoverAll(crashed, image);
    EXPECT_TRUE(crashed.workload().checkInvariants(image).empty());

    PersistentHeap replay_heap;
    auto replay = makeWorkload(WorkloadKind::Queue, replay_heap,
                               LogScheme::Proteus, params);
    replay->setup();
    replay->replayOps(committed);
    EXPECT_EQ(crashed.workload().serialize(image),
              replay->serialize(replay_heap.volatileImage()));
}
