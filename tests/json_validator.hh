/**
 * @file
 * Minimal recursive-descent JSON syntax checker shared by the
 * observability tests. Validates the full RFC 8259 grammar (objects,
 * arrays, strings with escapes, numbers, literals) without building a
 * document tree — enough to assert that simulator output files parse.
 */

#ifndef PROTEUS_TESTS_JSON_VALIDATOR_HH
#define PROTEUS_TESTS_JSON_VALIDATOR_HH

#include <cctype>
#include <string>

namespace testjson {

class Validator
{
  public:
    explicit Validator(const std::string &text) : _s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _i == _s.size();
    }

  private:
    bool
    value()
    {
        if (_i >= _s.size())
            return false;
        switch (_s[_i]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++_i;   // '{'
        skipWs();
        if (peek() == '}') { ++_i; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++_i;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++_i; continue; }
            if (peek() == '}') { ++_i; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++_i;   // '['
        skipWs();
        if (peek() == ']') { ++_i; return true; }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++_i; continue; }
            if (peek() == ']') { ++_i; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++_i;
        while (_i < _s.size()) {
            const char c = _s[_i];
            if (c == '"') { ++_i; return true; }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;   // raw control character
            if (c == '\\') {
                ++_i;
                if (_i >= _s.size())
                    return false;
                const char e = _s[_i];
                if (e == 'u') {
                    for (int k = 1; k <= 4; ++k) {
                        if (_i + k >= _s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                _s[_i + k]))) {
                            return false;
                        }
                    }
                    _i += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++_i;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = _i;
        if (peek() == '-')
            ++_i;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++_i;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_i;
            if (peek() == '+' || peek() == '-')
                ++_i;
            if (!digits())
                return false;
        }
        return _i > start;
    }

    bool
    digits()
    {
        const std::size_t start = _i;
        while (_i < _s.size() &&
               std::isdigit(static_cast<unsigned char>(_s[_i]))) {
            ++_i;
        }
        return _i > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++_i) {
            if (_i >= _s.size() || _s[_i] != *p)
                return false;
        }
        return true;
    }

    char
    peek() const
    {
        return _i < _s.size() ? _s[_i] : '\0';
    }

    void
    skipWs()
    {
        while (_i < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_i]))) {
            ++_i;
        }
    }

    const std::string &_s;
    std::size_t _i = 0;
};

inline bool
isValidJson(const std::string &text)
{
    return Validator(text).valid();
}

} // namespace testjson

#endif // PROTEUS_TESTS_JSON_VALIDATOR_HH
