/** @file Unit tests for the cache array and hierarchy. */

#include <gtest/gtest.h>

#include <memory>

#include "cache/hierarchy.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

stats::StatRegistry &
reg()
{
    static stats::StatRegistry r;
    return r;
}

int counter = 0;

std::unique_ptr<CacheArray>
makeArray(std::uint64_t size = 1024, unsigned ways = 2,
          unsigned latency = 4)
{
    CacheConfig cfg{size, ways, latency, 8, 8};
    return std::make_unique<CacheArray>(
        cfg, reg(), "arr" + std::to_string(counter++));
}

/** A small but complete system for hierarchy tests. */
struct HierFixture
{
    HierFixture()
    {
        cfg = baselineConfig();
        cfg.cores = 2;
        mc = std::make_unique<MemCtrl>(sim, cfg, nvm);
        hier = std::make_unique<CacheHierarchy>(sim, cfg, *mc, nvm);
        sim.addTicked(mc.get());
    }

    /** Run until @p done or fail the test. */
    void
    runUntil(const std::function<bool()> &done, Tick max = 100000)
    {
        ASSERT_TRUE(sim.runUntil(done, max));
    }

    Simulator sim;
    SystemConfig cfg;
    MemoryImage nvm;
    std::unique_ptr<MemCtrl> mc;
    std::unique_ptr<CacheHierarchy> hier;
};

} // namespace

TEST(CacheArray, InsertProbeTouch)
{
    auto ap = makeArray();
    auto &a = *ap;
    EXPECT_FALSE(a.probe(0x1000));
    EXPECT_FALSE(a.insert(0x1000, false).has_value());
    EXPECT_TRUE(a.probe(0x1000));
    EXPECT_FALSE(a.isDirty(0x1000));
    a.setDirty(0x1000);
    EXPECT_TRUE(a.isDirty(0x1000));
}

TEST(CacheArray, LruEviction)
{
    // 1KB, 2-way, 64B blocks -> 8 sets. Three blocks in one set.
    auto ap = makeArray();
    auto &a = *ap;
    const Addr s0_a = 0;
    const Addr s0_b = 8 * 64;
    const Addr s0_c = 16 * 64;
    a.insert(s0_a, false);
    a.insert(s0_b, false);
    a.touch(s0_a);              // b becomes LRU
    const auto victim = a.insert(s0_c, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block, s0_b);
}

TEST(CacheArray, DirtyVictimReported)
{
    auto ap = makeArray();
    auto &a = *ap;
    a.insert(0, true);
    a.insert(8 * 64, false);
    const auto victim = a.insert(16 * 64, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
}

TEST(CacheArray, CleanKeepsLine)
{
    auto ap = makeArray();
    auto &a = *ap;
    a.insert(0x40, true);
    EXPECT_TRUE(a.clean(0x40));
    EXPECT_TRUE(a.probe(0x40));
    EXPECT_FALSE(a.isDirty(0x40));
    EXPECT_FALSE(a.clean(0x40));    // already clean
}

TEST(CacheArray, InvalidateReportsDirty)
{
    auto ap = makeArray();
    auto &a = *ap;
    a.insert(0x40, true);
    EXPECT_TRUE(a.invalidate(0x40));
    EXPECT_FALSE(a.probe(0x40));
    EXPECT_FALSE(a.invalidate(0x40));
}

TEST(CacheArray, ReinsertMergesDirtyBit)
{
    auto ap = makeArray();
    auto &a = *ap;
    a.insert(0x40, true);
    a.insert(0x40, false);      // must not lose the dirty bit
    EXPECT_TRUE(a.isDirty(0x40));
}

TEST(CacheArray, NonPowerOfTwoSetsFatal)
{
    CacheConfig cfg{3 * 64, 1, 4, 8, 8};
    EXPECT_THROW(CacheArray(cfg, reg(), "bad"), FatalError);
}

TEST(DirtyDataTrackerTest, SnapshotsFollowStores)
{
    MemoryImage nvm;
    nvm.write64(0x1000, 0xAAAA);
    DirtyDataTracker tracker(nvm);
    auto before = tracker.snapshot(0x1000);
    std::uint64_t v = 0;
    std::memcpy(&v, before.data(), 8);
    EXPECT_EQ(v, 0xAAAAu);

    tracker.applyStore(0x1008, 8, 0xBBBB);
    auto after = tracker.snapshot(0x1000);
    std::memcpy(&v, after.data(), 8);
    EXPECT_EQ(v, 0xAAAAu);              // untouched bytes kept
    std::memcpy(&v, after.data() + 8, 8);
    EXPECT_EQ(v, 0xBBBBu);
}

TEST(DirtyDataTrackerTest, CrossBlockStorePanics)
{
    MemoryImage nvm;
    DirtyDataTracker tracker(nvm);
    EXPECT_THROW(tracker.applyStore(0x103C, 8, 1), PanicError);
}

TEST(Hierarchy, L1HitIsFast)
{
    HierFixture f;
    bool done = false;
    f.hier->load(0, 0x10000, 8, [&]() { done = true; });
    f.runUntil([&]() { return done; });
    const Tick miss_time = f.sim.now();
    EXPECT_GT(miss_time, 50u);          // went to memory

    done = false;
    const Tick start = f.sim.now();
    f.hier->load(0, 0x10000, 8, [&]() { done = true; });
    f.runUntil([&]() { return done; });
    EXPECT_LE(f.sim.now() - start, 6u); // L1 hit latency
}

TEST(Hierarchy, MshrMergesSameBlock)
{
    HierFixture f;
    int completions = 0;
    f.hier->load(0, 0x20000, 8, [&]() { ++completions; });
    f.hier->load(0, 0x20008, 8, [&]() { ++completions; });
    f.runUntil([&]() { return completions == 2; });
    // Only one memory read was made for the shared block.
    EXPECT_EQ(f.mc->nvmReads(), 1u);
}

TEST(Hierarchy, MshrLimitRejects)
{
    HierFixture f;
    f.cfg.caches.l1d.mshrs = 16;
    unsigned accepted = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if (f.hier->load(0, 0x40000 + i * 64, 8, [] {}))
            ++accepted;
    }
    EXPECT_EQ(accepted, 16u);
}

TEST(Hierarchy, StoreMakesBlockDirtyAndTracked)
{
    HierFixture f;
    bool done = false;
    f.hier->store(0, 0x30000, 8, 0x77, 0, [&]() { done = true; });
    f.runUntil([&]() { return done; });
    EXPECT_TRUE(f.hier->l1(0).isDirty(0x30000));
    auto snap = f.hier->tracker().snapshot(0x30000);
    std::uint64_t v = 0;
    std::memcpy(&v, snap.data(), 8);
    EXPECT_EQ(v, 0x77u);
}

TEST(Hierarchy, FlushWritesDirtyBlockToMemory)
{
    HierFixture f;
    bool stored = false, flushed = false;
    f.hier->store(0, 0x30000, 8, 0x12345, 0, [&]() { stored = true; });
    f.runUntil([&]() { return stored; });
    f.hier->flush(0, 0x30000, 0, [&]() { flushed = true; });
    f.runUntil([&]() { return flushed; });
    EXPECT_FALSE(f.hier->l1(0).isDirty(0x30000));
    // Run until the WPQ drains to the NVM image.
    f.runUntil([&]() { return f.mc->empty(); }, 1000000);
    EXPECT_EQ(f.nvm.read64(0x30000), 0x12345u);
}

TEST(Hierarchy, FlushCleanBlockIsCheap)
{
    HierFixture f;
    bool done = false;
    f.hier->flush(0, 0x50000, 0, [&]() { done = true; });
    f.runUntil([&]() { return done; });
    EXPECT_EQ(f.mc->nvmWrites(), 0u);
}

TEST(Hierarchy, RemoteDirtyTransfer)
{
    HierFixture f;
    bool stored = false;
    f.hier->store(0, 0x60000, 8, 0x1, 0, [&]() { stored = true; });
    f.runUntil([&]() { return stored; });
    ASSERT_TRUE(f.hier->l1(0).isDirty(0x60000));

    // Core 1 reads the line: core 0's dirty copy must be found.
    bool loaded = false;
    f.hier->load(1, 0x60000, 8, [&]() { loaded = true; });
    f.runUntil([&]() { return loaded; });
    EXPECT_FALSE(f.hier->l1(0).probe(0x60000));    // invalidated
    EXPECT_GT(f.sim.statsRegistry().lookup("cache.remoteTransfers"),
              0.0);
}

TEST(Hierarchy, LogWritePathReachesMc)
{
    HierFixture f;
    WriteRequest req;
    req.addr = 0x70000;
    req.kind = WriteKind::Data;
    req.data.fill(0xCD);
    bool acked = false;
    f.hier->sendLogWrite(req, [&]() { acked = true; });
    f.runUntil([&]() { return acked; });
    f.runUntil([&]() { return f.mc->empty(); }, 1000000);
    EXPECT_EQ(f.nvm.read64(0x70000), 0xCDCDCDCDCDCDCDCDull);
}
