/**
 * @file
 * Golden-stats regression test: every logging scheme x {QE, HM, BT} at
 * a small fixed scale must reproduce the exact counter values recorded
 * in tests/golden/golden_stats.txt. The simulator is deterministic, so
 * any drift is a real behavior change — either a bug, or an intended
 * change that must be rebaselined consciously:
 *
 *   PROTEUS_GOLDEN_REBASELINE=1 ./proteus_unit_tests \
 *       --gtest_filter='GoldenStats.*'
 * or  ./proteus_unit_tests --rebaseline --gtest_filter='GoldenStats.*'
 *
 * Failures print a per-counter diff (golden vs actual) so the drift is
 * readable at a glance in CI logs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiments.hh"
#include "sim/logging.hh"

using namespace proteus;

#ifndef PROTEUS_GOLDEN_DIR
#error "PROTEUS_GOLDEN_DIR must be defined by the build"
#endif

namespace {

const char *goldenPath = PROTEUS_GOLDEN_DIR "/golden_stats.txt";

const std::vector<LogScheme> allSchemes{
    LogScheme::PMEM,    LogScheme::PMEMPCommit, LogScheme::PMEMNoLog,
    LogScheme::ATOM,    LogScheme::Proteus,     LogScheme::ProteusNoLWR,
};

const std::vector<WorkloadKind> goldenWorkloads{
    WorkloadKind::Queue, WorkloadKind::HashMap, WorkloadKind::BTree,
};

/** The counters pinned by the golden file, in file order. */
using Counters = std::vector<std::pair<std::string, std::uint64_t>>;

Counters
countersOf(const RunResult &r)
{
    return Counters{
        {"cycles", r.cycles},
        {"retiredOps", r.retiredOps},
        {"nvmWrites", r.nvmWrites},
        {"nvmReads", r.nvmReads},
        {"committedTxs", r.committedTxs},
        {"logWritesDropped", r.logWritesDropped},
        {"frontendStallCycles", r.frontendStallCycles},
        {"cpiPersistStall", static_cast<std::uint64_t>(r.cpi.persistStall)},
        {"cpiLockWait", static_cast<std::uint64_t>(r.cpi.lockWait)},
    };
}

bool
rebaselineRequested()
{
    if (std::getenv("PROTEUS_GOLDEN_REBASELINE"))
        return true;
    for (const std::string &arg : testing::internal::GetArgvs()) {
        if (arg == "--rebaseline")
            return true;
    }
    return false;
}

RunResult
runCell(LogScheme scheme, WorkloadKind kind)
{
    BenchOptions opts;
    opts.scale = 2000;
    opts.initScale = 200;
    opts.threads = 2;
    opts.seed = 1;
    return runExperiment(baselineConfig(), scheme, kind, opts);
}

/** The one generated-workload spec pinned by the golden file. */
RunResult
runGenCell(LogScheme scheme)
{
    BenchOptions opts;
    opts.scale = 1;
    opts.initScale = 1;
    opts.threads = 2;
    opts.seed = 1;
    opts.wlSpec = "dist=zipf,theta=0.9,keyspace=4096,ops=500";
    WorkloadExtras extras;
    extras.gen = opts.genSpec();
    return runExperiment(baselineConfig(), scheme,
                         WorkloadKind::Generated, opts, extras);
}

/** golden file line: "<scheme> <workload> k=v k=v ..." */
std::map<std::string, Counters>
loadGolden()
{
    std::map<std::string, Counters> golden;
    std::ifstream in(goldenPath);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string scheme, workload, kv;
        ss >> scheme >> workload;
        Counters counters;
        while (ss >> kv) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                ADD_FAILURE() << "bad golden line: " << line;
                continue;
            }
            counters.emplace_back(kv.substr(0, eq),
                                  std::stoull(kv.substr(eq + 1)));
        }
        golden[scheme + " " + workload] = std::move(counters);
    }
    return golden;
}

} // namespace

TEST(GoldenStats, SchemesMatchGoldenCounters)
{
    const bool rebaseline = rebaselineRequested();

    std::ostringstream out;
    out << "# Golden simulation counters: scheme x workload at "
           "--scale 2000 --init-scale 200 --threads 2 --seed 1.\n"
        << "# Regenerate consciously with PROTEUS_GOLDEN_REBASELINE=1 "
           "(or --rebaseline).\n";

    std::map<std::string, Counters> golden;
    if (!rebaseline) {
        std::ifstream probe(goldenPath);
        ASSERT_TRUE(probe.good())
            << "golden file missing: " << goldenPath
            << " — run once with PROTEUS_GOLDEN_REBASELINE=1";
        loadGolden().swap(golden);
    }

    const auto checkCell = [&](const std::string &cell,
                               const RunResult &r) {
        SCOPED_TRACE(cell);
        ASSERT_TRUE(r.finished);
        const Counters actual = countersOf(r);

        if (rebaseline) {
            out << cell;
            for (const auto &[k, v] : actual)
                out << " " << k << "=" << v;
            out << "\n";
            return;
        }

        const auto it = golden.find(cell);
        ASSERT_NE(it, golden.end())
            << "no golden row for " << cell << " — rebaseline";
        const Counters &want = it->second;
        ASSERT_EQ(want.size(), actual.size()) << "counter set "
                                              << "changed; rebaseline";
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i].first, actual[i].first);
            EXPECT_EQ(want[i].second, actual[i].second)
                << cell << ": counter '" << want[i].first
                << "' drifted (golden " << want[i].second
                << ", actual " << actual[i].second << ")";
        }
    };

    for (const LogScheme scheme : allSchemes) {
        for (const WorkloadKind kind : goldenWorkloads) {
            checkCell(std::string(toString(scheme)) + " " +
                          toString(kind),
                      runCell(scheme, kind));
        }
    }
    // The generated workload: one fixed spec (see runGenCell), pinned
    // per scheme so GenSpec/keydist/GenWorkload drift is caught at the
    // counter level, not just functionally.
    for (const LogScheme scheme : allSchemes) {
        checkCell(std::string(toString(scheme)) + " GEN",
                  runGenCell(scheme));
    }

    if (rebaseline) {
        std::ofstream os(goldenPath);
        ASSERT_TRUE(os.good()) << "cannot write " << goldenPath;
        os << out.str();
        std::cout << "rebaselined " << goldenPath << "\n";
    }
}
