/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace proteus;

TEST(Random, DeterministicPerSeed)
{
    Random a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 64; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Random, NextBelowInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
    EXPECT_THROW(r.nextBelow(0), PanicError);
}

TEST(Random, NextRangeInclusive)
{
    Random r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        hit_lo |= v == 3;
        hit_hi |= v == 6;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
    EXPECT_THROW(r.nextRange(6, 3), PanicError);
}

TEST(Random, NextBoolEdges)
{
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.5) ? 1 : 0;
    EXPECT_NEAR(heads, 5000, 400);
}

TEST(Random, DoubleInUnitInterval)
{
    Random r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, BelowIsRoughlyUniform)
{
    Random r(17);
    std::vector<unsigned> hist(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hist[r.nextBelow(8)];
    for (unsigned count : hist)
        EXPECT_NEAR(count, 1000u, 150u);
}
