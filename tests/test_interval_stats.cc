/**
 * @file
 * IntervalStatsSampler: samples fire on exact cycle boundaries, the
 * per-column deltas sum to the stat totals (including the final partial
 * row), and the CSV/JSON serializations are well formed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/system.hh"
#include "json_validator.hh"
#include "sim/interval_stats.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace proteus;

TEST(IntervalStats, ZeroIntervalIsFatal)
{
    Simulator sim;
    EXPECT_THROW(IntervalStatsSampler(sim, 0), FatalError);
}

TEST(IntervalStats, FiresOnExactBoundariesWithResidualRow)
{
    Simulator sim;
    stats::Scalar a(sim.statsRegistry(), "a", "");

    IntervalStatsSampler sampler(sim, 10);
    sampler.start();

    sim.schedule(5, [&]() { a += 1; });
    sim.schedule(15, [&]() { a += 2; });
    sim.schedule(32, [&]() { a += 3; });
    sim.run(35);
    sampler.finish();

    ASSERT_EQ(sampler.columns().size(), 1u);
    EXPECT_EQ(sampler.columns()[0], "a");

    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].cycle, 10u);
    EXPECT_EQ(rows[1].cycle, 20u);
    EXPECT_EQ(rows[2].cycle, 30u);
    EXPECT_EQ(rows[3].cycle, 35u);      // final partial interval
    EXPECT_DOUBLE_EQ(rows[0].deltas[0], 1.0);
    EXPECT_DOUBLE_EQ(rows[1].deltas[0], 2.0);
    EXPECT_DOUBLE_EQ(rows[2].deltas[0], 0.0);
    EXPECT_DOUBLE_EQ(rows[3].deltas[0], 3.0);

    double sum = 0;
    for (const auto &row : rows)
        sum += row.deltas[0];
    EXPECT_DOUBLE_EQ(sum, a.value());
}

TEST(IntervalStats, NoResidualRowOnExactMultiple)
{
    Simulator sim;
    stats::Scalar a(sim.statsRegistry(), "a", "");

    IntervalStatsSampler sampler(sim, 10);
    sampler.start();
    sim.schedule(3, [&]() { a += 7; });
    sim.run(20);
    sampler.finish();

    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_EQ(sampler.rows()[0].cycle, 10u);
    EXPECT_EQ(sampler.rows()[1].cycle, 20u);
    sampler.finish();   // idempotent
    EXPECT_EQ(sampler.rows().size(), 2u);
}

TEST(IntervalStats, SerializesCsvAndJson)
{
    Simulator sim;
    stats::Scalar a(sim.statsRegistry(), "x.count", "");
    IntervalStatsSampler sampler(sim, 4);
    sampler.start();
    sim.schedule(1, [&]() { a += 5; });
    sim.run(8);
    sampler.finish();

    std::ostringstream csv;
    sampler.write(csv, /*json=*/false);
    EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
              "cycle,x.count");
    EXPECT_NE(csv.str().find("4,5"), std::string::npos);

    std::ostringstream json;
    sampler.write(json, /*json=*/true);
    EXPECT_TRUE(testjson::isValidJson(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"interval\": 4"), std::string::npos);
}

TEST(IntervalStats, FullSystemDeltasSumToTotals)
{
    SystemConfig cfg = baselineConfig();
    cfg.obs.statsInterval = 2000;   // in-memory series, no output file

    WorkloadParams params;
    params.threads = 2;
    params.scale = 500;
    params.initScale = 100;
    params.seed = 3;

    FullSystem system(cfg, WorkloadKind::Queue, params);
    const RunResult r = system.run();
    ASSERT_TRUE(r.finished);

    IntervalStatsSampler *sampler = system.sampler();
    ASSERT_NE(sampler, nullptr);
    ASSERT_FALSE(sampler->rows().empty());

    // Boundary rows land on exact multiples of the interval; only the
    // final row may be partial.
    const auto &rows = sampler->rows();
    for (std::size_t i = 0; i + 1 < rows.size(); ++i)
        EXPECT_EQ(rows[i].cycle % sampler->interval(), 0u) << i;

    // Every tracked column's deltas must sum to the stat's final value.
    const auto &all = system.sim().statsRegistry().all();
    for (std::size_t c = 0; c < sampler->columns().size(); ++c) {
        double sum = 0;
        for (const auto &row : rows)
            sum += row.deltas[c];
        const auto it = all.find(sampler->columns()[c]);
        ASSERT_NE(it, all.end()) << sampler->columns()[c];
        EXPECT_DOUBLE_EQ(sum, it->second->value())
            << sampler->columns()[c];
    }
}
