/**
 * @file
 * Transaction flight-recorder tests: span-chain completeness on a
 * synthetic event feed (including the rollback path, which the forward
 * simulator never exercises), Distribution percentile correctness
 * against a sorted-vector reference, the CPI cross-check invariants on
 * real end-to-end runs, and byte-identical --tx-stats output across
 * cycle-skip on/off and --jobs 1 vs 4.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiments.hh"
#include "harness/parallel_runner.hh"
#include "json_validator.hh"
#include "obs/json_reader.hh"
#include "obs/tx_stats_io.hh"
#include "obs/tx_tracker.hh"
#include "sim/stats.hh"

using namespace proteus;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Nearest-rank percentile over a sorted sample vector (the reference
 *  definition Distribution::percentile implements). */
double
referencePercentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0)
        return sorted.front();
    if (p >= 100)
        return sorted.back();
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    rank = std::max<std::size_t>(rank, 1);
    return sorted[rank - 1];
}

BenchOptions
tinyOptions()
{
    BenchOptions opts;
    opts.threads = 2;
    opts.scale = 500;
    opts.initScale = 100;
    opts.seed = 3;
    return opts;
}

} // namespace

TEST(TxTracker, SpanChainInvariants)
{
    stats::StatRegistry reg;
    obs::TxTracker trk(reg, 1, 4);
    const CoreId c = 0;
    const TxId tx = 7;

    trk.commitSlot(c, 0, obs::TxSlot::Base, 10);    // outside any tx
    trk.txBegin(c, tx, 100);
    trk.lockRequested(c, tx, 0x40, 100);
    trk.lockGranted(c, tx, 0x40, 115);
    trk.commitSlot(c, tx, obs::TxSlot::LockWait, 15);
    trk.logCreated(c, tx, 120);
    trk.logFiltered(c, tx, 125);
    trk.mcQueued(c, tx, true, 130);
    trk.logAcked(c, tx, 120, 150);
    trk.mcIssued(c, tx, true, 130, 160);
    trk.nvmPersisted(c, tx, true, 180);
    trk.commitSlot(c, tx, obs::TxSlot::Base, 80);
    trk.commitSlot(c, tx, obs::TxSlot::PersistStall, 5);
    trk.txCommit(c, tx, 200);
    trk.nvmPersisted(c, tx, false, 220);    // lazy post-commit drain

    const obs::TxStatsSummary s = trk.summary();
    EXPECT_EQ(s.committedTxs, 1u);
    EXPECT_EQ(s.rollbacks, 0u);
    EXPECT_EQ(s.openTxs, 0u);
    EXPECT_EQ(s.lockAcquires, 1u);
    EXPECT_EQ(s.logsCreated, 1u);
    EXPECT_EQ(s.logsFiltered, 1u);
    EXPECT_EQ(s.logsAcked, 1u);
    EXPECT_EQ(s.mcLogQueued, 1u);
    EXPECT_EQ(s.mcIssued, 1u);
    EXPECT_EQ(s.nvmPersists, 2u);
    EXPECT_EQ(s.postCommitPersists, 1u);

    // Slot accounting: totals include the out-of-tx cycles, in-tx does
    // not, and the per-tx buckets sum to commit - begin.
    const auto base = static_cast<unsigned>(obs::TxSlot::Base);
    const auto lock = static_cast<unsigned>(obs::TxSlot::LockWait);
    const auto stall = static_cast<unsigned>(obs::TxSlot::PersistStall);
    EXPECT_EQ(s.slotTotal[base], 90u);
    EXPECT_EQ(s.slotInTx[base], 80u);
    EXPECT_EQ(s.slotTotal[lock], 15u);
    EXPECT_EQ(s.slotInTx[stall], 5u);

    ASSERT_EQ(s.slowest.size(), 1u);
    const obs::TxTimeline &tl = s.slowest[0];
    EXPECT_EQ(tl.latency, 100u);
    std::uint64_t slot_sum = 0;
    for (std::uint64_t v : tl.slots)
        slot_sum += v;
    EXPECT_EQ(slot_sum, tl.latency);
    EXPECT_EQ(tl.critPath, obs::TxSlot::Base);
    ASSERT_GE(tl.events.size(), 2u);
    EXPECT_EQ(tl.events.front().kind, obs::TxEvent::Kind::Begin);
    // Events are recorded in chain order, commit last (the post-commit
    // persist lands after the timeline is sealed).
    EXPECT_EQ(tl.events.back().kind, obs::TxEvent::Kind::Commit);
    for (std::size_t i = 1; i < tl.events.size(); ++i)
        EXPECT_GE(tl.events[i].at, tl.events[i - 1].at);

    const auto cl =
        static_cast<unsigned>(obs::TxStage::CommitLatency);
    EXPECT_EQ(s.stages[cl].count, 1u);
    EXPECT_EQ(s.stages[cl].sum, 100.0);
    const auto lpt = static_cast<unsigned>(obs::TxStage::LogsPerTx);
    EXPECT_EQ(s.stages[lpt].sum, 2.0);      // 1 created + 1 filtered
    const auto lw = static_cast<unsigned>(obs::TxStage::LockWait);
    EXPECT_EQ(s.stages[lw].sum, 15.0);
    const auto la = static_cast<unsigned>(obs::TxStage::LogAck);
    EXPECT_EQ(s.stages[la].sum, 30.0);
    const auto mq = static_cast<unsigned>(obs::TxStage::McQueueWait);
    EXPECT_EQ(s.stages[mq].sum, 30.0);
}

TEST(TxTracker, RollbackCountsWithoutCommitSample)
{
    stats::StatRegistry reg;
    obs::TxTracker trk(reg, 1, 4);
    trk.txBegin(0, 5, 10);
    trk.commitSlot(0, 5, obs::TxSlot::Base, 20);
    trk.txRollback(0, 5, 30);

    const obs::TxStatsSummary s = trk.summary();
    EXPECT_EQ(s.committedTxs, 0u);
    EXPECT_EQ(s.rollbacks, 1u);
    EXPECT_EQ(s.openTxs, 0u);
    const auto cl =
        static_cast<unsigned>(obs::TxStage::CommitLatency);
    EXPECT_EQ(s.stages[cl].count, 0u);      // no latency sample
    EXPECT_TRUE(s.slowest.empty());         // no timeline retained
    // The cycles it burned still count in the slot totals.
    EXPECT_EQ(s.slotTotal[static_cast<unsigned>(obs::TxSlot::Base)],
              20u);
}

TEST(TxTracker, SlowestRingBoundedAndSorted)
{
    stats::StatRegistry reg;
    obs::TxTracker trk(reg, 1, 2);
    for (TxId tx = 1; tx <= 5; ++tx) {
        trk.txBegin(0, tx, tx * 1000);
        trk.commitSlot(0, tx, obs::TxSlot::Base, tx * 10);
        trk.txCommit(0, tx, tx * 1000 + tx * 10);
    }
    const obs::TxStatsSummary s = trk.summary();
    EXPECT_EQ(s.committedTxs, 5u);
    ASSERT_EQ(s.slowest.size(), 2u);        // ring capped at K
    EXPECT_EQ(s.slowest[0].latency, 50u);   // slowest first
    EXPECT_EQ(s.slowest[1].latency, 40u);
}

TEST(TxStats, PercentileMatchesSortedReference)
{
    stats::StatRegistry reg;
    stats::Distribution dist(reg, "d", "", 0, 16384, 64);
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(stats::Distribution::percentileExactMax) - 1);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        const double v = pick(rng);
        samples.push_back(v);
        dist.sample(v);
    }
    // Below percentileExactMax the percentile state is exact, so every
    // nearest-rank query must match the sorted-vector reference.
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(dist.percentile(p), referencePercentile(samples, p))
            << "p" << p;
}

TEST(TxStats, PercentileQuantizedRelativeErrorBounded)
{
    stats::StatRegistry reg;
    stats::Distribution dist(reg, "d", "", 0, 16384, 64);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> pick(8192.0, 4.0e6);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        const double v = std::floor(pick(rng));
        samples.push_back(v);
        dist.sample(v);
    }
    // Above the exact range values are quantized to 12 mantissa bits:
    // relative error bounded by 2^-12.
    for (double p : {50.0, 95.0, 99.0}) {
        const double ref = referencePercentile(samples, p);
        const double got = dist.percentile(p);
        EXPECT_NEAR(got, ref, ref / 4096.0) << "p" << p;
    }
    EXPECT_EQ(dist.max(),
              *std::max_element(samples.begin(), samples.end()));
}

TEST(TxStats, MergeMatchesCombinedDistribution)
{
    stats::StatRegistry reg;
    stats::Distribution a(reg, "a", "", 0, 16384, 64);
    stats::Distribution b(reg, "b", "", 0, 16384, 64);
    stats::Distribution combined(reg, "c", "", 0, 16384, 64);
    std::mt19937 rng(13);
    std::uniform_int_distribution<int> pick(0, 100000);
    for (int i = 0; i < 3000; ++i) {
        const double v = pick(rng);
        (i % 2 ? a : b).sample(v);
        combined.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.max(), combined.max());
    for (double p : {1.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p" << p;
    EXPECT_EQ(a.quantized(), combined.quantized());
}

TEST(TxStats, EndToEndCpiCrossCheck)
{
    const BenchOptions opts = tinyOptions();
    for (LogScheme scheme :
         {LogScheme::PMEM, LogScheme::ATOM, LogScheme::Proteus}) {
        SystemConfig cfg = opts.makeConfig();
        cfg.obs.txTrack = true;
        const RunResult r = runExperiment(cfg, scheme,
                                          WorkloadKind::Queue, opts);
        ASSERT_TRUE(r.finished) << toString(scheme);
        ASSERT_TRUE(r.txStats) << toString(scheme);
        const obs::TxStatsSummary &s = *r.txStats;
        EXPECT_EQ(s.committedTxs, r.committedTxs) << toString(scheme);
        EXPECT_EQ(s.openTxs, 0u) << toString(scheme);

        // The recorder's per-bucket commit-slot totals must equal the
        // CPI stack accounted independently by the cores, bucket for
        // bucket — cycles can neither vanish nor double-count.
        const std::uint64_t cpi[obs::numTxSlots] = {
            r.cpi.base,          r.cpi.robFull,
            r.cpi.iqLsqFull,     r.cpi.branchRedirect,
            r.cpi.persistStall,  r.cpi.wpqBackpressure,
            r.cpi.lockWait};
        double in_tx_sum = 0;
        for (unsigned b = 0; b < obs::numTxSlots; ++b) {
            EXPECT_EQ(s.slotTotal[b], cpi[b])
                << toString(scheme) << " bucket " << b;
            EXPECT_LE(s.slotInTx[b], s.slotTotal[b]);
            // Every in-tx cycle belongs to a committed transaction
            // (this workload never aborts), so the per-tx slot
            // distributions account for exactly the in-tx subset.
            const auto stage = static_cast<unsigned>(
                static_cast<unsigned>(obs::TxStage::SlotBase) + b);
            EXPECT_EQ(s.stages[stage].sum,
                      static_cast<double>(s.slotInTx[b]))
                << toString(scheme) << " bucket " << b;
            in_tx_sum += static_cast<double>(s.slotInTx[b]);
        }
        // Per-tx slots sum to commit - begin, so the commit-latency
        // mass equals the total in-tx cycle mass.
        const auto cl =
            static_cast<unsigned>(obs::TxStage::CommitLatency);
        EXPECT_EQ(s.stages[cl].sum, in_tx_sum) << toString(scheme);
        for (const obs::TxTimeline &tl : s.slowest) {
            std::uint64_t slot_sum = 0;
            for (std::uint64_t v : tl.slots)
                slot_sum += v;
            EXPECT_EQ(slot_sum, tl.latency) << toString(scheme);
        }
    }
}

TEST(TxStats, FileBitIdenticalAcrossCycleSkip)
{
    const std::string path_skip =
        testing::TempDir() + "/proteus_txstats_skip.json";
    const std::string path_noskip =
        testing::TempDir() + "/proteus_txstats_noskip.json";

    BenchOptions opts = tinyOptions();
    opts.txStats = path_skip;
    SystemConfig cfg = opts.makeConfig();
    runExperiment(cfg, LogScheme::Proteus, WorkloadKind::Queue, opts);

    opts.cycleSkip = false;
    opts.txStats = path_noskip;
    cfg = opts.makeConfig();
    runExperiment(cfg, LogScheme::Proteus, WorkloadKind::Queue, opts);

    const std::string a = slurp(path_skip);
    const std::string b = slurp(path_noskip);
    ASSERT_FALSE(a.empty());
    // Cycle skipping must be observationally invisible: the bulk
    // replay of quiescent spans reproduces the per-cycle commit-slot
    // feed exactly, so the files match byte for byte.
    EXPECT_EQ(a, b);
    EXPECT_TRUE(testjson::isValidJson(a));

    // And the file round-trips through the report tool's reader.
    const obs::JsonValue doc = obs::parseJson(a);
    EXPECT_EQ(doc.at("version").asU64(), 1u);
    ASSERT_EQ(doc.at("rows").array.size(), 1u);
    const obs::JsonValue &row = doc.at("rows").array[0];
    EXPECT_EQ(row.at("scheme").asString(), "Proteus");
    EXPECT_GT(row.at("counters").at("committedTxs").asU64(), 0u);

    std::remove(path_skip.c_str());
    std::remove(path_noskip.c_str());
}

TEST(ParallelRunner, TxStatsDeterminism)
{
    const BenchOptions opts = tinyOptions();
    const std::vector<LogScheme> schemes{LogScheme::PMEM,
                                         LogScheme::Proteus};
    const std::vector<WorkloadKind> workloads{WorkloadKind::Queue,
                                              WorkloadKind::BTree};
    // The per-job config carries a tx-stats path; the runner must
    // suppress the per-job file (forcing in-memory tracking) so the
    // batch writer emits ONE combined file in submission order.
    const std::string stray =
        testing::TempDir() + "/proteus_txstats_stray.json";
    std::vector<SimJob> jobs;
    for (LogScheme s : schemes) {
        for (WorkloadKind w : workloads) {
            SystemConfig cfg = opts.makeConfig();
            cfg.obs.txStats = stray;
            jobs.push_back(SimJob{cfg, s, w, {},
                                  std::string(toString(s)) + " / " +
                                      toString(w)});
        }
    }

    const auto serial = ParallelRunner(1).run(jobs, opts);
    const auto parallel = ParallelRunner(4).run(jobs, opts);
    EXPECT_FALSE(std::ifstream(stray).good())
        << "runner wrote a per-job tx-stats file";

    auto write = [&](const std::vector<SimJobResult> &results,
                     const std::string &path) {
        std::vector<obs::TxStatsRow> rows;
        std::size_t i = 0;
        for (LogScheme s : schemes)
            for (WorkloadKind w : workloads)
                rows.push_back(
                    makeTxStatsRow(opts, s, w, results[i++].result));
        obs::writeTxStatsFile(path, rows);
    };
    const std::string path_1 =
        testing::TempDir() + "/proteus_txstats_j1.json";
    const std::string path_4 =
        testing::TempDir() + "/proteus_txstats_j4.json";
    write(serial, path_1);
    write(parallel, path_4);

    const std::string a = slurp(path_1);
    const std::string b = slurp(path_4);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_TRUE(testjson::isValidJson(a));
    std::remove(path_1.c_str());
    std::remove(path_4.c_str());
}
