/** @file Unit tests for the micro-op ISA and trace container. */

#include <gtest/gtest.h>

#include "isa/trace.hh"

using namespace proteus;

TEST(MicroOp, DefaultsAreInert)
{
    MicroOp m;
    EXPECT_EQ(m.op, Op::Nop);
    EXPECT_EQ(m.src0, noReg);
    EXPECT_EQ(m.dst, noReg);
    EXPECT_EQ(m.addr, invalidAddr);
    EXPECT_EQ(m.payload, noPayload);
    EXPECT_FALSE(m.persistent);
}

TEST(MicroOp, Classification)
{
    MicroOp m;
    m.op = Op::Load;
    EXPECT_TRUE(m.isLoad());
    EXPECT_TRUE(m.isMem());
    EXPECT_FALSE(m.isStore());
    EXPECT_FALSE(m.isFence());

    m.op = Op::LogFlush;
    EXPECT_TRUE(m.isMem());
    m.op = Op::SFence;
    EXPECT_TRUE(m.isFence());
    m.op = Op::PCommit;
    EXPECT_TRUE(m.isFence());
    m.op = Op::IntAlu;
    EXPECT_FALSE(m.isMem());
    EXPECT_FALSE(m.isFence());
}

TEST(MicroOp, MnemonicsArePrintable)
{
    EXPECT_STREQ(toString(Op::LogLoad), "log-load");
    EXPECT_STREQ(toString(Op::LogFlush), "log-flush");
    EXPECT_STREQ(toString(Op::TxBegin), "tx-begin");
    EXPECT_STREQ(toString(Op::ClWb), "clwb");
    EXPECT_STREQ(toString(Op::PCommit), "pcommit");
}

TEST(Trace, PushAndIndex)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    MicroOp m;
    m.op = Op::IntAlu;
    EXPECT_EQ(t.push(m), 0u);
    m.op = Op::Store;
    EXPECT_EQ(t.push(m), 1u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.op(0).op, Op::IntAlu);
    EXPECT_EQ(t.op(1).op, Op::Store);
}

TEST(Trace, CountOps)
{
    Trace t;
    MicroOp m;
    for (int i = 0; i < 5; ++i) {
        m.op = Op::Load;
        t.push(m);
    }
    m.op = Op::Store;
    t.push(m);
    EXPECT_EQ(t.countOps(Op::Load), 5u);
    EXPECT_EQ(t.countOps(Op::Store), 1u);
    EXPECT_EQ(t.countOps(Op::Branch), 0u);
}

TEST(Trace, PayloadsRoundTrip)
{
    Trace t;
    LogPayload p;
    p.fromAddr = 0x1234;
    p.txId = 9;
    p.bytes[0] = 0xAB;
    const std::uint32_t id = t.addPayload(p);
    MicroOp m;
    m.op = Op::LogFlush;
    m.payload = id;
    t.push(m);
    const LogPayload &back = t.logPayload(t.op(0).payload);
    EXPECT_EQ(back.fromAddr, 0x1234u);
    EXPECT_EQ(back.txId, 9u);
    EXPECT_EQ(back.bytes[0], 0xAB);
}

TEST(IsaConstants, GranulesPerBlock)
{
    EXPECT_EQ(blockSize % logDataSize, 0u);
    EXPECT_EQ(blockSize / logDataSize, 2u);
    EXPECT_EQ(logEntrySize, blockSize);
}
