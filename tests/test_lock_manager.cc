/** @file Unit tests for the fair ticket lock manager. */

#include <gtest/gtest.h>

#include "cpu/lock_manager.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace proteus;

namespace {

struct Fixture
{
    Simulator sim;
    LockManager locks{sim};
};

} // namespace

TEST(LockManager, UncontendedGrant)
{
    Fixture f;
    bool granted = false;
    f.locks.acquire(0x10, 0, 0, [&]() { granted = true; });
    EXPECT_FALSE(granted);      // grant has latency
    f.sim.run(50);
    EXPECT_TRUE(granted);
    EXPECT_TRUE(f.locks.held(0x10));
}

TEST(LockManager, TicketsGrantInOrder)
{
    Fixture f;
    std::vector<int> order;
    // Requested out of ticket order on purpose.
    f.locks.acquire(0x10, 1, 1, [&]() {
        order.push_back(1);
        f.locks.release(0x10, 1);
    });
    f.locks.acquire(0x10, 2, 2, [&]() {
        order.push_back(2);
        f.locks.release(0x10, 2);
    });
    f.locks.acquire(0x10, 0, 0, [&]() {
        order.push_back(0);
        f.locks.release(0x10, 0);
    });
    f.sim.run(500);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(f.locks.held(0x10));
}

TEST(LockManager, IndependentLocksDoNotInterfere)
{
    Fixture f;
    bool a = false, b = false;
    f.locks.acquire(0x10, 0, 0, [&]() { a = true; });
    f.locks.acquire(0x20, 1, 0, [&]() { b = true; });
    f.sim.run(50);
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
}

TEST(LockManager, HandoffWaitsForRelease)
{
    Fixture f;
    bool second = false;
    f.locks.acquire(0x10, 0, 0, [] {});
    f.locks.acquire(0x10, 1, 1, [&]() { second = true; });
    f.sim.run(200);
    EXPECT_FALSE(second);       // still held by core 0
    f.locks.release(0x10, 0);
    f.sim.run(50);
    EXPECT_TRUE(second);
}

TEST(LockManager, WrongReleasePanics)
{
    Fixture f;
    f.locks.acquire(0x10, 0, 0, [] {});
    f.sim.run(50);
    EXPECT_THROW(f.locks.release(0x10, 3), PanicError);
    EXPECT_THROW(f.locks.release(0x99, 0), PanicError);
}
