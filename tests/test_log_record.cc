/** @file Unit tests for the on-NVM log record format. */

#include <gtest/gtest.h>

#include "logging/log_record.hh"

using namespace proteus;

namespace {

LogRecord
sampleRecord()
{
    LogRecord rec;
    for (unsigned i = 0; i < logDataSize; ++i)
        rec.data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    rec.fromAddr = 0x4000'1230ull;
    rec.txId = 0x77;
    rec.seq = 5;
    rec.flags = LogRecord::flagValid;
    rec.magic = LogRecord::magicValue;
    return rec;
}

} // namespace

TEST(LogRecord, PacksIntoOneBlock)
{
    const auto bytes = sampleRecord().toBytes();
    EXPECT_EQ(bytes.size(), logEntrySize);
}

TEST(LogRecord, RoundTrip)
{
    const LogRecord rec = sampleRecord();
    const auto bytes = rec.toBytes();
    const LogRecord back = LogRecord::fromBytes(bytes.data());
    EXPECT_EQ(back.data, rec.data);
    EXPECT_EQ(back.fromAddr, rec.fromAddr);
    EXPECT_EQ(back.txId, rec.txId);
    EXPECT_EQ(back.seq, rec.seq);
    EXPECT_EQ(back.flags, rec.flags);
    EXPECT_EQ(back.magic, rec.magic);
}

TEST(LogRecord, ValidityRequiresMagicAndFlag)
{
    LogRecord rec = sampleRecord();
    EXPECT_TRUE(rec.valid());

    LogRecord no_magic = rec;
    no_magic.magic = 0;
    EXPECT_FALSE(no_magic.valid());

    LogRecord no_flag = rec;
    no_flag.flags = 0;
    EXPECT_FALSE(no_flag.valid());

    std::uint8_t zeros[logEntrySize] = {};
    EXPECT_FALSE(LogRecord::fromBytes(zeros).valid());
}

TEST(LogRecord, CommitFlag)
{
    LogRecord rec = sampleRecord();
    EXPECT_FALSE(rec.committed());
    rec.flags |= LogRecord::flagTxEnd;
    EXPECT_TRUE(rec.committed());
    const auto bytes = rec.toBytes();
    EXPECT_TRUE(LogRecord::fromBytes(bytes.data()).committed());
}
