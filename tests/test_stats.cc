/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"
#include "sim/logging.hh"

using namespace proteus;
using namespace proteus::stats;

TEST(Stats, ScalarAccumulates)
{
    StatRegistry reg;
    Scalar s(reg, "a", "desc");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s -= 2;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageIsMean)
{
    StatRegistry reg;
    Average a(reg, "avg", "desc");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBucketsAndExtremes)
{
    StatRegistry reg;
    Distribution d(reg, "dist", "desc", 0, 10, 5);
    d.sample(-1);   // underflow
    d.sample(0);
    d.sample(9.5);
    d.sample(100);  // overflow
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[4], 1u);
}

TEST(Stats, DistributionRejectsBadRange)
{
    StatRegistry reg;
    EXPECT_THROW(Distribution(reg, "bad", "d", 5, 5, 4), PanicError);
    EXPECT_THROW(Distribution(reg, "bad2", "d", 0, 10, 0), PanicError);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatRegistry reg;
    Scalar a(reg, "a", "");
    Scalar b(reg, "b", "");
    Formula f(reg, "ratio", "", [&]() {
        return b.value() != 0 ? a.value() / b.value() : 0;
    });
    a += 6;
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    a += 6;
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
}

TEST(Stats, RegistryLookupAndDuplicates)
{
    StatRegistry reg;
    Scalar a(reg, "x.count", "");
    a += 7;
    EXPECT_DOUBLE_EQ(reg.lookup("x.count"), 7.0);
    EXPECT_EQ(reg.find("missing"), nullptr);
    EXPECT_THROW(reg.lookup("missing"), PanicError);
    EXPECT_THROW(Scalar(reg, "x.count", "dup"), PanicError);
}

TEST(Stats, RegistryResetAll)
{
    StatRegistry reg;
    Scalar a(reg, "a", "");
    Average b(reg, "b", "");
    a += 3;
    b.sample(10);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_EQ(b.count(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    Scalar a(reg, "core.retired", "micro-ops retired");
    a += 42;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("core.retired"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Stats, RemovedStatLeavesRegistry)
{
    StatRegistry reg;
    {
        Scalar temp(reg, "temp", "");
        reg.remove(&temp);
        EXPECT_EQ(reg.find("temp"), nullptr);
    }
    Scalar again(reg, "temp", "");
    EXPECT_NE(reg.find("temp"), nullptr);
}
