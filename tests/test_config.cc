/** @file Unit tests for configuration and overrides. */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/logging.hh"

using namespace proteus;

TEST(Config, BaselineMatchesTable1)
{
    const SystemConfig cfg = baselineConfig();
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_EQ(cfg.cpu.robEntries, 224u);
    EXPECT_EQ(cfg.cpu.issueQueueEntries, 64u);
    EXPECT_EQ(cfg.cpu.loadQueueEntries, 72u);
    EXPECT_EQ(cfg.cpu.storeQueueEntries, 56u);
    EXPECT_EQ(cfg.caches.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.caches.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.caches.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.caches.l3.ways, 16u);
    EXPECT_TRUE(cfg.mem.nvmMode);
    EXPECT_EQ(cfg.mem.nvmReadTRCD, 29u);
    EXPECT_EQ(cfg.mem.nvmWriteTRCD, 109u);
    EXPECT_EQ(cfg.logging.logRegisters, 8u);
    EXPECT_EQ(cfg.logging.logQEntries, 16u);
    EXPECT_EQ(cfg.logging.lltEntries, 64u);
    EXPECT_EQ(cfg.logging.lltWays, 8u);
    EXPECT_EQ(cfg.memCtrl.lpqEntries, 256u);
    EXPECT_TRUE(cfg.memCtrl.adr);
}

TEST(Config, SlowNvmPreset)
{
    const SystemConfig cfg = slowNvmConfig();
    EXPECT_EQ(cfg.mem.nvmWriteTRCD, 240u);   // 300 ns at 800 MHz
    EXPECT_EQ(cfg.mem.nvmReadTRCD, 29u);     // reads unchanged
}

TEST(Config, DramPreset)
{
    const SystemConfig cfg = dramConfig();
    EXPECT_FALSE(cfg.mem.nvmMode);
}

TEST(Config, OverridesApply)
{
    SystemConfig cfg = baselineConfig();
    cfg.applyOverride("logging.logQEntries=8");
    EXPECT_EQ(cfg.logging.logQEntries, 8u);
    cfg.applyOverride("memCtrl.lpqEntries=32");
    EXPECT_EQ(cfg.memCtrl.lpqEntries, 32u);
    cfg.applyOverride("memCtrl.adr=false");
    EXPECT_FALSE(cfg.memCtrl.adr);
    cfg.applyOverride("logging.scheme=atom");
    EXPECT_EQ(cfg.logging.scheme, LogScheme::ATOM);
    cfg.applyOverride("mem.nvmWriteTRCD=240");
    EXPECT_EQ(cfg.mem.nvmWriteTRCD, 240u);
}

TEST(Config, BadOverridesFatal)
{
    SystemConfig cfg = baselineConfig();
    EXPECT_THROW(cfg.applyOverride("nonsense"), FatalError);
    EXPECT_THROW(cfg.applyOverride("unknown.key=1"), FatalError);
    EXPECT_THROW(cfg.applyOverride("cores=abc"), FatalError);
    EXPECT_THROW(cfg.applyOverride("memCtrl.adr=maybe"), FatalError);
}

TEST(Config, SchemeNames)
{
    EXPECT_STREQ(toString(LogScheme::Proteus), "Proteus");
    EXPECT_STREQ(toString(LogScheme::PMEMPCommit), "PMEM+pcommit");
    EXPECT_EQ(parseScheme("proteus"), LogScheme::Proteus);
    EXPECT_EQ(parseScheme("PMEM+NOLOG"), LogScheme::PMEMNoLog);
    EXPECT_EQ(parseScheme("ideal"), LogScheme::PMEMNoLog);
    EXPECT_EQ(parseScheme("nolwr"), LogScheme::ProteusNoLWR);
    EXPECT_THROW(parseScheme("bogus"), FatalError);
}

TEST(Config, SoftwareSchemeClassification)
{
    EXPECT_TRUE(isSoftwareScheme(LogScheme::PMEM));
    EXPECT_TRUE(isSoftwareScheme(LogScheme::PMEMPCommit));
    EXPECT_TRUE(isSoftwareScheme(LogScheme::PMEMNoLog));
    EXPECT_FALSE(isSoftwareScheme(LogScheme::ATOM));
    EXPECT_FALSE(isSoftwareScheme(LogScheme::Proteus));
    EXPECT_FALSE(isSoftwareScheme(LogScheme::ProteusNoLWR));
}
